"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the legacy setuptools develop path).
"""

from setuptools import setup

setup()
