"""Quickstart: the paper's LJ melt benchmark on the optimized stack.

Builds the LAMMPS ``in.lj`` bench system (FCC lattice at reduced density
0.8442, T* = 1.44, LJ cutoff 2.5) at laptop scale, runs it over the
fine-grained thread-pool p2p exchange with pre-registered RDMA buffers
(the paper's ``opt`` configuration), and prints a LAMMPS-style thermo
trace plus the five-stage timing breakdown.

Run:  python examples/quickstart.py
"""

from repro import quick_lj_simulation


def main() -> None:
    sim = quick_lj_simulation(
        cells=(6, 6, 6),  # 864 atoms; raise for bigger runs
        ranks=(2, 2, 2),  # 8 simulated MPI ranks
        pattern="parallel-p2p",  # the paper's optimized exchange
        rdma=True,  # pre-registered buffers, direct PUT
        thermo_every=10,
    )

    print(f"atoms: {sim.natoms}  ranks: {sim.world.size}  grid: {sim.grid}")
    print(f"exchange: {sim.exchange.name} (rdma), "
          f"{len(sim.exchange.recv_offsets)} neighbors per rank\n")

    print(f"{'step':>6} {'T*':>10} {'P*':>12} {'E/N':>12}")
    sim.setup()
    s = sim.sample_thermo()
    print(f"{0:>6} {s.temperature:>10.4f} {s.pressure:>12.5f} "
          f"{s.total_energy / sim.natoms:>12.6f}")
    for _ in range(5):
        sim.run(10)
        s = sim.sample_thermo()
        print(f"{s.step:>6} {s.temperature:>10.4f} {s.pressure:>12.5f} "
              f"{s.total_energy / sim.natoms:>12.6f}")

    print("\nMPI task timing breakdown (wall, this process):")
    for stage, (secs, pct) in sim.timers.breakdown().items():
        print(f"  {stage:<8} {secs * 1e3:8.1f} ms  {pct:5.1f}%")

    log = sim.world.transport.log
    print(f"\ncommunication: {log.count()} messages, "
          f"{log.total_bytes() / 1024:.1f} KiB moved, "
          f"{sim.rebuilds} neighbor rebuilds")


if __name__ == "__main__":
    main()
