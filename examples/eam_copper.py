"""EAM copper: the paper's metallic-system benchmark at laptop scale.

Runs FCC copper with the Sutton-Chen EAM (the documented substitution
for LAMMPS' ``Cu_u3.eam`` table) under the paper's EAM settings:
``neigh_modify every 5 check yes`` — the policy whose global allreduce
dominates the "Other" column of Table 3 — and shows the two extra
pair-stage communications (density reverse-sum, embedding-derivative
forward) that distinguish EAM from LJ.

Run:  python examples/eam_copper.py
"""

from repro import Simulation, SimulationConfig
from repro.md.lattice import fcc_lattice, maxwell_velocities
from repro.md.potentials import SuttonChenEAM


def main() -> None:
    x, box = fcc_lattice((5, 5, 5), 3.615)  # 500 Cu atoms
    v = maxwell_velocities(x.shape[0], 0.03, seed=7)
    cfg = SimulationConfig(
        dt=0.002,
        skin=1.0,  # Table 2 EAM column
        pattern="parallel-p2p",
        rdma=True,
        neighbor_every=5,
        neighbor_check=True,  # the allreduce-driven rebuild policy
        thermo_every=10,
    )
    sim = Simulation(x, v, box, SuttonChenEAM(cutoff=4.95), cfg, grid=(2, 2, 1))

    print(f"copper EAM: {sim.natoms} atoms, cutoff 4.95 A, skin 1.0 A")
    print(f"exchange: {sim.exchange.name}, "
          f"{len(sim.exchange.recv_offsets)} neighbors per rank\n")

    print(f"{'step':>6} {'T':>10} {'P':>12} {'E_total':>14}")
    sim.setup()
    for _ in range(5):
        sim.run(10)
        s = sim.sample_thermo()
        print(f"{s.step:>6} {s.temperature:>10.5f} {s.pressure:>12.6f} "
              f"{s.total_energy:>14.6f}")

    log = sim.world.transport.log
    print("\nEAM-specific pair-stage communication (section 4.1):")
    print(f"  density reverse-sums : {log.count('pair-reverse'):4d} messages")
    print(f"  fp forwards          : {log.count('pair-forward'):4d} messages")
    print(f"  neighbor rebuilds    : {sim.rebuilds} "
          f"(check-yes allreduce every 5 steps)")
    for stage, (secs, pct) in sim.timers.breakdown().items():
        print(f"  {stage:<8} {secs * 1e3:8.1f} ms  {pct:5.1f}%")


if __name__ == "__main__":
    main()
