"""Physics validation: equilibrate an LJ melt and inspect its structure.

A downstream user's first real question about any MD engine: does it
produce correct *physics*, not just matching traces?  This example
equilibrates the LJ benchmark system at T* = 1.44 with a Langevin
thermostat (running over the optimized communication stack), then
computes the radial distribution function and mean-square displacement:
a proper liquid shows g(r) with a first peak near 1.1 sigma and linear
diffusion, while the initial crystal shows sharp lattice peaks.

Run:  python examples/melt_structure.py
"""

import numpy as np

from repro import quick_lj_simulation
from repro.md.analysis import (
    MSDTracker,
    radial_distribution,
    structure_order_parameter,
)
from repro.md.fixes import Langevin
from repro.md.lattice import fcc_lattice, lj_density_to_cell


def ascii_plot(r, g, width=48, height=10) -> str:
    """Tiny terminal plot of g(r)."""
    gmax = max(g.max(), 1e-9)
    rows = []
    for level in range(height, 0, -1):
        thresh = gmax * level / height
        cells = "".join(
            "#" if gv >= thresh else " "
            for gv in np.interp(np.linspace(r[0], r[-1], width), r, g)
        )
        rows.append(f"{thresh:5.1f} |{cells}")
    rows.append("      +" + "-" * width)
    rows.append(f"       r = {r[0]:.1f} ... {r[-1]:.1f} sigma")
    return "\n".join(rows)


def main() -> None:
    # Initial crystal structure for comparison.
    edge = lj_density_to_cell(0.8442)
    x0, box0 = fcc_lattice((5, 5, 5), edge)
    r, g_crystal = radial_distribution(x0, box0, r_max=3.0)

    sim = quick_lj_simulation(
        cells=(5, 5, 5), ranks=(2, 2, 2),
        pattern="parallel-p2p", rdma=True,
        temperature=1.44, seed=11, neighbor_every=10,
    )
    sim.fixes.append(Langevin(t_target=1.44, damp=0.2, dt=0.005, seed=4))
    print(f"equilibrating {sim.natoms} LJ atoms at T*=1.44 "
          "(Langevin over the optimized exchange)...")
    sim.setup()
    msd = MSDTracker(sim.gather_positions(), sim.box)
    for _ in range(6):
        sim.run(20)
        msd.update(sim.step_count, sim.gather_positions())
        s = sim.sample_thermo()
        print(f"  step {s.step:4d}: T*={s.temperature:.3f} P*={s.pressure:.3f} "
              f"MSD={msd.samples[-1][1]:.3f}")

    r, g_liquid = radial_distribution(sim.gather_positions(), sim.box, r_max=3.0)
    print("\nliquid g(r):")
    print(ascii_plot(r, g_liquid))
    print(f"\nfirst-peak position : {r[np.argmax(g_liquid)]:.2f} sigma "
          "(LJ liquid: ~1.1)")
    print(f"structure order     : crystal {structure_order_parameter(g_crystal):.1f} "
          f"vs liquid {structure_order_parameter(g_liquid):.1f}")
    print(f"diffusion estimate  : D* = {msd.diffusion_estimate(0.005):.4f} "
          "(LJ melt at this state point: ~0.03)")


if __name__ == "__main__":
    main()
