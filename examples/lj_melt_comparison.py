"""Compare every communication implementation on the same LJ melt.

Runs the identical physical system through the baseline 3-stage exchange,
coarse p2p (message and RDMA planes) and the fine-grained thread-pool
p2p, verifying they produce the same trajectory (the paper's Fig. 11
accuracy claim) while moving very different message traffic (Table 1):
the p2p variants send 13 messages per rank but half the 3-stage's ghost
volume.

Run:  python examples/lj_melt_comparison.py
"""

import numpy as np

from repro import LennardJones, SerialReference, quick_lj_simulation
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities

VARIANTS = [
    ("3-stage (baseline)", "3stage", False),
    ("p2p, message plane", "p2p", False),
    ("p2p, RDMA plane", "p2p", True),
    ("thread-pool p2p + RDMA", "parallel-p2p", True),
]

CELLS = (5, 5, 5)
RANKS = (2, 2, 2)
STEPS = 50
SEED = 42


def main() -> None:
    # Independent serial reference (minimum image, O(N^2)).
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice(CELLS, edge)
    v = maxwell_velocities(x.shape[0], 1.44, seed=SEED)
    ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
    ref.run(STEPS)
    print(f"system: {x.shape[0]} LJ atoms, {STEPS} steps, "
          f"{np.prod(RANKS)} simulated ranks\n")

    header = f"{'variant':<24} {'max|dx| vs serial':>18} {'msgs/rank/border':>17} {'ghost KiB':>10}"
    print(header)
    print("-" * len(header))
    for label, pattern, rdma in VARIANTS:
        sim = quick_lj_simulation(
            cells=CELLS, ranks=RANKS, pattern=pattern, rdma=rdma, seed=SEED
        )
        sim.run(STEPS)
        dx = np.abs(box.minimum_image(sim.gather_positions() - ref.x)).max()
        msgs = sim.exchange.messages_per_rank()[0]
        log = sim.world.transport.log
        border_bytes = log.total_bytes("border") / 1024
        print(f"{label:<24} {dx:>18.2e} {msgs:>17d} {border_bytes:>10.1f}")

    print(
        "\nAll variants integrate the same trajectory; the p2p variants "
        "use 13 direct\nmessages per rank (vs 6 staged) while moving half "
        "the ghost volume — the\nNewton's-3rd-law saving of Table 1."
    )


if __name__ == "__main__":
    main()
