"""Stencil generalization: 3D heat smoothing over the paper's exchanges.

The paper's conclusion claims its communication optimizations transfer
to "other applications with the similar communication pattern, such as
domain decomposition and stencil computation".  This example runs a
27-point Jacobi diffusion of a hot spot over both halo-exchange
patterns, shows they produce identical fields, and prices both message
schedules on the Fugaku network model — the same comparison as the MD
case, on a completely different application.

Run:  python examples/stencil_heat.py
"""

import numpy as np

from repro.machine import FUGAKU
from repro.network import Message, NetworkSimulator, MpiStack, UtofuStack
from repro.runtime import World
from repro.stencil import JacobiSolver, jacobi_reference


def main() -> None:
    shape = (16, 16, 16)
    data = np.zeros(shape)
    data[6:10, 6:10, 6:10] = 100.0  # a hot cube

    ref = jacobi_reference(data, 10)
    print(f"27-point Jacobi diffusion, {shape} grid, 8 ranks, 10 steps\n")

    solvers = {}
    for pattern in ("3stage", "p2p"):
        world = World(8, grid=(2, 2, 2))
        s = JacobiSolver(world, shape, pattern=pattern)
        s.set_initial(data)
        s.run(10)
        solvers[pattern] = s
        log = world.transport.log
        print(
            f"{pattern:>7}: max err vs serial {s.residual_vs(ref):.2e}, "
            f"{s.halo.messages_per_exchange():2d} msgs/exchange, "
            f"{log.total_bytes() / 1024:.0f} KiB total"
        )

    diff = np.abs(solvers["p2p"].solution() - solvers["3stage"].solution()).max()
    print(f"\npattern-to-pattern max difference: {diff:.2e} (bit-identical)")

    # Price one halo exchange on the machine model, like Fig. 6 for MD.
    print("\nmodeled exchange time on the Fugaku network model:")
    for pattern, stack in (("3stage", MpiStack()), ("p2p", UtofuStack())):
        sched = solvers[pattern].halo.message_schedule()
        msgs = [Message(nbytes=n, hops=h) for n, h in sched]
        sim = NetworkSimulator(stack, FUGAKU)
        if pattern == "3stage":
            t = sim.run_staged([msgs[i : i + 2] for i in range(0, len(msgs), 2)])
        else:
            t = sim.run_round(msgs)
        print(f"  {pattern:>7} ({stack.name}): {t.completion_time * 1e6:6.2f} us")

    print(
        "\nThe p2p halo sends 26 direct messages vs 6 staged ones, and wins "
        "for the\nsame reason as the MD ghost exchange — the paper's "
        "generalization claim."
    )


if __name__ == "__main__":
    main()
