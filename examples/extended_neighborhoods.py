"""Long-cutoff and full-neighbor-list regimes (the paper's Fig. 15).

Two demonstrations:

1. A *functional* run where the cutoff exceeds the sub-box width, so the
   p2p exchange reaches two ranks away (62 neighbors with Newton's law)
   — verified against a single-rank run of the same system.
2. The *performance* crossover: p2p beats 3-stage at 26 and 62 neighbors
   but loses at 124, because staged messages grow linearly while direct
   messages grow ~quadratically with the shell radius.

Run:  python examples/extended_neighborhoods.py
"""

import numpy as np

from repro import quick_lj_simulation
from repro.figures import fig15


def functional_radius2() -> None:
    print("1. functional radius-2 exchange (cutoff > sub-box width)")
    # 4 ranks along x make the sub-box thinner than cutoff+skin.
    thin = quick_lj_simulation(
        cells=(4, 4, 4), ranks=(4, 1, 1), pattern="p2p", seed=5, shell_radius=2
    )
    solo = quick_lj_simulation(
        cells=(4, 4, 4), ranks=(1, 1, 1), pattern="p2p", seed=5
    )
    thin.run(20)
    solo.run(20)
    dx = np.abs(
        thin.box.minimum_image(thin.gather_positions() - solo.gather_positions())
    ).max()
    n_neighbors = len(thin.exchange.recv_offsets)
    print(f"   neighbors per rank: {n_neighbors} (radius-2 half shell, paper: 62)")
    print(f"   max position deviation vs single-rank run: {dx:.2e}\n")


def performance_crossover() -> None:
    print("2. performance crossover (Fig. 15)")
    res = fig15.compute()
    print("   " + fig15.render(res).replace("\n", "\n   "))


def main() -> None:
    functional_radius2()
    performance_crossover()


if __name__ == "__main__":
    main()
