"""Trace one exchange-heavy run and export it for Perfetto.

Runs the LJ melt bench under the fine-grained thread-pool p2p exchange
with tracing and metrics on, then

1. writes a Chrome trace-event file (open it in https://ui.perfetto.dev:
   pid 1 is this process' wall clock, pid 2 the simulated Fugaku),
2. prints the span-derived stage breakdown next to the ``StageTimers``
   account to show they agree bit-for-bit, and
3. prints the per-phase traffic recomputed from per-message events next
   to the ``TrafficLog`` ground truth.

Run:  python examples/trace_exchange.py [out.json]
"""

import sys

from repro import quick_lj_simulation
from repro.md.stages import Stage
from repro.obs import observe
from repro.obs.export import validate_chrome_trace_file, write_chrome_trace
from repro.obs.report import (
    phase_summary_from_trace,
    render_phase_table,
    render_stage_table,
)


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "trace_exchange.json"

    with observe() as (tracer, metrics):
        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), pattern="parallel-p2p"
        )
        sim.run(20)

    write_chrome_trace(out, tracer, metrics)
    n_events = validate_chrome_trace_file(out)
    print(f"wrote {n_events} events to {out} (open in https://ui.perfetto.dev)\n")

    print(render_stage_table(tracer))
    print("\nagreement with StageTimers (span sum - timer, per stage):")
    from repro.obs.report import stage_breakdown_from_trace

    derived = stage_breakdown_from_trace(tracer)
    for stage in Stage:
        diff = derived[stage.value] - sim.timers.wall[stage]
        print(f"  {stage.value:<8} {diff:+.1e}")

    print()
    print(render_phase_table(tracer))
    print("\nagreement with TrafficLog (trace - log, per phase):")
    log = sim.world.transport.log
    for phase, t in sorted(phase_summary_from_trace(tracer).items()):
        s = log.summary(phase)
        print(
            f"  {phase:<18} count {t.count - s.count:+d}  "
            f"bytes {t.total_bytes - s.total_bytes:+d}"
        )

    print()
    print(metrics.render())


if __name__ == "__main__":
    main()
