"""Project your own workload's strong scaling on the Fugaku model.

Uses the calibrated performance model to sweep a user-defined system
over node counts, comparing the baseline and optimized communication
stacks — the tool you would reach for before burning real node-hours,
and the machinery behind Figs. 12/13 of the reproduction.

Run:  python examples/strong_scaling_study.py [natoms] [potential]
      e.g.  python examples/strong_scaling_study.py 10000000 lj
"""

import sys

from repro.perfmodel import (
    StageModel,
    parallel_efficiency,
    performance_per_day,
    strong_scaling,
)
from repro.perfmodel.stagemodel import Workload


def build_workload(natoms: int, potential: str) -> Workload:
    if potential == "lj":
        return Workload("user-lj", "lj", natoms, 0.8442, 2.8, 0.005, rebuild_every=20)
    if potential == "eam":
        return Workload(
            "user-eam", "eam", natoms, 0.0847, 5.95, 0.005,
            rebuild_every=20, allreduce_every=5,
        )
    raise SystemExit(f"unknown potential {potential!r}; use 'lj' or 'eam'")


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 4_194_304
    potential = sys.argv[2] if len(sys.argv) > 2 else "lj"
    workload = build_workload(natoms, potential)
    nodes = (768, 2160, 6144, 18432, 36864)
    model = StageModel()

    print(f"strong scaling projection: {natoms:,} {potential.upper()} atoms\n")
    header = (f"{'nodes':>6} {'atoms/core':>11} {'ref us/step':>12} "
              f"{'opt us/step':>12} {'speedup':>8} {'opt eff %':>9}")
    print(header)
    print("-" * len(header))

    ref = strong_scaling(workload, "ref", nodes, model=model)
    opt = strong_scaling(workload, "opt", nodes, model=model)
    effs = parallel_efficiency(opt)
    for r, o, e in zip(ref, opt, effs):
        print(
            f"{o.nodes:>6} {o.atoms_per_core:>11.1f} {r.step_time * 1e6:>12.1f} "
            f"{o.step_time * 1e6:>12.1f} {r.step_time / o.step_time:>8.2f} "
            f"{100 * e:>9.1f}"
        )

    perf = performance_per_day(opt[-1], workload.dt)
    unit = "tau/day" if potential == "lj" else "ps/day"
    print(f"\noptimized performance at {opt[-1].nodes} nodes: "
          f"{perf / 1e6:.2f} M{unit}")
    last = opt[-1].result
    print("stage shares at the last point (opt):")
    for stage, (secs, pct) in last.breakdown().items():
        print(f"  {stage:<8} {secs * 1e6:8.2f} us  {pct:5.1f}%")


if __name__ == "__main__":
    main()
