"""Binary Lennard-Jones mixture (Kob-Andersen-style) with trajectory dump.

Shows the multi-species machinery end to end: a 80/20 A-B mixture with
the classic Kob-Andersen parameters (eps_AA=1.0/sig_AA=1.0,
eps_BB=0.5/sig_BB=0.88, explicit cross terms eps_AB=1.5/sig_AB=0.8),
running over the optimized communication stack — atom types travel with
borders and migration — while frames stream to a LAMMPS-format dump
file any standard tool can read.

Run:  python examples/binary_mixture.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import LennardJones, Simulation, SimulationConfig
from repro.md.dump import DumpWriter, read_dump
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities


def kob_andersen() -> LennardJones:
    lj = LennardJones(n_types=2, cutoff=2.5)
    lj.set_coeff(0, 0, epsilon=1.0, sigma=1.0)
    lj.set_coeff(1, 1, epsilon=0.5, sigma=0.88)
    lj.set_coeff(0, 1, epsilon=1.5, sigma=0.8)
    return lj


def main() -> None:
    edge = lj_density_to_cell(1.2)  # KA density
    x, box = fcc_lattice((5, 5, 5), edge)
    rng = np.random.default_rng(21)
    types = (rng.random(x.shape[0]) < 0.2).astype(np.int32)  # 20% B
    v = maxwell_velocities(x.shape[0], 1.0, seed=21)

    cfg = SimulationConfig(
        dt=0.003, skin=0.3, pattern="parallel-p2p", rdma=True, neighbor_every=10
    )
    sim = Simulation(x, v, box, kob_andersen(), cfg, grid=(2, 2, 2), types=types)
    n_b = int(types.sum())
    print(f"Kob-Andersen mixture: {sim.natoms - n_b} A + {n_b} B atoms, "
          f"8 ranks, optimized exchange")

    dump_path = Path(tempfile.gettempdir()) / "repro_mixture.dump"
    writer = DumpWriter(dump_path, include_velocities=False)
    sim.setup()
    writer.write_simulation_frame(sim)
    for _ in range(4):
        sim.run(15)
        writer.write_simulation_frame(sim)
        s = sim.sample_thermo()
        print(f"  step {s.step:3d}: T*={s.temperature:.3f} "
              f"E/N={s.total_energy / sim.natoms:+.4f} P*={s.pressure:+.3f}")

    frames = read_dump(dump_path)
    print(f"\ndumped {len(frames)} frames to {dump_path}")
    # Species identity is conserved through borders + migration:
    for f in frames:
        assert int(f.types.sum()) == n_b
    print(f"species conserved in every frame: {n_b} B atoms throughout")


if __name__ == "__main__":
    main()
