"""Stillinger-Weber silicon: the full-neighbor-list communication case.

The paper's section 4.4 extends the optimization to potentials that
"require a full neighbor list to calculate atom forces", such as Tersoff
— forcing each rank to communicate with all 26 neighbors.  This example
runs that case for real: SW silicon on a diamond-cubic lattice, whose
three-body terms need the full shell *and* a reverse force exchange
(LAMMPS' "pair style sw requires newton pair on").

It verifies the two signature physics facts (cohesive energy exactly
-2 eps per atom at the silicon lattice constant; the lattice is an
equilibrium) and shows the 26-message communication pattern live.

Run:  python examples/silicon_sw.py
"""

import numpy as np

from repro import Simulation, SimulationConfig
from repro.md.lattice import diamond_lattice, maxwell_velocities
from repro.md.potentials import StillingerWeber

SI_A0 = 5.431 / 2.0951  # reduced silicon lattice constant


def main() -> None:
    x, box = diamond_lattice((3, 3, 3), SI_A0)
    v = maxwell_velocities(x.shape[0], 0.02, seed=13)
    cfg = SimulationConfig(dt=0.002, skin=0.3, pattern="p2p", neighbor_every=5)
    sim = Simulation(x, v, box, StillingerWeber(), cfg, grid=(2, 2, 1))

    print(f"SW silicon: {sim.natoms} atoms, diamond-cubic, 4 ranks")
    sim.setup()
    s = sim.sample_thermo()
    print(f"cohesive energy: {s.potential / sim.natoms:+.5f} eps/atom "
          "(SW construction: exactly -2 at a0)")
    print(f"neighbors per rank: {len(sim.exchange.recv_offsets)} "
          "(full shell — three-body terms need every neighbor)\n")

    print(f"{'step':>6} {'T':>10} {'E_total':>14} {'P':>10}")
    for _ in range(5):
        sim.run(10)
        s = sim.sample_thermo()
        print(f"{s.step:>6} {s.temperature:>10.5f} {s.total_energy:>14.6f} "
              f"{s.pressure:>10.5f}")

    log = sim.world.transport.log
    print(f"\ncommunication: border {log.count('border')} msgs, "
          f"forward {log.count('forward')}, reverse {log.count('reverse')} "
          "(ghost triplet forces merged back)")


if __name__ == "__main__":
    main()
