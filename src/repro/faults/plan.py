"""Declarative, replayable fault plans (schema ``repro-faults/1``).

A :class:`FaultPlan` is the complete description of one chaos
experiment: a seed, a retry policy, and a list of :class:`FaultSpec`
entries.  Because every injection decision is drawn from one
``random.Random(seed)`` stream in deterministic call order, the plan is
**fully replayable** — the same plan against the same simulation
produces the same faults, the same retries, and the same trace event
sequence (a property test asserts it).

The taxonomy follows the failure modes of sections 3.3–3.4:

========== ============================================================
kind        what it models
========== ============================================================
drop        a message lost on the wire; the retransmission arrives
            after ``severity`` receiver retry polls
delay       a late message (same machinery, short hold)
reorder     messages of one mailbox arrive out of injection order
tni-stall   a TNI engine holds a message ``stall`` extra seconds
vcq-credit  VCQ descriptor credits exhausted: every ``credits``-th
            injection on the matched VCQ waits ``stall`` seconds
inject-jitter  software injection jitter in ``[0, stall)`` seconds
rdma-stale  a forward-stage RDMA PUT still in flight: the remote
            window shows the previous epoch until ``severity`` fence
            polls (the round-robin hazard of section 3.4)
ring-stale  a reverse-stage ring PUT still in flight: the consumer
            sees a clean buffer until ``severity`` retry polls
========== ============================================================

``drop``/``delay``/``reorder`` act on the functional message plane,
``tni-stall``/``vcq-credit``/``inject-jitter`` on the simulated-machine
timeline, and ``rdma-stale``/``ring-stale`` on the one-sided RDMA plane.
Atom migration (the ``exchange`` phase) is exempt from message faults:
its drain protocol has no per-message expectation a receiver could
retry against, exactly like real MPI migration has no timeout layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

SCHEMA = "repro-faults/1"

#: Message-plane fault kinds (consulted by the transport).
MESSAGE_KINDS = ("drop", "delay", "reorder")
#: Simulated-machine timing fault kinds (consulted by the simulator).
TIMING_KINDS = ("tni-stall", "vcq-credit", "inject-jitter")
#: One-sided RDMA fault kinds (consulted by engine/rings).
RDMA_KINDS = ("rdma-stale", "ring-stale")

FAULT_KINDS = MESSAGE_KINDS + TIMING_KINDS + RDMA_KINDS

#: Transport phases exempt from message faults (see module docstring).
EXEMPT_PHASES = ("exchange",)


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault pattern.

    ``phases``/``src``/``dst``/``tni`` narrow where the fault may fire
    (``None`` matches anything); ``probability`` and ``count`` bound how
    often.  ``severity`` is the number of retry polls a held message or
    deferred PUT needs before it lands; ``stall`` is the modeled seconds
    a timing fault costs; ``credits`` is the VCQ depth for
    ``vcq-credit``.
    """

    kind: str
    probability: float = 1.0
    count: int | None = None
    phases: tuple[str, ...] | None = None
    src: int | None = None
    dst: int | None = None
    tni: int | None = None
    severity: int = 1
    stall: float = 0.0
    credits: int = 8
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1 or None, got {self.count}")
        if self.severity < 1:
            raise ValueError(f"severity must be >= 1, got {self.severity}")
        if self.stall < 0.0:
            raise ValueError(f"stall must be >= 0, got {self.stall}")
        if self.kind in TIMING_KINDS and self.stall <= 0.0:
            raise ValueError(f"{self.kind} requires a positive stall time")
        if self.credits < 1:
            raise ValueError(f"credits must be >= 1, got {self.credits}")
        if self.phases is not None:
            object.__setattr__(self, "phases", tuple(self.phases))
            for ph in self.phases:
                if ph in EXEMPT_PHASES:
                    raise ValueError(
                        f"phase {ph!r} is exempt from message faults (the "
                        "migration drain protocol has no retry expectation)"
                    )

    def to_dict(self) -> dict:
        """JSON-ready form (defaults omitted for readable plans)."""
        out: dict = {"kind": self.kind}
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.count is not None:
            out["count"] = self.count
        if self.phases is not None:
            out["phases"] = list(self.phases)
        for name in ("src", "dst", "tni"):
            val = getattr(self, name)
            if val is not None:
                out[name] = val
        if self.severity != 1:
            out["severity"] = self.severity
        if self.stall:
            out["stall"] = self.stall
        if self.credits != 8:
            out["credits"] = self.credits
        if self.note:
            out["note"] = self.note
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        """Parse one spec; unknown keys are an error (plan typos bite)."""
        known = {
            "kind", "probability", "count", "phases", "src", "dst", "tni",
            "severity", "stall", "credits", "note",
        }
        extra = set(doc) - known
        if extra:
            raise ValueError(f"unknown FaultSpec field(s) {sorted(extra)}")
        kwargs = dict(doc)
        if "phases" in kwargs and kwargs["phases"] is not None:
            kwargs["phases"] = tuple(kwargs["phases"])
        return cls(**kwargs)


@dataclass(frozen=True)
class RetryPolicy:
    """Receiver-side robustness knobs of the policy layer.

    ``base_timeout`` is the first retry's modeled wait (simulated
    seconds, accounted as ``cat="retry"`` model spans); each further
    retry multiplies it by ``backoff``.  After ``max_retries`` the
    receiver escalates (:class:`~repro.faults.injector.RetryExhaustedError`);
    once more than ``fault_budget`` faults were injected the session
    escalates pre-emptively so the driver degrades to a sturdier
    pattern.
    """

    base_timeout: float = 1e-6
    backoff: float = 2.0
    max_retries: int = 8
    fault_budget: int | None = None

    def __post_init__(self) -> None:
        if self.base_timeout <= 0:
            raise ValueError(f"base_timeout must be > 0, got {self.base_timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.fault_budget is not None and self.fault_budget < 1:
            raise ValueError(
                f"fault_budget must be >= 1 or None, got {self.fault_budget}"
            )

    def to_dict(self) -> dict:
        """JSON-ready form (all fields, they are few)."""
        return {
            "base_timeout": self.base_timeout,
            "backoff": self.backoff,
            "max_retries": self.max_retries,
            "fault_budget": self.fault_budget,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RetryPolicy":
        known = {"base_timeout", "backoff", "max_retries", "fault_budget"}
        extra = set(doc) - known
        if extra:
            raise ValueError(f"unknown RetryPolicy field(s) {sorted(extra)}")
        return cls(**doc)


@dataclass(frozen=True)
class FaultPlan:
    """Seed + policy + fault schedule: one replayable chaos experiment."""

    seed: int = 0
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    faults: tuple[FaultSpec, ...] = ()
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def absorbable(self) -> bool:
        """Whether the retry layer can absorb every fault of this plan.

        True when no held message or deferred PUT outlives the retry
        horizon and no budget forces early escalation.  An absorbable
        plan must leave the final ghost region bit-identical to the
        fault-free run — the invariant ``selfcheck --faults`` enforces.
        """
        if self.policy.fault_budget is not None:
            return False
        return all(
            f.severity <= self.policy.max_retries
            for f in self.faults
            if f.kind not in TIMING_KINDS
        )

    def to_dict(self) -> dict:
        """JSON document form, tagged with the schema version."""
        out = {
            "schema": SCHEMA,
            "seed": self.seed,
            "policy": self.policy.to_dict(),
            "faults": [f.to_dict() for f in self.faults],
        }
        if self.note:
            out["note"] = self.note
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} document (schema={doc.get('schema')!r})"
            )
        known = {"schema", "seed", "policy", "faults", "note"}
        extra = set(doc) - known
        if extra:
            raise ValueError(f"unknown FaultPlan field(s) {sorted(extra)}")
        return cls(
            seed=int(doc.get("seed", 0)),
            policy=RetryPolicy.from_dict(doc.get("policy", {})),
            faults=tuple(FaultSpec.from_dict(f) for f in doc.get("faults", ())),
            note=doc.get("note", ""),
        )

    def save(self, path: str) -> None:
        """Serialize to JSON (the ``--faults`` file format)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a plan saved by :meth:`save` (or written by hand)."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


#: Per-axis plan templates the scenario fleet instantiates.  Every
#: template is **absorbable by construction** (severity well under the
#: default retry horizon, no fault budget), so the fault-absorption
#: battery may assert bit-identical ghosts for any scenario built from
#: one.  Keys are the values of the scenario ``fault`` axis.
_TEMPLATE_FAULTS: dict[str, FaultSpec] = {
    "drop": FaultSpec(
        kind="drop", probability=0.3, count=4, severity=2,
        note="lossy wire: retransmissions land within 2 polls",
    ),
    "delay": FaultSpec(
        kind="delay", probability=0.5, count=6, severity=1,
        note="late messages, one retry poll",
    ),
    "reorder": FaultSpec(
        kind="reorder", probability=0.5, count=6,
        note="mailbox arrival order scrambled",
    ),
    "tni-stall": FaultSpec(
        kind="tni-stall", probability=0.25, count=4, stall=2e-6,
        note="one TNI engine holds messages 2us",
    ),
    "vcq-credit": FaultSpec(
        kind="vcq-credit", probability=1.0, count=2, stall=1e-6, credits=4,
        note="descriptor credits exhausted every 4th injection",
    ),
    "inject-jitter": FaultSpec(
        kind="inject-jitter", probability=0.5, count=8, stall=5e-7,
        note="software injection jitter in [0, 0.5us)",
    ),
}

#: Fault-axis values a scenario spec may use (the absorbable subset —
#: the stale-PUT hazards are race-detector fixtures, not fleet axes).
TEMPLATE_KINDS = tuple(_TEMPLATE_FAULTS)


def template_plan(kind: str, seed: int = 0) -> FaultPlan:
    """Instantiate the absorbable plan template for one fault axis value.

    Raises ``ValueError`` for kinds without a template (e.g. the
    §3.4 stale-PUT hazards, which intentionally violate absorbability).
    """
    spec = _TEMPLATE_FAULTS.get(kind)
    if spec is None:
        raise ValueError(
            f"no plan template for fault kind {kind!r}; choose from {TEMPLATE_KINDS}"
        )
    plan = FaultPlan(seed=seed, faults=(spec,), note=f"fleet template: {kind}")
    assert plan.absorbable(), f"template {kind!r} must stay absorbable"
    return plan
