"""The fault injector: one seeded session consulted by every layer.

The module-level :data:`FAULTS` singleton mirrors the observability
design (``TRACER``/``METRICS``): it starts with **no active session**,
every instrumentation site guards on ``FAULTS.session is None`` (one
attribute read), and the functional and modeled paths are byte-identical
to the fault-free build until a :class:`~repro.faults.plan.FaultPlan`
is activated — the ``faults-off`` bench guard enforces it.

With a session active:

* the transport wraps payloads in sequence-numbered envelopes and asks
  :meth:`FaultSession.on_send` whether to deliver, hold (drop/delay),
  or shuffle the mailbox (reorder).  Held messages live in *limbo*
  until the receiver's retry polls release them; sequence numbers let
  the robust receive restore injection order, which is what keeps an
  absorbed fault run bit-identical to the fault-free run;
* the network simulator asks for injection jitter, VCQ-credit waits and
  TNI stalls, emitting each as a ``cat="fault"`` model span placed so
  the critical-path chain still partitions the round exactly;
* the RDMA engine and receive rings ask whether a PUT is still in
  flight; deferred PUTs land when fence/consume retries tick them.

Every injection, absorption, retry, degradation and escalation is
counted in :class:`FaultStats` and emitted as trace events/metrics so
``critpath`` and ``bench`` can attribute the cost of surviving faults.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Hashable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.faults.plan import (
    EXEMPT_PHASES,
    MESSAGE_KINDS,
    RDMA_KINDS,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.obs.metrics import METRICS
from repro.obs.telemetry import TELEMETRY
from repro.obs.trace import TRACER


class FaultError(RuntimeError):
    """Base of all fault-layer errors."""


class FaultEscalation(FaultError):
    """A fault the retry layer could not absorb; the driver may degrade."""


class RetryExhaustedError(FaultEscalation):
    """A receiver gave up after ``max_retries`` backoff polls."""


class FaultBudgetExceededError(FaultEscalation):
    """More faults were injected than the policy's budget tolerates."""


#: ``on_send`` verdicts (module constants so the transport can branch
#: without string comparisons).
DELIVER = 0
HOLD = 1
REORDER = 2


@dataclass
class FaultStats:
    """Session-level accounting, rendered by the CLI and asserted by tests."""

    injected: dict[str, int] = field(default_factory=dict)
    absorbed: int = 0
    retries: int = 0
    degradations: int = 0
    degraded_casualties: int = 0
    unabsorbed: int = 0

    def total_injected(self) -> int:
        """All faults fired so far, across kinds."""
        return sum(self.injected.values())


class _SpecState:
    """A spec plus its remaining firing budget (``None`` = unlimited)."""

    __slots__ = ("spec", "remaining")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.remaining: int | None = spec.count


@dataclass
class _HeldMessage:
    """One message sitting in limbo until its retry polls run out."""

    ticks: int
    seq: int
    payload: Any


@dataclass
class _DeferredPut:
    """One in-flight RDMA/ring PUT and the callback that lands it."""

    ticks: int
    land: Callable[[], None]


class FaultSession:
    """One activated plan: RNG stream, limbo stores, and statistics."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.policy: RetryPolicy = plan.policy
        self.rng = random.Random(plan.seed)
        self._specs = [_SpecState(s) for s in plan.faults]
        self._by_kind: dict[str, list[_SpecState]] = {}
        for st in self._specs:
            self._by_kind.setdefault(st.spec.kind, []).append(st)
        # Per-plane arming flags: the envelope protocol and RDMA deferral
        # checks only pay their cost when the plan can actually fire on
        # that plane (the faults-off bench guard measures the idle cost).
        self.message_faults = any(s.kind in MESSAGE_KINDS for s in plan.faults)
        self.rdma_faults = any(s.kind in RDMA_KINDS for s in plan.faults)
        self.stats = FaultStats()
        # Held messages per mailbox key (src, dst, tag).
        self._limbo: dict[tuple[int, int, Hashable], list[_HeldMessage]] = {}
        # Deferred RDMA/ring PUTs awaiting fence/consume polls.
        self._deferred: list[_DeferredPut] = []
        # Per-VCQ injection counters for credit exhaustion.
        self._vcq_count: dict[tuple[int, int, int], int] = {}
        self.closed = False

    # -- spec matching ------------------------------------------------------
    def _match(
        self,
        kind: str,
        phase: str | None = None,
        src: int | None = None,
        dst: int | None = None,
        tni: int | None = None,
        draw: bool = True,
    ) -> FaultSpec | None:
        """First spec of ``kind`` whose filters pass and whose die roll hits.

        The probability draw happens on every filter match (not only on
        fire) so the RNG stream advances in deterministic call order —
        the replay property depends on it.
        """
        for st in self._by_kind.get(kind, ()):
            spec = st.spec
            if st.remaining == 0:
                continue
            if spec.phases is not None and phase not in spec.phases:
                continue
            if spec.src is not None and spec.src != src:
                continue
            if spec.dst is not None and spec.dst != dst:
                continue
            if spec.tni is not None and spec.tni != tni:
                continue
            if draw and spec.probability < 1.0 and self.rng.random() >= spec.probability:
                continue
            if st.remaining is not None:
                st.remaining -= 1
            return spec
        return None

    def _note_injected(self, kind: str, **args: int | str) -> None:
        self.stats.injected[kind] = self.stats.injected.get(kind, 0) + 1
        TELEMETRY.emit("fault-injected", fault=kind, **args)
        if METRICS.enabled:
            METRICS.counter("faults_injected_total", kind=kind).inc()
        if TRACER.enabled:
            TRACER.instant(f"fault-{kind}", cat="fault", track="faults", kind=kind, **args)

    # -- message plane (transport hooks) ------------------------------------
    def on_send(
        self, src: int, dst: int, tag: Hashable, phase: str
    ) -> tuple[int, int, str] | None:
        """Fault verdict for one send; ``None`` means deliver untouched.

        Returns ``(HOLD, ticks, kind)`` for drop/delay or
        ``(REORDER, 0, kind)``; migration traffic is exempt (see
        :data:`~repro.faults.plan.EXEMPT_PHASES`).
        """
        if phase in EXEMPT_PHASES:
            return None
        spec = self._match("drop", phase=phase, src=src, dst=dst)
        if spec is not None:
            return (HOLD, spec.severity, "drop")
        spec = self._match("delay", phase=phase, src=src, dst=dst)
        if spec is not None:
            return (HOLD, spec.severity, "delay")
        spec = self._match("reorder", phase=phase, src=src, dst=dst)
        if spec is not None:
            return (REORDER, 0, "reorder")
        return None

    def hold(
        self,
        key: tuple[int, int, Hashable],
        seq: int,
        payload: Any,
        ticks: int,
        kind: str,
    ) -> None:
        """Move one message into limbo for ``ticks`` retry polls."""
        self._limbo.setdefault(key, []).append(_HeldMessage(ticks, seq, payload))
        self._note_injected(kind, src=key[0], dst=key[1])

    def note_reorder(self, key: tuple[int, int, Hashable]) -> None:
        """Count a fired reorder (absorbed immediately by seq restore)."""
        self._note_injected("reorder", src=key[0], dst=key[1])
        self.stats.absorbed += 1
        if METRICS.enabled:
            METRICS.counter("faults_absorbed_total").inc()

    def tick(self, key: tuple[int, int, Hashable]) -> list[tuple[int, Any]]:
        """One receiver retry poll: age this mailbox's limbo, return releases."""
        entries = self._limbo.get(key)
        if not entries:
            return []
        released: list[tuple[int, Any]] = []
        kept: list[_HeldMessage] = []
        for entry in entries:
            entry.ticks -= 1
            if entry.ticks <= 0:
                released.append((entry.seq, entry.payload))
                self.stats.absorbed += 1
                if METRICS.enabled:
                    METRICS.counter("faults_absorbed_total").inc()
            else:
                kept.append(entry)
        if kept:
            self._limbo[key] = kept
        else:
            del self._limbo[key]
        return released

    # -- retry/budget accounting --------------------------------------------
    def check_budget(self) -> None:
        """Raise when the plan's fault budget is spent (degradation trigger)."""
        budget = self.policy.fault_budget
        if budget is not None and self.stats.total_injected() > budget:
            raise FaultBudgetExceededError(
                f"{self.stats.total_injected()} faults injected exceeds "
                f"budget {budget}"
            )

    def note_retry(self, phase: str) -> None:
        """Count one receiver retry poll (metric keyed by phase)."""
        self.stats.retries += 1
        TELEMETRY.emit("retry", phase=phase)
        if METRICS.enabled:
            METRICS.counter("fault_retries_total", phase=phase).inc()

    # -- simulated-machine timing hooks --------------------------------------
    def injection_jitter(self, rank: int, thread: int, tni: int) -> float:
        """Extra software time before one injection (0.0 = no fault)."""
        spec = self._match("inject-jitter", src=rank, tni=tni)
        if spec is None:
            return 0.0
        jitter = spec.stall * self.rng.random()
        self._note_injected("inject-jitter", rank=rank, thread=thread, tni=tni)
        self.stats.absorbed += 1  # timing faults cost only modeled time
        return jitter

    def vcq_credit_wait(self, rank: int, thread: int, tni: int) -> float:
        """Stall when this VCQ's descriptor credits run out."""
        states = self._by_kind.get("vcq-credit")
        if not states:
            return 0.0
        key = (rank, thread, tni)
        self._vcq_count[key] = self._vcq_count.get(key, 0) + 1
        for st in states:
            spec = st.spec
            if st.remaining == 0:
                continue
            if spec.src is not None and spec.src != rank:
                continue
            if spec.tni is not None and spec.tni != tni:
                continue
            if self._vcq_count[key] % spec.credits:
                continue
            if st.remaining is not None:
                st.remaining -= 1
            self._note_injected("vcq-credit", rank=rank, thread=thread, tni=tni)
            self.stats.absorbed += 1
            return spec.stall
        return 0.0

    def tni_stall(self, tni: int) -> float:
        """Extra engine hold time for one message on ``tni``."""
        spec = self._match("tni-stall", tni=tni)
        if spec is None:
            return 0.0
        self._note_injected("tni-stall", tni=tni)
        self.stats.absorbed += 1
        return spec.stall

    # -- RDMA plane -----------------------------------------------------------
    def rdma_defer(self, kind: str, rank: int) -> int:
        """Ticks a PUT from ``rank`` stays in flight (0 = lands now)."""
        if not self.rdma_faults:
            return 0
        spec = self._match(kind, src=rank)
        return spec.severity if spec is not None else 0

    def defer(self, ticks: int, land: Callable[[], None], kind: str) -> None:
        """Register an in-flight PUT that lands after ``ticks`` polls."""
        self._deferred.append(_DeferredPut(ticks, land))
        self._note_injected(kind)

    def pending_deferred(self) -> int:
        """PUTs registered but not yet landed."""
        return len(self._deferred)

    def release_tick(self) -> int:
        """One fence/consume poll: age deferred PUTs, land the due ones."""
        if not self._deferred:
            return 0
        landed = 0
        kept: list[_DeferredPut] = []
        for entry in self._deferred:
            entry.ticks -= 1
            if entry.ticks <= 0:
                entry.land()
                landed += 1
                self.stats.absorbed += 1
                if METRICS.enabled:
                    METRICS.counter("faults_absorbed_total").inc()
            else:
                kept.append(entry)
        self._deferred = kept
        return landed

    # -- degradation / teardown ----------------------------------------------
    def on_degrade(self, from_pattern: str, to_pattern: str) -> None:
        """The driver fell back a tier: write off in-flight casualties."""
        casualties = sum(len(v) for v in self._limbo.values()) + len(self._deferred)
        self.stats.degradations += 1
        self.stats.degraded_casualties += casualties
        self._limbo.clear()
        self._deferred.clear()
        TELEMETRY.emit(
            "degradation",
            from_pattern=from_pattern,
            to_pattern=to_pattern,
            casualties=casualties,
        )
        if METRICS.enabled:
            METRICS.counter(
                "fault_degradations_total", to=to_pattern
            ).inc()
        if TRACER.enabled:
            TRACER.instant(
                "degrade", cat="fault", track="faults",
                from_pattern=from_pattern, to_pattern=to_pattern,
            )

    def close(self) -> None:
        """End the session; anything still in limbo is unabsorbed."""
        if self.closed:
            return
        leftovers = sum(len(v) for v in self._limbo.values()) + len(self._deferred)
        self.stats.unabsorbed += leftovers
        self._limbo.clear()
        self._deferred.clear()
        self.closed = True

    def render(self) -> str:
        """Human-readable session summary (printed by the CLI)."""
        s = self.stats
        lines = [
            "fault-injection session:",
            f"  injected   {s.total_injected()}"
            + (
                " (" + ", ".join(f"{k}={n}" for k, n in sorted(s.injected.items())) + ")"
                if s.injected
                else ""
            ),
            f"  absorbed   {s.absorbed} (over {s.retries} retries)",
            f"  degraded   {s.degradations} tier change(s), "
            f"{s.degraded_casualties} in-flight casualt(ies) written off",
            f"  unabsorbed {s.unabsorbed}",
        ]
        return "\n".join(lines)


class FaultInjector:
    """Process-wide injector holding at most one active session."""

    def __init__(self) -> None:
        self.session: FaultSession | None = None

    @property
    def active(self) -> bool:
        return self.session is not None

    def activate(self, plan: FaultPlan) -> FaultSession:
        """Start a session; errors if one is already active."""
        if self.session is not None:
            raise FaultError("a fault session is already active")
        self.session = FaultSession(plan)
        return self.session

    def deactivate(self) -> FaultSession | None:
        """End the active session (tallying unabsorbed leftovers)."""
        session = self.session
        if session is not None:
            session.close()
        self.session = None
        return session

    @contextmanager
    def inject(self, plan: FaultPlan) -> Iterator[FaultSession]:
        """Scoped session: ``with FAULTS.inject(plan) as session: ...``."""
        session = self.activate(plan)
        try:
            yield session
        finally:
            self.deactivate()


#: The process-wide injector.  Never replaced, only (de)activated, so
#: instrumented modules may safely hold a reference to it.
FAULTS = FaultInjector()
