"""repro.faults — deterministic, replayable fault injection.

The chaos layer for the reproduction: a seed-driven
:class:`~repro.faults.plan.FaultPlan` perturbs the message plane
(drop/delay/reorder), the simulated machine timeline (TNI stalls,
VCQ-credit exhaustion, injection jitter), and the one-sided RDMA plane
(stale windows and receive rings — the §3.4 round-robin hazard), while
the robustness policy layer in :mod:`repro.core.exchange_base` retries
with exponential backoff and degrades fine-p2p → coarse-p2p →
three-stage when a plan exceeds its budget.

Typical use::

    from repro.faults import FAULTS, FaultPlan

    plan = FaultPlan.load("examples/faultplan_smoke.json")
    with FAULTS.inject(plan) as session:
        sim.run(20)
    print(session.render())

or from the CLI: ``python -m repro --selfcheck --faults plan.json``.
See docs/fault_injection.md for the taxonomy, schema, and ladder.
"""

from __future__ import annotations

from repro.faults.injector import (
    FAULTS,
    FaultBudgetExceededError,
    FaultError,
    FaultEscalation,
    FaultInjector,
    FaultSession,
    FaultStats,
    RetryExhaustedError,
)
from repro.faults.plan import (
    EXEMPT_PHASES,
    FAULT_KINDS,
    MESSAGE_KINDS,
    RDMA_KINDS,
    SCHEMA,
    TIMING_KINDS,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

__all__ = [
    "FAULTS",
    "FaultBudgetExceededError",
    "FaultError",
    "FaultEscalation",
    "FaultInjector",
    "FaultPlan",
    "FaultSession",
    "FaultSpec",
    "FaultStats",
    "RetryExhaustedError",
    "RetryPolicy",
    "EXEMPT_PHASES",
    "FAULT_KINDS",
    "MESSAGE_KINDS",
    "TIMING_KINDS",
    "RDMA_KINDS",
    "SCHEMA",
]
