"""Static + dynamic protocol analysis for the exchange/RDMA stack.

Two cooperating passes guard the paper's protocol invariants:

* :mod:`repro.analysis.commlint` — AST/introspection lint (``CLxxx``)
  over the communication sources, no simulation required;
* :mod:`repro.analysis.hb` — vector-clock happens-before race detector
  (``HBxxx``) over PR-1 trace events from an instrumented run.

Both produce :class:`repro.analysis.findings.AnalysisReport` and are
driven by ``repro analyze`` (see :mod:`repro.analysis.cli`).
"""

from repro.analysis.findings import AnalysisReport, Finding

__all__ = ["AnalysisReport", "Finding"]
