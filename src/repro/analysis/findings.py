"""Findings and reports shared by commlint and the race detector.

Every diagnostic the analysis layer produces — a static protocol-rule
violation (``CLxxx``) or a dynamic happens-before hazard (``HBxxx``) —
is a :class:`Finding` with a stable rule ID, a location, and a one-line
message.  The :class:`AnalysisReport` aggregates them and renders the
two formats the tooling consumes: a human text listing (the default CLI
output) and a versioned JSON document (``repro-analysis/1``) for CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: JSON schema tag written by :meth:`AnalysisReport.to_dict`.
SCHEMA = "repro-analysis/1"

#: Finding severities, in escalation order.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation or a detected hazard."""

    rule: str  # stable ID: "CL001", "HB001", ...
    message: str
    path: str = "<runtime>"  # source file, or "<trace>" for dynamic findings
    line: int = 0  # 1-based; 0 when no source anchor exists
    severity: str = "error"
    detail: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def location(self) -> str:
        """``path:line`` anchor (path only when no line is known)."""
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_dict(self) -> dict:
        """JSON-ready form."""
        out = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class AnalysisReport:
    """All findings of one analysis run plus what was analyzed."""

    tool: str  # "commlint" | "race-detector" | "analyze"
    findings: list[Finding] = field(default_factory=list)
    files_analyzed: list[str] = field(default_factory=list)
    events_analyzed: int = 0
    suppressed: int = 0

    def add(self, finding: Finding) -> None:
        """Record one finding."""
        self.findings.append(finding)

    def extend(self, other: "AnalysisReport") -> None:
        """Fold another report's findings and coverage into this one."""
        self.findings.extend(other.findings)
        self.files_analyzed.extend(
            f for f in other.files_analyzed if f not in self.files_analyzed
        )
        self.events_analyzed += other.events_analyzed
        self.suppressed += other.suppressed

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding was recorded."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def clean(self) -> bool:
        """True when no finding of any severity was recorded."""
        return not self.findings

    def normalize(self) -> None:
        """Sort and dedupe findings so merged reports are byte-stable.

        Merging commlint + race-detector + protomc findings must yield
        the same JSON no matter which tool ran first (or twice): order
        by ``(rule, location, message)`` and drop exact repeats of that
        key.  Coverage lists are normalized the same way.
        """
        seen: set[tuple[str, str, int, str]] = set()
        unique: list[Finding] = []
        for f in sorted(
            self.findings,
            key=lambda f: (f.rule, f.path, f.line, f.message, f.severity, f.detail),
        ):
            key = (f.rule, f.path, f.line, f.message)
            if key in seen:
                continue
            seen.add(key)
            unique.append(f)
        self.findings = unique
        self.files_analyzed = sorted(set(self.files_analyzed))

    def by_rule(self) -> dict[str, int]:
        """Finding count per rule ID (sorted keys)."""
        out: dict[str, int] = {}
        for f in sorted(self.findings, key=lambda f: f.rule):
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def to_dict(self) -> dict:
        """Versioned JSON document (``repro-analysis/1``)."""
        return {
            "schema": SCHEMA,
            "tool": self.tool,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "findings": len(self.findings),
                "errors": sum(f.severity == "error" for f in self.findings),
                "warnings": sum(f.severity == "warning" for f in self.findings),
                "by_rule": self.by_rule(),
                "files_analyzed": len(self.files_analyzed),
                "events_analyzed": self.events_analyzed,
                "suppressed": self.suppressed,
            },
        }

    def render_json(self) -> str:
        """The JSON document as an indented string."""
        return json.dumps(self.to_dict(), indent=2)

    def render(self) -> str:
        """Human-readable listing (the default CLI output)."""
        lines = [f"{self.tool}:"]
        for f in sorted(self.findings, key=lambda f: (f.path, f.line, f.rule)):
            lines.append(
                f"  {f.location()}: {f.severity}: {f.rule}: {f.message}"
            )
            if f.detail:
                lines.append(f"      {f.detail}")
        coverage = []
        if self.files_analyzed:
            coverage.append(f"{len(self.files_analyzed)} file(s)")
        if self.events_analyzed:
            coverage.append(f"{self.events_analyzed} trace event(s)")
        scope = " over " + ", ".join(coverage) if coverage else ""
        suffix = f" ({self.suppressed} suppressed)" if self.suppressed else ""
        lines.append(f"  {len(self.findings)} finding(s){scope}{suffix}")
        return "\n".join(lines)
