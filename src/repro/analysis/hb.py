"""Vector-clock happens-before race detector for the RDMA plane.

One-sided communication has no receive call to anchor ordering on: a PUT
lands whenever the NIC gets to it, and the §3.4 discipline (pre-sized
registered buffers, 4-deep receive rings, dirty-flag polling, fences)
exists precisely to order every *read* of a remote-written buffer after
the *land* of the write.  The GROMACS NVSHMEM redesign (PAPERS.md) hit
the same class of bug — remote writes landing in still-live buffers.

This detector reconstructs that ordering from a trace and flags the two
§3.4 hazard shapes the fault layer can inject:

* **HB001 — stale read**: memory was observed while a PUT targeting it
  was still in flight.  Evidence: a ring consume overlapping an
  unlanded put (``rdma-stale``/``ring-stale`` defer the land), a
  consume of a never-written slot, a fence entered with PUTs pending,
  or a put that never landed before the trace ended.
* **HB002 — overwrite before read**: a ring slot was acquired for
  writing while its previous write was still unconsumed (the exact
  failure a ring depth < 4 produces under the border->forward->reverse
  dependency chain).

Events come from :mod:`repro.obs.hbevents` (``cat="hb"`` instants) plus
the transport's per-message ``msg``/``recv`` instants, which contribute
message synchronization edges.  The detector maintains one vector clock
per actor (``rank{r}`` tracks, the ``nic``, the ``comm`` fence track):
message delivery joins the sender's clock into the receiver, a
successful consume joins the slot's write clock into the reader (the
paper's §3.5.1 dirty-flag poll), and a land joins the issuing put's
clock into the NIC.  A read is safe exactly when the land of every
overlapping write is in its causal past; reads that cannot be so
ordered are the findings.

Input is either the live :data:`~repro.obs.trace.TRACER`, or an
exported Chrome trace file (``repro analyze --trace run.json``) — the
export preserves every field the detector needs.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.findings import AnalysisReport, Finding

#: The dynamic-rule catalog: stable ID -> one-line description.
HB_RULES: dict[str, str] = {
    "HB001": "stale read: memory observed before an in-flight RDMA PUT landed (§3.4)",
    "HB002": "overwrite before read: ring slot rewritten while unconsumed (§3.4)",
}


@dataclass(frozen=True)
class TraceEvent:
    """One instant event, normalized from the tracer or a Chrome export."""

    name: str
    cat: str
    track: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TraceSpan:
    """One wall-clock span, used to anchor hazards to protocol phases."""

    name: str
    cat: str
    track: str
    ts: float
    dur: float

    @property
    def end(self) -> float:
        return self.ts + self.dur


class VectorClock:
    """A per-actor logical clock: ``{actor: count}`` with join/tick."""

    __slots__ = ("counts",)

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: dict[str, int] = dict(counts) if counts else {}

    def tick(self, actor: str) -> None:
        """Advance ``actor``'s own component."""
        self.counts[actor] = self.counts.get(actor, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Component-wise maximum (a synchronization edge arriving)."""
        for actor, count in other.counts.items():
            if count > self.counts.get(actor, 0):
                self.counts[actor] = count

    def copy(self) -> "VectorClock":
        """Snapshot this clock (joins must not alias the source counts)."""
        return VectorClock(self.counts)

    def dominates(self, other: "VectorClock") -> bool:
        """True when ``other`` is in this clock's causal past."""
        return all(
            self.counts.get(actor, 0) >= count
            for actor, count in other.counts.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{a}:{c}" for a, c in sorted(self.counts.items()))
        return f"VC({inner})"


@dataclass
class _PendingPut:
    """A PUT that was issued but whose land has not been seen yet."""

    put: int
    res: str
    lo: int
    n: int
    actor: str
    clock: VectorClock
    ts: float


def _overlaps(write: _PendingPut, res: str, lo: int | None, n: int | None) -> bool:
    """Whether a read of ``res[lo:lo+n]`` touches ``write``'s target.

    Ring resources nest (``ring7`` covers ``ring7/slot2``); region
    resources (``stag{N}``) compare element ranges.
    """
    if write.res != res and not res.startswith(write.res + "/") and not write.res.startswith(res + "/"):
        return False
    if lo is None or n is None or write.n == 0:
        return True
    return write.lo < lo + n and lo < write.lo + write.n


def events_from_tracer(tracer: Any = None) -> tuple[list[TraceEvent], list[TraceSpan]]:
    """Normalize the live tracer's instants and wall spans."""
    from repro.obs.trace import TRACER, WALL

    tracer = tracer if tracer is not None else TRACER
    events = [
        TraceEvent(e.name, e.cat, e.track, e.ts, dict(e.args))
        for e in tracer.instants
    ]
    spans = [
        TraceSpan(s.name, s.cat, s.track, s.ts, s.dur)
        for s in tracer.spans
        if s.clock == WALL
    ]
    return events, spans


def events_from_chrome(doc: dict) -> tuple[list[TraceEvent], list[TraceSpan]]:
    """Re-parse an exported Chrome trace document (wall process only).

    The export maps tracks to numbered threads with ``thread_name``
    metadata; instants keep their args verbatim, so the detector sees
    the same stream a live run produces.
    """
    tracks: dict[tuple[int, int], str] = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[(ev["pid"], ev["tid"])] = ev["args"]["name"]
    events: list[TraceEvent] = []
    spans: list[TraceSpan] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("pid") != 1:  # pid 1 = the wall-clock process
            continue
        track = tracks.get((ev["pid"], ev.get("tid", 0)), "main")
        if ev.get("ph") == "i":
            events.append(
                TraceEvent(
                    ev["name"], ev.get("cat", ""), track,
                    ev["ts"] / 1e6, dict(ev.get("args", {})),
                )
            )
        elif ev.get("ph") == "X":
            spans.append(
                TraceSpan(
                    ev["name"], ev.get("cat", ""), track,
                    ev["ts"] / 1e6, ev.get("dur", 0.0) / 1e6,
                )
            )
    # The tracer's instants list is program order; exported events keep
    # that order, but sort defensively by timestamp for foreign traces.
    events.sort(key=lambda e: e.ts)
    return events, spans


def _enclosing_span(spans: list[TraceSpan], ts: float) -> str:
    """Name of the innermost protocol span covering ``ts`` (or '')."""
    best: TraceSpan | None = None
    for span in spans:
        if span.cat not in ("comm", "rdma", "retry", "stage"):
            continue
        if span.ts <= ts <= span.end:
            if best is None or span.ts >= best.ts:
                best = span
    return best.name if best else ""


class _Detector:
    """One pass over the event stream, accumulating hazards."""

    def __init__(self, spans: list[TraceSpan], report: AnalysisReport) -> None:
        self.spans = spans
        self.report = report
        self.clocks: defaultdict[str, VectorClock] = defaultdict(VectorClock)
        self.pending: dict[tuple[str, int], _PendingPut] = {}
        self.slot_dirty: dict[str, bool] = {}
        self.slot_write_clock: dict[str, VectorClock] = {}
        self.msg_queues: defaultdict[tuple[int, int, str], deque[VectorClock]] = (
            defaultdict(deque)
        )
        self.flagged: set[tuple] = set()

    # -- hazard emission -------------------------------------------------
    def _flag(self, key: tuple, finding: Finding) -> None:
        if key in self.flagged:
            return
        self.flagged.add(key)
        self.report.add(finding)

    def _span_detail(self, ts: float, extra: str) -> str:
        span = _enclosing_span(self.spans, ts)
        where = f"during span '{span}'" if span else "outside any protocol span"
        return f"{where}; {extra}" if extra else where

    # -- event handlers --------------------------------------------------
    def feed(self, ev: TraceEvent) -> None:
        actor = ev.track
        self.clocks[actor].tick(actor)
        handler = {
            "msg": self._on_msg,
            "recv": self._on_recv,
            "hb-put": self._on_put,
            "hb-land": self._on_land,
            "hb-write": self._on_write,
            "hb-read": self._on_read,
            "hb-fence": self._on_fence,
        }.get(ev.name)
        if handler is not None:
            handler(ev)

    def _on_msg(self, ev: TraceEvent) -> None:
        src, dst = ev.args.get("src"), ev.args.get("dst")
        if src is None or dst is None:
            return
        key = (int(src), int(dst), str(ev.args.get("phase", "")))
        self.msg_queues[key].append(self.clocks[f"rank{src}"].copy())

    def _on_recv(self, ev: TraceEvent) -> None:
        src, dst = ev.args.get("src"), ev.args.get("dst")
        if src is None or dst is None:
            return
        key = (int(src), int(dst), str(ev.args.get("phase", "")))
        queue = self.msg_queues.get(key)
        if queue:
            self.clocks[ev.track].join(queue.popleft())

    def _on_put(self, ev: TraceEvent) -> None:
        res = str(ev.args.get("res", ""))
        put = int(ev.args.get("put", 0))
        self.pending[(res, put)] = _PendingPut(
            put=put,
            res=res,
            lo=int(ev.args.get("lo", 0)),
            n=int(ev.args.get("n", 0)),
            actor=ev.track,
            clock=self.clocks[ev.track].copy(),
            ts=ev.ts,
        )

    def _on_land(self, ev: TraceEvent) -> None:
        res = str(ev.args.get("res", ""))
        put = int(ev.args.get("put", 0))
        write = self.pending.pop((res, put), None)
        if write is not None:
            self.clocks[ev.track].join(write.clock)

    def _on_write(self, ev: TraceEvent) -> None:
        res = str(ev.args.get("res", ""))
        if self.slot_dirty.get(res):
            self._flag(
                ("HB002", res, ev.ts),
                Finding(
                    rule="HB002",
                    path="<trace>",
                    message=f"{ev.track} rewrote {res} while its previous "
                    "write was unconsumed",
                    detail=self._span_detail(
                        ev.ts,
                        "the 4-deep round-robin ring exists so adjacent "
                        "stages never reuse a live slot (paper Fig. 10)",
                    ),
                ),
            )
        if int(ev.args.get("ok", 1)):
            self.slot_dirty[res] = True
            self.slot_write_clock[res] = self.clocks[ev.track].copy()

    def _on_read(self, ev: TraceEvent) -> None:
        res = str(ev.args.get("res", ""))
        ok = int(ev.args.get("ok", 1))
        reader = self.clocks[ev.track]
        hit_pending = False
        for write in list(self.pending.values()):
            if not _overlaps(write, res, None, None):
                continue
            hit_pending = True
            self._flag(
                ("HB001", write.res, write.put),
                Finding(
                    rule="HB001",
                    path="<trace>",
                    message=f"{ev.track} observed {res} while put #{write.put} "
                    f"from {write.actor} toward {write.res} was still in "
                    "flight",
                    detail=self._span_detail(
                        ev.ts,
                        "consume found the slot clean"
                        if not ok
                        else "no happens-before edge orders the land "
                        "before this read",
                    ),
                ),
            )
        if ok:
            self.slot_dirty[res] = False
            write_clock = self.slot_write_clock.get(res)
            if write_clock is not None:
                # The dirty-flag poll (§3.5.1) is the acquire edge.
                reader.join(write_clock)
        elif not hit_pending:
            self._flag(
                ("HB001", res, "desync"),
                Finding(
                    rule="HB001",
                    path="<trace>",
                    message=f"{ev.track} consumed {res} with no matching "
                    "write in flight (cursor desync)",
                    detail=self._span_detail(ev.ts, ""),
                ),
            )

    def _on_fence(self, ev: TraceEvent) -> None:
        stage = str(ev.args.get("stage", ""))
        for write in self.pending.values():
            self._flag(
                ("HB001", write.res, write.put),
                Finding(
                    rule="HB001",
                    path="<trace>",
                    message=f"fence at stage '{stage}' entered with put "
                    f"#{write.put} from {write.actor} toward {write.res} "
                    f"[{write.lo}, {write.lo + write.n}) still in flight",
                    detail=self._span_detail(
                        ev.ts,
                        "readers past the fence would observe the previous "
                        "epoch without the retry loop (paper §3.4)",
                    ),
                ),
            )

    def finish(self, end_ts: float) -> None:
        """Flag puts that never landed before the trace ended."""
        for write in self.pending.values():
            self._flag(
                ("HB001", write.res, write.put, "lost"),
                Finding(
                    rule="HB001",
                    path="<trace>",
                    message=f"put #{write.put} from {write.actor} toward "
                    f"{write.res} never landed before the trace ended",
                    detail=self._span_detail(end_ts, ""),
                ),
            )


def detect_races(
    tracer: Any = None,
    *,
    events: list[TraceEvent] | None = None,
    spans: list[TraceSpan] | None = None,
) -> AnalysisReport:
    """Run the happens-before analysis; returns the hazard report.

    Pass nothing to analyze the live global tracer, or ``events``/
    ``spans`` (e.g. from :func:`events_from_chrome`) for a saved trace.
    """
    if events is None:
        events, tracer_spans = events_from_tracer(tracer)
        spans = tracer_spans if spans is None else spans
    spans = spans or []
    report = AnalysisReport(tool="race-detector")
    detector = _Detector(spans, report)
    relevant = 0
    for ev in events:
        if ev.cat in ("hb", "msg", "recv"):
            relevant += 1
            detector.feed(ev)
    detector.finish(events[-1].ts if events else 0.0)
    report.events_analyzed = relevant
    return report


def detect_races_in_file(path: str) -> AnalysisReport:
    """Analyze an exported Chrome trace file."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events, spans = events_from_chrome(doc)
    report = detect_races(events=events, spans=spans)
    report.files_analyzed.append(path)
    return report
