"""``repro analyze`` — drive commlint and the race detector.

Usage (as a subcommand of ``python -m repro``)::

    python -m repro analyze                      # full analysis, text report
    python -m repro analyze --json               # machine-readable output
    python -m repro analyze --strict             # exit 1 on ANY finding
    python -m repro analyze --paths src/foo.py   # lint specific sources
    python -m repro analyze --trace run.json     # race-detect a saved trace
    python -m repro analyze --faults plan.json   # probe run under a plan

By default the command runs both passes: commlint (static + live
introspection) over the communication stack, and the happens-before
detector over a short traced probe run of every exchange variant.  On a
healthy tree both report zero findings and the exit code is 0; the CI
``lint-and-analyze`` job runs ``--strict`` on every push.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.analysis.findings import AnalysisReport

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan

#: (pattern, rdma) probe matrix for the dynamic pass — every exchange
#: variant the self-check battery also exercises.
PROBE_VARIANTS: tuple[tuple[str, bool], ...] = (
    ("3stage", False),
    ("p2p", True),
    ("parallel-p2p", True),
)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``analyze`` subcommand."""
    p = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Static (commlint) + dynamic (happens-before) protocol analysis.",
    )
    p.add_argument(
        "--paths", nargs="+", default=None, metavar="PATH",
        help="files/directories for commlint (default: the exchange/RDMA stack)",
    )
    p.add_argument(
        "--no-introspect", action="store_true",
        help="skip the live-module introspective checks (pure AST lint)",
    )
    p.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the race-detector probe runs",
    )
    p.add_argument(
        "--trace", metavar="TRACE.json", default=None,
        help="race-detect an exported Chrome trace instead of probe runs",
    )
    p.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="run the dynamic probe under a FaultPlan (hazards expected: "
        "the detector should flag the plan's §3.4 windows)",
    )
    p.add_argument(
        "--steps", type=int, default=6,
        help="probe run length in MD steps (default 6)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="also model-check the probe protocol variants (protomc P1-P4; "
        "run `python -m repro verify` for the whole fleet)",
    )
    p.add_argument("--json", action="store_true", help="emit the JSON report")
    p.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on any finding, warnings included",
    )
    return p


def _verify_probe() -> AnalysisReport:
    """Model-check every probe exchange variant on a small rank grid."""
    from repro.analysis.commlint import CommProfile
    from repro.analysis.protomc.checker import findings_from, verify_model
    from repro.analysis.protomc.extract import model_from_profile

    report = AnalysisReport(tool="protomc")
    results = []
    for pattern, rdma in PROBE_VARIANTS:
        profile = CommProfile(
            label=f"probe/{pattern}{'+rdma' if rdma else ''}",
            sub_box_edge=3.36, rcomm=2.8, density=0.8442, rdma=rdma,
        )
        results.append(verify_model(model_from_profile(profile, (2, 2, 2), pattern)))
        report.files_analyzed.append(f"<verify:{pattern}{'+rdma' if rdma else ''}>")
    for finding in findings_from(results):
        report.add(finding)
    return report


def _dynamic_probe(plan: FaultPlan | None = None, steps: int = 6) -> AnalysisReport:
    """Race-detect short traced runs of every exchange variant."""
    from repro.analysis.hb import detect_races
    from repro.faults.injector import FAULTS
    from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
    from repro.md.potentials import LennardJones
    from repro.md.simulation import Simulation, SimulationConfig
    from repro.obs import observe

    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice((4, 4, 4), edge)
    v = maxwell_velocities(x.shape[0], 1.44, seed=7)

    merged = AnalysisReport(tool="race-detector")
    for pattern, rdma in PROBE_VARIANTS:
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern=pattern, rdma=rdma, neighbor_every=3
        )
        with observe(metrics=False) as (tracer, _):
            sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
            if plan is not None:
                with FAULTS.inject(plan):
                    sim.run(steps)
            else:
                sim.run(steps)
            probe = detect_races(tracer)
        merged.extend(probe)
        merged.files_analyzed.append(f"<probe:{pattern}{'+rdma' if rdma else ''}>")
    return merged


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro analyze``; returns the exit code."""
    args = build_parser().parse_args(argv)

    from repro.analysis.commlint import run_commlint

    combined = AnalysisReport(tool="analyze")
    commlint = run_commlint(
        paths=args.paths, introspect=not args.no_introspect
    )
    combined.extend(commlint)

    dynamic: AnalysisReport | None = None
    if args.trace is not None:
        from repro.analysis.hb import detect_races_in_file

        dynamic = detect_races_in_file(args.trace)
    elif not args.no_dynamic:
        plan = None
        if args.faults is not None:
            from repro.faults.plan import FaultPlan

            try:
                plan = FaultPlan.load(args.faults)
            except (OSError, ValueError) as exc:
                print(f"error: cannot load fault plan {args.faults!r}: {exc}")
                return 2
        dynamic = _dynamic_probe(plan, steps=args.steps)
    if dynamic is not None:
        combined.extend(dynamic)
    if args.verify:
        combined.extend(_verify_probe())

    # Byte-stable output: merged findings sorted + deduped no matter
    # which pass produced them (or in what order).
    combined.normalize()

    if args.json:
        print(combined.render_json())
    else:
        print(combined.render())
    if args.strict:
        return 0 if combined.clean else 1
    return 0 if combined.ok else 1
