"""commlint — static protocol-invariant checks for the exchange/RDMA stack.

The paper's speedup rests on protocol invariants that are easy to break
silently in review: ring depth 4 (§3.4), one CQ per TNI per rank with 24
distinct CQs per node (§3.3), Newton-symmetric send/recv plans (§3.1),
RDMA targets that were actually exchanged during the border stage, and
buffers sized from the analytic ghost maximum (§3.4).  commlint verifies
them *without running a simulation*, in two cooperating halves:

* **static** — an AST pass over the communication sources (``core/``,
  ``machine/`` and the stage-order call sites in ``md/``) that flags
  syntactic violations: literal ring depths below 4, duplicated literal
  CQ bindings, out-of-order stage calls, asymmetric literal offset
  tables, RDMA puts aimed at literal (never-exchanged) STags, and
  buffer capacities that are bare literals instead of
  :class:`~repro.core.ghost.GhostBudget` expressions;
* **introspective** — checks that import the live modules and verify
  the invariants on the real objects: the fine VCQ binding yields 24
  distinct CQs, the half-shell send plan is the exact negation of the
  receive plan, ring/endpoint defaults are >= 4, and the endpoint's
  buffers dominate the analytic maximum and are pre-registered.

Every rule has a stable ID (``CL001``..) so findings are suppressible
with ``# commlint: disable=CL001`` on the flagged line or
``# commlint: disable-file=CL001`` anywhere in the file.
"""

from __future__ import annotations

import ast
import inspect
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import AnalysisReport, Finding

#: Minimum safe receive-ring depth for the border->forward->reverse
#: dependency chain (paper Fig. 10; enforced live by RecvBufferRing).
MIN_RING_DEPTH = 4

#: The rule catalog: stable ID -> one-line description.
RULES: dict[str, str] = {
    "CL001": "round-robin receive-ring depth below 4 (overwrite hazard, §3.4)",
    "CL002": "duplicated VCQ->CQ binding (CQs are not thread-safe, §3.3)",
    "CL003": "fine binding must use 24 distinct CQs/node, one per TNI per rank (§3.3)",
    "CL004": "stage order violated: border before forward, forward before reverse",
    "CL005": "send/recv plan not Newton-symmetric (send offsets must negate recv, §3.1)",
    "CL006": "RDMA put targets a literal/unexchanged STag or skips the window exchange (§3.4)",
    "CL007": "RDMA buffer size not derived from (or below) the analytic ghost maximum (§3.4)",
    "CL008": "pooled send buffer not dominated by the GhostBudget analytic maximum (§3.4)",
    "CL009": "per-route in-flight capacity (ring depth x slot size) below the "
             "worst-case burst of the send schedule (§3.4)",
}

_SUPPRESS_RE = re.compile(r"#\s*commlint:\s*disable=([A-Z0-9,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*commlint:\s*disable-file=([A-Z0-9,\s]+)")
_OFFSET_SEND_RE = re.compile(r"send.*offset", re.IGNORECASE)
_OFFSET_RECV_RE = re.compile(r"recv.*offset", re.IGNORECASE)

#: Repo-relative module set scanned by default (the exchange/RDMA stack
#: plus the stage-order call sites).
DEFAULT_MODULES = (
    "core/analytic.py",
    "core/border_bins.py",
    "core/comm_plan.py",
    "core/exchange_base.py",
    "core/fine_p2p.py",
    "core/ghost.py",
    "core/message_combine.py",
    "core/p2p.py",
    "core/patterns.py",
    "core/rdma_buffers.py",
    "core/three_stage.py",
    "machine/rdma.py",
    "machine/tni.py",
    "md/simulation.py",
    "md/stages.py",
)


def default_paths() -> list[str]:
    """The communication sources commlint scans by default."""
    import repro

    pkg = Path(inspect.getsourcefile(repro)).parent  # type: ignore[arg-type]
    return [str(pkg / rel) for rel in DEFAULT_MODULES]


# -- suppression handling ----------------------------------------------------
class _Suppressions:
    """Per-line and file-level ``# commlint: disable=`` directives."""

    def __init__(self, source: str) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_level: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_FILE_RE.search(line)
            if m:
                self.file_level.update(self._ids(m.group(1)))
                continue
            m = _SUPPRESS_RE.search(line)
            if m:
                self.by_line.setdefault(lineno, set()).update(self._ids(m.group(1)))

    @staticmethod
    def _ids(raw: str) -> list[str]:
        return [part.strip() for part in raw.split(",") if part.strip()]

    def hides(self, rule: str, line: int) -> bool:
        """Whether ``rule`` at ``line`` is suppressed."""
        return rule in self.file_level or rule in self.by_line.get(line, set())


# -- AST helpers -------------------------------------------------------------
def _call_name(node: ast.Call) -> str:
    """Last dotted segment of the called name (``a.b.C(...)`` -> ``C``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _literal_int(node: ast.AST | None) -> int | None:
    """The int value of a numeric literal (including ``-n``), else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(
        node.value, bool
    ):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


def _arg(call: ast.Call, position: int, keyword: str) -> ast.AST | None:
    """Argument at ``position`` or passed as ``keyword=``, else None."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


def _literal_offset_table(node: ast.AST) -> list[tuple[int, ...]] | None:
    """Parse a literal list/tuple of int-tuples, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: list[tuple[int, ...]] = []
    for elt in node.elts:
        if not isinstance(elt, (ast.Tuple, ast.List)):
            return None
        vals = [_literal_int(e) for e in elt.elts]
        if any(v is None for v in vals):
            return None
        out.append(tuple(v for v in vals if v is not None))
    return out


# -- static rules ------------------------------------------------------------
def _check_ring_depth(tree: ast.Module, path: str) -> list[Finding]:
    """CL001: literal ring depths below :data:`MIN_RING_DEPTH`."""
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            depth_node = None
            if name == "RecvBufferRing":
                depth_node = _arg(node, 3, "depth")
            elif name in ("RdmaEndpoint", "P2PExchange", "FineGrainedP2PExchange"):
                depth_node = _arg(node, -1, "ring_depth")
            else:
                for kw in node.keywords:
                    if kw.arg == "ring_depth":
                        depth_node = kw.value
            depth = _literal_int(depth_node)
            if depth is not None and depth < MIN_RING_DEPTH:
                findings.append(
                    Finding(
                        rule="CL001",
                        path=path,
                        line=node.lineno,
                        message=f"receive-ring depth {depth} < {MIN_RING_DEPTH}",
                        detail="a PUT from stage k+1 can land on data stage k has "
                        "not consumed (paper §3.4, Fig. 10)",
                    )
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            defaults = args.defaults
            params = args.args[len(args.args) - len(defaults):] if defaults else []
            for param, default in zip(params, defaults):
                if param.arg != "ring_depth":
                    continue
                depth = _literal_int(default)
                if depth is not None and depth < MIN_RING_DEPTH:
                    findings.append(
                        Finding(
                            rule="CL001",
                            path=path,
                            line=node.lineno,
                            message=f"default ring_depth {depth} < {MIN_RING_DEPTH} "
                            f"in {node.name}()",
                        )
                    )
    return findings


def _check_duplicate_bindings(tree: ast.Module, path: str) -> list[Finding]:
    """CL002: literal ``ControlQueue(tni, index)`` pairs constructed twice."""
    findings = []
    seen: dict[tuple[int, int], int] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "ControlQueue"):
            continue
        tni = _literal_int(_arg(node, 0, "tni"))
        index = _literal_int(_arg(node, 1, "index"))
        if tni is None or index is None:
            continue
        key = (tni, index)
        if key in seen:
            findings.append(
                Finding(
                    rule="CL002",
                    path=path,
                    line=node.lineno,
                    message=f"CQ (tni={tni}, index={index}) bound twice "
                    f"(first at line {seen[key]})",
                    detail="a CQ is not thread-safe; every VCQ must bind a "
                    "distinct CQ (paper §3.3, Fig. 7)",
                )
            )
        else:
            seen[key] = node.lineno
    return findings


_STAGE_ORDER = {"borders": 0, "forward": 1, "reverse": 2}


def _check_stage_order(tree: ast.Module, path: str) -> list[Finding]:
    """CL004: within one function, border < forward < reverse call order."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        first_line: dict[str, int] = {}
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _STAGE_ORDER
            ):
                stage = sub.func.attr
                first_line.setdefault(stage, sub.lineno)
        ordered = sorted(first_line, key=lambda s: first_line[s])
        for earlier, later in zip(ordered, ordered[1:]):
            if _STAGE_ORDER[earlier] > _STAGE_ORDER[later]:
                findings.append(
                    Finding(
                        rule="CL004",
                        path=path,
                        line=first_line[earlier],
                        message=f"{earlier}() called before {later}() in "
                        f"{node.name}()",
                        detail="routes are rebuilt by the border stage; forward "
                        "replays them and reverse retraces forward",
                    )
                )
                break
    return findings


def _check_plan_symmetry(tree: ast.Module, path: str) -> list[Finding]:
    """CL005: literal send/recv offset tables must be Newton-symmetric."""
    sends: tuple[int, list[tuple[int, ...]]] | None = None
    recvs: tuple[int, list[tuple[int, ...]]] | None = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else ""
        )
        table = _literal_offset_table(node.value)
        if table is None:
            continue
        if _OFFSET_SEND_RE.search(name):
            sends = (node.lineno, table)
        elif _OFFSET_RECV_RE.search(name):
            recvs = (node.lineno, table)
    if sends is None or recvs is None:
        return []
    send_set = set(sends[1])
    recv_set = set(recvs[1])
    negated_recv = {tuple(-o for o in off) for off in recv_set}
    half_symmetric = send_set == negated_recv and not (send_set & recv_set)
    full_symmetric = send_set == recv_set and send_set == {
        tuple(-o for o in off) for off in send_set
    }
    if half_symmetric or full_symmetric:
        return []
    return [
        Finding(
            rule="CL005",
            path=path,
            line=sends[0],
            message="send offsets are not the negation of recv offsets "
            "(nor a negation-closed full shell)",
            detail="Newton's 3rd law pairs every received ghost block with a "
            "send to the opposite neighbor (paper §3.1, Table 1)",
        )
    ]


def _check_rdma_targets(tree: ast.Module, path: str) -> list[Finding]:
    """CL006: puts must target exchanged windows, not literal STags."""
    findings = []
    has_put_positions_call = False
    put_positions_line = 0
    has_window_exchange = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name == "put" and (len(node.args) + len(node.keywords)) >= 6:
                stag = _literal_int(_arg(node, 3, "dst_stag"))
                if stag is not None:
                    findings.append(
                        Finding(
                            rule="CL006",
                            path=path,
                            line=node.lineno,
                            message=f"RDMA put targets literal stag {stag}",
                            detail="STags are only valid after the border-stage "
                            "window exchange piggybacks them (paper §3.4)",
                        )
                    )
                offset = _literal_int(_arg(node, 4, "dst_offset"))
                if offset is not None and offset != 0:
                    findings.append(
                        Finding(
                            rule="CL006",
                            path=path,
                            line=node.lineno,
                            message=f"RDMA put targets literal remote offset {offset}",
                            detail="the ghost offset must come from the exchanged "
                            "RemoteWindow, not be assumed",
                        )
                    )
            elif name == "put_positions":
                has_put_positions_call = True
                put_positions_line = put_positions_line or node.lineno
            elif name in ("install_remote", "_exchange_windows", "_exchange_windows_impl"):
                has_window_exchange = True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name in (
            "_exchange_windows",
            "_exchange_windows_impl",
        ):
            has_window_exchange = True
    if has_put_positions_call and not has_window_exchange:
        findings.append(
            Finding(
                rule="CL006",
                path=path,
                line=put_positions_line,
                message="put_positions() used without a window exchange "
                "(install_remote/_exchange_windows) in this module",
                detail="forward PUTs land at the offset the border stage "
                "piggybacked; without the exchange the target is stale",
            )
        )
    return findings


def _derives_from_budget(node: ast.AST | None) -> bool:
    """Whether an expression references a GhostBudget analytic method."""
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in (
            "max_atoms_per_message",
            "max_ghost_atoms",
            "max_local_atoms",
        ):
            return True
    return False


def _check_buffer_sizing(tree: ast.Module, path: str) -> list[Finding]:
    """CL007: ring capacities must not be bare literals."""
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "RecvBufferRing"):
            continue
        cap_node = _arg(node, 2, "capacity_elems")
        cap = _literal_int(cap_node)
        if cap is not None and not _derives_from_budget(cap_node):
            findings.append(
                Finding(
                    rule="CL007",
                    path=path,
                    line=node.lineno,
                    message=f"receive-ring capacity is the bare literal {cap}",
                    detail="capacities must derive from the GhostBudget "
                    "theoretical maximum so registration happens once "
                    "and no growth path exists (paper §3.4)",
                )
            )
    return findings


def _check_pool_sizing(tree: ast.Module, path: str) -> list[Finding]:
    """CL008: pooled send buffers must size from the GhostBudget.

    Two syntactic hazards: a ``BufferPool`` class whose sizing logic
    never references a GhostBudget analytic method (the dominance rule
    would be unenforceable), and a ``BufferPool(...)`` construction fed
    a bare literal instead of a budget object.
    """
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "BufferPool":
            if not any(_derives_from_budget(sub) for sub in node.body):
                findings.append(
                    Finding(
                        rule="CL008",
                        path=path,
                        line=node.lineno,
                        message="BufferPool sizing logic never references a "
                        "GhostBudget analytic method",
                        detail="pooled pack buffers follow the same dominance "
                        "discipline as the RDMA rings: capacity derives from "
                        "the analytic ghost maximum so steady state never "
                        "reallocates (paper §3.4)",
                    )
                )
        elif isinstance(node, ast.Call) and _call_name(node) == "BufferPool":
            budget_node = _arg(node, 0, "budget")
            if _literal_int(budget_node) is not None:
                findings.append(
                    Finding(
                        rule="CL008",
                        path=path,
                        line=node.lineno,
                        message="BufferPool budget is a bare literal",
                        detail="pass a GhostBudget so the pool capacity tracks "
                        "the analytic maximum, not a guessed constant",
                    )
                )
    return findings


def _check_inflight_capacity(tree: ast.Module, path: str) -> list[Finding]:
    """CL009: literal ring capacity vs the literal send-burst schedule.

    Flags any call carrying both a literal ring depth (``ring_depth``
    or ``depth``) and a literal ``inflight_epochs`` where the depth
    cannot absorb one worst-case message per outstanding epoch — the
    statically decidable shadow of :func:`lint_config`'s exact check
    (slot size cancels when both sides count worst-case messages).
    """
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        depth_node = None
        epochs_node = None
        for kw in node.keywords:
            if kw.arg in ("ring_depth", "depth"):
                depth_node = kw.value
            elif kw.arg == "inflight_epochs":
                epochs_node = kw.value
        depth = _literal_int(depth_node)
        epochs = _literal_int(epochs_node)
        if depth is None or epochs is None:
            continue
        if depth < epochs:
            findings.append(
                Finding(
                    rule="CL009",
                    path=path,
                    line=node.lineno,
                    message=f"ring depth {depth} cannot absorb "
                    f"{epochs} outstanding send epoch(s) per route",
                    detail="each un-drained stage epoch holds one worst-case "
                    "message per route in flight; capacity must cover the "
                    "burst (paper §3.4)",
                )
            )
    return findings


_STATIC_RULES = (
    _check_ring_depth,
    _check_duplicate_bindings,
    _check_stage_order,
    _check_plan_symmetry,
    _check_rdma_targets,
    _check_buffer_sizing,
    _check_pool_sizing,
    _check_inflight_capacity,
)


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Run every static rule over one source text (suppressions applied)."""
    tree = ast.parse(source, filename=path)
    suppressions = _Suppressions(source)
    findings: list[Finding] = []
    for rule_fn in _STATIC_RULES:
        findings.extend(rule_fn(tree, path))
    kept = [f for f in findings if not suppressions.hides(f.rule, f.line)]
    lint_source.last_suppressed = len(findings) - len(kept)  # type: ignore[attr-defined]
    return kept


# -- introspective checks ----------------------------------------------------
def _anchor(obj: object) -> tuple[str, int]:
    """(file, line) of a live object's definition, for finding anchors."""
    try:
        path = inspect.getsourcefile(obj)  # type: ignore[arg-type]
        _, line = inspect.getsourcelines(obj)  # type: ignore[arg-type]
        return (path or "<runtime>", line)
    except (OSError, TypeError):
        return ("<runtime>", 0)


def _introspect_vcq_bindings() -> list[Finding]:
    """CL002/CL003 on the live NodeNIC fine binding (24 distinct CQs)."""
    from repro.machine.params import FUGAKU
    from repro.machine.tni import NodeNIC, TNIAllocationError

    findings = []
    nic = NodeNIC(FUGAKU)
    vcq_map = nic.bind_fine(list(range(4)))
    path, line = _anchor(NodeNIC.bind_fine)

    bindings = [(v.cq.tni, v.cq.index) for vcqs in vcq_map.values() for v in vcqs]
    if len(set(bindings)) != len(bindings):
        dupes = sorted({b for b in bindings if bindings.count(b) > 1})
        findings.append(
            Finding(
                rule="CL002",
                path=path,
                line=line,
                message=f"fine binding produced duplicated CQ(s) {dupes}",
            )
        )
    expected = 4 * nic.tni_count
    if nic.cqs_in_use() != expected or len(bindings) != expected:
        findings.append(
            Finding(
                rule="CL003",
                path=path,
                line=line,
                message=f"fine binding allocated {nic.cqs_in_use()} CQs, "
                f"expected {expected} (4 ranks x {nic.tni_count} TNIs)",
            )
        )
    for rank, vcqs in vcq_map.items():
        tnis = [v.tni for v in vcqs]
        if len(vcqs) != nic.tni_count or len(set(tnis)) != len(tnis):
            findings.append(
                Finding(
                    rule="CL003",
                    path=path,
                    line=line,
                    message=f"rank {rank} holds {len(vcqs)} VCQs over "
                    f"{len(set(tnis))} distinct TNIs, expected one per TNI",
                )
            )
            break
    # The per-rank-per-TNI hardware rule must be *enforced*, not assumed.
    try:
        nic.tnis[0].allocate_cq(0)
    except TNIAllocationError:
        pass
    else:
        findings.append(
            Finding(
                rule="CL003",
                path=path,
                line=line,
                message="TNI.allocate_cq allowed a rank to own two CQs on one TNI",
            )
        )
    return findings


def _introspect_plan_symmetry() -> list[Finding]:
    """CL005 on the live offset generators, both Newton modes, radii 1-2."""
    from repro.core import patterns

    findings = []
    path, line = _anchor(patterns.half_shell_offsets)
    for radius in (1, 2):
        half = set(patterns.half_shell_offsets(radius))
        full = set(patterns.shell_offsets(radius))
        negated = {tuple(-o for o in off) for off in half}
        if half & negated:
            findings.append(
                Finding(
                    rule="CL005",
                    path=path,
                    line=line,
                    message=f"half shell (radius {radius}) is not disjoint from "
                    "its negation: some pairs are exchanged twice",
                )
            )
        if half | negated != full:
            findings.append(
                Finding(
                    rule="CL005",
                    path=path,
                    line=line,
                    message=f"half shell + negation != full shell at radius "
                    f"{radius} ({len(half | negated)} vs {len(full)} offsets)",
                )
            )
        if full != {tuple(-o for o in off) for off in full}:
            findings.append(
                Finding(
                    rule="CL005",
                    path=path,
                    line=line,
                    message=f"full shell (radius {radius}) is not closed under "
                    "negation",
                )
            )
    return findings


def _introspect_ring_defaults() -> list[Finding]:
    """CL001 on the live default ring depths (ring, endpoint, exchange)."""
    from repro.core.p2p import P2PExchange
    from repro.core.rdma_buffers import RdmaEndpoint, RecvBufferRing

    findings = []
    for obj, param in (
        (RecvBufferRing.__init__, "depth"),
        (RdmaEndpoint.__init__, "ring_depth"),
        (P2PExchange.__init__, "ring_depth"),
    ):
        default = inspect.signature(obj).parameters[param].default
        if isinstance(default, int) and default < MIN_RING_DEPTH:
            path, line = _anchor(obj)
            findings.append(
                Finding(
                    rule="CL001",
                    path=path,
                    line=line,
                    message=f"default {param}={default} < {MIN_RING_DEPTH} "
                    f"in {obj.__qualname__}",
                )
            )
    return findings


def _introspect_buffer_sizing() -> list[Finding]:
    """CL006/CL007 on a live endpoint: registration + analytic dominance."""
    import numpy as np

    from repro.core.ghost import GhostBudget, offset_volume
    from repro.core.patterns import shell_offsets
    from repro.core.rdma_buffers import RdmaEndpoint
    from repro.machine.rdma import RdmaEngine, RdmaError

    findings = []
    budget = GhostBudget(a=8.0, r=2.5, density=0.05)
    path, line = _anchor(RdmaEndpoint)

    # The single-message bound must dominate every shell message's
    # analytic expectation (the stage-3 slab bounds all of Table 1).
    per_message = budget.max_atoms_per_message()
    worst = max(
        offset_volume(budget.a, budget.r, off) * budget.density * budget.safety
        for off in shell_offsets(1)
    )
    if per_message < worst:
        findings.append(
            Finding(
                rule="CL007",
                path=path,
                line=line,
                message=f"max_atoms_per_message()={per_message} is below the "
                f"analytic worst-case message of {worst:.1f} atoms",
            )
        )

    engine = RdmaEngine()
    capacity = budget.max_local_atoms() + budget.max_ghost_atoms(False)
    endpoint = RdmaEndpoint(
        rank=0,
        engine=engine,
        x_storage=np.zeros((capacity, 3)),
        f_storage=np.zeros((capacity, 3)),
        budget=budget,
        n_neighbors=13,
    )
    needed = per_message * 3 + 1  # xyz + length prefix
    for ring in endpoint.recv_rings:
        if ring.capacity < needed:
            findings.append(
                Finding(
                    rule="CL007",
                    path=path,
                    line=line,
                    message=f"receive-ring capacity {ring.capacity} < analytic "
                    f"requirement {needed} elements",
                )
            )
            break
    if endpoint.x_region.length < capacity * 3:
        findings.append(
            Finding(
                rule="CL007",
                path=path,
                line=line,
                message=f"registered position region ({endpoint.x_region.length} "
                f"elements) is smaller than the pre-sized storage "
                f"({capacity * 3})",
            )
        )
    # Every advertised ring STag must resolve to a pre-registered region:
    # a PUT into an unregistered window is the §3.4 failure mode.
    cache = engine.cache_for(0)
    try:
        for ring in endpoint.recv_rings:
            for stag in ring.stags():
                cache.lookup(stag)
        cache.lookup(endpoint.x_region.stag)
        cache.lookup(endpoint.f_region.stag)
    except RdmaError as exc:
        findings.append(
            Finding(
                rule="CL006",
                path=path,
                line=line,
                message=f"advertised window is not pre-registered: {exc}",
            )
        )
    return findings


def _introspect_pool_sizing() -> list[Finding]:
    """CL008 on a live BufferPool: analytic dominance + counted growth."""
    from repro.core.comm_plan import BufferPool
    from repro.core.ghost import GhostBudget

    findings = []
    budget = GhostBudget(a=8.0, r=2.5, density=0.05)
    path, line = _anchor(BufferPool)
    analytic = int(budget.max_ghost_atoms(False))

    pool = BufferPool(budget)
    buf = pool.vec(analytic // 2)
    if buf.shape[0] < analytic:
        findings.append(
            Finding(
                rule="CL008",
                path=path,
                line=line,
                message=f"pool capacity {buf.shape[0]} is below the analytic "
                f"ghost maximum {analytic}",
            )
        )
    # Steady state: every in-budget request reuses the one allocation.
    pool.vec(analytic // 4)
    pool.vec(analytic)
    if pool.allocations != 1 or pool.grow_events != 0:
        findings.append(
            Finding(
                rule="CL008",
                path=path,
                line=line,
                message=f"in-budget requests reallocated (allocations="
                f"{pool.allocations}, grow_events={pool.grow_events})",
            )
        )
    # Growth past the analytic maximum must be possible but *counted*.
    pool.vec(analytic * 2)
    if pool.grow_events != 1:
        findings.append(
            Finding(
                rule="CL008",
                path=path,
                line=line,
                message=f"over-budget growth was not counted (grow_events="
                f"{pool.grow_events}, expected 1)",
            )
        )
    return findings


_INTROSPECTIVE_CHECKS = (
    _introspect_vcq_bindings,
    _introspect_plan_symmetry,
    _introspect_ring_defaults,
    _introspect_buffer_sizing,
    _introspect_pool_sizing,
)


def run_introspection() -> list[Finding]:
    """Run every introspective check against the live modules."""
    findings: list[Finding] = []
    for check in _INTROSPECTIVE_CHECKS:
        try:
            findings.extend(check())
        except Exception as exc:  # pragma: no cover - diagnostic path
            rule = "CL007"
            if "vcq" in check.__name__:
                rule = "CL003"
            elif "pool" in check.__name__:
                rule = "CL008"
            findings.append(
                Finding(
                    rule=rule,
                    message=f"introspective check {check.__name__} crashed: {exc!r}",
                )
            )
    return findings


# -- single-config entry (scenario fleet L1) ---------------------------------
@dataclass(frozen=True)
class CommProfile:
    """The communication-relevant shape of ONE concrete configuration.

    This is the library-callable face of commlint: where the AST pass
    lints *sources* and the introspective pass lints the *default live
    objects*, :func:`lint_config` lints one derived CommPlan/machine
    configuration — the L1 feasibility level of the scenario fleet.
    Geometry is the per-rank sub-box (``sub_box_edge``), ``rcomm`` the
    communication cutoff, ``density`` the mean atom density the
    GhostBudget prices.
    """

    label: str
    sub_box_edge: float
    rcomm: float
    density: float
    ring_depth: int = 4
    stage_order: tuple[str, ...] = ("borders", "forward", "reverse")
    shell_radius: int = 1
    newton: bool = True
    rdma: bool = False
    window_exchange: bool = True
    ranks_per_node: int = 4
    #: How many same-route send epochs (stages) the schedule can leave
    #: outstanding at once: 1 when a fence drains every stage (the rdma
    #: window-exchange discipline), 3 when borders/forward/reverse can
    #: all be in flight together (CL009 checks capacity against it).
    inflight_epochs: int = 3
    cq_bindings: tuple[tuple[int, int], ...] | None = None


def _cfg_finding(profile: CommProfile, rule: str, message: str, detail: str = "") -> Finding:
    return Finding(
        rule=rule,
        path=f"<config:{profile.label}>",
        message=message,
        detail=detail,
    )


def lint_config(profile: CommProfile) -> list[Finding]:
    """Run the CL001–CL009 feasibility rules on one configuration.

    Returns the (possibly empty) finding list; never raises on an
    infeasible profile — infeasibility IS the finding.
    """
    from repro.core import patterns
    from repro.core.comm_plan import BufferPool
    from repro.core.ghost import GhostBudget, offset_volume
    from repro.machine.params import FUGAKU
    from repro.machine.tni import NodeNIC, TNIAllocationError

    findings: list[Finding] = []

    # CL001: receive-ring depth covers the border->forward->reverse chain.
    if profile.ring_depth < MIN_RING_DEPTH:
        findings.append(_cfg_finding(
            profile, "CL001",
            f"ring_depth {profile.ring_depth} < {MIN_RING_DEPTH}",
            "a PUT from stage k+1 can land on data stage k has not consumed",
        ))

    # CL002: explicit CQ bindings (when given) must be duplicate-free.
    if profile.cq_bindings is not None:
        dupes = sorted(
            {b for b in profile.cq_bindings if profile.cq_bindings.count(b) > 1}
        )
        if dupes:
            findings.append(_cfg_finding(
                profile, "CL002",
                f"duplicated VCQ->CQ binding(s) {dupes}",
                "a CQ is not thread-safe; every VCQ must bind a distinct CQ",
            ))

    # CL003: the node's TNIs can actually host one CQ per rank per TNI.
    if not 1 <= profile.ranks_per_node <= 4:
        findings.append(_cfg_finding(
            profile, "CL003",
            f"ranks_per_node {profile.ranks_per_node} outside [1, 4]",
            "Fugaku runs 4 ranks per node; the fine binding is defined "
            "for at most 4 ranks sharing 6 TNIs",
        ))
    else:
        nic = NodeNIC(FUGAKU)
        try:
            vcq_map = nic.bind_fine(list(range(profile.ranks_per_node)))
        except TNIAllocationError as exc:
            findings.append(_cfg_finding(
                profile, "CL003", f"fine VCQ binding infeasible: {exc}"
            ))
        else:
            expected = profile.ranks_per_node * nic.tni_count
            got = sum(len(v) for v in vcq_map.values())
            if got != expected or nic.cqs_in_use() != expected:
                findings.append(_cfg_finding(
                    profile, "CL003",
                    f"fine binding allocated {got} CQs, expected {expected} "
                    f"({profile.ranks_per_node} ranks x {nic.tni_count} TNIs)",
                ))

    # CL004: declared stage order must be border -> forward -> reverse.
    known = [s for s in profile.stage_order if s in _STAGE_ORDER]
    if [_STAGE_ORDER[s] for s in known] != sorted(_STAGE_ORDER[s] for s in known):
        findings.append(_cfg_finding(
            profile, "CL004",
            f"stage order {profile.stage_order} violates "
            "borders -> forward -> reverse",
            "routes are rebuilt by the border stage; forward replays them "
            "and reverse retraces forward",
        ))

    # CL005: the stencil at this radius is Newton-symmetric.
    if profile.shell_radius < 1:
        findings.append(_cfg_finding(
            profile, "CL005", f"shell_radius {profile.shell_radius} < 1"
        ))
    else:
        half = set(patterns.half_shell_offsets(profile.shell_radius))
        full = set(patterns.shell_offsets(profile.shell_radius))
        negated = {tuple(-o for o in off) for off in half}
        if half & negated or half | negated != full:
            findings.append(_cfg_finding(
                profile, "CL005",
                f"half shell at radius {profile.shell_radius} is not the "
                "exact Newton complement of the full shell",
            ))

    # CL006: one-sided PUTs require the border-stage window exchange.
    if profile.rdma and not profile.window_exchange:
        findings.append(_cfg_finding(
            profile, "CL006",
            "rdma enabled without the border-stage window exchange",
            "STags are only valid after the border stage piggybacks them; "
            "a PUT without the exchange targets a stale window",
        ))

    # CL007: geometry + analytic buffer bound.
    if profile.sub_box_edge <= 0 or profile.rcomm <= 0 or profile.density <= 0:
        findings.append(_cfg_finding(
            profile, "CL007",
            f"degenerate geometry (sub_box_edge={profile.sub_box_edge:g}, "
            f"rcomm={profile.rcomm:g}, density={profile.density:g})",
        ))
        return findings  # budget math below needs positive inputs
    if profile.rcomm > profile.shell_radius * profile.sub_box_edge:
        findings.append(_cfg_finding(
            profile, "CL007",
            f"rcomm {profile.rcomm:g} exceeds stencil reach "
            f"{profile.shell_radius} x sub-box edge {profile.sub_box_edge:g}",
            "the ghost shell escapes the stencil: atoms beyond the "
            "neighbor ranks can never arrive, and the analytic buffer "
            "bound no longer dominates",
        ))
        return findings
    budget = GhostBudget(
        a=profile.sub_box_edge, r=profile.rcomm, density=profile.density
    )
    per_message = budget.max_atoms_per_message()
    worst = max(
        offset_volume(budget.a, budget.r, off) * budget.density * budget.safety
        for off in patterns.shell_offsets(1)
    )
    if per_message < worst:
        findings.append(_cfg_finding(
            profile, "CL007",
            f"max_atoms_per_message()={per_message} is below the analytic "
            f"worst-case message of {worst:.1f} atoms",
        ))

    # CL008: a pool sized by this budget never grows in budget.
    analytic = int(budget.max_ghost_atoms(False))
    pool = BufferPool(budget)
    buf = pool.vec(max(1, analytic // 2))
    if buf.shape[0] < analytic:
        findings.append(_cfg_finding(
            profile, "CL008",
            f"pool capacity {buf.shape[0]} is below the analytic ghost "
            f"maximum {analytic}",
        ))
    pool.vec(max(1, analytic))
    if pool.grow_events != 0:
        findings.append(_cfg_finding(
            profile, "CL008",
            f"in-budget request grew the pool (grow_events={pool.grow_events})",
        ))

    # CL009: per-route in-flight capacity (ring depth x slot size) must
    # cover the worst-case burst the send schedule can leave outstanding
    # (inflight_epochs stage-epochs of the worst message) — the static
    # precursor to protomc's exact P3 bound.
    capacity = profile.ring_depth * per_message
    burst = profile.inflight_epochs * worst
    if profile.inflight_epochs < 1:
        findings.append(_cfg_finding(
            profile, "CL009",
            f"inflight_epochs {profile.inflight_epochs} < 1",
        ))
    elif capacity < burst:
        findings.append(_cfg_finding(
            profile, "CL009",
            f"in-flight capacity {profile.ring_depth} x {per_message} = "
            f"{capacity} atoms is below the worst-case burst "
            f"{profile.inflight_epochs} x {worst:.1f} = {burst:.1f}",
            "an adversarially delayed drain overflows the route's ring "
            "slots; raise ring_depth or fence between stages "
            "(repro verify proves the exact bound per scenario)",
        ))
    return findings


# -- entry point -------------------------------------------------------------
def run_commlint(
    paths: Sequence[str] | None = None, introspect: bool = True
) -> AnalysisReport:
    """Lint ``paths`` (default: the exchange/RDMA stack) and report.

    ``introspect=False`` restricts the run to the pure AST pass — useful
    when linting standalone fixture files that should not trigger the
    live-module checks.
    """
    report = AnalysisReport(tool="commlint")
    targets: Iterable[str] = paths if paths is not None else default_paths()
    for path in targets:
        p = Path(path)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for file in files:
            source = file.read_text(encoding="utf-8")
            report.findings.extend(lint_source(source, str(file)))
            report.suppressed += getattr(lint_source, "last_suppressed", 0)
            report.files_analyzed.append(str(file))
    if introspect:
        report.findings.extend(run_introspection())
    return report
