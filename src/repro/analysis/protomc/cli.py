"""``python -m repro verify`` — model-check the scenario fleet.

Verifies P1–P4 (deadlock freedom, no message leaks, buffer safety,
ladder termination) for every scenario of the registry fleet (or a
``--spec`` expansion), printing a per-scenario state-count/wall-time
budget line and optionally writing a ``repro-verify/1`` report.

Exit codes: 0 all proven, 1 counterexamples / unproven scenarios /
missed mutations, 2 usage or IO errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis.findings import AnalysisReport
from repro.analysis.protomc.checker import (
    VerifyResult,
    findings_from,
    verify_scenario,
)

REPORT_SCHEMA = "repro-verify/1"


def _fleet(spec_path: str | None) -> list[dict]:
    if spec_path is None:
        from repro.scenarios.registry import default_fleet

        return list(default_fleet())
    from repro.scenarios.spec import expand_spec, load_json, validate_spec

    doc = load_json(spec_path)
    issues = validate_spec(doc)
    if issues:
        raise ValueError(f"{spec_path}: {len(issues)} spec issue(s): {issues[0]}")
    return expand_spec(doc)


def _result_doc(result: VerifyResult) -> dict:
    return {
        "label": result.label,
        "ok": result.ok,
        "states": result.states,
        "wall_ms": round(result.wall_ms, 3),
        "incomplete": result.incomplete,
        "counterexamples": [
            {
                "property": c.prop,
                "detail": c.detail,
                "trace": list(c.trace),
            }
            for c in result.counterexamples
        ],
    }


def _run_mutations(args: argparse.Namespace) -> int:
    from repro.analysis.protomc.mutations import run_mutation_battery

    outcomes = run_mutation_battery(max_states=args.max_states)
    for outcome in outcomes:
        print(f"mutation {outcome.render()}")
    missed = [o for o in outcomes if not o.ok]
    print(
        f"mutation battery: {len(outcomes) - len(missed)}/{len(outcomes)} "
        "caught with the named property and a replayable trace"
    )
    return 1 if missed else 0


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``verify`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="model-check fleet communication protocols (P1-P4)",
    )
    parser.add_argument("--spec", help="verify a spec expansion instead of "
                        "the registry fleet")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="ID", help="restrict to these scenario ids")
    parser.add_argument("--max-states", type=int, default=500_000,
                        help="per-scenario transition budget")
    parser.add_argument("--budget", type=float, default=30.0, metavar="S",
                        help="per-scenario wall budget in seconds")
    parser.add_argument("--report", metavar="PATH",
                        help=f"write the {REPORT_SCHEMA} report here")
    parser.add_argument("--json", action="store_true",
                        help="print findings as a JSON analysis report")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario budget lines")
    parser.add_argument("--mutations", action="store_true",
                        help="run the seeded-mutation battery instead")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro verify``; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.mutations:
        return _run_mutations(args)
    try:
        scenarios = _fleet(args.spec)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 2
    if args.scenario:
        wanted = set(args.scenario)
        scenarios = [s for s in scenarios if s["id"] in wanted]
        if not scenarios:
            print(f"verify: no scenario matches {sorted(wanted)}",
                  file=sys.stderr)
            return 2

    t0 = time.monotonic()
    results: list[VerifyResult] = []
    for scenario in scenarios:
        result = verify_scenario(
            scenario, max_states=args.max_states, budget_s=args.budget
        )
        results.append(result)
        if not args.quiet:
            status = "ok" if result.ok else (
                "INCOMPLETE" if result.incomplete else "FAIL"
            )
            print(
                f"verify {result.label}: {status} states={result.states} "
                f"wall={result.wall_ms:.1f}ms"
            )
    wall_s = time.monotonic() - t0

    report = AnalysisReport(tool="protomc")
    for finding in findings_from(results):
        report.add(finding)
    report.files_analyzed = sorted({r.label for r in results})
    report.normalize()
    if args.report:
        doc = {
            "schema": REPORT_SCHEMA,
            "scenarios": [_result_doc(r) for r in results],
            "summary": {
                "checked": len(results),
                "proven": sum(1 for r in results if r.ok),
                "states": sum(r.states for r in results),
                "wall_s": round(wall_s, 3),
            },
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(report.render_json())
    else:
        failed = [r for r in results if not r.ok]
        for result in failed:
            print(result.render(), file=sys.stderr)
        print(
            f"verify: {len(results) - len(failed)}/{len(results)} scenario(s) "
            f"proven deadlock-free (P1-P4), "
            f"{sum(r.states for r in results)} state(s), {wall_s:.1f}s"
        )
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
