"""Explicit-state exploration of :class:`~repro.analysis.protomc.model.CommModel`.

Four properties (:data:`~repro.analysis.protomc.model.PROPERTIES`):

* **P1 / P2** — depth-first exploration of interleavings with
  partial-order reduction: a non-blocking send, an *unambiguous* recv
  (exactly one matchable entry) and an enabled global fence each
  commute with every other enabled action and can never be disabled,
  so each is a sound singleton ample set.  The checker branches — with
  state hashing to merge converging paths — only on ambiguous recv
  matches (same tag twice in flight under a reorder plane).  Every
  transition strictly consumes program ops, so the state graph is a
  DAG and exploration always terminates.  Clean symmetric protocols
  collapse to a single linear path of ~total-ops states, which is what
  makes checking all 206 fleet scenarios feasible.

* **P3** — exact worst-case in-flight analysis via vector clocks: one
  canonical execution assigns clocks (program order, send→recv edges,
  fence joins); per route, an adversarial scheduler can hold message
  ``i`` concurrent with message ``j ≤ i`` unless ``recv_j``
  happens-before ``send_i``.  That bound is exact under arbitrary
  delay/reorder, and a *lazy* scheduler (recvs deferred until nothing
  else is enabled) reproduces it as a concrete replayable trace.

* **P4** — the degradation ladder is checked as a well-founded
  descent: finite retries and no tier ever revisited.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.protomc.model import FENCE, RECV, SEND, PROPERTIES, CommModel, Op

#: Machine-readable transition: ("send", rank) | ("recv", rank, entry_idx)
#: | ("fence", fence_tag).
Action = tuple

#: How many rendered trace lines a finding/counterexample keeps.
TRACE_TAIL = 40


@dataclass(frozen=True)
class Counterexample:
    """One property violation with a replayable transition sequence."""

    prop: str  # P1..P4
    label: str
    actions: tuple[Action, ...]  # full machine trace (replay input)
    trace: tuple[str, ...]  # rendered lines (tail-truncated for reports)
    detail: str = ""
    route: tuple[int, int] = (-1, -1)  # P3: the overflowing (src, dst)
    threshold: int = 0  # P3: capacity the route exceeded

    def render(self) -> str:
        """The violation headline plus the (tail-truncated) trace."""
        lines = [f"{self.prop} violated [{self.label}]: {self.detail}"]
        lines += [f"    {step}" for step in self.trace]
        return "\n".join(lines)


@dataclass
class VerifyResult:
    """Verification outcome of one model."""

    label: str
    counterexamples: list[Counterexample] = field(default_factory=list)
    states: int = 0  # transitions executed across all explored paths
    wall_ms: float = 0.0
    incomplete: bool = False  # budget exhausted before the space closed

    @property
    def ok(self) -> bool:
        return not self.counterexamples and not self.incomplete

    def render(self) -> str:
        """One budget line per model plus any counterexample traces."""
        status = "ok" if self.ok else ("incomplete" if self.incomplete else "FAIL")
        head = (
            f"verify {self.label}: {status} states={self.states} "
            f"wall={self.wall_ms:.1f}ms"
        )
        return "\n".join([head] + [c.render() for c in self.counterexamples])


class BudgetExhausted(Exception):
    """Raised internally when max_states or the wall deadline trips."""


class _Sim:
    """Mutable protocol state with the persistent-first scheduling policy."""

    def __init__(self, model: CommModel, vc: bool = False) -> None:
        self.m = model
        self.pc = [0] * model.n_ranks
        # (src, dst) -> in-flight entries [tag, atoms, sender-VC]
        self.queues: dict[tuple[int, int], list[tuple]] = {}
        self.actions: list[Action] = []
        self.vc = vc
        self.clocks = [[0] * model.n_ranks for _ in range(model.n_ranks)] if vc else []
        # route -> ordered VC snapshots of its send / recv events
        self.send_vcs: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        self.recv_vcs: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        self.inflight_peak: dict[tuple[int, int], int] = {}

    # -- inspection ---------------------------------------------------------
    def op_at(self, rank: int) -> Op | None:
        program = self.m.programs[rank]
        return program[self.pc[rank]] if self.pc[rank] < len(program) else None

    def complete(self) -> bool:
        return all(
            self.pc[r] >= len(self.m.programs[r]) for r in range(self.m.n_ranks)
        )

    def matches(self, op: Op) -> list[int]:
        """Entry indexes of route ``(op.peer, op.rank)`` matchable by ``op``."""
        q = self.queues.get((op.peer, op.rank))
        if not q:
            return []
        if self.m.reorder:
            return [i for i, entry in enumerate(q) if entry[0] == op.tag]
        return [0] if q[0][0] == op.tag else []

    def fence_enabled(self, tag: tuple) -> bool:
        for rank in self.m.fence_ranks.get(tag, frozenset()):
            op = self.op_at(rank)
            if op is None or op.kind != FENCE or op.tag != tag:
                return False
        return True

    def choose(self, defer_recv_all: bool = False) -> Action | list[Action] | None:
        """Pick the next transition under the persistent-first policy.

        Returns one :data:`Action` (a sound singleton ample set), a
        list of actions (ambiguous recv branch point — the caller must
        explore all of them), or ``None`` (no enabled transition).
        With ``defer_recv_all`` recvs become last-resort only — the
        lazy adversarial scheduler used for P3 witnesses.
        """
        ambiguous: list[Action] = []
        recv_fallback: Action | None = None
        for rank in range(self.m.n_ranks):
            op = self.op_at(rank)
            if op is None:
                continue
            if op.kind == SEND:
                return (SEND, rank)
            if op.kind == RECV:
                hits = self.matches(op)
                if len(hits) == 1 and not defer_recv_all:
                    return (RECV, rank, hits[0])
                if len(hits) == 1 and recv_fallback is None:
                    recv_fallback = (RECV, rank, hits[0])
                elif len(hits) > 1:
                    ambiguous.extend((RECV, rank, i) for i in hits)
        for tag in self.m.fence_ranks:
            if self.fence_enabled(tag):
                return (FENCE, tag)
        if ambiguous and not defer_recv_all:
            return ambiguous
        if recv_fallback is not None:
            return recv_fallback
        if ambiguous:
            return ambiguous[0]
        return None

    # -- execution ----------------------------------------------------------
    def step(self, action: Action) -> None:
        kind = action[0]
        if kind == SEND:
            rank = action[1]
            op = self.op_at(rank)
            assert op is not None and op.kind == SEND, f"bad replay step {action}"
            snapshot: tuple[int, ...] = ()
            if self.vc:
                clock = self.clocks[rank]
                clock[rank] += 1
                snapshot = tuple(clock)
                self.send_vcs.setdefault((rank, op.peer), []).append(snapshot)
            route = (rank, op.peer)
            q = self.queues.setdefault(route, [])
            q.append((op.tag, op.atoms, snapshot))
            peak = self.inflight_peak.get(route, 0)
            if len(q) > peak:
                self.inflight_peak[route] = len(q)
            self.pc[rank] += 1
        elif kind == RECV:
            rank, idx = action[1], action[2]
            op = self.op_at(rank)
            assert op is not None and op.kind == RECV, f"bad replay step {action}"
            entry = self.queues[(op.peer, rank)].pop(idx)
            assert entry[0] == op.tag, f"tag mismatch replaying {action}"
            if self.vc:
                clock = self.clocks[rank]
                for k, component in enumerate(entry[2]):
                    if component > clock[k]:
                        clock[k] = component
                clock[rank] += 1
                self.recv_vcs.setdefault((op.peer, rank), []).append(tuple(clock))
            self.pc[rank] += 1
        else:  # fence
            tag = action[1]
            participants = sorted(self.m.fence_ranks[tag])
            assert self.fence_enabled(tag), f"fence {tag} not enabled in replay"
            if self.vc:
                joined = [
                    max(self.clocks[p][k] for p in participants)
                    for k in range(self.m.n_ranks)
                ]
                for p in participants:
                    self.clocks[p] = list(joined)
                    self.clocks[p][p] += 1
            for p in participants:
                self.pc[p] += 1
        self.actions.append(action)

    def render_action(self, action: Action) -> str:
        """Render an action *before* executing it (needs current pc)."""
        if action[0] == FENCE:
            ranks = self.m.fence_ranks[action[1]]
            return f"fence {action[1]} joins {len(ranks)} rank(s)"
        op = self.op_at(action[1])
        assert op is not None
        return op.render()

    def snapshot(self) -> tuple:
        """Hashable canonical state (used to merge converging branches)."""
        frozen = tuple(
            (route, tuple(entries))
            for route, entries in sorted(self.queues.items())
            if entries
        )
        return (tuple(self.pc), frozen)

    def fork(self) -> _Sim:
        twin = _Sim.__new__(_Sim)
        twin.m = self.m
        twin.pc = list(self.pc)
        twin.queues = {route: list(q) for route, q in self.queues.items() if q}
        twin.actions = list(self.actions)
        twin.vc = self.vc
        twin.clocks = [list(c) for c in self.clocks] if self.vc else []
        twin.send_vcs = {r: list(v) for r, v in self.send_vcs.items()}
        twin.recv_vcs = {r: list(v) for r, v in self.recv_vcs.items()}
        twin.inflight_peak = dict(self.inflight_peak)
        return twin


def _render_tail(sim: _Sim, actions: list[Action]) -> tuple[str, ...]:
    """Re-render the tail of a trace by replaying it on a fresh sim."""
    fresh = _Sim(sim.m)
    lines: list[str] = []
    for action in actions:
        lines.append(fresh.render_action(action))
        fresh.step(action)
    if len(lines) > TRACE_TAIL:
        omitted = len(lines) - TRACE_TAIL
        lines = [f"... {omitted} earlier step(s) elided ..."] + lines[-TRACE_TAIL:]
    return tuple(lines)


def _blocked_summary(sim: _Sim) -> str:
    stuck = []
    for rank in range(sim.m.n_ranks):
        op = sim.op_at(rank)
        if op is not None:
            stuck.append(op.render())
    head = ", ".join(stuck[:6])
    more = f" (+{len(stuck) - 6} more)" if len(stuck) > 6 else ""
    return f"{len(stuck)} rank(s) blocked: {head}{more}"


def _explore(
    model: CommModel, max_states: int, deadline: float | None
) -> tuple[Counterexample | None, int, bool]:
    """DFS over interleavings for P1 (deadlock) and P2 (message leak).

    Returns (first counterexample or None, transitions executed,
    budget-exhausted flag).  Branches only at ambiguous recv matches;
    branch-point states are hashed so converging paths merge.
    """
    transitions = 0
    seen: set[tuple] = set()
    stack: list[tuple[_Sim, Action]] = []
    sim: _Sim | None = _Sim(model)
    pending: Action | list[Action] | None = sim.choose()
    while True:
        if sim is None:
            if not stack:
                return None, transitions, False
            sim, action = stack.pop()
            pending = action
        assert sim is not None
        if pending is None:
            if sim.complete():
                leaked = {r: q for r, q in sim.queues.items() if q}
                if leaked:
                    route, entries = next(iter(sorted(leaked.items())))
                    detail = (
                        f"{sum(len(q) for q in leaked.values())} message(s) "
                        f"never consumed on {len(leaked)} route(s); first: "
                        f"r{route[0]}->r{route[1]} tags "
                        f"{[e[0] for e in entries]}"
                    )
                    return (
                        Counterexample(
                            "P2", model.label, tuple(sim.actions),
                            _render_tail(sim, sim.actions), detail,
                        ),
                        transitions, False,
                    )
            else:
                return (
                    Counterexample(
                        "P1", model.label, tuple(sim.actions),
                        _render_tail(sim, sim.actions), _blocked_summary(sim),
                    ),
                    transitions, False,
                )
            sim = None  # path closed clean: backtrack
            continue
        if isinstance(pending, list):
            key = sim.snapshot()
            if key in seen:
                sim = None
                continue
            seen.add(key)
            for alternative in pending[1:]:
                stack.append((sim.fork(), alternative))
            pending = pending[0]
        sim.step(pending)
        transitions += 1
        if transitions >= max_states or (
            transitions % 1024 == 0
            and deadline is not None
            and time.monotonic() > deadline
        ):
            return None, transitions, True
        pending = sim.choose()


def _check_buffers(model: CommModel) -> tuple[Counterexample | None, int]:
    """P3 via vector clocks on one canonical run (see module docstring).

    Returns (counterexample or None, transitions of the canonical run).
    """
    sim = _Sim(model, vc=True)
    while True:
        choice = sim.choose()
        if choice is None:
            break
        sim.step(choice if not isinstance(choice, list) else choice[0])
    transitions = len(sim.actions)

    # Static slot overflow: one message larger than its pooled ring slot.
    if model.slot_atoms > 0:
        for rank, program in enumerate(model.programs):
            for op in program:
                if op.kind == SEND and op.atoms > model.slot_atoms:
                    return (
                        Counterexample(
                            "P3", model.label, (), (),
                            f"{op.render()} carries {op.atoms} atoms > "
                            f"slot capacity {model.slot_atoms} "
                            f"(GhostBudget max_atoms_per_message)",
                            route=(rank, op.peer), threshold=model.slot_atoms,
                        ),
                        transitions,
                    )

    # Per-route capacity: the RDMA ring plane recycles ``ring_depth``
    # slots per peer (§3.4 overwrite hazard); the message transport
    # pools one dedicated slot per tagged message, so its bound is the
    # route's distinct-tag count (exceedable only by double-posting).
    def capacity(route: tuple[int, int]) -> int:
        if model.rings:
            return model.ring_depth
        tags = set()
        src, dst = route
        for op in model.programs[src]:
            if op.kind == SEND and op.peer == dst:
                tags.add(op.tag)
        return len(tags)

    worst_route: tuple[int, int] | None = None
    worst = 0
    worst_cap = 0
    for route, sends in sim.send_vcs.items():
        cap = capacity(route)
        for i, send_vc in enumerate(sends):
            if i + 1 <= cap:  # even zero frees cannot overflow yet
                continue
            # Adversarial delay keeps message j <= i in flight unless
            # its recv happens-before this send.
            recvs = sim.recv_vcs.get(route, [])
            freed = 0
            for j in range(i + 1):
                if j < len(recvs):
                    recv_vc = recvs[j]
                    if all(recv_vc[k] <= send_vc[k] for k in range(len(send_vc))):
                        freed += 1
            concurrent = (i + 1) - freed
            if concurrent - cap > worst - worst_cap:
                worst, worst_route, worst_cap = concurrent, route, cap
    if worst_route is None or worst <= worst_cap:
        return None, transitions

    # Concrete witness: the lazy scheduler defers every recv until
    # nothing else is enabled, realizing the adversarial bound.
    lazy = _Sim(model)
    while True:
        choice = lazy.choose(defer_recv_all=True)
        if choice is None:
            break
        lazy.step(choice if not isinstance(choice, list) else choice[0])
    peak = lazy.inflight_peak.get(worst_route, 0)
    # Truncate the witness just past the moment the route peaked.
    cut = len(lazy.actions)
    replayed = _Sim(model)
    for n, action in enumerate(lazy.actions, start=1):
        replayed.step(action)
        if replayed.inflight_peak.get(worst_route, 0) >= peak:
            cut = n
            break
    actions = tuple(lazy.actions[:cut])
    src, dst = worst_route
    plane = "ring" if model.rings else "pooled slot"
    bytes_note = (
        f" (~{worst * model.slot_atoms} atoms vs "
        f"{worst_cap * model.slot_atoms} budgeted)"
        if model.slot_atoms else ""
    )
    detail = (
        f"route r{src}->r{dst}: {worst} message(s) concurrently in flight "
        f"under adversarial delay, {plane} capacity {worst_cap}{bytes_note} "
        f"(witness schedule reaches {peak})"
    )
    return (
        Counterexample(
            "P3", model.label, actions, _render_tail(lazy, list(actions)),
            detail, route=worst_route, threshold=worst_cap,
        ),
        transitions + len(lazy.actions),
    )


def _check_ladder(model: CommModel) -> Counterexample | None:
    """P4: the degradation ladder must be a finite, non-repeating descent."""
    if model.max_retries < 1:
        return Counterexample(
            "P4", model.label, (), (),
            f"retry policy allows {model.max_retries} retries — the ladder "
            "can never be entered",
        )
    seen: set[str] = set()
    for tier in model.ladder:
        if tier in seen:
            chain = " -> ".join(model.ladder)
            return Counterexample(
                "P4", model.label, (), tuple([chain]),
                f"degradation ladder revisits tier {tier!r}: {chain} — "
                "retry exhaustion would cycle forever",
            )
        seen.add(tier)
    return None


def verify_model(
    model: CommModel,
    *,
    max_states: int = 500_000,
    budget_s: float | None = 30.0,
) -> VerifyResult:
    """Check P1–P4 on one model within a state/wall budget.

    Budget exhaustion marks the result ``incomplete`` (deadlock freedom
    unproven) rather than passing silently.
    """
    t0 = time.monotonic()
    deadline = t0 + budget_s if budget_s is not None else None
    result = VerifyResult(label=model.label)

    cex = _check_ladder(model)
    if cex is not None:
        result.counterexamples.append(cex)

    explored, transitions, exhausted = _explore(model, max_states, deadline)
    result.states += transitions
    result.incomplete = exhausted
    if explored is not None:
        result.counterexamples.append(explored)

    # Buffer analysis needs a completing canonical run; under a
    # deadlock the P1 trace is the actionable finding.
    if explored is None or explored.prop != "P1":
        cex, canonical = _check_buffers(model)
        result.states += canonical
        if cex is not None:
            result.counterexamples.append(cex)

    result.counterexamples.sort(key=lambda c: c.prop)
    result.wall_ms = (time.monotonic() - t0) * 1e3
    return result


def replay(model: CommModel, cex: Counterexample) -> bool:
    """Re-execute a counterexample and confirm it violates its property."""
    if cex.prop == "P4":
        return _check_ladder(model) is not None
    sim = _Sim(model)
    try:
        for action in cex.actions:
            sim.step(action)
    except (AssertionError, IndexError, KeyError):
        return False
    if cex.prop == "P1":
        return sim.choose() is None and not sim.complete()
    if cex.prop == "P2":
        return sim.complete() and any(q for q in sim.queues.values())
    if cex.prop == "P3":
        if not cex.actions:  # static slot overflow: recheck the program
            return any(
                op.kind == SEND and op.atoms > model.slot_atoms
                for program in model.programs
                for op in program
            )
        return sim.inflight_peak.get(cex.route, 0) > cex.threshold
    return False


def findings_from(results: list[VerifyResult]) -> list[Finding]:
    """Render verification results as ``repro-analysis/1`` findings."""
    findings: list[Finding] = []
    for result in results:
        for cex in result.counterexamples:
            findings.append(Finding(
                rule=cex.prop,
                message=f"{PROPERTIES[cex.prop]} — {cex.detail}",
                path=cex.label,
                detail="\n".join(cex.trace),
            ))
        if result.incomplete:
            findings.append(Finding(
                rule="P1",
                message=(
                    "state budget exhausted before the interleaving space "
                    "closed — deadlock freedom unproven"
                ),
                path=result.label,
                detail=f"explored {result.states} transition(s)",
            ))
    return findings


def verify_scenario(
    scenario: dict,
    *,
    max_states: int = 500_000,
    budget_s: float | None = 30.0,
) -> VerifyResult:
    """Extract and verify one ``repro-scenario/1`` document."""
    from repro.analysis.protomc.extract import model_from_scenario

    return verify_model(
        model_from_scenario(scenario), max_states=max_states, budget_s=budget_s
    )
