"""Extract per-rank communication programs from scenarios and exchanges.

Three entry points, cheapest first:

* :func:`model_from_profile` — pure arithmetic from a
  :class:`~repro.analysis.commlint.CommProfile` + rank grid + pattern
  (what ``repro verify`` runs over the whole fleet);
* :func:`model_from_scenario` — derives grid/pattern/budget from a
  ``repro-scenario/1`` document and delegates to the profile path;
* :func:`model_from_exchange` — reads the *live* route tables of a
  built :class:`~repro.core.exchange_base.GhostExchange` (selfcheck
  cross-validates this against the arithmetic extraction).

Conventions (mirroring ``repro.core``):

* p2p with Newton: recvs over the 13-offset half shell, sends over its
  negation; ``newton=False`` exchanges the full 26-shell (62/124 at
  radius 2).  Tags carry the receive-side offset, so aliased peers on
  tiny grids stay distinguishable.
* 3-stage: the :func:`~repro.core.patterns.three_stage_swaps` schedule
  with a **dimension fence** between dim groups — a y-swap payload
  contains forwarded x ghosts, which is exactly the ordering dependency
  the checker must see.
* reverse stage: every forward flow flipped (forces flow back).
* ``rdma=True`` adds the end-of-stage fence of section 3.4.
* self-routes (periodic wrap onto the own rank) are local copies, not
  messages: skipped symmetrically on both sides.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.analysis.protomc.model import FENCE, RECV, SEND, CommModel, Op
from repro.core.patterns import half_shell_offsets, shell_offsets, three_stage_swaps

if TYPE_CHECKING:
    from repro.analysis.commlint import CommProfile
    from repro.core.exchange_base import GhostExchange

#: Canonical rank grid for roles that do not carry one (model sweep).
CANONICAL_GRID = (3, 3, 3)

#: Stage name -> short tag prefix used in message tags.
_STAGE_TAG = {"borders": "bord", "forward": "fwd", "reverse": "rev"}


def grid_peer(
    rank: int, offset: tuple[int, int, int], grid: tuple[int, int, int]
) -> int:
    """Rank at periodic grid ``offset`` from ``rank`` (x-major layout)."""
    gx, gy, gz = grid
    x, y, z = rank % gx, (rank // gx) % gy, rank // (gx * gy)
    return (
        (x + offset[0]) % gx
        + gx * ((y + offset[1]) % gy)
        + gx * gy * ((z + offset[2]) % gz)
    )


def degradation_ladder(pattern: str) -> tuple[str, ...]:
    """The retry-degradation chain starting at ``pattern``.

    Follows the live exchange classes' ``fallback_pattern`` attributes
    so the model can never drift from the runtime ladder.  A cycle in
    the class attributes is preserved (truncated one tier past the
    repeat) for P4 to flag.
    """
    from repro.core.fine_p2p import FineGrainedP2PExchange
    from repro.core.p2p import P2PExchange
    from repro.core.three_stage import ThreeStageExchange

    fallback = {
        cls.name: cls.fallback_pattern
        for cls in (FineGrainedP2PExchange, P2PExchange, ThreeStageExchange)
    }
    chain: list[str] = []
    tier: str | None = pattern
    while tier is not None:
        chain.append(tier)
        if chain.count(tier) > 1:  # cycle: keep the repeat as evidence
            break
        tier = fallback.get(tier)
    return tuple(chain)


def _p2p_stage_ops(
    rank: int,
    grid: tuple[int, int, int],
    stage: str,
    newton: bool,
    radius: int,
    atoms: int,
) -> list[Op]:
    """One p2p stage of one rank: all sends posted, then all recvs."""
    recv_offsets = half_shell_offsets(radius) if newton else shell_offsets(radius)
    prefix = _STAGE_TAG[stage]
    forward = stage != "reverse"
    ops: list[Op] = []
    # Forward flow: send along -o, receive along +o (tags keyed by the
    # receive-side offset).  Reverse flips every flow: forces travel
    # back along the routes ghosts arrived on.
    for o in recv_offsets:
        o_send = tuple(-c for c in o)
        send_off, recv_off = (o_send, o) if forward else (o, o_send)
        peer_s = grid_peer(rank, send_off, grid)
        peer_r = grid_peer(rank, recv_off, grid)
        if peer_s != rank:
            ops.append(Op(SEND, rank, peer_s, (prefix, o), stage, atoms))
        if peer_r != rank:
            ops.append(Op(RECV, rank, peer_r, (prefix, o), stage, atoms))
    # Group sends first: the runtime posts every send before draining
    # (exchange_base._forward_array), and P3's burst analysis needs it.
    ops.sort(key=lambda op: op.kind != SEND)
    return ops


def _three_stage_ops(
    rank: int,
    grid: tuple[int, int, int],
    stage: str,
    radius: int,
    atoms: int,
) -> list[Op]:
    """One 3-stage stage: the swap schedule with dimension fences."""
    swaps = three_stage_swaps(radius)
    prefix = _STAGE_TAG[stage]
    if stage == "reverse":  # forces retrace the swaps backwards
        swaps = list(reversed(swaps))
    ops: list[Op] = []
    prev_dim: int | None = None
    for k, swap in enumerate(swaps):
        if prev_dim is not None and swap.dim != prev_dim:
            # A swap in dim d forwards ghosts delivered by dim d-1: the
            # dependency is a barrier between dimension groups.
            ops.append(Op(FENCE, rank, -1, (prefix, "dim", prev_dim), stage))
        prev_dim = swap.dim
        direction = swap.dir if stage != "reverse" else -swap.dir
        vec = tuple(direction if d == swap.dim else 0 for d in range(3))
        dst = grid_peer(rank, vec, grid)
        src = grid_peer(rank, tuple(-c for c in vec), grid)
        tag = (prefix, "3s", k)
        if dst != rank:
            ops.append(Op(SEND, rank, dst, tag, stage, atoms))
        if src != rank:
            ops.append(Op(RECV, rank, src, tag, stage, atoms))
    return ops


def build_programs(
    grid: tuple[int, int, int],
    pattern: str,
    *,
    newton: bool = True,
    radius: int = 1,
    rdma: bool = False,
    stage_order: tuple[str, ...] = ("borders", "forward", "reverse"),
    atoms: int = 0,
) -> tuple[tuple[Op, ...], ...]:
    """Per-rank op programs for a pattern on a rank grid."""
    n_ranks = math.prod(grid)
    programs: list[tuple[Op, ...]] = []
    for rank in range(n_ranks):
        ops: list[Op] = []
        for stage in stage_order:
            if pattern == "3stage":
                ops.extend(_three_stage_ops(rank, grid, stage, radius, atoms))
            else:  # p2p / parallel-p2p share the direct-neighbor protocol
                ops.extend(
                    _p2p_stage_ops(rank, grid, stage, newton, radius, atoms)
                )
            if rdma:
                # Section 3.4: the RDMA plane fences once per stage so
                # ring slots recycle before the next stage's PUTs.
                ops.append(Op(FENCE, rank, -1, ("stage", stage), stage))
        programs.append(tuple(ops))
    return tuple(programs)


def model_from_profile(
    profile: CommProfile,
    grid: tuple[int, int, int],
    pattern: str,
    *,
    reorder: bool = False,
    max_retries: int = 8,
    label: str | None = None,
) -> CommModel:
    """Build the checkable model of one comm profile + rank grid."""
    from repro.core.ghost import GhostBudget

    budget = GhostBudget(
        a=profile.sub_box_edge, r=profile.rcomm, density=profile.density
    )
    slot_atoms = budget.max_atoms_per_message()
    programs = build_programs(
        grid,
        pattern,
        newton=profile.newton,
        radius=profile.shell_radius,
        rdma=profile.rdma,
        stage_order=profile.stage_order,
        atoms=slot_atoms,
    )
    return CommModel(
        label=label or f"{profile.label}/{pattern}",
        n_ranks=math.prod(grid),
        programs=programs,
        ring_depth=profile.ring_depth,
        slot_atoms=slot_atoms,
        rings=profile.rdma,
        reorder=reorder,
        ladder=degradation_ladder(pattern),
        max_retries=max_retries,
    )


def model_from_scenario(scenario: dict, pattern: str | None = None) -> CommModel:
    """The checkable model of one ``repro-scenario/1`` document.

    ``pattern`` defaults to the scenario's first (most aggressive)
    pattern.  Model-sweep scenarios have no rank grid of their own and
    are checked on the canonical :data:`CANONICAL_GRID`.
    """
    from repro.scenarios.validate import comm_profile

    p = scenario["params"]
    role = scenario["role"]
    if pattern is None:
        if role == "bench":
            pattern = str(p.get("pattern", "p2p"))
        else:
            pats = p.get("patterns") or ["p2p"]
            pattern = str(pats[0])
    grid = CANONICAL_GRID if role == "model" else tuple(p["grid"])
    reorder = False
    max_retries = 8
    if role == "fault":
        from repro.faults.plan import template_plan

        kind = str(scenario["axes"]["fault"])
        plan = template_plan(kind, seed=int(scenario["seed"]))
        max_retries = plan.policy.max_retries
        reorder = any(f.kind == "reorder" for f in plan.faults)
    return model_from_profile(
        comm_profile(scenario),
        grid,  # type: ignore[arg-type]
        pattern,
        reorder=reorder,
        max_retries=max_retries,
        label=f"{scenario['id']}/{pattern}",
    )


def model_from_exchange(
    exchange: GhostExchange,
    *,
    ring_depth: int = 4,
    slot_atoms: int = 0,
    label: str | None = None,
) -> CommModel:
    """Model a *live* exchange from its built route tables.

    Call after ``exchange.borders()`` so the routes exist.  Forward
    tags are shared by both endpoints of a route, so the reverse stage
    is the exact flip: sends retrace recv routes and vice versa.
    """
    programs: list[tuple[Op, ...]] = []
    n_ranks = exchange.world.size
    rdma = bool(getattr(exchange, "rdma", False))
    for rank in range(n_ranks):
        routes = exchange.routes[rank]
        ops: list[Op] = []
        for stage in ("borders", "forward"):
            prefix = _STAGE_TAG[stage]
            for s in routes.sends:
                if s.peer != rank:
                    ops.append(
                        Op(SEND, rank, s.peer, (prefix,) + tuple(s.tag),
                           stage, s.count)
                    )
            for r in routes.recvs:
                if r.peer != rank:
                    ops.append(
                        Op(RECV, rank, r.peer, (prefix,) + tuple(r.tag),
                           stage, r.recv_count)
                    )
            if rdma:
                ops.append(Op(FENCE, rank, -1, ("stage", stage), stage))
        for r in routes.recvs:  # reverse: forces back along recv routes
            if r.peer != rank:
                ops.append(
                    Op(SEND, rank, r.peer, ("rev",) + tuple(r.tag),
                       "reverse", r.recv_count)
                )
        for s in routes.sends:
            if s.peer != rank:
                ops.append(
                    Op(RECV, rank, s.peer, ("rev",) + tuple(s.tag),
                       "reverse", s.count)
                )
        if rdma:
            ops.append(Op(FENCE, rank, -1, ("stage", "reverse"), "reverse"))
        programs.append(tuple(ops))
    return CommModel(
        label=label or f"live/{exchange.name}",
        n_ranks=n_ranks,
        programs=tuple(programs),
        ring_depth=ring_depth,
        slot_atoms=slot_atoms,
        rings=bool(getattr(exchange, "rdma", False)),
        ladder=degradation_ladder(exchange.name),
    )
