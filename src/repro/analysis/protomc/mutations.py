"""Seeded protocol mutations: each must be caught by its named property.

The battery is the checker's own regression harness (wired into
selfcheck and ``repro verify --mutations``): every mutation injects a
real §3.3/§3.4 failure mode into a known-clean model, and the checker
must (a) flag it, (b) name the *right* property, and (c) produce a
counterexample that replays.

==================  ====  =====================================================
drop-recv-post      P2    a forward recv is never posted — the matching PUT
                          stays in the ring forever (message leak)
swap-stage-order    P1    one rank runs reverse before forward — classic
                          cross-stage deadlock (everyone waits on everyone)
shrink-ring         P3    ring depth 1 under a multi-stage burst — the §3.4
                          double-buffer overwrite hazard
break-newton        P1    one send retargeted to the wrong neighbor — the
                          half-shell symmetry CL005 assumes is broken, the
                          rightful receiver blocks forever
cyclic-ladder       P4    fallback chain revisits a tier — retry exhaustion
                          would livelock instead of degrading
==================  ====  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.protomc.checker import replay, verify_model
from repro.analysis.protomc.extract import build_programs, degradation_ladder
from repro.analysis.protomc.model import RECV, SEND, CommModel, Op


def base_model(grid: tuple[int, int, int] = (2, 2, 2)) -> CommModel:
    """A known-clean rdma p2p/newton model the mutations corrupt.

    The RDMA plane (per-peer rings + end-of-stage fences) is the
    interesting one: it is where ring-capacity P3 bites, and its fences
    exercise the barrier semantics P1 must reason through.
    """
    return CommModel(
        label=f"mutation-base/p2p/{'x'.join(map(str, grid))}",
        n_ranks=grid[0] * grid[1] * grid[2],
        programs=build_programs(grid, "p2p", newton=True, rdma=True, atoms=64),
        ring_depth=4,
        slot_atoms=64,
        rings=True,
        ladder=degradation_ladder("p2p"),
    )


def _edit_rank(
    model: CommModel, rank: int, program: tuple[Op, ...], label: str
) -> CommModel:
    programs = list(model.programs)
    programs[rank] = program
    return model.with_programs(tuple(programs), label=f"{model.label}+{label}")


def drop_recv_post(model: CommModel) -> CommModel:
    """Remove rank 0's last forward recv: its message leaks (P2).

    Runs under a reorder fault plane so later traffic on the route can
    overtake the orphaned message — the protocol then *completes* with
    the PUT still in flight, which is exactly what distinguishes a leak
    (P2) from a deadlock (P1).
    """
    program = model.programs[0]
    idx = max(
        i for i, op in enumerate(program)
        if op.kind == RECV and op.stage == "forward"
    )
    mutated = _edit_rank(
        model, 0, program[:idx] + program[idx + 1:], "drop-recv-post"
    )
    return replace(mutated, reorder=True)


def swap_stage_order(model: CommModel) -> CommModel:
    """Rank 0 runs reverse before forward; everyone else doesn't (P1)."""
    program = model.programs[0]
    by_stage = {
        stage: tuple(op for op in program if op.stage == stage)
        for stage in ("borders", "forward", "reverse")
    }
    swapped = by_stage["borders"] + by_stage["reverse"] + by_stage["forward"]
    return _edit_rank(model, 0, swapped, "swap-stage-order")


def shrink_ring(model: CommModel) -> CommModel:
    """Ring depth 1 cannot absorb the border+forward burst (P3)."""
    return replace(model, ring_depth=1, label=f"{model.label}+shrink-ring")


def break_newton(model: CommModel) -> CommModel:
    """Retarget one forward send of rank 0 to the wrong peer (P1)."""
    program = list(model.programs[0])
    idx = next(
        i for i, op in enumerate(program)
        if op.kind == SEND and op.stage == "forward"
    )
    op = program[idx]
    wrong = next(
        p for p in range(model.n_ranks) if p not in (op.peer, op.rank)
    )
    program[idx] = replace(op, peer=wrong)
    return _edit_rank(model, 0, tuple(program), "break-newton")


def cyclic_ladder(model: CommModel) -> CommModel:
    """Fallback chain that revisits its starting tier (P4)."""
    return replace(
        model,
        ladder=("parallel-p2p", "p2p", "parallel-p2p"),
        label=f"{model.label}+cyclic-ladder",
    )


#: name -> (expected property, mutator)
MUTATIONS: dict[str, tuple[str, object]] = {
    "drop-recv-post": ("P2", drop_recv_post),
    "swap-stage-order": ("P1", swap_stage_order),
    "shrink-ring": ("P3", shrink_ring),
    "break-newton": ("P1", break_newton),
    "cyclic-ladder": ("P4", cyclic_ladder),
}


@dataclass(frozen=True)
class MutationOutcome:
    """One battery entry: was the mutation caught, named, replayable?"""

    name: str
    expected: str  # the property that must flag it
    caught: bool  # a counterexample with the expected property exists
    replayed: bool  # that counterexample replays and re-violates
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.caught and self.replayed

    def render(self) -> str:
        """``name: caught/MISSED`` with the expected property."""
        status = "caught+replayed" if self.ok else "MISSED"
        return f"{self.name}: expected {self.expected} -> {status} ({self.detail})"


def run_mutation_battery(
    model: CommModel | None = None, *, max_states: int = 200_000
) -> list[MutationOutcome]:
    """Verify every mutation is caught by its named property."""
    clean = model if model is not None else base_model()
    outcomes: list[MutationOutcome] = []
    for name, (expected, mutate) in MUTATIONS.items():
        mutated = mutate(clean)  # type: ignore[operator]
        result = verify_model(mutated, max_states=max_states)
        hits = [c for c in result.counterexamples if c.prop == expected]
        caught = bool(hits)
        replayed = caught and replay(mutated, hits[0])
        detail = hits[0].detail if hits else (
            "no counterexample" if result.ok
            else f"flagged {[c.prop for c in result.counterexamples]} instead"
        )
        outcomes.append(MutationOutcome(name, expected, caught, replayed, detail))
    return outcomes
