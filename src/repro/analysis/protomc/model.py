"""Communication-protocol model: per-rank op programs + channel semantics.

A :class:`CommModel` is the explicit-state-checkable abstraction of one
scenario's communication schedule: every rank runs a straight-line
program of :class:`Op`s (sends, recvs, fences) against per-route FIFO
channels.  The semantics mirror the repo's exchange discipline:

* **send** is non-blocking — an RDMA PUT lands in the remote ring
  whether or not the receiver has drained it (the section 3.4 hazard;
  buffer pressure is property P3's job, not a send-side block);
* **recv** blocks until the *head* of its ``(src, dst)`` channel carries
  the expected tag — or, under a reorder fault plane
  (``reorder=True``), until *any* in-flight entry matches;
* **fence** is a global barrier over every rank whose program contains
  the same fence tag (the 3-stage dimension barrier, the RDMA
  end-of-stage fence).

The checker (:mod:`repro.analysis.protomc.checker`) explores
interleavings of these programs; the extractor
(:mod:`repro.analysis.protomc.extract`) builds them from scenarios,
:class:`~repro.analysis.commlint.CommProfile`\\ s, or live exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

SEND = "send"
RECV = "recv"
FENCE = "fence"

#: The four verified properties, in severity order.
PROPERTIES: dict[str, str] = {
    "P1": "deadlock freedom: no reachable state blocks every rank on recv/fence",
    "P2": "no message leaks: every posted send is consumed before step end",
    "P3": "buffer safety: per-route in-flight load never exceeds ring capacity",
    "P4": "ladder termination: the degradation ladder is a well-founded descent",
}


@dataclass(frozen=True)
class Op:
    """One protocol action of one rank's straight-line program."""

    kind: str  # SEND | RECV | FENCE
    rank: int
    peer: int = -1  # destination (send) / source (recv); -1 for fences
    tag: tuple = ()  # message tag (send/recv) or barrier tag (fence)
    stage: str = ""  # borders | forward | reverse (provenance for traces)
    atoms: int = 0  # modeled payload (atom count) for buffer accounting

    def render(self) -> str:
        """Human-readable trace line, e.g. ``r3 send->r5 ('fwd', (1, 0, 0))``."""
        if self.kind == FENCE:
            return f"r{self.rank} fence {self.tag}"
        arrow = f"->r{self.peer}" if self.kind == SEND else f"<-r{self.peer}"
        return f"r{self.rank} {self.kind}{arrow} {self.tag}"


@dataclass(frozen=True)
class CommModel:
    """One scenario's communication state machine, ready to check.

    ``programs[r]`` is rank ``r``'s op sequence.  ``ring_depth`` and
    ``slot_atoms`` carry the pooled GhostBudget sizing P3 checks
    against: each in-flight message occupies one ring slot of
    ``slot_atoms`` capacity.  ``ladder`` is the degradation chain P4
    checks for well-foundedness (tier names, first = starting pattern).
    """

    label: str
    n_ranks: int
    programs: tuple[tuple[Op, ...], ...]
    ring_depth: int = 4
    slot_atoms: int = 0
    #: True when the RDMA ring plane is in use: reverse payloads recycle
    #: through ``ring_depth``-deep per-peer rings (the §3.4 hazard), so
    #: P3 bounds per-route in-flight load by ``ring_depth``.  False on
    #: the message transport, where the pool dedicates one slot per
    #: tagged message and the bound is the per-route tag count.
    rings: bool = False
    reorder: bool = False
    ladder: tuple[str, ...] = ()
    max_retries: int = 8
    #: fence tag -> frozenset of participating ranks (derived; cached here
    #: so mutations that edit programs keep participants consistent).
    fence_ranks: dict[tuple, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.programs) != self.n_ranks:
            raise ValueError(
                f"{self.label}: {len(self.programs)} programs for "
                f"{self.n_ranks} ranks"
            )
        if not self.fence_ranks:
            ranks_of: dict[tuple, set[int]] = {}
            for rank, program in enumerate(self.programs):
                for op in program:
                    if op.kind == FENCE:
                        ranks_of.setdefault(op.tag, set()).add(rank)
            object.__setattr__(
                self,
                "fence_ranks",
                {tag: frozenset(ranks) for tag, ranks in ranks_of.items()},
            )

    @property
    def total_ops(self) -> int:
        return sum(len(p) for p in self.programs)

    def with_programs(
        self, programs: tuple[tuple[Op, ...], ...], label: str | None = None
    ) -> CommModel:
        """A copy with replaced programs (fence participants re-derived)."""
        return replace(
            self,
            programs=programs,
            label=label or self.label,
            fence_ranks={},
        )
