"""Explicit-state communication-protocol model checker (P1–P4).

Extracts per-rank send/recv/fence programs from scenarios, comm
profiles, or live exchanges (:mod:`~repro.analysis.protomc.extract`),
exhaustively explores their interleavings with partial-order reduction
(:mod:`~repro.analysis.protomc.checker`), and renders violations as
``repro-analysis/1`` findings.  ``python -m repro verify`` runs it over
the scenario fleet; validation level ``L2.5`` runs it per scenario.
"""

from repro.analysis.protomc.checker import (
    Counterexample,
    VerifyResult,
    findings_from,
    replay,
    verify_model,
    verify_scenario,
)
from repro.analysis.protomc.extract import (
    build_programs,
    degradation_ladder,
    model_from_exchange,
    model_from_profile,
    model_from_scenario,
)
from repro.analysis.protomc.model import PROPERTIES, CommModel, Op
from repro.analysis.protomc.mutations import (
    MUTATIONS,
    MutationOutcome,
    base_model,
    run_mutation_battery,
)

__all__ = [
    "MUTATIONS",
    "PROPERTIES",
    "CommModel",
    "Counterexample",
    "MutationOutcome",
    "Op",
    "VerifyResult",
    "base_model",
    "build_programs",
    "degradation_ladder",
    "findings_from",
    "model_from_exchange",
    "model_from_profile",
    "model_from_scenario",
    "replay",
    "run_mutation_battery",
    "verify_model",
    "verify_scenario",
]
