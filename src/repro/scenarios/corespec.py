"""The core fleet spec: the paper's configuration space as one document.

:func:`core_spec` is the in-tree source of ``examples/fleet_core.spec.json``
(a test asserts the committed file equals this serialization).  The
expansion covers:

* the legacy differential 24-config grid (4 rank grids x 3 cutoffs x
  2 Newton modes) under each observability regime — ``off`` in full,
  telemetry/rankprof sampled down to 12 each so the CI sampled tier is
  exactly 24 + 12 + 12 = 48 configs;
* a 48-scenario fault plane (2 grids x 2 cutoffs x 2 Newton x 6
  absorbable plan templates);
* an 80-scenario analytic model sweep (potential x variant x the
  Fig. 13 node ladder x Newton x stencil radius);
* the 6 bench configs of the ``ci`` suite (smoke + comm-fastpath).

Total: 206 scenarios in the full tier (>= 200 by construction).
"""

from __future__ import annotations

import json

#: The legacy hand-written differential grid (order matters: the seed
#: formula indexes this list).
LEGACY_GRIDS = ((1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2))
LEGACY_CUTOFFS = (1.3, 1.55, 1.8)
LEGACY_BOX_EDGE = 9.0
LEGACY_ATOMS = 150
LEGACY_SKIN = 0.3


def _geometry(grid: tuple[int, int, int]) -> dict:
    return {
        "grid": list(grid),
        "box_edge": LEGACY_BOX_EDGE,
        "atoms": LEGACY_ATOMS,
    }


def _equivalence_block(name: str, observability: str, sample: int | str) -> dict:
    return {
        "name": name,
        "role": "equivalence",
        "axes": {
            "geometry": [_geometry(g) for g in LEGACY_GRIDS],
            "cutoff": list(LEGACY_CUTOFFS),
            "newton": [True, False],
        },
        "fixed": {"observability": observability},
        "tolerances": {"force_atol": 1e-10},
        "sample": sample,
    }


def core_spec() -> dict:
    """The committed ``fleet-core`` spec as a plain dict."""
    from repro.faults.plan import TEMPLATE_KINDS

    return {
        "schema": "repro-scenario-spec/1",
        "name": "fleet-core",
        "note": "paper configuration space: equivalence grid under every "
                "observability regime, fault plane, Fig. 13 model sweep, "
                "ci bench configs",
        "defaults": {
            "skin": LEGACY_SKIN,
            "dt": 0.002,
            "neighbor_every": 3,
            "steps": 2,
            "patterns": ["parallel-p2p", "p2p", "3stage"],
            "rdma": False,
        },
        "blocks": [
            _equivalence_block("equivalence-off", "off", "all"),
            _equivalence_block("equivalence-telemetry", "telemetry", 12),
            _equivalence_block("equivalence-rankprof", "rankprof", 12),
            {
                "name": "fault-plane",
                "role": "fault",
                "axes": {
                    "geometry": [_geometry((2, 1, 1)), _geometry((2, 2, 2))],
                    "cutoff": [1.3, 1.8],
                    "newton": [True, False],
                    "fault": list(TEMPLATE_KINDS),
                },
                "sample": 4,
            },
            {
                "name": "model-sweep",
                "role": "model",
                "axes": {
                    "potential": ["lj", "eam"],
                    "variant": ["ref", "opt"],
                    "nodes": [768, 2160, 6144, 18432, 36864],
                    "newton": [True, False],
                    "stencil": [1, 2],
                },
                "sample": 4,
            },
            {
                "name": "bench-ci",
                "role": "bench",
                "axes": {
                    "config": [
                        {"potential": "lj", "pattern": "3stage",
                         "grid": [2, 2, 2], "rdma": False},
                        {"potential": "lj", "pattern": "parallel-p2p",
                         "grid": [2, 2, 2], "rdma": True},
                        {"potential": "eam", "pattern": "parallel-p2p",
                         "grid": [2, 2, 2], "rdma": True},
                        {"potential": "lj", "pattern": "p2p",
                         "grid": [3, 3, 3], "rdma": False,
                         "cells": [6, 6, 6], "steps": 40},
                        {"potential": "lj", "pattern": "parallel-p2p",
                         "grid": [3, 3, 3], "rdma": True,
                         "cells": [6, 6, 6], "steps": 40},
                        {"potential": "eam", "pattern": "parallel-p2p",
                         "grid": [3, 3, 3], "rdma": True,
                         "cells": [5, 5, 5], "steps": 15},
                    ],
                },
                "sample": 3,
            },
        ],
    }


def dumps_core_spec() -> str:
    """Byte-stable serialization of :func:`core_spec` (the committed file)."""
    return json.dumps(core_spec(), indent=1, sort_keys=True) + "\n"
