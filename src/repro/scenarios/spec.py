"""Declarative scenario specs (``repro-scenario-spec/1``) and their expansion.

A *spec* is a small, hand-written JSON document that names axis products
over the paper's configuration space — geometry, potential, stencil
radius, node count, Newton mode, exchange variant, fault plane,
observability regime — and a *scenario* (``repro-scenario/1``) is one
fully concrete point of that product, ready to be validated (L0–L3, see
:mod:`repro.scenarios.validate`) and executed by the differential /
fault / bench gates.

Expansion is **deterministic**: axes multiply in the canonical
:data:`AXIS_ORDER`, ids are derived purely from the block name and the
axis values, seeds are a pure function of the axes (the equivalence
blocks reproduce the legacy 24-config seed formula exactly), and the
sampled-tier assignment hashes ids with ``crc32`` — the same spec always
serializes to byte-identical output, which CI asserts.

Spec document shape::

    {
      "schema": "repro-scenario-spec/1",
      "name": "fleet-core",
      "defaults": {"skin": 0.3, "steps": 2},
      "blocks": [
        {
          "name": "equivalence-off",
          "role": "equivalence",            # equivalence|fault|model|bench
          "axes": {"geometry": [...], "cutoff": [...], "newton": [...]},
          "fixed": {"observability": "off", "patterns": [...]},
          "tolerances": {"force_atol": 1e-10},
          "sample": "all"                   # or an int quota
        }, ...
      ]
    }
"""

from __future__ import annotations

import itertools
import json
import math
import zlib

#: Schema tag of the hand-written spec file.
SPEC_SCHEMA = "repro-scenario-spec/1"
#: Schema tag of one expanded, concrete scenario document.
SCENARIO_SCHEMA = "repro-scenario/1"
#: Schema tag of the generated fleet (list of scenarios) artifact.
FLEET_SCHEMA = "repro-scenario-fleet/1"

#: Scenario roles and the gate family each feeds.
ROLES = ("equivalence", "fault", "model", "bench")

#: Canonical axis multiplication order: expansion never depends on the
#: JSON key order of the spec, so serialization can sort keys freely.
AXIS_ORDER = (
    "geometry",
    "potential",
    "variant",
    "nodes",
    "stencil",
    "cutoff",
    "newton",
    "fault",
    "observability",
    "config",
)

#: Axes each role must / may declare (required, allowed).
ROLE_AXES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "equivalence": (
        ("geometry", "cutoff", "newton"),
        ("geometry", "cutoff", "newton", "stencil", "observability"),
    ),
    "fault": (
        ("geometry", "cutoff", "newton", "fault"),
        ("geometry", "cutoff", "newton", "fault", "stencil"),
    ),
    "model": (
        ("potential", "variant", "nodes"),
        ("potential", "variant", "nodes", "newton", "stencil"),
    ),
    "bench": (("config",), ("config",)),
}

OBSERVABILITY_REGIMES = ("off", "telemetry", "rankprof")
PATTERNS = ("3stage", "p2p", "parallel-p2p")
POTENTIALS = ("lj", "eam")
VARIANTS = ("ref", "opt")
#: The paper's node-count range (Figs. 11–15 sweep 768–36 864; axis
#: values must stay on real Tofu-D partition scales).
MAX_NODES = 82944
MAX_RANKS = 64  # executable scenarios run in-process

#: Executable roles build a real World/Simulation; the rest are priced
#: on the analytic model only.
EXECUTABLE_ROLES = ("equivalence", "fault")


class SpecError(ValueError):
    """A spec or scenario document failed a structural check."""


# -- small helpers ---------------------------------------------------------
def _is_grid(v: object) -> bool:
    return (
        isinstance(v, (list, tuple))
        and len(v) == 3
        and all(isinstance(g, int) and not isinstance(g, bool) and g >= 1 for g in v)
    )


def _num(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def stable_hash(text: str) -> int:
    """Deterministic 32-bit hash used for tier sampling (not security)."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def axis_fragment(axis: str, value: object) -> str:
    """The id fragment one axis value contributes (pure, collision-safe
    within one block because every axis value list is duplicate-free)."""
    if axis == "geometry":
        assert isinstance(value, dict)
        return "g" + "x".join(str(int(g)) for g in value["grid"])
    if axis == "cutoff":
        return f"c{value:g}"
    if axis == "newton":
        return "newton-on" if value else "newton-off"
    if axis == "nodes":
        return f"n{value}"
    if axis == "stencil":
        return f"s{value}"
    if axis == "config":
        assert isinstance(value, dict)
        grid = "x".join(str(int(g)) for g in value["grid"])
        tag = f"{value['potential']}-{value['pattern']}-{grid}"
        return tag + ("-rdma" if value.get("rdma") else "")
    return str(value)


# -- spec validation -------------------------------------------------------
def _axis_value_issues(axis: str, value: object, where: str) -> list[str]:
    """Structural constraints for one axis value; returns messages."""
    bad: list[str] = []
    if axis == "geometry":
        if not isinstance(value, dict):
            return [f"{where}: geometry must be an object with grid/box_edge/atoms"]
        if not _is_grid(value.get("grid")):
            bad.append(f"{where}: geometry.grid must be 3 positive ints")
        elif math.prod(value["grid"]) > MAX_RANKS:
            bad.append(
                f"{where}: geometry.grid implies {math.prod(value['grid'])} ranks "
                f"> {MAX_RANKS} (executable scenarios run in-process)"
            )
        if not (_num(value.get("box_edge")) and value["box_edge"] > 0):
            bad.append(f"{where}: geometry.box_edge must be > 0")
        atoms = value.get("atoms")
        if not (isinstance(atoms, int) and not isinstance(atoms, bool) and atoms >= 8):
            bad.append(f"{where}: geometry.atoms must be an int >= 8")
    elif axis == "cutoff":
        if not (_num(value) and value > 0):
            bad.append(f"{where}: cutoff must be a positive number")
    elif axis == "newton":
        if not isinstance(value, bool):
            bad.append(f"{where}: newton must be a bool")
    elif axis == "nodes":
        if not (isinstance(value, int) and not isinstance(value, bool)
                and 1 <= value <= MAX_NODES):
            bad.append(f"{where}: nodes must be an int in [1, {MAX_NODES}]")
    elif axis == "stencil":
        if value not in (1, 2):
            bad.append(f"{where}: stencil radius must be 1 or 2")
    elif axis == "potential":
        if value not in POTENTIALS:
            bad.append(f"{where}: potential must be one of {POTENTIALS}")
    elif axis == "variant":
        if value not in VARIANTS:
            bad.append(f"{where}: variant must be one of {VARIANTS}")
    elif axis == "fault":
        from repro.faults.plan import TEMPLATE_KINDS

        if value not in TEMPLATE_KINDS:
            bad.append(f"{where}: fault must be one of {TEMPLATE_KINDS}")
    elif axis == "observability":
        if value not in OBSERVABILITY_REGIMES:
            bad.append(
                f"{where}: observability must be one of {OBSERVABILITY_REGIMES}"
            )
    elif axis == "config":
        if not isinstance(value, dict):
            return [f"{where}: config must be an object"]
        if value.get("potential") not in POTENTIALS:
            bad.append(f"{where}: config.potential must be one of {POTENTIALS}")
        if value.get("pattern") not in PATTERNS:
            bad.append(f"{where}: config.pattern must be one of {PATTERNS}")
        if not _is_grid(value.get("grid")):
            bad.append(f"{where}: config.grid must be 3 positive ints")
        if not isinstance(value.get("rdma", False), bool):
            bad.append(f"{where}: config.rdma must be a bool")
        cells = value.get("cells", [4, 4, 4])
        if not _is_grid(cells):
            bad.append(f"{where}: config.cells must be 3 positive ints")
        steps = value.get("steps", 10)
        if not (isinstance(steps, int) and steps >= 1):
            bad.append(f"{where}: config.steps must be an int >= 1")
    return bad


def validate_spec(doc: object) -> list[str]:
    """Structural validation of a spec document; returns all problems."""
    issues: list[str] = []
    if not isinstance(doc, dict):
        return ["spec is not a JSON object"]
    if doc.get("schema") != SPEC_SCHEMA:
        issues.append(
            f"$.schema: expected {SPEC_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not (isinstance(doc.get("name"), str) and doc["name"]):
        issues.append("$.name: missing non-empty string")
    if not isinstance(doc.get("defaults", {}), dict):
        issues.append("$.defaults: must be an object")
    blocks = doc.get("blocks")
    if not (isinstance(blocks, list) and blocks):
        issues.append("$.blocks: missing non-empty array")
        return issues
    seen_names: set[str] = set()
    for i, block in enumerate(blocks):
        where = f"$.blocks[{i}]"
        if not isinstance(block, dict):
            issues.append(f"{where}: not an object")
            continue
        name = block.get("name")
        if not (isinstance(name, str) and name):
            issues.append(f"{where}.name: missing non-empty string")
            name = f"<block {i}>"
        if name in seen_names:
            issues.append(f"{where}.name: duplicate block name {name!r}")
        seen_names.add(name)
        role = block.get("role")
        if role not in ROLES:
            issues.append(f"{where}.role: {role!r} is not one of {ROLES}")
            continue
        axes = block.get("axes")
        if not (isinstance(axes, dict) and axes):
            issues.append(f"{where}.axes: missing non-empty object")
            continue
        required, allowed = ROLE_AXES[role]
        fixed = block.get("fixed", {})
        if not isinstance(fixed, dict):
            issues.append(f"{where}.fixed: must be an object")
            fixed = {}
        for ax in required:
            if ax not in axes and ax not in fixed:
                issues.append(
                    f"{where}.axes: role {role!r} requires axis {ax!r} "
                    "(as an axis or a fixed value)"
                )
        for ax, values in axes.items():
            if ax not in allowed:
                issues.append(
                    f"{where}.axes.{ax}: unknown axis for role {role!r} "
                    f"(allowed: {allowed})"
                )
                continue
            if not (isinstance(values, list) and values):
                issues.append(f"{where}.axes.{ax}: must be a non-empty array")
                continue
            frags = [
                axis_fragment(ax, v)
                for v in values
                if not _axis_value_issues(ax, v, "")
            ]
            if len(set(frags)) != len(values):
                issues.append(f"{where}.axes.{ax}: duplicate or invalid values")
            for j, v in enumerate(values):
                issues.extend(_axis_value_issues(ax, v, f"{where}.axes.{ax}[{j}]"))
        for ax, v in fixed.items():
            if ax in axes:
                issues.append(f"{where}.fixed.{ax}: also declared as an axis")
            if ax in AXIS_ORDER:
                issues.extend(_axis_value_issues(ax, v, f"{where}.fixed.{ax}"))
        sample = block.get("sample", "all")
        if not (
            sample == "all"
            or (isinstance(sample, int) and not isinstance(sample, bool) and sample >= 0)
        ):
            issues.append(f"{where}.sample: must be \"all\" or a non-negative int")
        if "tolerances" in block and not isinstance(block["tolerances"], dict):
            issues.append(f"{where}.tolerances: must be an object")
    return issues


# -- expansion -------------------------------------------------------------
def _flatten_axis(axis: str, value: object, params: dict) -> None:
    """Merge one axis value into the scenario params."""
    if axis == "geometry":
        assert isinstance(value, dict)
        params["grid"] = [int(g) for g in value["grid"]]
        params["box_edge"] = float(value["box_edge"])
        params["atoms"] = int(value["atoms"])
    elif axis == "config":
        assert isinstance(value, dict)
        params["potential"] = value["potential"]
        params["pattern"] = value["pattern"]
        params["grid"] = [int(g) for g in value["grid"]]
        params["rdma"] = bool(value.get("rdma", False))
        params["cells"] = [int(c) for c in value.get("cells", [4, 4, 4])]
        params["steps"] = int(value.get("steps", 10))
    elif axis == "stencil":
        params["shell_radius"] = int(value)  # type: ignore[arg-type]
    else:
        params[axis] = value


def scenario_seed(role: str, axes: dict, axis_indices: dict[str, int]) -> int:
    """Deterministic RNG seed for one scenario.

    Equivalence scenarios reproduce the legacy hand-written suite's
    formula exactly (``1000*grid_idx + 100*cutoff + newton``), so the
    registry-driven differential tests drive bit-identical systems to
    the deleted 24-config lists.  Fault scenarios shift by a
    per-template stride so no two scenarios share a stream.
    """
    if role in EXECUTABLE_ROLES:
        base = (
            1000 * axis_indices.get("geometry", 0)
            + int(100 * axes.get("cutoff", 0.0))
            + (1 if axes.get("newton", False) else 0)
        )
        if role == "fault":
            base += 10000 * (1 + axis_indices.get("fault", 0))
        return base
    return 0


def expand_spec(doc: dict) -> list[dict]:
    """Expand a validated spec into concrete scenario documents.

    Raises :class:`SpecError` (listing every structural problem) when the
    spec fails :func:`validate_spec`.  The result is deterministic: same
    spec, same list, same order.
    """
    issues = validate_spec(doc)
    if issues:
        raise SpecError("invalid spec:\n  " + "\n  ".join(issues))
    defaults = doc.get("defaults", {})
    scenarios: list[dict] = []
    for block in doc["blocks"]:
        axes: dict = block["axes"]
        fixed: dict = block.get("fixed", {})
        names = [ax for ax in AXIS_ORDER if ax in axes]
        value_lists = [axes[ax] for ax in names]
        for combo in itertools.product(*value_lists):
            axis_values = dict(zip(names, combo))
            axis_indices = {ax: axes[ax].index(v) for ax, v in axis_values.items()}
            params: dict = dict(defaults)
            params.update(fixed)
            for ax in names:
                _flatten_axis(ax, axis_values[ax], params)
            # Fixed axis-shaped values flatten the same way (a fixed
            # geometry behaves exactly like a one-value geometry axis).
            for ax, v in fixed.items():
                if ax in AXIS_ORDER:
                    _flatten_axis(ax, v, params)
            all_axes = {**{ax: fixed[ax] for ax in AXIS_ORDER if ax in fixed},
                        **axis_values}
            frags = [
                axis_fragment(ax, all_axes[ax]) for ax in AXIS_ORDER if ax in all_axes
            ]
            scenarios.append(
                {
                    "schema": SCENARIO_SCHEMA,
                    "id": "/".join([block["name"], *frags]),
                    "spec": doc["name"],
                    "block": block["name"],
                    "role": block["role"],
                    "axes": all_axes,
                    "params": params,
                    "tolerances": dict(block.get("tolerances", {})),
                    "seed": scenario_seed(block["role"], params, axis_indices),
                }
            )
    _assign_tiers(doc, scenarios)
    ids = [s["id"] for s in scenarios]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise SpecError(f"expansion produced duplicate scenario ids: {dupes[:5]}")
    return scenarios


def _assign_tiers(doc: dict, scenarios: list[dict]) -> None:
    """Mark each scenario ``sampled`` or ``full`` per its block quota.

    ``sample: "all"`` keeps the whole block in the sampled tier;
    ``sample: N`` keeps the N scenarios with the smallest
    ``(crc32(id), id)`` — a deterministic, spec-independent draw.
    """
    by_block: dict[str, list[dict]] = {}
    for s in scenarios:
        by_block.setdefault(s["block"], []).append(s)
    quotas = {b["name"]: b.get("sample", "all") for b in doc["blocks"]}
    for name, members in by_block.items():
        quota = quotas[name]
        if quota == "all":
            chosen = set(s["id"] for s in members)
        else:
            ranked = sorted(members, key=lambda s: (stable_hash(s["id"]), s["id"]))
            chosen = {s["id"] for s in ranked[: int(quota)]}
        for s in members:
            s["tier"] = "sampled" if s["id"] in chosen else "full"


# -- serialization ---------------------------------------------------------
def fleet_doc(spec: dict, scenarios: list[dict]) -> dict:
    """The ``repro-scenario-fleet/1`` artifact for one expansion."""
    return {
        "schema": FLEET_SCHEMA,
        "spec": spec["name"],
        "count": len(scenarios),
        "sampled": sum(1 for s in scenarios if s["tier"] == "sampled"),
        "scenarios": scenarios,
    }


def dumps_fleet(spec: dict, scenarios: list[dict]) -> str:
    """Byte-stable serialization (same spec -> byte-identical output)."""
    return json.dumps(fleet_doc(spec, scenarios), indent=1, sort_keys=True) + "\n"


def load_json(path: str) -> dict:
    """Load one JSON document (spec or fleet)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise SpecError(f"{path}: top-level JSON value is not an object")
    return doc
