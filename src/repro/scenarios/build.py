"""Turn scenario documents into live systems, worlds, and simulations.

These builders are the single source of the randomized systems the
differential suites (and the fleet's L3 smoke level) run on.  They were
lifted verbatim from ``tests/differential/test_exchange_equivalence.py``
so the registry-driven suites drive **bit-identical** systems to the
legacy hand-written 24-config lists: same RNG stream, same scatter, same
per-rank atom order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.exchange_base import GhostExchange
    from repro.md import Box, Domain, Simulation
    from repro.perfmodel.stagemodel import Workload
    from repro.runtime import World


def random_system(
    n_atoms: int, seed: int, box_edge: float = 9.0
) -> tuple[np.ndarray, np.ndarray, Box]:
    """The legacy randomized system: uniform positions, drift-free
    normal velocities, cubic box."""
    from repro.md import Box

    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, box_edge, size=(n_atoms, 3))
    v = rng.normal(0.0, 0.3, size=(n_atoms, 3))
    v -= v.mean(axis=0)
    return x, v, Box((0, 0, 0), (box_edge,) * 3)


def build_world(
    grid: tuple[int, ...] | list[int],
    x: np.ndarray,
    v: np.ndarray,
    box_edge: float = 9.0,
) -> tuple[World, Domain]:
    """Scatter one system over a rank grid (legacy-identical order)."""
    from repro.md import Box, Domain
    from repro.md.atoms import Atoms
    from repro.runtime import World

    world = World(int(np.prod(grid)), grid=tuple(grid))
    box = Box((0, 0, 0), (box_edge,) * 3)
    domain = Domain(box, tuple(grid))
    tags = np.arange(x.shape[0], dtype=np.int64)
    groups = domain.scatter(x)
    for rank in range(world.size):
        idx = groups.get(world.grid_pos_of(rank), np.empty(0, dtype=np.intp))
        atoms = Atoms()
        atoms.set_local(x[idx], v[idx], tags[idx])
        world.ranks[rank].state["atoms"] = atoms
    return world, domain


def scenario_system(scenario: dict) -> tuple[np.ndarray, np.ndarray, Box]:
    """``(x, v, box)`` for one executable scenario document."""
    p = scenario["params"]
    return random_system(
        int(p["atoms"]), int(scenario["seed"]), float(p["box_edge"])
    )


def scenario_world(
    scenario: dict,
) -> tuple[World, Domain, np.ndarray, np.ndarray, Box]:
    """``(world, domain, x, v, box)`` for one executable scenario."""
    p = scenario["params"]
    x, v, box = scenario_system(scenario)
    world, domain = build_world(p["grid"], x, v, float(p["box_edge"]))
    return world, domain, x, v, box


def scenario_exchange(scenario: dict, pattern: str = "p2p") -> GhostExchange:
    """A border-exchanged ghost exchange for one executable scenario."""
    from repro.core import FineGrainedP2PExchange, P2PExchange, ThreeStageExchange

    p = scenario["params"]
    rcomm = float(p["cutoff"]) + float(p.get("skin", 0.3))
    world, domain, _, _, _ = scenario_world(scenario)
    if pattern == "3stage":
        ex = ThreeStageExchange(world, domain, rcomm=rcomm)
    elif pattern == "parallel-p2p":
        ex = FineGrainedP2PExchange(
            world, domain, rcomm=rcomm, newton=bool(p.get("newton", True))
        )
    else:
        ex = P2PExchange(world, domain, rcomm=rcomm, newton=bool(p.get("newton", True)))
    ex.borders()
    return ex


def scenario_simulation(
    scenario: dict, pattern: str | None = None
) -> Simulation:
    """A ready-to-run :class:`~repro.md.simulation.Simulation`."""
    from repro import LennardJones, Simulation, SimulationConfig

    p = scenario["params"]
    if pattern is None:
        pattern = (p.get("patterns") or ["parallel-p2p"])[0]
    cfg = SimulationConfig(
        dt=float(p.get("dt", 0.002)),
        skin=float(p.get("skin", 0.3)),
        pattern=pattern,
        rdma=bool(p.get("rdma", False)),
        neighbor_every=int(p.get("neighbor_every", 3)),
        newton=bool(p.get("newton", True)),
        shell_radius=int(p.get("shell_radius", 1)),
    )
    x, v, box = scenario_system(scenario)
    return Simulation(
        x, v, box,
        LennardJones(cutoff=float(p["cutoff"])),
        cfg, grid=tuple(p["grid"]),
    )


def model_workload(scenario: dict) -> Workload:
    """The perfmodel :class:`~repro.perfmodel.stagemodel.Workload` a
    ``model``-role scenario prices."""
    import dataclasses

    from repro.figures.fig13 import eam_workload, lj_workload

    p = scenario["params"]
    base = lj_workload() if p["potential"] == "lj" else eam_workload()
    return dataclasses.replace(
        base,
        newton=bool(p.get("newton", base.newton)),
        shell_radius=int(p.get("shell_radius", base.shell_radius)),
    )


def ghost_set(exchange: GhostExchange, rank: int) -> set[tuple[int, bytes]]:
    """The ghost region as a set of (tag, exact position) pairs."""
    atoms = exchange.atoms_of(rank)
    return {
        (int(tag), pos.tobytes())
        for tag, pos in zip(atoms.tag[atoms.nlocal:], atoms.x[atoms.nlocal:])
    }


def min_sub_box_edge(scenario: dict) -> float:
    """Smallest per-rank sub-box edge of an executable scenario."""
    p = scenario["params"]
    return min(float(p["box_edge"]) / g for g in p["grid"])


def scenario_density(scenario: dict) -> float:
    """Mean number density of an executable scenario's box."""
    p = scenario["params"]
    return float(p["atoms"]) / float(p["box_edge"]) ** 3


def scenario_rcomm(scenario: dict) -> float:
    """Communication cutoff (force cutoff + skin)."""
    p = scenario["params"]
    return float(p["cutoff"]) + float(p.get("skin", 0.3))


def model_geometry(scenario: dict) -> tuple[float, float, float]:
    """``(sub_edge, rcomm, density)`` for a ``model``-role scenario.

    Derived from the paper workloads: the per-rank sub-box edge follows
    from atoms-per-rank at the scenario's node count and the workload's
    reduced density.
    """
    w = model_workload(scenario)
    ranks = int(scenario["params"]["nodes"]) * 4  # 4 ranks/node on Fugaku
    atoms_per_rank = max(1.0, w.natoms / ranks)
    sub_edge = (atoms_per_rank / w.density) ** (1.0 / 3.0)
    return sub_edge, w.rcomm, w.density


def bench_geometry(scenario: dict) -> tuple[float, float, float]:
    """``(sub_edge, rcomm, density)`` for a ``bench``-role scenario.

    FCC lattice: 4 atoms per unit cell; the preset's cell edge fixes
    both the density and the box extent per axis.
    """
    from repro.md.presets import PRESETS

    p = scenario["params"]
    preset = PRESETS[p["potential"]]
    cell = preset.cell_edge()
    density = 4.0 / cell**3
    rcomm = preset.cutoff + preset.skin
    sub_edge = min(cell * c / g for c, g in zip(p["cells"], p["grid"]))
    return sub_edge, rcomm, density
