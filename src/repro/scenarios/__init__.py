"""Declarative scenario fleet: spec-driven generation + L0–L3 validation.

See :mod:`repro.scenarios.spec` for the schema, ``docs/scenarios.md``
for the user guide, and ``tests/scenarios/`` for the pytest bridge.
"""

from repro.scenarios.corespec import core_spec, dumps_core_spec
from repro.scenarios.registry import (
    FLEET_ENV,
    bench_scenarios,
    default_fleet,
    differential_scenarios,
    fault_scenarios,
    fleet_mode,
    legacy_equivalence_configs,
    model_scenarios,
    scenario_ids,
    scenarios_by_role,
)
from repro.scenarios.spec import (
    FLEET_SCHEMA,
    SCENARIO_SCHEMA,
    SPEC_SCHEMA,
    SpecError,
    dumps_fleet,
    expand_spec,
    fleet_doc,
    validate_spec,
)
from repro.scenarios.validate import (
    FleetValidation,
    ValidationIssue,
    validate_fleet,
    validate_scenario,
)

__all__ = [
    "FLEET_ENV",
    "FLEET_SCHEMA",
    "SCENARIO_SCHEMA",
    "SPEC_SCHEMA",
    "FleetValidation",
    "SpecError",
    "ValidationIssue",
    "bench_scenarios",
    "core_spec",
    "default_fleet",
    "differential_scenarios",
    "dumps_core_spec",
    "dumps_fleet",
    "expand_spec",
    "fault_scenarios",
    "fleet_doc",
    "fleet_mode",
    "legacy_equivalence_configs",
    "model_scenarios",
    "scenario_ids",
    "scenarios_by_role",
    "validate_fleet",
    "validate_scenario",
    "validate_spec",
]
