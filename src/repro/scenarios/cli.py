"""``python -m repro scenarios`` — generate | list | validate.

Exit codes: 0 success, 1 validation rejections (every rejection prints
the failing check and a fixing hint), 2 usage / IO / malformed input.
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios.spec import (
    SPEC_SCHEMA,
    SpecError,
    dumps_fleet,
    expand_spec,
    load_json,
    validate_spec,
)
from repro.scenarios.validate import LEVELS, validate_fleet


def _load_spec(path: str) -> dict:
    """Load + structurally validate a spec; malformed specs raise
    :class:`SpecError` after printing every failing check (exit 1)."""
    import json

    try:
        doc = load_json(path)
    except json.JSONDecodeError as exc:
        print(f"scenarios: {path} is not a valid {SPEC_SCHEMA} spec:",
              file=sys.stderr)
        print(f"  FAILED json-parse: {exc}", file=sys.stderr)
        raise SpecError("1 spec issue(s)") from exc
    issues = validate_spec(doc)
    if issues:
        print(f"scenarios: {path} is not a valid {SPEC_SCHEMA} spec:",
              file=sys.stderr)
        for issue in issues:
            print(f"  FAILED {issue}", file=sys.stderr)
        raise SpecError(f"{len(issues)} spec issue(s)")
    return doc


def cmd_generate(args: argparse.Namespace) -> int:
    """Expand a spec, validate every scenario, write the fleet artifact."""
    spec = _load_spec(args.spec)
    scenarios = expand_spec(spec)
    result = validate_fleet(scenarios, level=args.level)
    if not result.ok:
        print(result.render(), file=sys.stderr)
        return 1
    text = dumps_fleet(spec, scenarios)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    sampled = sum(1 for s in scenarios if s["tier"] == "sampled")
    print(
        f"scenarios: generated {len(scenarios)} validated configs "
        f"({sampled} sampled tier) from {spec['name']} at {args.level}",
        file=sys.stderr,
    )
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """Print the expanded scenario ids (filterable by role/tier)."""
    spec = _load_spec(args.spec)
    scenarios = expand_spec(spec)
    for s in scenarios:
        if args.role and s["role"] != args.role:
            continue
        if args.tier and s["tier"] != args.tier:
            continue
        print(f"{s['id']}  role={s['role']} tier={s['tier']} seed={s['seed']}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate a spec's expansion; exit 1 listing every rejection."""
    spec = _load_spec(args.spec)
    scenarios = expand_spec(spec)
    result = validate_fleet(scenarios, level=args.level)
    print(result.render(), file=sys.stderr if not result.ok else sys.stdout)
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (0 ok, 1 validation rejection, 2 usage/IO)."""
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="spec-driven scenario fleet: generate, list, validate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="expand + validate a spec into a fleet")
    gen.add_argument("spec", help="path to a repro-scenario-spec/1 JSON file")
    gen.add_argument("-o", "--out", help="write the fleet JSON here (default stdout)")
    gen.add_argument("--level", choices=LEVELS, default="L2",
                     help="validation level applied to every scenario")
    gen.set_defaults(fn=cmd_generate)

    lst = sub.add_parser("list", help="print the expanded scenario ids")
    lst.add_argument("spec")
    lst.add_argument("--role", choices=("equivalence", "fault", "model", "bench"))
    lst.add_argument("--tier", choices=("sampled", "full"))
    lst.set_defaults(fn=cmd_list)

    val = sub.add_parser("validate", help="validate a spec's expansion")
    val.add_argument("spec")
    val.add_argument("--level", choices=LEVELS, default="L2")
    val.set_defaults(fn=cmd_validate)

    args = parser.parse_args(argv)
    try:
        return int(args.fn(args))
    except SpecError as exc:
        # Malformed specs are a *validation* failure: the failing checks
        # were already printed, so report the tally and exit 1.
        print(f"scenarios: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        print(f"scenarios: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
