"""Multi-level scenario validation: L0 schema -> L1 commlint -> L2 model
sanity -> L3 executable smoke.

Modeled on the lammps-reaper pipeline: each level only runs when every
lower level passed, every rejection carries a **fixing hint** (what to
change in the spec to make the scenario feasible), and the levels get
progressively more expensive:

========  ==============================================================
L0        structural schema checks on the scenario document itself
          (``repro-scenario/1`` shape, per-axis value constraints)
L1        commlint CL001–CL008 feasibility on the derived
          :class:`~repro.analysis.commlint.CommProfile` (ring depth,
          VCQ/CQ binding, stage order, Newton symmetry at the stencil
          radius, window exchange, GhostBudget dominance, stencil reach)
L2        model sanity: ``modeled_step_comm_time`` finite (executable
          roles), StageModel stage times finite and additive (model
          roles), GhostBudget-dominated buffers
L2.5      protocol model checking: :mod:`repro.analysis.protomc`
          exhaustively explores the scenario's send/recv/fence
          interleavings and proves P1 (deadlock freedom), P2 (no
          message leaks), P3 (buffer safety), P4 (ladder termination)
L3        executable smoke: build the world, run a step, check the
          invariant the scenario's consuming gate relies on
========  ==============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.commlint import CommProfile

LEVELS = ("L0", "L1", "L2", "L2.5", "L3")

#: rule/check -> what to change in the spec.  These are the "iterative
#: fixing hints": a rejected scenario names the failing check and the
#: axis-level remedy.
HINTS: dict[str, str] = {
    "CL001": "raise params.ring_depth to >= 4",
    "CL002": "remove the duplicated entry from params.cq_bindings",
    "CL003": "keep the rank grid at <= 4 ranks per node (Fugaku: 4 ranks x 6 TNIs)",
    "CL004": "reorder params.stage_order to borders -> forward -> reverse",
    "CL005": "use stencil radius 1 or 2 (half shell must Newton-complement the full shell)",
    "CL006": "drop rdma from the scenario or re-enable the window exchange",
    "CL007": "shrink the cutoff axis value or coarsen the rank grid so "
             "rcomm <= stencil radius x sub-box edge",
    "CL008": "size buffers from the GhostBudget (raise atoms or box_edge "
             "so the analytic maximum dominates)",
    "CL009": "raise params.ring_depth (or set params.inflight_epochs to "
             "match the fenced schedule) so ring capacity covers the "
             "worst-case same-route burst",
    "P1": "restore the borders -> forward -> reverse stage order and keep "
          "every send/recv pair peer-symmetric: some interleaving blocks "
          "all ranks on recv/fence",
    "P2": "post a recv for every send on the route; an unconsumed message "
          "stays in the remote ring past step end",
    "P3": "raise params.ring_depth (or keep the rdma stage fences) so the "
          "adversarial in-flight burst fits the pooled ring capacity",
    "P4": "keep the degradation ladder an acyclic descent "
          "(parallel-p2p -> p2p -> 3stage) with max_retries >= 1",
    "schema": "regenerate the scenario from a spec; hand-edited documents "
              "must keep the repro-scenario/1 shape",
    "geometry": "fix the geometry axis entry: 3 positive grid ints "
                "(<= 64 ranks), box_edge > 0, atoms >= 8",
    "sub-box": "coarsen the rank grid or enlarge box_edge so every "
               "sub-box edge stays >= rcomm",
    "patterns": "limit params.patterns to 3stage/p2p/parallel-p2p",
    "comm-time": "the modeled step comm time must be finite and positive; "
                 "check the cutoff/skin axis values",
    "stage-model": "model scenarios must price finitely: keep nodes on the "
                   "paper ladder and potential in lj/eam",
    "ghost-budget": "the analytic ghost maximum must be a positive finite "
                    "atom count; check box_edge/atoms/cutoff",
    "smoke": "the scenario must survive a short run; lower dt or the "
             "velocity scale implied by the seed",
    "fault-absorb": "use an absorbable fault template (severity <= "
                    "max_retries, no fault_budget)",
}


@dataclass(frozen=True)
class ValidationIssue:
    """One rejection: which scenario, which level/check, how to fix it."""

    scenario: str
    level: str
    check: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """``[Ln:check] scenario: message`` plus the fixing hint."""
        text = f"[{self.level}:{self.check}] {self.scenario}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class FleetValidation:
    """Aggregated result of validating one fleet at one level."""

    level: str
    checked: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def rejected(self) -> int:
        return len({i.scenario for i in self.issues})

    def render(self) -> str:
        """Every issue line plus a checked/rejected summary footer."""
        lines = [i.render() for i in self.issues]
        lines.append(
            f"fleet validation [{self.level}]: {self.checked} checked, "
            f"{self.rejected} rejected, {len(self.issues)} issue(s)"
        )
        return "\n".join(lines)


def _issue(scenario: dict, level: str, check: str, message: str) -> ValidationIssue:
    return ValidationIssue(
        scenario=str(scenario.get("id", "<unknown>")),
        level=level,
        check=check,
        message=message,
        hint=HINTS.get(check, ""),
    )


# -- L0: scenario document schema ------------------------------------------
def check_l0(scenario: dict) -> list[ValidationIssue]:
    """Structural checks on one expanded scenario document."""
    from repro.scenarios.spec import (
        EXECUTABLE_ROLES,
        MAX_RANKS,
        PATTERNS,
        ROLES,
        SCENARIO_SCHEMA,
    )

    issues: list[ValidationIssue] = []
    if scenario.get("schema") != SCENARIO_SCHEMA:
        issues.append(_issue(
            scenario, "L0", "schema",
            f"schema is {scenario.get('schema')!r}, expected {SCENARIO_SCHEMA!r}",
        ))
    for key in ("id", "block", "role", "axes", "params", "seed", "tier"):
        if key not in scenario:
            issues.append(_issue(scenario, "L0", "schema", f"missing key {key!r}"))
    role = scenario.get("role")
    if role not in ROLES:
        issues.append(_issue(
            scenario, "L0", "schema", f"role {role!r} not in {ROLES}"
        ))
        return issues
    if scenario.get("tier") not in ("sampled", "full"):
        issues.append(_issue(
            scenario, "L0", "schema", f"tier {scenario.get('tier')!r} invalid"
        ))
    p = scenario.get("params", {})
    if not isinstance(p, dict):
        return issues + [_issue(scenario, "L0", "schema", "params is not an object")]
    if role in EXECUTABLE_ROLES or role == "bench":
        grid = p.get("grid")
        if not (isinstance(grid, list) and len(grid) == 3
                and all(isinstance(g, int) and g >= 1 for g in grid)):
            issues.append(_issue(
                scenario, "L0", "geometry", f"params.grid {grid!r} is not 3 ints"
            ))
        elif math.prod(grid) > MAX_RANKS:
            issues.append(_issue(
                scenario, "L0", "geometry",
                f"{math.prod(grid)} ranks > {MAX_RANKS}",
            ))
    if role in EXECUTABLE_ROLES:
        if not (isinstance(p.get("box_edge"), (int, float)) and p["box_edge"] > 0):
            issues.append(_issue(
                scenario, "L0", "geometry", f"box_edge {p.get('box_edge')!r} invalid"
            ))
        if not (isinstance(p.get("atoms"), int) and p["atoms"] >= 8):
            issues.append(_issue(
                scenario, "L0", "geometry", f"atoms {p.get('atoms')!r} < 8"
            ))
        if not (isinstance(p.get("cutoff"), (int, float)) and p["cutoff"] > 0):
            issues.append(_issue(
                scenario, "L0", "geometry", f"cutoff {p.get('cutoff')!r} invalid"
            ))
        if p.get("skin", 0.3) < 0:
            issues.append(_issue(scenario, "L0", "geometry", "skin < 0"))
        pats = p.get("patterns", ["parallel-p2p", "p2p", "3stage"])
        if not (isinstance(pats, list) and pats
                and all(v in PATTERNS for v in pats)):
            issues.append(_issue(
                scenario, "L0", "patterns", f"params.patterns {pats!r} invalid"
            ))
    return issues


# -- L1: commlint feasibility ----------------------------------------------
def comm_profile(scenario: dict) -> CommProfile:
    """Derive the :class:`~repro.analysis.commlint.CommProfile` L1 lints."""
    from repro.analysis.commlint import CommProfile
    from repro.scenarios.build import (
        bench_geometry,
        min_sub_box_edge,
        model_geometry,
        scenario_density,
        scenario_rcomm,
    )

    p = scenario["params"]
    role = scenario["role"]
    if role == "model":
        sub_edge, rcomm, density = model_geometry(scenario)
        ranks_per_node = 4
    elif role == "bench":
        sub_edge, rcomm, density = bench_geometry(scenario)
        ranks_per_node = min(math.prod(p["grid"]), 4)
    else:
        sub_edge = min_sub_box_edge(scenario)
        rcomm = scenario_rcomm(scenario)
        density = scenario_density(scenario)
        ranks_per_node = min(math.prod(p["grid"]), 4)
    return CommProfile(
        label=scenario["id"],
        sub_box_edge=sub_edge,
        rcomm=rcomm,
        density=density,
        ring_depth=int(p.get("ring_depth", 4)),
        stage_order=tuple(p.get("stage_order", ("borders", "forward", "reverse"))),
        shell_radius=int(p.get("shell_radius", 1)),
        newton=bool(p.get("newton", True)),
        rdma=bool(p.get("rdma", False)),
        window_exchange=bool(p.get("window_exchange", True)),
        ranks_per_node=ranks_per_node,
        # The rdma plane fences at every stage end, draining the rings;
        # the message transport can leave all three stages outstanding.
        inflight_epochs=int(
            p.get("inflight_epochs", 1 if p.get("rdma", False) else 3)
        ),
    )


def check_l1(scenario: dict) -> list[ValidationIssue]:
    """commlint CL001–CL008 on the derived comm profile."""
    from repro.analysis.commlint import lint_config

    return [
        _issue(scenario, "L1", f.rule, f.message)
        for f in lint_config(comm_profile(scenario))
    ]


# -- L2: model sanity -------------------------------------------------------
def check_l2(scenario: dict) -> list[ValidationIssue]:
    """Analytic sanity: finite comm time, GhostBudget-dominated buffers."""
    from repro.core.ghost import GhostBudget

    issues: list[ValidationIssue] = []
    profile = comm_profile(scenario)
    budget = GhostBudget(a=profile.sub_box_edge, r=profile.rcomm,
                         density=profile.density)
    ghost_max = budget.max_ghost_atoms(False)
    if not (math.isfinite(ghost_max) and ghost_max > 0):
        issues.append(_issue(
            scenario, "L2", "ghost-budget",
            f"analytic ghost maximum {ghost_max!r} is not a positive finite count",
        ))
    role = scenario["role"]
    if role == "model":
        from repro.perfmodel import StageModel, variant_by_name
        from repro.scenarios.build import model_workload

        w = model_workload(scenario)
        res = StageModel().step_times(
            w, int(scenario["params"]["nodes"]),
            variant_by_name(scenario["params"]["variant"]),
        )
        total = res.total
        if not (math.isfinite(total) and total > 0):
            issues.append(_issue(
                scenario, "L2", "stage-model",
                f"modeled step time {total!r} is not finite and positive",
            ))
        elif abs(total - sum(res.stages.values())) > 1e-12 * max(total, 1.0):
            issues.append(_issue(
                scenario, "L2", "stage-model",
                "stage times do not sum to the step total",
            ))
    elif role in ("equivalence", "fault"):
        from repro.core.modeling import modeled_step_comm_time
        from repro.scenarios.build import scenario_exchange

        ex = scenario_exchange(scenario, "p2p")
        t = modeled_step_comm_time(
            ex, rebuild=False,
            newton=bool(scenario["params"].get("newton", True)),
        )
        if not (math.isfinite(t) and t > 0):
            issues.append(_issue(
                scenario, "L2", "comm-time",
                f"modeled_step_comm_time = {t!r}, expected finite > 0",
            ))
    return issues


# -- L2.5: protocol model checking ------------------------------------------
def check_l25(scenario: dict) -> list[ValidationIssue]:
    """Model-check the scenario's communication protocol (P1–P4).

    Extracts the per-rank send/recv/fence programs implied by the
    scenario and exhaustively explores their interleavings
    (:mod:`repro.analysis.protomc`).  Every counterexample becomes one
    rejection named after the violated property; an exhausted state
    budget rejects too — "unproven" is not "proven".
    """
    from repro.analysis.protomc.checker import verify_scenario

    result = verify_scenario(scenario, max_states=300_000, budget_s=20.0)
    issues = [
        _issue(scenario, "L2.5", c.prop, c.detail)
        for c in result.counterexamples
    ]
    if result.incomplete:
        issues.append(_issue(
            scenario, "L2.5", "P1",
            f"state budget exhausted after {result.states} transition(s) — "
            "deadlock freedom unproven",
        ))
    return issues


# -- L3: executable smoke ---------------------------------------------------
def check_l3(scenario: dict) -> list[ValidationIssue]:
    """Run the scenario briefly and check the invariant its gate relies on."""
    import numpy as np

    issues: list[ValidationIssue] = []
    role = scenario["role"]
    if role == "model":
        return issues  # fully covered by L2 (nothing to execute)
    if role == "bench":
        from repro.md.presets import PRESETS

        p = scenario["params"]
        sim = PRESETS[p["potential"]].simulation(
            tuple(p["cells"]), tuple(p["grid"]),
            pattern=p["pattern"], rdma=p["rdma"],
        )
        sim.run(1)
        thermo = sim.sample_thermo()
        if not math.isfinite(thermo.total_energy):
            issues.append(_issue(
                scenario, "L3", "smoke", "total energy diverged after 1 step"
            ))
        return issues

    from repro.scenarios.build import scenario_simulation

    if role == "fault":
        from repro.faults.plan import template_plan

        plan = template_plan(scenario["axes"]["fault"], seed=scenario["seed"])
        if not plan.absorbable():
            return [_issue(
                scenario, "L3", "fault-absorb",
                f"template plan for {scenario['axes']['fault']!r} is not absorbable",
            )]
        from repro.faults.injector import FAULTS

        clean = scenario_simulation(scenario)
        clean.run(1)
        faulted = scenario_simulation(scenario)
        with FAULTS.inject(plan) as session:
            faulted.run(1)
        if session.stats.unabsorbed:
            issues.append(_issue(
                scenario, "L3", "fault-absorb",
                f"{session.stats.unabsorbed} fault(s) went unabsorbed",
            ))
        if not np.array_equal(clean.gather_forces(), faulted.gather_forces()):
            issues.append(_issue(
                scenario, "L3", "fault-absorb",
                "forces drifted from the fault-free run under an absorbable plan",
            ))
        return issues

    sim = scenario_simulation(scenario)
    sim.run(1)
    forces = sim.gather_forces()
    if not np.all(np.isfinite(forces)):
        issues.append(_issue(
            scenario, "L3", "smoke", "non-finite forces after 1 step"
        ))
    return issues


_CHECKS = {
    "L0": check_l0,
    "L1": check_l1,
    "L2": check_l2,
    "L2.5": check_l25,
    "L3": check_l3,
}


def validate_scenario(scenario: dict, level: str = "L2") -> list[ValidationIssue]:
    """Run levels L0..``level`` on one scenario, stopping at the first
    level that rejects (higher levels assume lower ones hold)."""
    if level not in LEVELS:
        raise ValueError(f"unknown level {level!r}; choose from {LEVELS}")
    issues: list[ValidationIssue] = []
    for lvl in LEVELS[: LEVELS.index(level) + 1]:
        try:
            issues = _CHECKS[lvl](scenario)
        except Exception as exc:
            issues = [_issue(
                scenario, lvl, "schema" if lvl == "L0" else "smoke",
                f"{lvl} check crashed: {exc!r}",
            )]
        if issues:
            return issues
    return []


def validate_fleet(scenarios: list[dict], level: str = "L2") -> FleetValidation:
    """Validate every scenario of a fleet at one level."""
    result = FleetValidation(level=level)
    for scenario in scenarios:
        result.checked += 1
        result.issues.extend(validate_scenario(scenario, level))
    return result
