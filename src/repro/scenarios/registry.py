"""The scenario registry: the one config source the test suites consume.

The differential equivalence suite, the telemetry/rankprof on-off
differential suites, and the fault-absorption battery all parametrize
over slices of :func:`default_fleet` — the expansion of the committed
``fleet-core`` spec — instead of hand-written config lists.

Tier selection is driven by the ``REPRO_FLEET`` environment variable:

==========  ==========================================================
(unset)     the full differential grid per regime (identical coverage
            to the legacy hand-written 24-config lists)
sampled     the deterministic ~48-config CI tier (24 off + 12
            telemetry + 12 rankprof)
full        everything, including the tests behind the ``fleet_full``
            marker
==========  ==========================================================
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.scenarios.corespec import core_spec
from repro.scenarios.spec import expand_spec

FLEET_ENV = "REPRO_FLEET"
_REGIMES = ("off", "telemetry", "rankprof")


def fleet_mode() -> str:
    """Current tier: ``default`` | ``sampled`` | ``full``."""
    mode = os.environ.get(FLEET_ENV, "default").strip().lower() or "default"
    if mode not in ("default", "sampled", "full"):
        raise ValueError(
            f"{FLEET_ENV}={mode!r} invalid; use 'sampled' or 'full' (or unset)"
        )
    return mode


@lru_cache(maxsize=1)
def default_fleet() -> tuple[dict, ...]:
    """The expanded ``fleet-core`` spec (cached; treat as read-only)."""
    return tuple(expand_spec(core_spec()))


def scenarios_by_role(role: str) -> list[dict]:
    """Every fleet scenario of one role."""
    return [s for s in default_fleet() if s["role"] == role]


def differential_scenarios(regime: str = "off") -> list[dict]:
    """Equivalence scenarios for one observability regime, tier-filtered.

    With ``REPRO_FLEET`` unset every regime returns its full 24-config
    grid (the legacy coverage); ``sampled`` keeps telemetry/rankprof at
    their 12-config CI quota; ``full`` is identical to the default for
    equivalence blocks (their full tier IS the 24 grid).
    """
    if regime not in _REGIMES:
        raise ValueError(f"unknown regime {regime!r}; choose from {_REGIMES}")
    rows = [
        s for s in scenarios_by_role("equivalence")
        if s["params"].get("observability", "off") == regime
    ]
    if fleet_mode() == "sampled":
        rows = [s for s in rows if s["tier"] == "sampled"]
    return rows


def fault_scenarios() -> list[dict]:
    """Fault-plane scenarios, tier-filtered (sampled unless full)."""
    rows = scenarios_by_role("fault")
    if fleet_mode() != "full":
        rows = [s for s in rows if s["tier"] == "sampled"]
    return rows


def model_scenarios() -> list[dict]:
    """Analytic model-sweep scenarios, tier-filtered."""
    rows = scenarios_by_role("model")
    if fleet_mode() != "full":
        rows = [s for s in rows if s["tier"] == "sampled"]
    return rows


def bench_scenarios() -> list[dict]:
    """Bench-role scenarios (always the whole block; it is small)."""
    return scenarios_by_role("bench")


def legacy_equivalence_configs() -> list[tuple[tuple[int, int, int], float, bool]]:
    """The deleted hand-written 24-config list, reconstructed.

    The registry-refactor proof: every one of these (grid, cutoff,
    newton) triples — with the legacy box edge, atom count, skin, and
    seed — must appear in the generated fleet.
    """
    import itertools

    from repro.scenarios.corespec import LEGACY_CUTOFFS, LEGACY_GRIDS

    return [
        (grid, cutoff, newton)
        for grid, cutoff, newton in itertools.product(
            LEGACY_GRIDS, LEGACY_CUTOFFS, (True, False)
        )
    ]


def scenario_ids(scenarios: list[dict]) -> list[str]:
    """Stable pytest parametrize ids for a scenario list."""
    return [s["id"] for s in scenarios]
