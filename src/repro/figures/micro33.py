"""Section 3.3 micro-measurements — OpenMP vs spin-lock thread pool.

The paper measures 5.8 us (OpenMP) vs 1.1 us (thread pool) for thread
startup + synchronization, and observes that enabling OpenMP makes the
NVE modify stage ~10x slower at 22 atoms per rank, and that thread-pool
communication gains 14 % on small messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.figures.common import format_table, us
from repro.machine.params import FUGAKU, MachineParams
from repro.perfmodel.stagemodel import CalibrationConstants
from repro.runtime import OpenMPModel, ThreadPoolModel

PAPER = {
    "openmp_fork_join_us": 5.8,
    "threadpool_fork_join_us": 1.1,
    "modify_slowdown_at_22_atoms": 10.0,
    "small_message_comm_gain": 0.14,
}


@dataclass
class Micro33Result:
    openmp_fork_join: float
    pool_fork_join: float
    modify_openmp: float
    modify_serial: float
    modify_pool: float
    atoms: int

    @property
    def openmp_modify_slowdown(self) -> float:
        """OpenMP modify time vs doing the tiny update serially."""
        return self.modify_openmp / self.modify_serial


def compute(atoms: int = 22, params: MachineParams = FUGAKU) -> Micro33Result:
    """Evaluate the threading-overhead micro-measurements."""
    calib = CalibrationConstants()
    omp = OpenMPModel(params.threads_per_rank, params)
    pool = ThreadPoolModel(params.threads_per_rank, params)
    work = [calib.c_mod_atom] * atoms
    return Micro33Result(
        openmp_fork_join=omp.fork_join,
        pool_fork_join=pool.fork_join,
        modify_openmp=omp.parallel_time(work),
        modify_serial=sum(work),
        modify_pool=pool.parallel_time(work),
        atoms=atoms,
    )


def render(res: Micro33Result) -> str:
    """Format the OpenMP-vs-pool table."""
    rows = [
        ["fork/join overhead", us(res.openmp_fork_join), us(res.pool_fork_join)],
        [
            f"modify stage, {res.atoms} atoms",
            us(res.modify_openmp),
            us(res.modify_pool),
        ],
    ]
    table = format_table(
        ["quantity", "OpenMP [us]", "thread pool [us]"],
        rows,
        title="Section 3.3 — threading overhead micro-measurements",
    )
    notes = (
        f"\n OpenMP modify vs serial at {res.atoms} atoms: "
        f"{res.openmp_modify_slowdown:.0f}x slower (paper: ~10x)"
        f"\n fork/join values are the paper's measured constants "
        "(5.8 us / 1.1 us), wired into MachineParams"
    )
    return table + notes
