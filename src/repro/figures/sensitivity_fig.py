"""Calibration sensitivity as a report experiment.

Not a paper figure — it is the reproduction's own robustness evidence:
every qualitative claim must survive a [0.5x, 2x] perturbation of every
estimated machine constant, or the conclusions would be a calibration
artifact.  See docs/calibration.md for provenance of each constant.
"""

from __future__ import annotations

from repro.perfmodel.sensitivity import SensitivityRow, render as _render, sweep

PAPER = {
    "claim": "(reproduction-internal) conclusions must not depend on the "
    "estimated constants"
}


def compute(factors=(0.5, 0.7, 1.0, 1.3, 2.0)) -> list[SensitivityRow]:
    """Run the full perturbation sweep."""
    return sweep(factors=factors)


def render(rows: list[SensitivityRow]) -> str:
    """Format the sensitivity table plus the robustness verdict."""
    all_hold = all(
        claims.all_hold for row in rows for claims in row.results.values()
    )
    verdict = (
        "\n verdict: every qualitative claim holds at every factor for "
        f"every estimated constant: {all_hold}"
    )
    return _render(rows) + verdict
