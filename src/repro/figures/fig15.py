"""Fig. 15 — extended neighborhoods: 26, 62 and 124 messages per stage.

Scenarios (paper section 4.4):

* **26** — potentials needing a full neighbor list (Tersoff, DeePMD):
  Newton off, shell radius 1.
* **62** — cutoff larger than the sub-box, Newton on: radius-2 half shell.
* **124** — cutoff larger than the sub-box, Newton off: radius-2 full
  shell — where the paper finds p2p *loses* to 3-stage, because 3-stage
  message count grows linearly (6 -> 12) while p2p grows ~n^2 (26 -> 124).

Cost model (documented, deliberately explicit rather than hidden in the
event simulator): a communication thread is occupied per message
*endpoint* — injection CPU on send, completion-queue processing on
receive (``mrq_poll_cost``) — plus the wire time of the slowest message
and, for the staged pattern, a barrier per stage.  The optimized p2p
spreads its endpoints over 6 pool threads; the 3-stage runs one thread
but only 6*radius messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.patterns import message_count, CommPattern
from repro.figures.common import format_table, us
from repro.machine.params import FUGAKU, MachineParams
from repro.network.stacks import UtofuStack

PAPER = {
    "p2p_wins": {26: True, 62: True, 124: False},
    "reason": "3-stage scales linearly, p2p is an n-squared extension",
}

#: The three scenarios: (label, newton, radius).
SCENARIOS = ((26, False, 1), (62, True, 2), (124, False, 2))


@dataclass
class ScenarioTimes:
    neighbors: int
    newton: bool
    radius: int
    p2p_time: float
    three_stage_time: float

    @property
    def p2p_wins(self) -> bool:
        return self.p2p_time < self.three_stage_time


@dataclass
class Fig15Result:
    scenarios: list[ScenarioTimes] = field(default_factory=list)

    def wins(self) -> dict[int, bool]:
        """Winner per scenario: neighbors -> does p2p win?"""
        return {s.neighbors: s.p2p_wins for s in self.scenarios}


def _endpoint_cost(stack, params: MachineParams, nbytes: int) -> float:
    """Thread occupancy per message endpoint (send or receive)."""
    send = stack.injection_interval(nbytes) + stack.software_latency(nbytes)
    recv = params.mrq_poll_cost
    # Averaged: a thread handles as many sends as receives per exchange.
    return (send + recv) / 2.0


def scenario_times(
    neighbors: int,
    newton: bool,
    radius: int,
    msg_bytes: int = 528,
    comm_threads: int = 6,
    params: MachineParams = FUGAKU,
) -> ScenarioTimes:
    """Cost both patterns for one extended-neighborhood scenario."""
    stack = UtofuStack(params=params)
    per_endpoint = _endpoint_cost(stack, params, msg_bytes)
    wire = params.wire_time(msg_bytes, hops=max(radius, 1))

    # p2p: `neighbors` sends + `neighbors` receives over the pool threads.
    n_p2p = message_count(CommPattern.P2P, newton=newton, radius=radius)
    assert n_p2p == neighbors
    endpoints = 2 * n_p2p
    # Ring polling is the n^2 term the paper names: arrivals from N
    # neighbors come in arbitrary order, so each incoming message costs
    # ~N/T ring probes until it is found -> O(N^2/T) probes per exchange.
    ring_scan = (n_p2p * n_p2p / comm_threads) * params.ring_probe_cost
    t_p2p = (
        params.threadpool_fork_join
        + (endpoints / comm_threads) * per_endpoint
        + ring_scan
        + wire
    )

    # 3-stage: 6*radius swaps, single comm thread, barrier per swap; each
    # swap's message is larger (forwarded volume) -> scale bytes by the
    # accumulated slab growth factor (~neighbors/n_swaps per atom copy).
    n_swaps = message_count(CommPattern.THREE_STAGE, radius=radius)
    stage_bytes = msg_bytes * max(neighbors // n_swaps, 1)
    barrier = 2.0 * stack.software_latency(8)
    t_3s = 0.0
    for _ in range(n_swaps):
        t_3s += (
            2.0 * _endpoint_cost(stack, params, stage_bytes)  # send + recv
            + params.wire_time(stage_bytes, hops=1)
            + barrier
        )
    return ScenarioTimes(neighbors, newton, radius, t_p2p, t_3s)


def compute(msg_bytes: int = 528, params: MachineParams = FUGAKU) -> Fig15Result:
    """Evaluate the 26/62/124-neighbor scenarios."""
    res = Fig15Result()
    for neighbors, newton, radius in SCENARIOS:
        res.scenarios.append(
            scenario_times(neighbors, newton, radius, msg_bytes, params=params)
        )
    return res


def render(res: Fig15Result) -> str:
    """Format the Fig. 15 comparison table."""
    rows = [
        [
            s.neighbors,
            "half" if s.newton else "full",
            s.radius,
            us(s.p2p_time),
            us(s.three_stage_time),
            "p2p" if s.p2p_wins else "3-stage",
        ]
        for s in res.scenarios
    ]
    table = format_table(
        ["neighbors", "list", "radius", "p2p [us]", "3-stage [us]", "winner"],
        rows,
        title="Fig. 15 — extended neighborhoods (26 / 62 / 124 messages)",
    )
    wins = res.wins()
    notes = (
        f"\n p2p wins at 26: {wins[26]} (paper True), 62: {wins[62]} "
        f"(paper True), 124: {wins[124]} (paper False — 3-stage scales "
        "linearly, p2p ~n^2)"
    )
    return table + notes
