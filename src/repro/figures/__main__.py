"""Regenerate every paper figure/table and print the full report.

Usage::

    python -m repro.figures            # everything
    python -m repro.figures fig13      # one experiment
    python -m repro.figures --fast     # skip the real-MD accuracy run
"""

from __future__ import annotations

import sys
import time

from repro.figures import (
    ablations,
    eqs,
    sensitivity_fig,
    topomap,
    fig6,
    fig8,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    micro33,
    table1,
)

EXPERIMENTS = {
    "table1": table1,
    "eqs": eqs,
    "fig6": fig6,
    "fig8": fig8,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "micro33": micro33,
    "topomap": topomap,
    "ablations": ablations,
    "sensitivity": sensitivity_fig,
}


def run(names=None, fast: bool = False) -> str:
    names = list(names) if names else list(EXPERIMENTS)
    if fast and "fig11" in names:
        names.remove("fig11")  # the only one that runs real MD steps
    parts = []
    for name in names:
        mod = EXPERIMENTS[name]
        t0 = time.perf_counter()
        result = mod.compute()
        text = mod.render(result)
        dt = time.perf_counter() - t0
        parts.append(f"=== {name} ({dt:.1f}s) ===\n{text}")
    return "\n\n".join(parts)


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    names = [a for a in argv if not a.startswith("-")]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; choose from {sorted(EXPERIMENTS)}")
        return 2
    print(run(names or None, fast=fast))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
