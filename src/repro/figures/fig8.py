"""Fig. 8 — message rate and bandwidth vs message size on one node.

Three configurations: single thread over 4 TNIs (one per rank), single
thread over 6 TNIs (VCQ hopping + inter-rank contention), and 6 threads
over 6 TNIs (the fine-grained pool).  Paper findings: single-6TNI is
*slower* than single-4TNI, and the parallel configuration boosts the
message rate by at least 50 % below ~512 B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.figures.common import format_table
from repro.machine.params import FUGAKU, MachineParams
from repro.network import Message, UtofuStack, simulate_round

PAPER = {
    "parallel_gain_small_messages": ">= 1.5x below 512 B",
    "single_6tni_below_single_4tni": True,
}

SIZES = (8, 32, 128, 256, 512, 1024, 4096, 16384, 65536)


@dataclass
class Fig8Result:
    sizes: tuple
    rates: dict[str, list[float]] = field(default_factory=dict)  # Mmsg/s
    bandwidths: dict[str, list[float]] = field(default_factory=dict)  # GB/s

    def parallel_gain(self, size: int) -> float:
        """Parallel over single-4TNI message-rate ratio at ``size``."""
        k = self.sizes.index(size)
        return self.rates["parallel-6tni"][k] / self.rates["single-4tni"][k]


def _mode_messages(mode: str, size: int, per_rank: int, ranks: int):
    msgs = []
    for r in range(ranks):
        for i in range(per_rank):
            if mode == "single-4tni":
                m = Message(size, 1, rank=r, thread=0, tni=r)
            elif mode == "single-6tni":
                m = Message(size, 1, rank=r, thread=0, tni=i % 6)
            elif mode == "parallel-6tni":
                m = Message(size, 1, rank=r, thread=i % 6, tni=i % 6)
            else:
                raise ValueError(mode)
            msgs.append(m)
    return msgs


def compute(
    per_rank: int = 200,
    ranks: int = 4,
    params: MachineParams = FUGAKU,
    sizes=SIZES,
) -> Fig8Result:
    """Sweep message sizes through the three TNI configurations."""
    stack = UtofuStack(params=params)
    res = Fig8Result(sizes=tuple(sizes))
    for mode in ("single-4tni", "single-6tni", "parallel-6tni"):
        rates, bws = [], []
        for size in sizes:
            out = simulate_round(_mode_messages(mode, size, per_rank, ranks), stack, params)
            n = per_rank * ranks
            rates.append(n / out.completion_time / 1e6)
            bws.append(n * size / out.completion_time / 1e9)
        res.rates[mode] = rates
        res.bandwidths[mode] = bws
    return res


def render(res: Fig8Result) -> str:
    """Format the message-rate/bandwidth table."""
    rows = []
    for k, size in enumerate(res.sizes):
        rows.append(
            [
                size,
                res.rates["single-4tni"][k],
                res.rates["single-6tni"][k],
                res.rates["parallel-6tni"][k],
                res.bandwidths["single-4tni"][k],
                res.bandwidths["parallel-6tni"][k],
            ]
        )
    table = format_table(
        ["bytes", "4TNI Mmsg/s", "6TNI Mmsg/s", "par Mmsg/s", "4TNI GB/s", "par GB/s"],
        rows,
        title="Fig. 8 — message rate / bandwidth vs size (1 node, 4 ranks)",
    )
    notes = (
        f"\n parallel gain at 256 B: {res.parallel_gain(256):.2f}x "
        "(paper: >= 1.5x below 512 B)"
        f"\n single-6TNI < single-4TNI at 256 B: "
        f"{res.rates['single-6tni'][res.sizes.index(256)] < res.rates['single-4tni'][res.sizes.index(256)]}"
        " (paper: True)"
    )
    return table + notes
