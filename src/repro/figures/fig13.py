"""Fig. 13 + Table 3 — strong scaling from 768 to 36 864 nodes.

Fig. 13a: step time and parallel efficiency per node count for ref and
opt, both potentials, plus the headline performance at the last point
(paper: 2.9x / 2.2x speedup; 8.77 Mtau/day LJ, 2.87 us/day EAM).
Fig. 13b: pair and comm stage times along the sweep.
Table 3: the five-stage breakdown (seconds + percent) at the last point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.figures.common import format_table, pct, us
from repro.perfmodel import (
    StageModel,
    parallel_efficiency,
    performance_per_day,
    strong_scaling,
    variant_by_name,
)
from repro.perfmodel.scaling import (
    STRONG_EAM_ATOMS,
    STRONG_LJ_ATOMS,
    STRONG_SCALING_NODES,
    ScalingPoint,
)
from repro.perfmodel.stagemodel import Workload

PAPER = {
    "speedup_last": {"lj": 2.9, "eam": 2.2},
    "perf_last": {"lj_mtau_day": 8.77, "eam_us_day": 2.87},
    "table3_pct": {
        ("ref", "lj"): {"Pair": 15.3, "Neigh": 1.5, "Comm": 64.85, "Modify": 9.36, "Other": 8.99},
        ("opt", "lj"): {"Pair": 26.71, "Neigh": 3.71, "Comm": 43.67, "Modify": 10.23, "Other": 15.68},
        ("ref", "eam"): {"Pair": 43.44, "Neigh": 2.3, "Comm": 33.5, "Modify": 3.85, "Other": 16.91},
        ("opt", "eam"): {"Pair": 40.85, "Neigh": 4.1, "Comm": 20.02, "Modify": 3.19, "Other": 31.84},
    },
}

STAGES = ("Pair", "Neigh", "Comm", "Modify", "Other")


def lj_workload() -> Workload:
    """The strong-scaling LJ workload (4,194,304 atoms)."""
    return Workload("lj-strong", "lj", STRONG_LJ_ATOMS, 0.8442, 2.8, 0.005, rebuild_every=20)


def eam_workload() -> Workload:
    """The strong-scaling EAM workload (3,456,000 atoms)."""
    return Workload(
        "eam-strong", "eam", STRONG_EAM_ATOMS, 0.0847, 5.95, 0.005,
        rebuild_every=20, allreduce_every=5,
    )


@dataclass
class Fig13Result:
    curves: dict[tuple[str, str], list[ScalingPoint]] = field(default_factory=dict)
    # curves[(potential, variant)] = points

    def speedup_last(self, potential: str) -> float:
        """ref/opt step-time ratio at the last (36 864-node) point."""
        return (
            self.curves[(potential, "ref")][-1].step_time
            / self.curves[(potential, "opt")][-1].step_time
        )

    def efficiency(self, potential: str, variant: str) -> list[float]:
        """Parallel-efficiency series for one curve."""
        return parallel_efficiency(self.curves[(potential, variant)])


def compute(nodes_list=STRONG_SCALING_NODES, model: StageModel | None = None) -> Fig13Result:
    """Sweep ref and opt over the strong-scaling node counts."""
    model = model if model is not None else StageModel()
    res = Fig13Result()
    for pot, w in (("lj", lj_workload()), ("eam", eam_workload())):
        for vname in ("ref", "opt"):
            res.curves[(pot, vname)] = strong_scaling(
                w, variant_by_name(vname), nodes_list, model=model
            )
    return res


def render(res: Fig13Result) -> str:
    """Format Fig. 13a/13b and the Table 3 breakdown."""
    parts = []
    # Fig. 13a
    rows = []
    for (pot, vname), pts in res.curves.items():
        effs = res.efficiency(pot, vname)
        for p, e in zip(pts, effs):
            rows.append([pot, vname, p.nodes, us(p.step_time), pct(e)])
    parts.append(
        format_table(
            ["potential", "variant", "nodes", "step [us]", "efficiency %"],
            rows,
            title="Fig. 13a — strong scaling (4.19M LJ / 3.46M EAM atoms)",
        )
    )
    lj_perf = performance_per_day(res.curves[("lj", "opt")][-1], 0.005) / 1e6
    eam_perf = performance_per_day(res.curves[("eam", "opt")][-1], 0.005) / 1e6
    parts.append(
        f" headline speedup at 36864: LJ {res.speedup_last('lj'):.2f}x "
        f"(paper 2.9x), EAM {res.speedup_last('eam'):.2f}x (paper 2.2x)\n"
        f" performance: LJ {lj_perf:.1f} Mtau/day (paper 8.77), "
        f"EAM {eam_perf:.2f} us/day (paper 2.87)"
    )

    # Fig. 13b
    rows = []
    for (pot, vname), pts in res.curves.items():
        for p in pts:
            rows.append(
                [pot, vname, p.nodes, us(p.result.stages["Pair"]), us(p.result.stages["Comm"])]
            )
    parts.append(
        format_table(
            ["potential", "variant", "nodes", "Pair [us]", "Comm [us]"],
            rows,
            title="Fig. 13b — pair and communication stage times",
        )
    )

    # Table 3
    rows = []
    for pot in ("lj", "eam"):
        for vname in ("ref", "opt"):
            r = res.curves[(pot, vname)][-1].result
            label = ("Origin" if vname == "ref" else "Opt") + "-" + pot.upper()
            rows.append([label, "us/step"] + [us(r.stages[s]) for s in STAGES])
            rows.append([label, "%"] + [r.percent(s) for s in STAGES])
    parts.append(
        format_table(
            ["run", "unit", *STAGES],
            rows,
            title="Table 3 — stage breakdown at the last strong-scaling point",
        )
    )
    return "\n\n".join(parts)
