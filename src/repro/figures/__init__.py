"""Figure/table regeneration: one module per paper experiment.

Each module exposes ``compute(...)`` returning structured results,
``render(result)`` returning the table/series text the paper reports,
and a ``PAPER`` dict with the published values for side-by-side
comparison.  ``python -m repro.figures`` regenerates everything and
prints the full paper-vs-measured report (the source of EXPERIMENTS.md).

Index:

====================  ==========================================
module                paper artifact
====================  ==========================================
``table1``            Table 1 — communication pattern analysis
``eqs``               Equations (3)-(8) — timing formulas
``fig6``              Fig. 6 — transmission time of 5 implementations
``fig8``              Fig. 8 — message rate / bandwidth vs size
``fig11``             Fig. 11 — accuracy (pressure traces, real MD)
``fig12``             Fig. 12 — step-by-step speedups at 768 nodes
``fig13``             Fig. 13 + Table 3 — strong scaling to 36 864
``fig14``             Fig. 14 — weak scaling to 20 736 nodes
``fig15``             Fig. 15 — 26/62/124-neighbor scenarios
``micro33``           Section 3.3 — OpenMP vs thread-pool overheads
``ablations``         Section 3.4/3.5 — optimization ablations
====================  ==========================================
"""

from repro.figures.common import format_table

__all__ = ["format_table"]
