"""Sections 3.4/3.5 ablations — what each small optimization is worth.

The paper describes pre-registered addresses, message combine and border
bins qualitatively; this module quantifies each against the simulated
substrate so the design choices in DESIGN.md have numbers:

* **pre-registration** — registration cost avoided per run: the baseline
  re-registers on every buffer growth; pre-sizing registers once.
* **message combine** — MPI's two-message unknown-length protocol vs the
  length-prefixed single message, per border exchange.
* **border bins** — per-atom region tests needed to route border atoms:
  the brute-force path tests every atom against each neighbor's region
  (axis comparisons growing with the neighbor count), the binned path
  classifies each atom once (6 comparisons) and finishes with a table
  lookup.  Wall time is also measured, with the caveat that in NumPy both
  paths are fully vectorized so the scalar-code advantage the paper
  exploits (a C++ inner loop over atoms) shows up in the operation count,
  not the Python wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import BorderBins
from repro.core.patterns import half_shell_offsets
from repro.figures.common import format_table, us
from repro.machine.params import FUGAKU, MachineParams
from repro.md.region import SubBox
from repro.network import Message, NetworkSimulator, MpiStack

PAPER = {
    "pre_registration": "buffers registered once, sized from the theoretical max",
    "message_combine": "two-step MPI length protocol folded into one message",
    "border_bins": "27-bin routing beats scanning all neighbor regions",
}


@dataclass
class AblationResult:
    # pre-registration
    registrations_baseline: int
    registrations_opt: int
    registration_time_saved: float
    # message combine
    combine_round_without: float
    combine_round_with: float
    # border bins
    bins_route_time: float
    brute_route_time: float
    atoms_routed: int
    tests_per_atom_brute: float = 0.0
    tests_per_atom_binned: float = 0.0

    @property
    def combine_saving(self) -> float:
        return 1.0 - self.combine_round_with / self.combine_round_without

    @property
    def bins_test_reduction(self) -> float:
        return self.tests_per_atom_brute / max(self.tests_per_atom_binned, 1e-12)


def compute(params: MachineParams = FUGAKU, n_atoms: int = 20000) -> AblationResult:
    # --- pre-registration --------------------------------------------------
    # Baseline: LAMMPS doubles buffers as ghosts grow during equilibration;
    # a typical run re-registers each of 13 neighbor buffers ~4 times plus
    # the position/force arrays a few times.
    """Measure the three section 3.4/3.5 ablations."""
    growth_events = 13 * 4 + 2 * 3
    buf_bytes = 64 * 1024
    baseline_regs = growth_events
    opt_regs = 13 + 2  # one per neighbor ring + x and f arrays
    saved = (baseline_regs - opt_regs) * params.registration_cost(buf_bytes)

    # --- message combine ------------------------------------------------------
    sim = NetworkSimulator(MpiStack(params=params), params)
    msgs_unknown = [Message(528, hops=1, known_length=False) for _ in range(13)]
    msgs_known = [Message(528, hops=1, known_length=True) for _ in range(13)]
    t_without = sim.run_round(msgs_unknown).completion_time
    t_with = sim.run_round(msgs_known).completion_time

    # --- border bins (measured wall time on real arrays) ---------------------
    sub = SubBox((0, 0, 0), (20, 20, 20), (1, 1, 1), (3, 3, 3))
    offsets = [tuple(-o for o in off) for off in half_shell_offsets(1)]
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 20, size=(n_atoms, 3))
    bins = BorderBins(sub, rcomm=2.5, send_offsets=offsets)

    t0 = time.perf_counter()
    routed = bins.route(x)
    t_bins = time.perf_counter() - t0

    t0 = time.perf_counter()
    brute = [np.flatnonzero(sub.border_mask(x, off, 2.5)) for off in offsets]
    t_brute = time.perf_counter() - t0

    # sanity: both routes agree
    for a, b in zip(routed, brute):
        assert np.array_equal(a, b)

    # Per-atom comparison counts: brute tests each nonzero offset axis of
    # each of the 13 regions; bins do 2 comparisons per axis once.
    tests_brute = float(sum(sum(1 for o in off if o) for off in offsets))
    tests_binned = 6.0  # 2 thresholds x 3 axes

    return AblationResult(
        registrations_baseline=baseline_regs,
        registrations_opt=opt_regs,
        registration_time_saved=saved,
        combine_round_without=t_without,
        combine_round_with=t_with,
        bins_route_time=t_bins,
        brute_route_time=t_brute,
        atoms_routed=n_atoms,
        tests_per_atom_brute=tests_brute,
        tests_per_atom_binned=tests_binned,
    )


def perf_ablation(nodes: int = 768, params: MachineParams = FUGAKU) -> dict:
    """Step-time cost of removing each optimization from ``opt``.

    Returns ``{workload: {variant: step_seconds}}`` for the 65K and 1.7M
    LJ systems — the design-choice ablation DESIGN.md calls out.
    """
    from repro.perfmodel import StageModel
    from repro.perfmodel.stagemodel import LJ_WORKLOAD_1M7, LJ_WORKLOAD_65K
    from repro.perfmodel.variants import ablation_variants

    model = StageModel(params)
    out = {}
    for w in (LJ_WORKLOAD_65K, LJ_WORKLOAD_1M7):
        out[w.name] = {
            name: model.step_times(w, nodes, v).total
            for name, v in ablation_variants().items()
        }
    return out


def render_perf_ablation(results: dict) -> str:
    """Format the opt-minus-one step-time table."""
    rows = []
    for wname, times in results.items():
        base = times["opt"]
        for name, t in times.items():
            rows.append([wname, name, us(t), f"+{100 * (t / base - 1):.1f}%"])
    return format_table(
        ["workload", "variant", "step [us]", "vs opt"],
        rows,
        title="Step-time ablation: opt with each optimization removed (768 nodes)",
    )


def render(res: AblationResult) -> str:
    """Format the ablation tables."""
    rows = [
        [
            "pre-registration",
            f"{res.registrations_baseline} registrations",
            f"{res.registrations_opt} registrations",
            f"{us(res.registration_time_saved):.1f} us saved",
        ],
        [
            "message combine",
            f"{us(res.combine_round_without):.2f} us/border",
            f"{us(res.combine_round_with):.2f} us/border",
            f"{100 * res.combine_saving:.0f}% saved",
        ],
        [
            "border bins",
            f"{res.tests_per_atom_brute:.0f} tests/atom "
            f"({1e3 * res.brute_route_time:.2f} ms)",
            f"{res.tests_per_atom_binned:.0f} tests/atom "
            f"({1e3 * res.bins_route_time:.2f} ms)",
            f"{res.bins_test_reduction:.1f}x fewer tests",
        ],
    ]
    table = format_table(
        ["optimization", "baseline", "optimized", "benefit"],
        rows,
        title="Sections 3.4/3.5 — optimization ablations",
    )
    return table + "\n\n" + render_perf_ablation(perf_ablation())
