"""Section 3.5.3 — the topo map, quantified.

The paper states that mapping MPI ranks onto the 6D torus "can
effectively reduce the average communication hops and latency" but
reports no numbers.  This module produces them: for the 768-node job
shape (8x12x8), route every rank's 13 half-shell neighbor messages under
(a) the topology-preserving placement and (b) a random placement (what a
topology-oblivious scheduler gives you), and compare mean hops, total
link traversals and worst-link congestion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import JobShape, TopoMap
from repro.core.patterns import half_shell_offsets
from repro.figures.common import format_table
from repro.machine.routing import CongestionReport, link_congestion, neighbor_traffic_pairs

PAPER = {
    "claim": "MPI ranks can be directly mapped to a sub-box while "
    "preserving the original physical topology; this can effectively "
    "reduce the average communication hops and latency",
}


@dataclass
class TopoMapResult:
    job_nodes: tuple[int, int, int]
    mapped: CongestionReport
    randomized: CongestionReport
    on_node_fraction_mapped: float
    on_node_fraction_random: float

    @property
    def hop_reduction(self) -> float:
        if self.randomized.mean_hops == 0:
            return 0.0
        return 1.0 - self.mapped.mean_hops / self.randomized.mean_hops


def compute(job_nodes: tuple[int, int, int] = (8, 12, 8), seed: int = 7) -> TopoMapResult:
    """Route neighbor traffic under topo-map and random placements."""
    tm = TopoMap(JobShape(job_nodes))
    offsets = half_shell_offsets(1)
    gx, gy, gz = tm.rank_grid
    total_sends = gx * gy * gz * len(offsets)

    topo_pairs = neighbor_traffic_pairs(tm, offsets)

    rng = random.Random(seed)
    positions = [(x, y, z) for x in range(gx) for y in range(gy) for z in range(gz)]
    shuffled = positions[:]
    rng.shuffle(shuffled)
    placement = dict(zip(positions, shuffled))
    random_pairs = neighbor_traffic_pairs(tm, offsets, placement)

    return TopoMapResult(
        job_nodes=job_nodes,
        mapped=link_congestion(tm.topology, topo_pairs),
        randomized=link_congestion(tm.topology, random_pairs),
        on_node_fraction_mapped=1.0 - len(topo_pairs) / total_sends,
        on_node_fraction_random=1.0 - len(random_pairs) / total_sends,
    )


def render(res: TopoMapResult) -> str:
    """Format the placement-comparison table."""
    rows = [
        [
            "topo map (paper)",
            res.mapped.mean_hops,
            res.mapped.total_link_traversals,
            res.mapped.max_link_load,
            f"{100 * res.on_node_fraction_mapped:.0f}%",
        ],
        [
            "random placement",
            res.randomized.mean_hops,
            res.randomized.total_link_traversals,
            res.randomized.max_link_load,
            f"{100 * res.on_node_fraction_random:.0f}%",
        ],
    ]
    table = format_table(
        ["placement", "mean hops", "link traversals", "max link load", "on-node msgs"],
        rows,
        title=(
            f"Section 3.5.3 — topo map vs random placement "
            f"({res.job_nodes[0]}x{res.job_nodes[1]}x{res.job_nodes[2]} nodes, "
            "13-neighbor exchange)"
        ),
    )
    notes = (
        f"\n mean-hop reduction from topology-aware placement: "
        f"{100 * res.hop_reduction:.0f}% (paper: 'effectively reduce the "
        "average communication hops')"
    )
    return table + notes
