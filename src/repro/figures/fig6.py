"""Fig. 6 — message transmission time of the five implementations.

The paper measures 10k iterations of the ghost exchange (packing
excluded) on 768 nodes for: MPI-3stage, MPI-p2p, uTofu-3stage,
uTofu-p2p, and the thread-pool (parallel) variant, on both the 65K and
1.7M systems.  Headline: uTofu-p2p cuts 79 % vs MPI-3stage, and naive
MPI-p2p is *slower* than MPI-3stage.

We regenerate the bars with the network simulator pricing each
variant's exchange round (no MD compute, no OS noise — a tight comm
loop keeps ranks synchronized, see the stagemodel docstring).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.figures.common import format_table, us
from repro.perfmodel import LJ_WORKLOAD_1M7, LJ_WORKLOAD_65K, StageModel, variant_by_name
from repro.perfmodel.stagemodel import Workload

#: Published qualitative anchors.
PAPER = {
    "reduction_utofu_p2p_vs_mpi_3stage": 0.79,
    "mpi_p2p_slower_than_mpi_3stage": True,
    "utofu_p2p_vs_utofu_3stage_speedup": 1.5,
}

VARIANT_ORDER = ("ref", "mpi_p2p", "utofu_3stage", "4tni_p2p", "opt")
LABELS = {
    "ref": "MPI-3stage",
    "mpi_p2p": "MPI-p2p",
    "utofu_3stage": "uTofu-3stage",
    "4tni_p2p": "uTofu-p2p",
    "opt": "threadpool-p2p",
}


@dataclass
class Fig6Result:
    nodes: int
    times: dict[str, dict[str, float]] = field(default_factory=dict)
    # times[workload][variant] = seconds per exchange round

    def reduction(self, workload: str) -> float:
        """uTofu-p2p time reduction vs MPI-3stage (paper: 79 %)."""
        t = self.times[workload]
        return 1.0 - t["4tni_p2p"] / t["ref"]

    def utofu_ratio(self, workload: str) -> float:
        """uTofu-3stage over uTofu-p2p round time (paper: 1.5x)."""
        t = self.times[workload]
        return t["utofu_3stage"] / t["4tni_p2p"]


def compute(nodes: int = 768, model: StageModel | None = None) -> Fig6Result:
    """Price all five implementations' exchange rounds."""
    model = model if model is not None else StageModel()
    res = Fig6Result(nodes=nodes)
    for w in (LJ_WORKLOAD_65K, LJ_WORKLOAD_1M7):
        res.times[w.name] = {
            name: model.exchange_round_time(variant_by_name(name), w, nodes)
            for name in VARIANT_ORDER
        }
    return res


def render(res: Fig6Result) -> str:
    """Format the transmission-time bars as a table."""
    rows = []
    for wname, times in res.times.items():
        for vname in VARIANT_ORDER:
            rows.append([wname, LABELS[vname], us(times[vname])])
    table = format_table(
        ["system", "implementation", "round time [us]"],
        rows,
        title=f"Fig. 6 — ghost-exchange transmission time on {res.nodes} nodes",
    )
    notes = (
        f"\n 65K: uTofu-p2p vs MPI-3stage reduction: "
        f"{100 * res.reduction('lj-65k'):.0f}% (paper: 79%)"
        f"\n 65K: uTofu-3stage / uTofu-p2p: {res.utofu_ratio('lj-65k'):.2f}x "
        "(paper: 1.5x)"
        f"\n 65K: MPI-p2p slower than MPI-3stage: "
        f"{res.times['lj-65k']['mpi_p2p'] > res.times['lj-65k']['ref']} (paper: True)"
    )
    return table + notes
