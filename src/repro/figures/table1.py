"""Table 1 — communication pattern analysis.

Regenerates the paper's message-class table for both patterns (message
size expression, hops, message count) and the two totals, for a concrete
sub-box/cutoff/density, and checks the symbolic identities:

* 3-stage total atoms = ``8 r^3 + 12 a r^2 + 6 a^2 r``,  6 messages;
* p2p total atoms = ``4 r^3 + 6 a r^2 + 3 a^2 r``,  13 messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import analyze_p2p, analyze_three_stage
from repro.core.analytic import PatternAnalysis
from repro.figures.common import format_table

#: Published Table 1 structure.
PAPER = {
    "3stage": {"total_msg": 6, "rows": [("a^2 r", 1, 2), ("a^2 r + 2 a r^2", 1, 2), ("(a+2r)^2 r", 1, 2)]},
    "p2p": {"total_msg": 13, "rows": [("a^2 r", 1, 3), ("a r^2", 2, 6), ("r^3", 3, 4)]},
    "total_atom_3stage": "8r^3 + 12ar^2 + 6a^2r",
    "total_atom_p2p": "4r^3 + 6ar^2 + 3a^2r",
}


@dataclass
class Table1Result:
    a: float
    r: float
    density: float
    three_stage: PatternAnalysis
    p2p: PatternAnalysis

    @property
    def volume_ratio(self) -> float:
        """p2p total over 3-stage total — 0.5 with Newton's law."""
        return self.p2p.total_atoms / self.three_stage.total_atoms


def compute(a: float = 3.0, r: float = 1.0, density: float = 0.8442) -> Table1Result:
    """Build both pattern analyses for one geometry."""
    return Table1Result(
        a=a,
        r=r,
        density=density,
        three_stage=analyze_three_stage(a, r, density),
        p2p=analyze_p2p(a, r, density),
    )


def render(res: Table1Result) -> str:
    """Format the Table 1 rows plus the volume-ratio note."""
    rows = []
    for ana in (res.three_stage, res.p2p):
        for cls in ana.classes:
            rows.append(
                [ana.pattern, cls.name, cls.atoms, cls.nbytes, cls.hops, cls.count]
            )
        rows.append(
            [ana.pattern, "TOTAL", ana.total_atoms, int(ana.total_bytes), "-", ana.total_messages]
        )
    table = format_table(
        ["pattern", "msg class", "atoms/msg", "bytes/msg", "hops", "msgs"],
        rows,
        title=(
            f"Table 1 — pattern analysis (a={res.a}, r_cut={res.r}, "
            f"rho={res.density})"
        ),
    )
    ratio = (
        f"\n p2p/3stage ghost volume ratio: {res.volume_ratio:.3f} "
        "(paper: 0.5 — Newton's 3rd law halves the exchange)"
    )
    return table + ratio
