"""Shared formatting for the figure reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    floatfmt: str = ".3g",
) -> str:
    """Plain-text table, right-aligned numbers, left-aligned first column."""

    def cell(v) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]

    def line(cells, pad=" "):
        out = []
        for i, c in enumerate(cells):
            if i == 0:
                out.append(c.ljust(widths[i]))
            else:
                out.append(c.rjust(widths[i]))
        return pad + (" | ").join(out)

    sep = " " + "-+-".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(sep)
    parts.extend(line(r) for r in str_rows)
    return "\n".join(parts)


def us(seconds: float) -> float:
    """Seconds -> microseconds (figure axes are in us)."""
    return seconds * 1e6


def pct(fraction: float) -> float:
    """Fraction -> percent."""
    return 100.0 * fraction
