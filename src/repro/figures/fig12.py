"""Fig. 12 — step-by-step optimization results on 768 nodes.

Five variants x two potentials x two system sizes: total speedup over
the reference (Fig. 12a), communication time (Fig. 12b) and pair-stage
time (Fig. 12c).  Paper anchors: 3.01x / 2.45x total at 65K (LJ / EAM),
1.6x / 1.4x at 1.7M; comm -77 %; LJ pair -43 % / EAM pair -56 % at 65K.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.figures.common import format_table, us
from repro.perfmodel import (
    EAM_WORKLOAD_1M7,
    EAM_WORKLOAD_65K,
    LJ_WORKLOAD_1M7,
    LJ_WORKLOAD_65K,
    StageModel,
    variant_by_name,
)
from repro.perfmodel.stagemodel import StageTimesResult

PAPER = {
    "total_speedup_65k": {"lj": 3.01, "eam": 2.45},
    "total_speedup_1m7": {"lj": 1.6, "eam": 1.4},
    "comm_reduction_65k": 0.77,
    "pair_reduction_65k": {"lj": 0.43, "eam": 0.56},
}

VARIANT_ORDER = ("ref", "utofu_3stage", "4tni_p2p", "6tni_p2p", "opt")
WORKLOADS = (LJ_WORKLOAD_65K, LJ_WORKLOAD_1M7, EAM_WORKLOAD_65K, EAM_WORKLOAD_1M7)


@dataclass
class Fig12Result:
    nodes: int
    results: dict[str, dict[str, StageTimesResult]] = field(default_factory=dict)

    def speedup(self, workload: str, variant: str) -> float:
        """Speedup of ``variant`` over ref for ``workload``."""
        base = self.results[workload]["ref"].total
        return base / self.results[workload][variant].total

    def comm_reduction(self, workload: str) -> float:
        """Fractional Comm-stage reduction of opt vs ref."""
        r = self.results[workload]
        return 1.0 - r["opt"].stages["Comm"] / r["ref"].stages["Comm"]

    def pair_reduction(self, workload: str) -> float:
        """Fractional Pair-stage reduction of opt vs ref."""
        r = self.results[workload]
        return 1.0 - r["opt"].stages["Pair"] / r["ref"].stages["Pair"]


def compute(nodes: int = 768, model: StageModel | None = None) -> Fig12Result:
    """Price all five variants on the four Fig. 12 workloads."""
    model = model if model is not None else StageModel()
    res = Fig12Result(nodes=nodes)
    for w in WORKLOADS:
        res.results[w.name] = {
            name: model.step_times(w, nodes, variant_by_name(name))
            for name in VARIANT_ORDER
        }
    return res


def render(res: Fig12Result) -> str:
    """Format the step-by-step results table."""
    rows = []
    for wname, variants in res.results.items():
        for vname in VARIANT_ORDER:
            r = variants[vname]
            rows.append(
                [
                    wname,
                    vname,
                    us(r.total),
                    res.speedup(wname, vname),
                    us(r.stages["Comm"]),
                    us(r.stages["Pair"]),
                ]
            )
    table = format_table(
        ["workload", "variant", "step [us]", "speedup", "Comm [us]", "Pair [us]"],
        rows,
        title=f"Fig. 12 — step-by-step results on {res.nodes} nodes",
    )
    notes = (
        f"\n total speedup 65K: LJ {res.speedup('lj-65k', 'opt'):.2f}x "
        f"(paper 3.01x), EAM {res.speedup('eam-65k', 'opt'):.2f}x (paper 2.45x)"
        f"\n total speedup 1.7M: LJ {res.speedup('lj-1.7m', 'opt'):.2f}x "
        f"(paper 1.6x), EAM {res.speedup('eam-1.7m', 'opt'):.2f}x (paper 1.4x)"
        f"\n comm reduction 65K LJ: {100 * res.comm_reduction('lj-65k'):.0f}% "
        "(paper 77%)"
        f"\n pair reduction 65K: LJ {100 * res.pair_reduction('lj-65k'):.0f}% "
        f"(paper 43%), EAM {100 * res.pair_reduction('eam-65k'):.0f}% (paper 56%)"
    )
    return table + notes
