"""Fig. 14 — weak scaling from 768 to 20 736 nodes.

100K atoms per core (LJ) / 72K (EAM), ending at 99 / 72 billion atoms.
The paper reports nearly linear growth of simulation performance; we
plot atom-steps/second and the linearity ratio per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.figures.common import format_table
from repro.perfmodel import StageModel, variant_by_name, weak_scaling
from repro.perfmodel.scaling import (
    WEAK_EAM_ATOMS_PER_CORE,
    WEAK_LJ_ATOMS_PER_CORE,
    WEAK_SCALING_NODES,
    ScalingPoint,
    weak_scaling_rate,
)
from repro.figures.fig13 import eam_workload, lj_workload

PAPER = {
    "atoms_final": {"lj": 99e9, "eam": 72e9},
    "claim": "simulation performance increases almost linearly",
}


@dataclass
class Fig14Result:
    curves: dict[str, list[ScalingPoint]] = field(default_factory=dict)

    def linearity(self, potential: str) -> float:
        """Rate gain vs node gain over the sweep; 1.0 = perfectly linear."""
        pts = self.curves[potential]
        rates = weak_scaling_rate(pts)
        return (rates[-1] / rates[0]) / (pts[-1].nodes / pts[0].nodes)


def compute(nodes_list=WEAK_SCALING_NODES, model: StageModel | None = None) -> Fig14Result:
    """Sweep the opt variant over the weak-scaling node counts."""
    model = model if model is not None else StageModel()
    res = Fig14Result()
    res.curves["lj"] = weak_scaling(
        lj_workload(), variant_by_name("opt"), WEAK_LJ_ATOMS_PER_CORE,
        nodes_list, model=model,
    )
    res.curves["eam"] = weak_scaling(
        eam_workload(), variant_by_name("opt"), WEAK_EAM_ATOMS_PER_CORE,
        nodes_list, model=model,
    )
    return res


def render(res: Fig14Result) -> str:
    """Format the weak-scaling table with linearity notes."""
    rows = []
    for pot, pts in res.curves.items():
        rates = weak_scaling_rate(pts)
        for p, rate in zip(pts, rates):
            rows.append([pot, p.nodes, p.natoms / 1e9, p.step_time * 1e3, rate / 1e9])
    table = format_table(
        ["potential", "nodes", "atoms [G]", "step [ms]", "Gatom-steps/s"],
        rows,
        title="Fig. 14 — weak scaling (100K / 72K atoms per core)",
    )
    notes = (
        f"\n linearity (1.0 = ideal): LJ {res.linearity('lj'):.3f}, "
        f"EAM {res.linearity('eam'):.3f} (paper: 'almost linear')"
        f"\n final system sizes: LJ {res.curves['lj'][-1].natoms / 1e9:.1f}G "
        f"(paper 99G), EAM {res.curves['eam'][-1].natoms / 1e9:.1f}G (paper 72G)"
    )
    return table + notes
