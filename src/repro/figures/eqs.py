"""Equations (3)-(8) — the section 3.1 timing formulas, evaluated.

Shows the six pattern/optimization combinations under both software
stacks and verifies the paper's analytic conclusion: under uTofu,
``T_p2p-parallel < T_3stage-parallel`` because ``T_inj`` is tiny and
``T_3 = T_0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import timing_model
from repro.core.analytic import TimingModel
from repro.figures.common import format_table, us
from repro.network import MpiStack, UtofuStack

PAPER = {
    "conclusion": "p2p pattern theoretically takes less communication time "
    "than 3-stage on Fugaku (uTofu)",
    "t3_equals_t0": True,
}


@dataclass
class EqsResult:
    mpi: TimingModel
    utofu: TimingModel

    @property
    def utofu_p2p_wins(self) -> bool:
        return self.utofu.p2p_parallel < self.utofu.three_stage_parallel

    @property
    def mpi_naive_p2p_loses(self) -> bool:
        return self.mpi.p2p_naive > self.mpi.three_stage_opt


def compute(a: float = 1.37, r: float = 2.8, density: float = 0.8442) -> EqsResult:
    """Defaults are the 65K-atoms-on-768-nodes geometry (22 atoms/rank)."""
    return EqsResult(
        mpi=timing_model(a, r, density, stack=MpiStack()),
        utofu=timing_model(a, r, density, stack=UtofuStack()),
    )


def render(res: EqsResult) -> str:
    """Format the Eq. (3)-(8) table with the paper's conclusions."""
    rows = []
    for name, tm in (("MPI", res.mpi), ("uTofu", res.utofu)):
        d = tm.as_dict()
        rows.append(
            [
                name,
                us(tm.t_inj),
                us(d["3stage-naive"]),
                us(d["p2p-naive"]),
                us(d["3stage-opt"]),
                us(d["p2p-opt"]),
                us(d["3stage-parallel"]),
                us(d["p2p-parallel"]),
            ]
        )
    table = format_table(
        ["stack", "T_inj", "Eq3 3s-naive", "Eq4 p2p-naive", "Eq5 3s-opt",
         "Eq6 p2p-opt", "Eq7 3s-par", "Eq8 p2p-par"],
        rows,
        title="Equations (3)-(8) evaluated [us], 65K@768 geometry",
    )
    notes = (
        f"\n uTofu p2p-parallel beats 3stage-parallel: {res.utofu_p2p_wins} "
        "(paper: True)"
        f"\n MPI naive p2p loses to MPI 3-stage: {res.mpi_naive_p2p_loses} "
        "(paper: True — motivates uTofu)"
    )
    return table + notes
