"""repro — reproduction of "Enhance the Strong Scaling of LAMMPS on Fugaku".

A working LAMMPS-like molecular-dynamics engine plus a simulated Fugaku
substrate (TofuD 6D torus, TNIs, uTofu/MPI software stacks) used to
reproduce the paper's communication optimizations and every figure/table
of its evaluation.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import quick_lj_simulation

    sim = quick_lj_simulation(cells=(6, 6, 6), ranks=(2, 2, 2),
                              pattern="parallel-p2p", rdma=True)
    sim.run(50)
    print(sim.sample_thermo())
"""

from repro.md import (
    Simulation,
    SimulationConfig,
    LennardJones,
    EAMPotential,
    make_cu_like_eam,
    fcc_lattice,
    lj_density_to_cell,
)
from repro.md.lattice import maxwell_velocities
from repro.md.serial import SerialReference

__version__ = "1.0.0"


def quick_lj_simulation(
    cells=(6, 6, 6),
    ranks=(2, 2, 2),
    pattern: str = "p2p",
    rdma: bool = False,
    density: float = 0.8442,
    temperature: float = 1.44,
    cutoff: float = 2.5,
    skin: float = 0.3,
    dt: float = 0.005,
    seed: int = 12345,
    **config_kwargs,
) -> Simulation:
    """Build the paper's LJ melt benchmark at a laptop-friendly size.

    Mirrors the LAMMPS ``in.lj`` bench: FCC lattice at reduced density
    0.8442, Maxwell velocities at T*=1.44, LJ cutoff 2.5 sigma, skin 0.3,
    NVE.  ``pattern`` picks the communication implementation under test.
    """
    edge = lj_density_to_cell(density)
    x, box = fcc_lattice(cells, edge)
    v = maxwell_velocities(x.shape[0], temperature, seed=seed)
    cfg = SimulationConfig(
        dt=dt, skin=skin, pattern=pattern, rdma=rdma, **config_kwargs
    )
    return Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=ranks)


__all__ = [
    "Simulation",
    "SimulationConfig",
    "LennardJones",
    "EAMPotential",
    "make_cu_like_eam",
    "fcc_lattice",
    "lj_density_to_cell",
    "maxwell_velocities",
    "SerialReference",
    "quick_lj_simulation",
    "__version__",
]
