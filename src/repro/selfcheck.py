"""Built-in self-check: the cross-validation battery as a library call.

A downstream user's first command after installing (``python -m repro
--selfcheck``): runs the same physical system through the serial
minimum-image reference and every communication implementation, and
verifies

1. forces match the reference at machine precision,
2. trajectories stay identical over tens of steps (migration included),
3. conservation laws hold (momentum exactly, energy to truncation noise),
4. the traffic actually moved matches Table 1 (13 vs 6 messages, half
   vs full ghost volume),
5. the observability layer agrees with the ground truth: per-phase
   message counts/bytes recomputed from the trace equal the
   :class:`~repro.runtime.transport.TrafficLog`, the forward counts
   equal the Table 1 analytic formulas, and the span-derived stage
   breakdown reproduces :class:`~repro.md.stages.StageTimers` exactly,
6. the critical-path analyzer's attribution partitions the modeled
   exchange time exactly and agrees with the rank's send schedule and
   the model-clock ``StageTimers`` account,
7. the analysis layer holds both ways: commlint reports zero findings
   on the shipped communication stack yet flags a seeded protocol bug,
   and the happens-before race detector stays silent on a fault-free
   RDMA run yet flags injected §3.4 stale windows.

Returns a structured report; any failed check names itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.potentials import LennardJones
from repro.md.serial import SerialReference
from repro.md.simulation import Simulation, SimulationConfig

VARIANTS = (
    ("3stage", False),
    ("p2p", False),
    ("p2p", True),
    ("parallel-p2p", True),
)


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class SelfCheckReport:
    checks: list[CheckResult] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one named check outcome."""
        self.checks.append(CheckResult(name, passed, detail))

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        """Human-readable PASS/FAIL listing."""
        lines = ["repro self-check:"]
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name}" + (f" — {c.detail}" if c.detail else ""))
        lines.append(
            f"{sum(c.passed for c in self.checks)}/{len(self.checks)} checks passed"
        )
        return "\n".join(lines)


def run_selfcheck(
    cells=(4, 4, 4), steps: int = 20, seed: int = 7, fault_plan=None
) -> SelfCheckReport:
    """Run the full cross-validation battery; returns the report.

    With a :class:`~repro.faults.plan.FaultPlan`, the fault battery runs
    last (so a CLI ``--trace`` export shows its fault/retry spans): the
    plan is injected into a fresh run and the ghost region must come out
    bit-identical to the fault-free run whenever the retry layer absorbs
    every fault.
    """
    report = SelfCheckReport()
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice(cells, edge)
    v = maxwell_velocities(x.shape[0], 1.44, seed=seed)
    ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
    e0 = ref.sample_thermo().total_energy
    ref.run(steps)

    sims = {}
    for pattern, rdma in VARIANTS:
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern=pattern, rdma=rdma, neighbor_every=5
        )
        sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
        sim.run(steps)
        sims[(pattern, rdma)] = sim
        label = pattern + ("+rdma" if rdma else "")

        d = box.minimum_image(sim.gather_positions() - ref.x)
        err = float(np.abs(d).max())
        report.add(
            f"trajectory[{label}] matches serial reference",
            err < 1e-9,
            f"max deviation {err:.2e}",
        )

        p = sim.gather_velocities().sum(axis=0)
        report.add(
            f"momentum[{label}] conserved",
            bool(np.all(np.abs(p) < 1e-9)),
            f"|p| {np.abs(p).max():.2e}",
        )

        report.add(
            f"atoms[{label}] conserved through migration",
            sim.total_local_atoms() == sim.natoms,
            f"{sim.total_local_atoms()}/{sim.natoms}",
        )

    e1 = ref.sample_thermo().total_energy
    drift = abs(e1 - e0) / abs(e0)
    report.add(
        "energy drift within truncation noise",
        drift < 5e-3,
        f"relative drift {drift:.2e} over {steps} steps",
    )

    # Table 1 traffic shape on the live exchanges.
    msg_p2p = len(sims[("p2p", False)].exchange.routes[0].sends)
    msg_3s = len(sims[("3stage", False)].exchange.routes[0].sends)
    report.add(
        "message counts match Table 1 (13 p2p vs 6 3-stage)",
        (msg_p2p, msg_3s) == (13, 6),
        f"measured {msg_p2p} and {msg_3s}",
    )
    g_p2p = sum(sims[("p2p", False)].exchange.ghost_counts().values())
    g_3s = sum(sims[("3stage", False)].exchange.ghost_counts().values())
    ratio = g_p2p / g_3s if g_3s else 0.0
    report.add(
        "ghost volume halved by Newton's law (Table 1)",
        0.42 < ratio < 0.58,
        f"p2p/3stage ghost ratio {ratio:.3f}",
    )

    rereg = sims[("p2p", True)].exchange.reregistrations
    report.add(
        "pre-registration held (no re-registrations)",
        rereg == 0,
        f"{rereg} re-registrations",
    )
    _observability_checks(report, x, v, box, steps=max(steps // 2, 5))
    _critpath_checks(report, x, v, box)
    _analysis_checks(report, x, v, box)
    _telemetry_checks(report, x, v, box, steps=max(steps // 2, 5))
    _scaling_observatory_checks(report, x, v, box)
    _fleet_checks(report)
    _protomc_checks(report)
    if fault_plan is not None:
        _fault_checks(report, x, v, box, fault_plan)
    return report


def _observability_checks(
    report: SelfCheckReport,
    x: np.ndarray,
    v: np.ndarray,
    box,
    steps: int = 10,
) -> None:
    """Trace-vs-TrafficLog-vs-Table-1 cross-validation (observability).

    Re-runs a small system under tracing and checks three independent
    accounts of the same communication against each other:

    * per-phase counts/bytes recomputed from the per-message trace
      instants must equal the :class:`TrafficLog` exactly,
    * forward message counts must equal the Table 1 analytic formulas
      (6 messages/rank for 3-stage, 13 for the half-shell p2p),
    * the span-derived stage breakdown must equal ``StageTimers`` —
      bit-exact, because both accounts share the measured floats.
    """
    from repro.core.analytic import analyze_p2p, analyze_three_stage
    from repro.obs import observe
    from repro.obs.report import phase_summary_from_trace, stage_breakdown_from_trace

    for pattern in ("3stage", "parallel-p2p"):
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern=pattern, neighbor_every=5
        )
        with observe(metrics=False) as (tracer, _):
            sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
            sim.run(steps)
            phases = phase_summary_from_trace(tracer)
            stage_wall = stage_breakdown_from_trace(tracer, "wall")

        log = sim.world.transport.log
        log_phases = {m.phase for m in log.messages}
        agree = log_phases == set(phases) and all(
            (phases[ph].count, phases[ph].total_bytes)
            == (log.summary(ph).count, log.summary(ph).total_bytes)
            for ph in phases
        )
        report.add(
            f"trace[{pattern}] phase traffic equals TrafficLog",
            agree,
            f"phases {sorted(phases)}",
        )

        a = float(np.min(sim.domain.sub_lengths))
        r = sim.potential.cutoff + cfg.skin
        density = sim.natoms / box.volume
        if pattern == "3stage":
            analysis = analyze_three_stage(a, r, density)
        else:
            analysis = analyze_p2p(a, r, density, newton=sim.half)
        expected_forward = analysis.total_messages * sim.world.size * (
            sim.step_count - sim.rebuilds
        )
        measured_forward = phases["forward"].count if "forward" in phases else 0
        report.add(
            f"trace[{pattern}] forward counts match Table 1 "
            f"({analysis.total_messages} msgs/rank)",
            measured_forward == expected_forward,
            f"measured {measured_forward}, predicted {expected_forward}",
        )

        max_err = max(
            abs(stage_wall[s.value] - sim.timers.wall[s]) for s in sim.timers.wall
        )
        report.add(
            f"trace[{pattern}] stage breakdown reproduces StageTimers",
            max_err == 0.0,
            f"max |span sum - timer| = {max_err:.2e}",
        )


def _critpath_checks(
    report: SelfCheckReport,
    x: np.ndarray,
    v: np.ndarray,
    box,
) -> None:
    """Critical-path-vs-model-vs-TrafficLog cross-validation.

    The critical-path analyzer claims its per-category attribution
    partitions the modeled exchange exactly.  Check that claim against
    the two independent accounts that already exist:

    * the chain's completion time must equal the scalar
      :func:`~repro.core.modeling.modeled_exchange_time` returns (same
      simulator, independent reduction), and the attribution must sum to
      it within float tolerance;
    * the number of distinct messages on the analyzer's wire horizon
      must equal the rank's send schedule — the same per-rank count the
      :class:`TrafficLog` records once per exchange phase;
    * with ``model_machine_time`` on, the model-timeline stage breakdown
      recomputed from spans must reproduce ``StageTimers.model``
      bit-exactly (both accounts share the accumulated floats).
    """
    from repro.core.modeling import modeled_exchange_time
    from repro.obs import observe
    from repro.obs.critpath import analyze_critical_path
    from repro.obs.report import stage_breakdown_from_trace

    for pattern in ("3stage", "parallel-p2p"):
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern=pattern, rdma=(pattern != "3stage"),
            neighbor_every=5, model_machine_time=True,
        )
        sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
        sim.setup()  # populate the exchange routes the model replays

        with observe(metrics=False) as (tracer, _):
            modeled = modeled_exchange_time(sim.exchange, "forward", rank=0)
        cp = analyze_critical_path(tracer)

        tol = 1e-9 * max(modeled, 1e-12)
        report.add(
            f"critpath[{pattern}] attribution sums to modeled exchange time",
            abs(cp.completion - modeled) <= tol
            and abs(cp.total_attributed - cp.total_time) <= tol,
            f"modeled {modeled:.3e}s, chain {cp.total_attributed:.3e}s "
            f"(diff {abs(cp.total_attributed - (cp.completion - cp.base)):.1e})",
        )

        sends = len(sim.exchange.routes[0].sends)
        report.add(
            f"critpath[{pattern}] message count matches rank-0 send schedule",
            cp.messages == sends,
            f"chain horizon saw {cp.messages}, TrafficLog schedule has {sends}",
        )

        with observe(metrics=False) as (tracer, _):
            sim.run(5)
            stage_model = stage_breakdown_from_trace(tracer, "model")
        max_err = max(
            abs(stage_model[s.value] - sim.timers.model[s]) for s in sim.timers.model
        )
        report.add(
            f"critpath[{pattern}] model stage breakdown reproduces StageTimers",
            max_err == 0.0,
            f"max |span sum - timer| = {max_err:.2e}",
        )


def _analysis_checks(
    report: SelfCheckReport,
    x: np.ndarray,
    v: np.ndarray,
    box,
    steps: int = 5,
) -> None:
    """Static-analyzer and race-detector battery (the analysis layer).

    Four checks pin both directions of the analysis tooling:

    * commlint must report **zero** findings on the shipped
      communication stack (static + live introspection),
    * commlint must still be able to *fail* — a seeded ring-depth-3
      snippet must come back flagged CL001,
    * the happens-before detector must stay silent on a fault-free
      traced RDMA run,
    * it must flag the §3.4 stale windows when ``rdma-stale`` and
      ``ring-stale`` plans are injected into the same run.
    """
    from repro.analysis.commlint import lint_source, run_commlint
    from repro.analysis.hb import detect_races
    from repro.faults.injector import FAULTS
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.obs import observe

    lint = run_commlint()
    report.add(
        "commlint clean on the communication stack",
        lint.clean,
        f"{len(lint.findings)} finding(s) over {len(lint.files_analyzed)} files",
    )

    seeded = lint_source("ring = RecvBufferRing(engine, 0, cap, depth=3)\n")
    report.add(
        "commlint flags a seeded ring-depth bug (CL001)",
        [f.rule for f in seeded] == ["CL001"],
        f"rules {[f.rule for f in seeded]}",
    )

    def probe(plan=None):
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern="p2p", rdma=True, neighbor_every=3
        )
        with observe(metrics=False) as (tracer, _):
            sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
            if plan is not None:
                with FAULTS.inject(plan):
                    sim.run(steps)
            else:
                sim.run(steps)
            return detect_races(tracer)

    clean = probe()
    report.add(
        "race detector silent on fault-free RDMA run",
        clean.clean,
        f"{len(clean.findings)} hazard(s) in {clean.events_analyzed} events",
    )

    hazards = probe(
        FaultPlan(
            seed=3,
            faults=(
                FaultSpec(kind="rdma-stale", count=1, severity=2),
                FaultSpec(kind="ring-stale", count=1, severity=2),
            ),
        )
    )
    report.add(
        "race detector flags injected §3.4 hazards (HB001)",
        any(f.rule == "HB001" for f in hazards.findings),
        f"rules {sorted(hazards.by_rule())}",
    )


def _telemetry_checks(
    report: SelfCheckReport,
    x: np.ndarray,
    v: np.ndarray,
    box,
    steps: int = 10,
) -> None:
    """The always-on telemetry plane against its three ground truths.

    * enabling telemetry must **not** push the exchange off the fast
      path (the whole point of the third tier), and its counters must
      equal the exchange/transport bookkeeping they are fed from;
    * the per-stage quantile sketches must reproduce ``StageTimers``:
      sketch sums telescope to the timer totals, sketch means match the
      per-step means derived from ``breakdown()``, and every sketch
      quantile is within the sketch's relative-accuracy bound of the
      true rank quantile of independently recorded per-step deltas;
    * a forced ``RetryExhaustedError`` must auto-dump a **valid**
      ``repro-flightrec/1`` document carrying the pre-failure step
      frames and the fault/retry/exhaustion event trail.
    """
    import math
    import os
    import tempfile
    from contextlib import contextmanager

    from repro.faults.injector import FAULTS, FaultError
    from repro.faults.plan import FaultPlan, FaultSpec, RetryPolicy
    from repro.md.stages import Stage
    from repro.obs.flight import SCHEMA, load_flight_doc
    from repro.obs.metrics import METRICS
    from repro.obs.telemetry import TELEMETRY
    from repro.obs.trace import TRACER

    def true_quantile(samples: list[float], q: float) -> float:
        ordered = sorted(samples)
        return ordered[max(1, math.ceil(q * len(ordered))) - 1]

    @contextmanager
    def quiet_observability():
        # This battery asserts the fast path survives telemetry *alone*;
        # a CLI --trace/--metrics session (which legitimately blocks the
        # fast path) must not leak in.
        prev_trace, prev_metrics = TRACER.enabled, METRICS.enabled
        TRACER.enabled = False
        METRICS.enabled = False
        try:
            with TELEMETRY.scope():
                yield
        finally:
            TRACER.enabled = prev_trace
            METRICS.enabled = prev_metrics

    with quiet_observability():
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern="p2p", rdma=True,
            neighbor_every=5, model_machine_time=True,
        )
        sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
        telem = sim.telemetry
        sim.setup()
        # Record per-stage deltas independently, sampling the same
        # cumulative timers the flush folds (identical float sequence).
        wall_samples = {s: [] for s in Stage}
        model_samples = {s: [] for s in Stage}
        prev_wall = {s: 0.0 for s in Stage}
        prev_model = {s: 0.0 for s in Stage}
        for _ in range(steps):
            sim.step()
            for s in Stage:
                wall_samples[s].append(sim.timers.wall[s] - prev_wall[s])
                model_samples[s].append(sim.timers.model[s] - prev_model[s])
                prev_wall[s] = sim.timers.wall[s]
                prev_model[s] = sim.timers.model[s]

        stats = sim.exchange.plan_stats()
        report.add(
            "telemetry leaves the exchange fast path on",
            telem is not None
            and stats["fastpath_phases"] > 0
            and sim.exchange._gate_blocks["observability"] == 0,
            f"{stats['fastpath_phases']} fastpath phases, "
            f"{sim.exchange._gate_blocks['observability']} observability blocks",
        )

        log = sim.world.transport.log
        counters_agree = (
            telem.counter_value("fastpath_phases_total") == stats["fastpath_phases"]
            and telem.counter_value("plan_builds_total") == stats["plan_builds"]
            and telem.counter_value("messages_total") == log.grand_total_count
            and telem.counter_value("message_bytes_total") == log.grand_total_bytes
            and telem.counter_value("steps_total") == steps
        )
        report.add(
            "telemetry counters equal exchange/transport bookkeeping",
            counters_agree,
            f"{telem.counter_value('messages_total'):.0f} messages, "
            f"{telem.counter_value('fastpath_phases_total'):.0f} fastpath phases",
        )

        sum_err = 0.0
        mean_err = 0.0
        q_ok = True
        wall_means = {
            name: t / steps for name, (t, _) in sim.timers.breakdown("wall").items()
        }
        for s in Stage:
            sk = telem.sketch("stage_wall_seconds", stage=s.value)
            total = sim.timers.wall[s]
            sum_err = max(sum_err, abs(sk.total - total))
            mean_err = max(mean_err, abs(sk.mean - wall_means[s.value]))
            for sk2, samples in (
                (sk, wall_samples[s]),
                (telem.sketch("stage_model_seconds", stage=s.value), model_samples[s]),
            ):
                if sk2 is None:
                    continue
                for q in (0.5, 0.95, 0.99):
                    truth = true_quantile(samples, q)
                    if abs(sk2.quantile(q) - truth) > truth * 1.01 * sk2.rel_accuracy:
                        q_ok = False
        report.add(
            "stage sketch sums telescope to StageTimers totals",
            sum_err < 1e-9,
            f"max |sketch sum - timer| = {sum_err:.2e}",
        )
        report.add(
            "stage sketch p50/means agree with StageTimers breakdown",
            q_ok and mean_err < 1e-12,
            f"max mean error {mean_err:.2e}, quantiles within rank-error bound",
        )

    # Forced retry exhaustion: 3-stage has no fallback tier, so a drop
    # outliving the retry budget escapes as RetryExhaustedError and must
    # leave a valid flight dump behind.
    with quiet_observability():
        cfg = SimulationConfig(dt=0.005, skin=0.3, pattern="3stage", neighbor_every=4)
        sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
        sim.run(3)  # healthy steps populate the frame ring first
        plan = FaultPlan(
            seed=2,
            policy=RetryPolicy(max_retries=2),
            faults=(FaultSpec("drop", phases=("forward",), severity=9, count=1),),
        )
        fd, dump_path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        prev_autodump = TELEMETRY.autodump_path
        TELEMETRY.autodump_path = dump_path
        died = False
        try:
            with FAULTS.inject(plan):
                sim.run(3)
        except FaultError:
            died = True
        finally:
            TELEMETRY.autodump_path = prev_autodump
        try:
            doc = load_flight_doc(dump_path)
            kinds = {e["kind"] for e in doc["events"]}
            frames_ok = (
                len(doc["frames"]) >= 3
                and set(doc["frames"][-1]["wall"]) == {s.value for s in Stage}
            )
            report.add(
                "forced RetryExhaustedError auto-dumps a valid flight record",
                died
                and doc["schema"] == SCHEMA
                and doc["reason"] == "retry-exhausted"
                and frames_ok
                and {"fault-injected", "retry", "retry-exhausted"} <= kinds,
                f"{len(doc['frames'])} frames, events {sorted(kinds)}",
            )
        except (OSError, ValueError) as exc:
            report.add(
                "forced RetryExhaustedError auto-dumps a valid flight record",
                False,
                f"dump invalid: {exc}",
            )
        finally:
            os.unlink(dump_path)


def _scaling_observatory_checks(
    report: SelfCheckReport,
    x: np.ndarray,
    v: np.ndarray,
    box,
) -> None:
    """Scaling-observatory battery: rank-granular attribution + diagnosis.

    The per-rank profiler claims its table is the *same account* the
    existing layers keep, extended to rank granularity.  Five checks pin
    that claim:

    * every (rank, phase) row's attribution partitions its modeled
      completion exactly (the critpath invariant, per rank);
    * each row's completion equals an independently recomputed
      :func:`~repro.core.modeling.modeled_exchange_time` for that rank
      **bit-exactly** — the profile telescopes to the untraced account;
    * rank 0's forward row *is* the whole-run critical-path attribution
      (same spans, same analysis) bit-for-bit;
    * the serialized ``repro-rankprof/1`` document round-trips through
      its validator (which re-checks the partition invariant);
    * ``repro diag`` on two profiles differing only by one jittered rank
      (fault plane, ``inject-jitter`` on rank 2) names that exact
      cohort, the ``fault`` category, and the imbalance shape in its
      top-ranked finding.
    """
    from repro.core.modeling import modeled_exchange_time
    from repro.faults import FAULTS, FaultPlan
    from repro.faults.plan import FaultSpec
    from repro.obs import observe
    from repro.obs.critpath import analyze_critical_path
    from repro.obs.diag import diagnose
    from repro.obs.rankprof import profile_exchange, to_dict, validate_rankprof_doc

    cfg = SimulationConfig(
        dt=0.005, skin=0.3, pattern="parallel-p2p", rdma=True,
        neighbor_every=5, model_machine_time=True,
    )
    sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
    sim.setup()

    prof = profile_exchange(sim.exchange, phases=("forward", "reverse"))
    worst = 0.0
    for p in prof.profiles:
        tol = 1e-9 * max(p.completion, 1e-12)
        worst = max(worst, abs(sum(p.attribution.values()) - p.completion) - tol)
    report.add(
        "rankprof attribution partitions each rank's exchange exactly",
        worst <= 0.0,
        f"{len(prof.profiles)} rank x phase rows checked",
    )

    exact = all(
        modeled_exchange_time(sim.exchange, p.phase, rank=p.rank) == p.completion
        for p in prof.profiles
    )
    report.add(
        "rankprof completions telescope to modeled_exchange_time bit-exactly",
        exact,
        f"{len(prof.profiles)} independent re-computations",
    )

    with observe(metrics=False) as (tracer, _):
        modeled_exchange_time(sim.exchange, "forward", rank=0)
    cp = analyze_critical_path(tracer)
    row0 = prof.by_phase("forward")[0]
    report.add(
        "rankprof rank-0 row equals whole-run critpath attribution bit-exactly",
        row0.attribution == dict(cp.attribution)
        and row0.completion == cp.completion - cp.base,
        f"{len(row0.attribution)} categories compared",
    )

    doc_clean = to_dict(prof, label="selfcheck-clean")
    try:
        rows = validate_rankprof_doc(doc_clean)
        report.add(
            "rankprof document validates as repro-rankprof/1",
            rows == len(prof.profiles),
            f"{rows} rows",
        )
    except ValueError as exc:
        report.add("rankprof document validates as repro-rankprof/1", False, str(exc))
        return

    plan = FaultPlan(
        seed=5, faults=(FaultSpec("inject-jitter", src=2, stall=2e-6),)
    )
    with FAULTS.inject(plan):
        jittered = profile_exchange(sim.exchange, phases=("forward", "reverse"))
    doc_jit = to_dict(jittered, label="selfcheck-jittered")
    diag = diagnose(doc_clean, doc_jit, "clean", "jittered")
    top = diag.findings[0] if diag.findings else None
    report.add(
        "diag names the perturbed rank cohort, category, and shape",
        top is not None
        and top.cohort == (2,)
        and top.category == "fault"
        and top.shape == "imbalance"
        and top.stage == "Comm",
        "top finding: "
        + (
            f"{top.shape} in {top.stage}/{top.category} on ranks "
            f"{list(top.cohort)}" if top else "none"
        ),
    )


def _ghost_digest(sim: Simulation) -> str:
    """SHA-256 over every rank's ghost positions + tags (bit-exact)."""
    import hashlib

    h = hashlib.sha256()
    for rank in range(sim.world.size):
        atoms = sim.atoms_of(rank)
        h.update(atoms.x[atoms.nlocal : atoms.ntotal].tobytes())
        h.update(atoms.tag[atoms.nlocal : atoms.ntotal].tobytes())
    return h.hexdigest()


def _fleet_checks(report: SelfCheckReport) -> None:
    """Scenario-fleet battery: the spec-driven registry is trustworthy.

    Five checks pin the generator the differential/fault/bench gates
    parametrize over: deterministic >= 200-config expansion, the legacy
    hand-written 24-config grid provably embedded, zero L0/L1
    rejections fleet-wide, and one executable smoke per consumer
    (equivalence bit-identity across all three variants, fault template
    absorbed bit-identically).
    """
    from repro.scenarios import (
        core_spec,
        default_fleet,
        dumps_fleet,
        expand_spec,
        legacy_equivalence_configs,
        validate_fleet,
        validate_scenario,
    )
    from repro.scenarios.build import ghost_set, scenario_exchange

    spec = core_spec()
    first, second = expand_spec(spec), expand_spec(spec)
    ids = [s["id"] for s in first]
    report.add(
        "fleet expansion deterministic, duplicate-free, >= 200 configs",
        len(first) >= 200
        and len(set(ids)) == len(ids)
        and dumps_fleet(spec, first) == dumps_fleet(spec, second),
        f"{len(first)} scenarios, {len(set(ids))} distinct ids",
    )

    fleet = default_fleet()
    by_key = {
        (tuple(s["params"]["grid"]), s["params"]["cutoff"], s["params"]["newton"]): s
        for s in fleet
        if s["role"] == "equivalence" and s["params"]["observability"] == "off"
    }
    legacy = legacy_equivalence_configs()
    missing = [k for k in legacy if k not in by_key]
    grids = [k[0] for k in legacy[::6]]  # axis order of the legacy grid list
    seed_mismatch = [
        k for k in legacy
        if k in by_key
        and by_key[k]["seed"]
        != 1000 * grids.index(k[0]) + int(100 * k[1]) + (1 if k[2] else 0)
    ]
    report.add(
        "legacy 24-config grid embedded in the fleet (same seeds)",
        not missing and not seed_mismatch and len(legacy) == 24,
        f"{len(legacy) - len(missing)}/{len(legacy)} present, "
        f"{len(seed_mismatch)} seed mismatch(es)",
    )

    l1 = validate_fleet(list(fleet), level="L1")
    report.add(
        "whole fleet passes L0+L1 (schema + commlint feasibility)",
        l1.ok,
        f"{l1.checked} checked, {len(l1.issues)} issue(s)",
    )

    sampled_eq = next(
        s for s in fleet
        if s["role"] == "equivalence" and s["params"]["observability"] == "off"
    )
    exchanges = {
        p: scenario_exchange(sampled_eq, p) for p in ("p2p", "parallel-p2p", "3stage")
    }
    nranks = int(np.prod(sampled_eq["params"]["grid"]))
    fine_equal = all(
        np.array_equal(
            exchanges["p2p"].atoms_of(r).x, exchanges["parallel-p2p"].atoms_of(r).x
        )
        for r in range(nranks)
    )
    shell_contains = all(
        ghost_set(exchanges["p2p"], r) <= ghost_set(exchanges["3stage"], r)
        for r in range(nranks)
    )
    report.add(
        "fleet equivalence scenario: variants agree bit-identically",
        fine_equal and shell_contains,
        f"{sampled_eq['id']} over {nranks} rank(s)",
    )

    fault_scenario = next(
        s for s in fleet if s["role"] == "fault" and s["tier"] == "sampled"
    )
    issues = validate_scenario(fault_scenario, level="L3")
    report.add(
        "fleet fault scenario: template plan absorbed bit-identically",
        not issues,
        issues[0].render() if issues else fault_scenario["id"],
    )


def _protomc_checks(report: SelfCheckReport) -> None:
    """Protocol model-checker battery (protomc P1–P4).

    Four checks pin the checker the ``protocol-verify`` CI gate and the
    ``L2.5`` validation level rely on: a clean model proves all four
    properties, every seeded protocol mutation is caught by its *named*
    property with a replayable counterexample, a sampled fleet scenario
    verifies end-to-end, and the arithmetic extraction agrees with the
    live route tables (Table 1 message counts) on a real exchange.
    """
    from repro.analysis.protomc import (
        base_model,
        model_from_exchange,
        replay,
        run_mutation_battery,
        verify_model,
        verify_scenario,
    )
    from repro.analysis.protomc.model import SEND
    from repro.scenarios import default_fleet
    from repro.scenarios.build import scenario_exchange

    clean = verify_model(base_model())
    report.add(
        "protomc: clean rdma p2p model proves P1-P4",
        clean.ok,
        f"{clean.states} state(s), {clean.wall_ms:.1f}ms",
    )

    outcomes = run_mutation_battery()
    missed = [o for o in outcomes if not o.ok]
    report.add(
        "protomc: every seeded mutation caught by its named property",
        not missed,
        ", ".join(o.render() for o in missed)
        or f"{len(outcomes)} mutation(s) caught + replayed",
    )

    fleet = default_fleet()
    sampled = next(
        s for s in fleet
        if s["role"] == "equivalence"
        and s["tier"] == "sampled"
        and s["params"]["grid"] != [1, 1, 1]  # >1 rank: a real state space
    )
    result = verify_scenario(sampled, max_states=200_000, budget_s=20.0)
    confirmed = all(replay_ok for replay_ok in (
        replay(base_model(), c) for c in result.counterexamples
    ))
    report.add(
        "protomc: sampled fleet scenario verifies end-to-end",
        result.ok and confirmed,
        f"{sampled['id']}: {result.states} state(s), {result.wall_ms:.1f}ms",
    )

    eq = next(
        s for s in fleet
        if s["role"] == "equivalence"
        and tuple(s["params"]["grid"]) == (2, 2, 2)
        and s["params"]["newton"]  # Table 1 counts are the half-shell ones
    )
    live_models = {}
    for pattern, expected in (("p2p", 13), ("3stage", 6)):
        ex = scenario_exchange(eq, pattern)
        ex.borders()
        live = model_from_exchange(ex, label=f"selfcheck/{pattern}")
        border_sends = sum(
            1 for op in live.programs[0]
            if op.kind == SEND and op.stage == "borders"
        )
        live_models[pattern] = (live, border_sends, expected)
    live_ok = all(
        got == expected and verify_model(m).ok
        for m, got, expected in live_models.values()
    )
    report.add(
        "protomc: live route extraction matches Table 1 and verifies",
        live_ok,
        ", ".join(
            f"{p}: {got}/{expected} border sends"
            for p, (_, got, expected) in live_models.items()
        ),
    )


def _fault_checks(
    report: SelfCheckReport,
    x: np.ndarray,
    v: np.ndarray,
    box,
    plan,
    steps: int = 8,
) -> None:
    """The tentpole invariant: faults must be absorbed without a trace.

    Runs the fine-p2p+RDMA variant (every fault kind has a target there)
    fault-free and under ``plan``, and checks:

    * faults actually fired and every one was absorbed (or, for a
      non-absorbable plan, degraded cleanly with no unabsorbed leftovers);
    * if no degradation happened, the final ghost region is
      **bit-identical** to the fault-free run; after a degradation the
      trajectory still matches to integration precision;
    * fault and retry events appear in the trace (Perfetto-exportable);
    * the plan replays: a second injection reproduces the exact trace
      event sequence and fault statistics;
    * the critical path still partitions a faulted exchange round exactly.
    """
    from repro.core.modeling import modeled_exchange_time
    from repro.faults.injector import FAULTS
    from repro.obs import observe
    from repro.obs.critpath import analyze_critical_path

    def build() -> Simulation:
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern="parallel-p2p", rdma=True,
            neighbor_every=4, model_machine_time=True,
        )
        return Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))

    def trace_key(tracer):
        wall = [(s.name, s.cat, s.track) for s in tracer.spans if s.clock == "wall"]
        model = [
            (s.name, s.cat, s.track, s.ts, s.dur)
            for s in tracer.spans
            if s.clock == "model"
        ]
        inst = [(e.name, e.cat, e.track) for e in tracer.instants]
        return wall, model, inst

    baseline = build()
    baseline.run(steps)
    digest0 = _ghost_digest(baseline)
    pos0 = baseline.gather_positions()

    faulted = build()
    with observe(metrics=False) as (tracer, _):
        with FAULTS.inject(plan) as session:
            faulted.run(steps)
        wall1, model1, inst1 = trace_key(tracer)
    stats1 = session.stats

    report.add(
        "faults injected by plan",
        stats1.total_injected() > 0,
        f"{stats1.total_injected()} fired: "
        + ", ".join(f"{k}={n}" for k, n in sorted(stats1.injected.items())),
    )
    report.add(
        "all faults absorbed or degraded cleanly",
        stats1.unabsorbed == 0,
        f"{stats1.absorbed} absorbed over {stats1.retries} retries, "
        f"{stats1.degradations} degradation(s), {stats1.unabsorbed} unabsorbed",
    )
    if stats1.degradations == 0:
        report.add(
            "ghost region bit-identical to fault-free run",
            _ghost_digest(faulted) == digest0
            and np.array_equal(faulted.gather_positions(), pos0),
            f"digest {digest0[:12]}…",
        )
    else:
        dev = float(np.abs(box.minimum_image(faulted.gather_positions() - pos0)).max())
        report.add(
            "trajectory preserved across degradation",
            dev < 1e-9,
            f"max deviation {dev:.2e} after "
            + " -> ".join([plan and faulted.degradations[0][0]]
                          + [t for _, t in faulted.degradations]),
        )

    fault_events = len([e for e in inst1 if e[1] == "fault"]) + len(
        [s for s in model1 if s[1] == "fault"]
    )
    retry_events = len([s for s in wall1 if s[1] == "retry"]) + len(
        [s for s in model1 if s[1] == "retry"]
    )
    report.add(
        "fault and retry spans present in trace",
        fault_events > 0 and retry_events > 0,
        f"{fault_events} fault events, {retry_events} retry spans",
    )

    cp_sim = build()
    with FAULTS.inject(plan):
        cp_sim.setup()
        with observe(metrics=False) as (tracer, _):
            modeled = modeled_exchange_time(cp_sim.exchange, "forward", rank=0)
        cp = analyze_critical_path(tracer)
    tol = 1e-9 * max(modeled, 1e-12)
    report.add(
        "critpath partitions faulted exchange exactly",
        abs(cp.completion - modeled) <= tol
        and abs(cp.total_attributed - cp.total_time) <= tol,
        f"modeled {modeled:.3e}s, attributed {cp.total_attributed:.3e}s",
    )

    # Replay last so the global tracer (what ``--trace`` exports) holds
    # the full faulted run, fault and retry spans included.
    replay = build()
    with observe(metrics=False) as (tracer, _):
        with FAULTS.inject(plan) as session2:
            replay.run(steps)
        wall2, model2, inst2 = trace_key(tracer)
    report.add(
        "fault plan replays deterministically",
        (wall1, model1, inst1) == (wall2, model2, inst2)
        and stats1 == session2.stats,
        f"{len(wall1)}+{len(model1)} spans, {len(inst1)} instants reproduced",
    )
