"""``python -m repro`` — the command-line runner (see repro.cli)."""

from repro.cli import main

raise SystemExit(main())
