"""Command-line runner: a miniature ``lmp`` for this reproduction.

Mirrors how the paper's artifact is driven (pick a potential input,
pick a communication build, run, read the log)::

    python -m repro --potential lj  --atoms 4000 --ranks 2 2 2 \
                    --pattern parallel-p2p --rdma --steps 100

    python -m repro --potential eam --atoms 2048 --steps 50 --pattern 3stage

Prints a LAMMPS-style log: thermo table, Performance line, MPI task
timing breakdown, and (with ``--model-time``) the simulated-Fugaku
communication account.
"""

from __future__ import annotations

import argparse

from repro import Simulation
from repro.md import fcc_box_for_atoms
from repro.md.domain import decompose_grid
from repro.md.logfmt import format_run_summary


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro``."""
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the LAMMPS-on-Fugaku reproduction engine.",
    )
    p.add_argument(
        "--input", "-in", dest="input", default=None,
        help="LAMMPS-style input script (see examples/inputs/); overrides "
        "the system/potential flags below",
    )
    p.add_argument("--potential", choices=("lj", "eam"), default="lj")
    p.add_argument("--atoms", type=int, default=4000, help="approximate atom count")
    p.add_argument("--steps", type=int, default=100)
    p.add_argument(
        "--ranks", type=int, nargs=3, metavar=("PX", "PY", "PZ"), default=None,
        help="rank grid; default: best factorization of --nranks",
    )
    p.add_argument("--nranks", type=int, default=8, help="rank count if --ranks unset")
    p.add_argument(
        "--pattern", choices=("3stage", "p2p", "parallel-p2p"), default="parallel-p2p"
    )
    p.add_argument("--rdma", action="store_true", help="pre-registered RDMA data plane")
    p.add_argument("--newton", dest="newton", action="store_true", default=True)
    p.add_argument("--no-newton", dest="newton", action="store_false")
    p.add_argument("--temperature", type=float, default=None)
    p.add_argument("--thermo", type=int, default=10, help="thermo output interval")
    p.add_argument("--seed", type=int, default=12345)
    p.add_argument(
        "--model-time", action="store_true",
        help="also account simulated Fugaku communication time",
    )
    p.add_argument(
        "--selfcheck", action="store_true",
        help="run the built-in cross-validation battery and exit",
    )
    p.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject a replayable FaultPlan (see docs/fault_injection.md); "
        "with --selfcheck, also verifies every fault is absorbed and the "
        "ghost region stays bit-identical to the fault-free run",
    )
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span/event trace and write it as Chrome trace-event "
        "JSON (open in Perfetto: https://ui.perfetto.dev)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="collect and print counters/histograms (message sizes, hops, "
        "RDMA registrations, TNI busy time, ...)",
    )
    p.add_argument(
        "--no-telemetry", dest="telemetry", action="store_false", default=True,
        help="disable the always-on telemetry plane (counters, percentile "
        "sketches, flight recorder); on by default and fastpath-compatible",
    )
    p.add_argument(
        "--flightrec", metavar="PATH", default=None,
        help="write the flight-recorder ring to PATH; also auto-dumps there "
        "on retry exhaustion, degradation, or selfcheck failure",
    )
    p.add_argument(
        "--openmetrics", metavar="PATH", default=None,
        help="write telemetry counters/gauges/percentiles to PATH in "
        "OpenMetrics text format after the run",
    )
    return p


def build_simulation(args) -> Simulation:
    """Construct a Simulation from the parsed preset flags."""
    from repro.md.presets import PRESETS

    preset = PRESETS[args.potential]
    cells = fcc_box_for_atoms(args.atoms)
    x, v, box = preset.build_system(cells, args.temperature, seed=args.seed)
    grid = tuple(args.ranks) if args.ranks else decompose_grid(args.nranks, tuple(box.lengths))
    cfg = preset.config(
        pattern=args.pattern,
        rdma=args.rdma,
        newton=args.newton,
        thermo_every=args.thermo,
        model_machine_time=args.model_time,
        seed=args.seed,
    )
    return Simulation(x, v, box, preset.potential(), cfg, grid=grid)


def build_telemetry_parser() -> argparse.ArgumentParser:
    """Parser for ``python -m repro telemetry``."""
    p = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description="Run a workload and export its always-on telemetry: a "
        "JSON snapshot, a repro-flightrec/1 flight-recorder dump, or an "
        "OpenMetrics textfile (node-exporter textfile-collector style).",
    )
    p.add_argument(
        "action", nargs="?", default="snapshot",
        choices=("snapshot", "dump", "serve-textfile"),
        help="snapshot: counters/gauges/sketches as JSON; dump: flight-"
        "recorder ring as repro-flightrec/1; serve-textfile: periodically "
        "rewritten OpenMetrics text file",
    )
    p.add_argument(
        "--dump", dest="dump_flag", action="store_true",
        help="alias for the 'dump' action",
    )
    p.add_argument(
        "--output", "-o", default=None,
        help="output path (default: stdout for snapshot, telemetry-flight"
        ".json for dump, telemetry.prom for serve-textfile)",
    )
    p.add_argument(
        "--interval", type=int, default=20,
        help="serve-textfile: rewrite the textfile every N steps",
    )
    p.add_argument("--potential", choices=("lj", "eam"), default="lj")
    p.add_argument("--atoms", type=int, default=2048)
    p.add_argument("--steps", type=int, default=50)
    p.add_argument(
        "--ranks", type=int, nargs=3, metavar=("PX", "PY", "PZ"), default=None
    )
    p.add_argument("--nranks", type=int, default=8)
    p.add_argument(
        "--pattern", choices=("3stage", "p2p", "parallel-p2p"), default="parallel-p2p"
    )
    p.add_argument("--rdma", action="store_true")
    p.add_argument("--model-time", dest="model_time", action="store_true")
    p.add_argument("--faults", metavar="PLAN.json", default=None)
    p.set_defaults(newton=True, temperature=None, seed=12345, thermo=0)
    return p


def _write_textfile(path: str, text: str) -> None:
    # Atomic rewrite (rename-into-place): scrapers of the textfile
    # collector never see a partially written exposition.
    from repro.obs.telemetry import write_textfile

    write_textfile(path, text)


def telemetry_main(argv) -> int:
    """``python -m repro telemetry`` entry point."""
    import json

    from repro.obs.telemetry import TELEMETRY

    args = build_telemetry_parser().parse_args(argv)
    action = "dump" if args.dump_flag else args.action
    output = args.output
    if output is None and action != "snapshot":
        output = "telemetry-flight.json" if action == "dump" else "telemetry.prom"

    fault_plan = None
    if args.faults is not None:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.faults)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load fault plan {args.faults!r}: {exc}")
            return 2
    # A terminal fault mid-run is exactly when the flight dump matters:
    # arm the auto-dump before the run so the ring is captured at the
    # moment of death, not after.
    prev_autodump = TELEMETRY.autodump_path
    if action == "dump":
        TELEMETRY.autodump_path = output
    sim = build_simulation(args)
    telem = sim.telemetry
    if telem is None:
        print("error: telemetry plane is disabled")
        return 2
    survived = True
    try:
        from repro.faults import FAULTS
        from repro.faults.injector import FaultError

        def drive() -> None:
            sim.setup()
            if action == "serve-textfile":
                done = 0
                while done < args.steps:
                    chunk = min(args.interval, args.steps - done)
                    sim.run(chunk)
                    done += chunk
                    _write_textfile(output, telem.render_openmetrics())
            else:
                sim.run(args.steps)

        try:
            if fault_plan is not None:
                with FAULTS.inject(fault_plan):
                    drive()
            else:
                drive()
        except FaultError as exc:
            survived = False
            print(f"# run did not survive the fault plan: {exc}")
    finally:
        TELEMETRY.autodump_path = prev_autodump

    if action == "snapshot":
        text = json.dumps(telem.snapshot(), indent=2, sort_keys=True)
        if output is None:
            print(text)
        else:
            with open(output, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"# telemetry snapshot -> {output}")
    elif action == "dump":
        if survived:
            telem.flight.write(output, reason="on-demand")
        frames = len(telem.flight.frames)
        events = len(telem.flight.events)
        print(f"# flight recorder: {frames} frames, {events} events -> {output}")
    else:
        _write_textfile(output, telem.render_openmetrics())
        print(f"# openmetrics textfile -> {output}")
    return 0 if survived else 1


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    import sys

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["analyze"]:
        from repro.analysis.cli import main as analyze_main

        return analyze_main(argv[1:])
    if argv[:1] == ["telemetry"]:
        return telemetry_main(argv[1:])
    if argv[:1] == ["diag"]:
        from repro.obs.diag import main as diag_main

        return diag_main(argv[1:])
    if argv[:1] == ["scenarios"]:
        from repro.scenarios.cli import main as scenarios_main

        return scenarios_main(argv[1:])
    if argv[:1] == ["verify"]:
        from repro.analysis.protomc.cli import main as verify_main

        return verify_main(argv[1:])
    args = build_parser().parse_args(argv)
    from repro.obs.telemetry import TELEMETRY

    TELEMETRY.enabled = args.telemetry
    if args.flightrec is not None:
        try:
            with open(args.flightrec, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write flight recorder {args.flightrec!r}: {exc}")
            return 2
        TELEMETRY.autodump_path = args.flightrec
    if args.trace is not None:
        from repro.obs.trace import TRACER

        try:
            # Fail fast: discover an unwritable path before the run, not
            # after it has already burned the simulation time.
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file {args.trace!r}: {exc}")
            return 2
        TRACER.reset()
        TRACER.enabled = True
    if args.metrics:
        from repro.obs.metrics import METRICS

        METRICS.reset()
        METRICS.enabled = True
    fault_plan = None
    if args.faults is not None:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.faults)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load fault plan {args.faults!r}: {exc}")
            return 2
    if args.selfcheck:
        from repro.selfcheck import run_selfcheck

        report = run_selfcheck(fault_plan=fault_plan)
        print(report.render())
        # --trace/--metrics compose with --selfcheck: the battery's last
        # observed round is exported like a normal run's trace would be.
        if args.trace is not None:
            from repro.obs.export import write_chrome_trace
            from repro.obs.trace import TRACER

            doc = write_chrome_trace(args.trace)
            print(f"# trace: {len(doc['traceEvents'])} events -> {args.trace}")
            TRACER.enabled = False
        if args.metrics:
            print()
            print(METRICS.render())
            METRICS.enabled = False
        if not report.ok:
            failing = [c.name for c in report.checks if not c.passed]
            # Routed to the last attached run's flight recorder; with
            # --flightrec this auto-dumps the ring at the failure.
            TELEMETRY.emit("selfcheck-failure", failing=", ".join(failing))
            print(f"# selfcheck FAILED: {', '.join(failing)}")
            return 1
        return 0
    if args.input:
        from repro.md.inputscript import InputScript

        script = InputScript.from_file(args.input)
        grid = tuple(args.ranks) if args.ranks else None
        sim = script.build(grid=grid, n_ranks=args.nranks)
        steps = script.total_run_steps() or args.steps
        label = f"input script {args.input}"
    else:
        sim = build_simulation(args)
        steps = args.steps
        label = f"{args.potential.upper()} preset"
    print(
        f"# repro: {sim.natoms} atoms ({label}), "
        f"{sim.world.size} ranks {sim.grid}, "
        f"pattern={sim.config.pattern}"
        f"{' +rdma' if sim.config.rdma else ''}, {steps} steps"
    )
    fault_session = None
    try:
        if fault_plan is not None:
            from repro.faults import FAULTS

            with FAULTS.inject(fault_plan) as fault_session:
                sim.setup()
                sim.samples.append(sim.sample_thermo())
                sim.run(steps)
        else:
            sim.setup()
            sim.samples.append(sim.sample_thermo())
            sim.run(steps)
    except Exception as exc:
        from repro.faults.injector import FaultError

        if isinstance(exc, FaultError):
            # The degradation ladder ran out of tiers: report, don't dump
            # a traceback — the plan simply was not survivable.
            print(f"# fault injection: run did not survive the plan: {exc}")
            if fault_session is not None:
                print(fault_session.render())
            return 1
        raise
    if sim.samples[-1].step != sim.step_count:
        sim.samples.append(sim.sample_thermo())
    print(format_run_summary(sim))
    if fault_session is not None:
        print()
        print(fault_session.render())
        if sim.degradations:
            ladder = " -> ".join(
                [sim.degradations[0][0]] + [t for _, t in sim.degradations]
            )
            print(f"# degraded: {ladder}")
        if fault_session.stats.unabsorbed:
            return 1
    if args.trace is not None:
        from repro.obs.export import write_chrome_trace
        from repro.obs.report import render_phase_table, render_stage_table
        from repro.obs.trace import TRACER

        doc = write_chrome_trace(args.trace)
        print()
        print(render_stage_table(TRACER, "wall"))
        if sim.config.model_machine_time:
            print()
            print(render_stage_table(TRACER, "model"))
        print()
        print(render_phase_table(TRACER))
        print()
        print(
            f"# trace: {len(doc['traceEvents'])} events -> {args.trace} "
            "(open in https://ui.perfetto.dev)"
        )
        TRACER.enabled = False
    if args.metrics:
        from repro.obs.metrics import METRICS

        print()
        print(METRICS.render())
        METRICS.enabled = False
    if sim.telemetry is not None:
        if args.flightrec is not None:
            doc = sim.telemetry.flight.write(args.flightrec, reason="end-of-run")
            print(f"# flight recorder: {len(doc['frames'])} frames -> {args.flightrec}")
        if args.openmetrics is not None:
            _write_textfile(args.openmetrics, sim.telemetry.render_openmetrics())
            print(f"# openmetrics textfile -> {args.openmetrics}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
