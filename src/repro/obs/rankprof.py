"""Per-rank critical-path profiler: load imbalance at rank granularity.

The critical-path analyzer (:mod:`repro.obs.critpath`) explains one
rank's modeled exchange; the bench harness records rank 0's.  But the
paper's scaling cliffs (Figs. 11-15) are *distribution* phenomena — a
handful of slow ranks, or one saturated category on a straggler cohort,
decide the strong-scaling knee.  This module extends the attribution to
rank granularity:

* :func:`profile_exchange` runs :func:`~repro.core.modeling.\
  modeled_exchange_time` for **every** rank of an exchange under a fresh
  trace and critical-path-analyzes each round, producing a per-rank ×
  per-phase × per-category time table;
* :class:`RankProfileResult` derives the load-imbalance metrics the
  stage model only asserts analytically — max/mean and p99/p50 ratios
  per phase — and identifies **stragglers** with span-anchored evidence
  (the longest link of the slow rank's critical chain);
* :func:`feed_telemetry` folds the table into per-rank-labeled
  :class:`~repro.obs.sketch.QuantileSketch` es on the always-on
  telemetry plane;
* :func:`to_dict` / :func:`validate_rankprof_doc` define the versioned
  ``repro-rankprof/1`` artifact the diagnosis engine
  (:mod:`repro.obs.diag`) diffs.

The exactness contract carries over bit-for-bit: each rank's
attribution partitions its modeled exchange time exactly (the critpath
invariant), rank 0's row *is* the whole-run attribution the bench
harness already records (same spans, same analysis), and profiling is a
pure observer — the 24-configuration differential suite proves ghosts
and forces stay bit-identical with the profiler enabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.machine.params import FUGAKU, MachineParams
from repro.obs.critpath import CriticalPathResult

#: Versioned schema identifier checked by :func:`validate_rankprof_doc`.
SCHEMA = "repro-rankprof/1"

#: Exchange phases a profile may cover.
PROFILE_PHASES = ("forward", "reverse", "border")

#: A rank is a straggler when its completion exceeds the per-phase
#: median by this relative margin.
STRAGGLER_MARGIN = 0.10


def rank_percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile of ``values`` under the sketch rank convention.

    Value at 1-based rank ``max(1, ceil(q * n))`` of the sorted list —
    the same rule :meth:`repro.obs.sketch.QuantileSketch.quantile`
    applies, so table-derived and sketch-derived percentiles agree.
    Returns ``nan`` for an empty list (the unified empty-distribution
    semantics).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not values:
        return math.nan
    ordered = sorted(values)
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


@dataclass(frozen=True)
class RankPhaseProfile:
    """One rank's critical-path account of one exchange phase."""

    rank: int
    phase: str
    completion: float  # modeled exchange seconds (== attribution sum)
    attribution: dict[str, float]
    messages: int
    wire_segments: int
    natoms: int  # owned atoms (the Pair-side load proxy)
    evidence: dict  # longest chain link: name/cat/track/start/end

    @property
    def top_category(self) -> str:
        """Category holding the largest share of this rank's path."""
        if not self.attribution:
            return ""
        return max(self.attribution.items(), key=lambda kv: kv[1])[0]


@dataclass(frozen=True)
class ImbalanceStats:
    """Distribution summary of one phase's per-rank completions."""

    phase: str
    mean: float
    min: float
    max: float
    max_mean: float  # the classic LAMMPS-style imbalance ratio
    p99_p50: float
    stragglers: tuple[int, ...]  # ranks above the straggler margin


@dataclass
class RankProfileResult:
    """Per-rank × per-phase × per-category profile of one exchange."""

    pattern: str
    ranks: int
    phases: tuple[str, ...]
    straggler_margin: float = STRAGGLER_MARGIN
    profiles: list[RankPhaseProfile] = field(default_factory=list)

    def by_phase(self, phase: str) -> list[RankPhaseProfile]:
        """This phase's rows, ordered by rank."""
        rows = [p for p in self.profiles if p.phase == phase]
        return sorted(rows, key=lambda p: p.rank)

    def completions(self, phase: str) -> list[float]:
        """Per-rank modeled completion seconds of one phase."""
        return [p.completion for p in self.by_phase(phase)]

    def imbalance(self, phase: str) -> ImbalanceStats:
        """max/mean + p99/p50 imbalance and the straggler cohort."""
        rows = self.by_phase(phase)
        times = [p.completion for p in rows]
        if not times:
            return ImbalanceStats(phase, math.nan, math.nan, math.nan,
                                  math.nan, math.nan, ())
        mean = sum(times) / len(times)
        p50 = rank_percentile(times, 0.50)
        p99 = rank_percentile(times, 0.99)
        cut = p50 * (1.0 + self.straggler_margin)
        stragglers = tuple(p.rank for p in rows if p.completion > cut)
        return ImbalanceStats(
            phase=phase,
            mean=mean,
            min=min(times),
            max=max(times),
            max_mean=max(times) / mean if mean > 0 else math.nan,
            p99_p50=p99 / p50 if p50 > 0 else math.nan,
            stragglers=stragglers,
        )

    def categories(self, phase: str) -> dict[str, float]:
        """Per-category seconds summed over all ranks of one phase."""
        out: dict[str, float] = {}
        for p in self.by_phase(phase):
            for cat, secs in p.attribution.items():
                out[cat] = out.get(cat, 0.0) + secs
        return out


def _chain_evidence(cp: CriticalPathResult) -> dict:
    """The longest link of a critical chain, span-anchored."""
    if not cp.segments:
        return {}
    seg = max(cp.segments, key=lambda s: s.dur)
    return {
        "name": seg.name,
        "cat": seg.cat,
        "track": seg.track,
        "start": seg.start,
        "end": seg.end,
        "dur": seg.dur,
    }


def profile_exchange(
    exchange,
    phases: tuple[str, ...] = ("forward",),
    params: MachineParams = FUGAKU,
    straggler_margin: float = STRAGGLER_MARGIN,
) -> RankProfileResult:
    """Critical-path-profile every rank of ``exchange``, per phase.

    Each (rank, phase) runs the rank's real message schedule through the
    network simulator under a fresh trace (the model cache is bypassed
    whenever the tracer is live, so every round produces full
    provenance spans) and is analyzed independently.  Pure observer: the
    exchange's functional state, plan cache, and fast-path gate are
    untouched.
    """
    from repro.core.modeling import modeled_exchange_time
    from repro.obs import observe
    from repro.obs.critpath import analyze_critical_path

    for phase in phases:
        if phase not in PROFILE_PHASES:
            raise ValueError(
                f"unknown phase {phase!r}; choose from {PROFILE_PHASES}"
            )
    result = RankProfileResult(
        pattern=exchange.name,
        ranks=exchange.world.size,
        phases=tuple(phases),
        straggler_margin=straggler_margin,
    )
    for rank in range(exchange.world.size):
        natoms = int(exchange.atoms_of(rank).nlocal)
        for phase in phases:
            with observe(metrics=False) as (tracer, _):
                modeled_exchange_time(exchange, phase, params, rank)
            cp = analyze_critical_path(tracer)
            result.profiles.append(
                RankPhaseProfile(
                    rank=rank,
                    phase=phase,
                    completion=cp.completion - cp.base,
                    attribution=dict(cp.attribution),
                    messages=cp.messages,
                    wire_segments=cp.wire_segments,
                    natoms=natoms,
                    evidence=_chain_evidence(cp),
                )
            )
    return result


def feed_telemetry(result: RankProfileResult, telemetry=None) -> int:
    """Fold a profile into per-rank-labeled telemetry sketches.

    Records ``rank_exchange_seconds{phase,rank}`` (one sample per rank
    per phase) and ``rank_critpath_seconds{phase,rank,category}`` into
    the given :class:`~repro.obs.telemetry.StepTelemetry` (default: the
    globally attached one).  Returns the number of samples recorded —
    0 when no telemetry is attached, so callers never need to guard.
    """
    if telemetry is None:
        from repro.obs.telemetry import TELEMETRY

        telemetry = TELEMETRY.active
    if telemetry is None:
        return 0
    samples = 0
    for p in result.profiles:
        telemetry.observe(
            "rank_exchange_seconds", p.completion, phase=p.phase, rank=p.rank
        )
        samples += 1
        for cat, secs in p.attribution.items():
            telemetry.observe(
                "rank_critpath_seconds", secs,
                phase=p.phase, rank=p.rank, category=cat,
            )
            samples += 1
    return samples


# -- artifact -------------------------------------------------------------
def to_dict(result: RankProfileResult, label: str = "local") -> dict:
    """The versioned ``repro-rankprof/1`` form of a profile."""
    phases = {}
    for phase in result.phases:
        imb = result.imbalance(phase)
        phases[phase] = {
            "rows": [
                {
                    "rank": p.rank,
                    "completion": p.completion,
                    "attribution": dict(p.attribution),
                    "messages": p.messages,
                    "wire_segments": p.wire_segments,
                    "natoms": p.natoms,
                    "top": p.top_category,
                    "evidence": dict(p.evidence),
                }
                for p in result.by_phase(phase)
            ],
            "imbalance": {
                "mean": imb.mean,
                "min": imb.min,
                "max": imb.max,
                "max_mean": imb.max_mean,
                "p99_p50": imb.p99_p50,
                "stragglers": list(imb.stragglers),
            },
        }
    return {
        "schema": SCHEMA,
        "label": label,
        "pattern": result.pattern,
        "ranks": result.ranks,
        "straggler_margin": result.straggler_margin,
        "phases": phases,
    }


def _require(cond: bool, path: str, why: str) -> None:
    if not cond:
        raise ValueError(f"rankprof document invalid at {path}: {why}")


def validate_rankprof_doc(doc: dict) -> int:
    """Validate a ``repro-rankprof/1`` document; returns the row count.

    The critical invariant is re-checked on the serialized form: every
    row's attribution must sum to its completion within float tolerance.
    """
    _require(isinstance(doc, dict), "$", "not an object")
    _require(doc.get("schema") == SCHEMA, "$.schema",
             f"expected {SCHEMA!r}, got {doc.get('schema')!r}")
    ranks = doc.get("ranks")
    _require(isinstance(ranks, int) and ranks > 0, "$.ranks", f"invalid {ranks!r}")
    phases = doc.get("phases")
    _require(isinstance(phases, dict) and phases, "$.phases", "missing phases")
    rows_total = 0
    for phase, body in phases.items():
        ctx = f"$.phases.{phase}"
        _require(phase in PROFILE_PHASES, ctx, f"unknown phase {phase!r}")
        rows = body.get("rows") if isinstance(body, dict) else None
        _require(isinstance(rows, list) and rows, f"{ctx}.rows", "missing rows")
        seen = set()
        for i, row in enumerate(rows):
            rctx = f"{ctx}.rows[{i}]"
            _require(isinstance(row, dict), rctx, "not an object")
            r = row.get("rank")
            _require(isinstance(r, int) and 0 <= r < ranks, f"{rctx}.rank",
                     f"invalid {r!r}")
            _require(r not in seen, f"{rctx}.rank", f"duplicate rank {r}")
            seen.add(r)
            comp = row.get("completion")
            _require(
                isinstance(comp, (int, float)) and math.isfinite(comp) and comp >= 0,
                f"{rctx}.completion", f"invalid {comp!r}",
            )
            attr = row.get("attribution")
            _require(isinstance(attr, dict) and attr, f"{rctx}.attribution",
                     "missing attribution")
            total = sum(attr.values())
            _require(
                abs(total - comp) <= 1e-9 * max(comp, 1e-12),
                f"{rctx}.attribution",
                f"sums to {total!r}, not completion {comp!r}",
            )
            rows_total += 1
        imb = body.get("imbalance")
        _require(isinstance(imb, dict), f"{ctx}.imbalance", "missing imbalance")
        for k in ("mean", "max", "max_mean", "p99_p50"):
            v = imb.get(k)
            _require(isinstance(v, (int, float)), f"{ctx}.imbalance.{k}",
                     f"invalid {v!r}")
        strag = imb.get("stragglers")
        _require(
            isinstance(strag, list) and all(isinstance(s, int) for s in strag),
            f"{ctx}.imbalance.stragglers", f"invalid {strag!r}",
        )
    return rows_total


def render_rank_profile(result: RankProfileResult) -> str:
    """Text report: per-phase rank table + imbalance + straggler evidence."""
    lines = [
        f"per-rank exchange profile: pattern {result.pattern}, "
        f"{result.ranks} ranks, phases {', '.join(result.phases)}"
    ]
    for phase in result.phases:
        imb = result.imbalance(phase)
        lines.append("")
        lines.append(
            f"[{phase}] max/mean {imb.max_mean:.3f}, p99/p50 {imb.p99_p50:.3f}, "
            f"stragglers {list(imb.stragglers) or 'none'} "
            f"(margin {100 * result.straggler_margin:g}% over median)"
        )
        lines.append(f"{'rank':>5} | {'atoms':>6} | {'modeled us':>10} | "
                     f"{'msgs':>4} | top category")
        lines.append("-" * 64)
        for p in result.by_phase(phase):
            mark = " *" if p.rank in imb.stragglers else ""
            lines.append(
                f"{p.rank:>5} | {p.natoms:>6} | {p.completion * 1e6:>10.3f} | "
                f"{p.messages:>4} | {p.top_category}{mark}"
            )
        for p in result.by_phase(phase):
            if p.rank in imb.stragglers and p.evidence:
                ev = p.evidence
                lines.append(
                    f"  straggler rank {p.rank}: longest link {ev['name']!r} "
                    f"({ev['cat']}, {ev['dur'] * 1e6:.3f}us on {ev['track']}) "
                    f"[{ev['start'] * 1e6:.3f}, {ev['end'] * 1e6:.3f}]us"
                )
    return "\n".join(lines)


def bench_record(result: RankProfileResult, phase: str = "forward") -> dict:
    """Compact per-rank record embedded in ``repro-bench/1`` runs."""
    imb = result.imbalance(phase)
    return {
        "phase": phase,
        "ranks": [
            {
                "rank": p.rank,
                "completion": p.completion,
                "attribution": dict(p.attribution),
                "natoms": p.natoms,
            }
            for p in result.by_phase(phase)
        ],
        "imbalance": {
            "max_mean": imb.max_mean,
            "p99_p50": imb.p99_p50,
            "stragglers": list(imb.stragglers),
        },
    }
