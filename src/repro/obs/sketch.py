"""Streaming percentile sketch: mergeable, deterministic, bounded error.

The telemetry plane needs latency percentiles (the p50/p95/p99 a serving
layer gates its SLOs on) without storing per-step samples.  A
:class:`QuantileSketch` is a DDSketch-style compressed histogram over
log-spaced buckets: each positive value lands in the bucket
``ceil(log_gamma(v))`` with ``gamma = (1 + a) / (1 - a)``, which
guarantees every quantile estimate is within **relative error** ``a`` of
the true sample quantile (rank-exact, value-approximate).  Zero values
get an exact dedicated bucket.

Properties the tests pin down:

* **deterministic** — bucket indices come from ``math.log``/``math.ceil``
  on the value alone; two runs over the same stream produce identical
  sketches (and identical serialized forms);
* **mergeable** — bucket counts add elementwise, so
  ``merge(s(A), s(B)) == s(A + B)`` exactly (the property that lets
  per-rank or per-window sketches roll up losslessly);
* **bounded** — memory is O(buckets touched), independent of the sample
  count, and ``quantile(q)`` differs from the pooled-sample quantile at
  the same rank by at most ``rel_accuracy`` relatively.

Unlike :class:`repro.obs.metrics.Histogram` (fixed absolute buckets,
Prometheus-style interpolation), the sketch needs no a-priori value
range — per-stage wall times span six orders of magnitude between a
smoke test and a production run, and a fixed bucket table cannot serve
both.
"""

from __future__ import annotations

import math

#: Default relative accuracy: quantiles within 1% of the true value.
DEFAULT_REL_ACCURACY = 0.01


class QuantileSketch:
    """Mergeable log-bucket quantile sketch for non-negative samples."""

    __slots__ = ("rel_accuracy", "_gamma", "_log_gamma", "buckets",
                 "zero_count", "count", "total", "min", "max")

    def __init__(self, rel_accuracy: float = DEFAULT_REL_ACCURACY) -> None:
        if not 0.0 < rel_accuracy < 1.0:
            raise ValueError(f"rel_accuracy must be in (0, 1), got {rel_accuracy}")
        self.rel_accuracy = rel_accuracy
        self._gamma = (1.0 + rel_accuracy) / (1.0 - rel_accuracy)
        self._log_gamma = math.log(self._gamma)
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- ingest -------------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one sample (must be non-negative)."""
        if value < 0:
            raise ValueError(f"sketch samples must be >= 0, got {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zero_count += 1
            return
        idx = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: QuantileSketch) -> None:
        """Fold ``other`` into this sketch (both must share the accuracy)."""
        if other.rel_accuracy != self.rel_accuracy:
            raise ValueError(
                f"cannot merge sketches with rel_accuracy "
                f"{self.rel_accuracy} and {other.rel_accuracy}"
            )
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # -- queries ------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean of all samples (the sum is kept exactly)."""
        return self.total / self.count if self.count else 0.0

    def _bucket_value(self, idx: int) -> float:
        # Midpoint estimate of (gamma^(i-1), gamma^i]: relative distance
        # to any value in the bucket is <= rel_accuracy by construction.
        return 2.0 * self._gamma ** idx / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]); ``nan`` when empty.

        Rank convention: the value at 1-based rank ``max(1, ceil(q * n))``
        of the sorted stream — the same rule the mergeability test
        applies to the pooled raw samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = max(1, math.ceil(q * self.count))
        if target <= self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative >= target:
                # Clamp into the observed range: exact min/max beat the
                # bucket midpoint at the extremes.
                return min(max(self._bucket_value(idx), self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches count

    def percentiles(self, *qs: float) -> dict[float, float]:
        """Several quantiles in one call (keyed by ``q``).

        Empty-distribution semantics are unified across the stack: on a
        sketch with no samples every requested quantile maps to ``nan``,
        exactly like :meth:`quantile` and
        :meth:`repro.obs.metrics.Histogram.percentile`.  Out-of-range
        ``q`` still raises — emptiness never masks a bad argument.
        """
        return {q: self.quantile(q) for q in qs}

    # -- (de)serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form (bucket keys as strings, sorted)."""
        return {
            "rel_accuracy": self.rel_accuracy,
            "count": self.count,
            "sum": self.total,
            "zero_count": self.zero_count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> QuantileSketch:
        """Rebuild a sketch from :meth:`to_dict` output (exact inverse)."""
        sk = cls(rel_accuracy=doc["rel_accuracy"])
        sk.count = int(doc["count"])
        sk.total = float(doc["sum"])
        sk.zero_count = int(doc["zero_count"])
        sk.min = math.inf if doc.get("min") is None else float(doc["min"])
        sk.max = -math.inf if doc.get("max") is None else float(doc["max"])
        sk.buckets = {int(i): int(n) for i, n in doc["buckets"].items()}
        return sk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(n={self.count}, p50={self.quantile(0.5):.3g}, "
            f"p99={self.quantile(0.99):.3g})"
        )
