"""Critical-path analysis of the simulated communication timeline.

The network simulator records every modeled message as a chain of
segments — ``inject`` (software injection overhead), ``queue`` (waiting
for a busy TNI engine), ``tni-engine`` (per-TNI serialization), ``wire``
(software latency + PUT latency + hops) — plus ``vcq-switch`` stalls and
inter-stage ``barrier`` spans.  This module answers the question the
raw timeline only implies: *which of those segments actually determined
the exchange's completion time, and by how much?*

:func:`analyze_critical_path` walks the dependency chain backward from
the last wire arrival.  Each step follows the edge that was binding:

* a ``wire`` segment starts exactly when its TNI engine released it;
* a ``tni-engine`` segment starts either when the message was injected
  (injector-bound) or when the engine finished its previous message
  (engine-bound — the per-TNI serialization of Fig. 8);
* an ``inject`` segment starts when the same thread finished its
  previous injection (injection-interval stall), after a ``vcq-switch``,
  or at a stage ``barrier`` whose own start is the previous stage's last
  arrival.

Because each predecessor *ends* where its successor *starts* (the
simulator computes both from the same floats), the chain partitions the
interval ``[window start, completion]`` exactly: the per-category
attribution sums to the total modeled exchange time to float precision —
an invariant the self-check battery enforces.  Residual gaps (none in
simulator-produced traces, but possible for hand-built spans) are
attributed to ``idle`` so the partition stays exact.
"""

from __future__ import annotations

import bisect
import csv
from dataclasses import dataclass, field

from repro.obs.trace import MODEL, SpanRecord, TRACER, Tracer

#: Span categories that form the simulated-exchange dependency graph.
PATH_CATS = ("inject", "queue", "tni", "wire", "vcq", "barrier", "fault")

#: Human-readable label per attribution category (reports and CSV).
CATEGORY_LABELS = {
    "inject": "software injection overhead",
    "tni": "per-TNI engine serialization",
    "wire": "wire (latency + hops)",
    "vcq": "VCQ-switch stalls",
    "barrier": "inter-stage barriers",
    "queue": "blocked on busy TNI engine",
    "fault": "injected fault stalls",
    "idle": "unattributed gaps",
}


@dataclass(frozen=True)
class PathSegment:
    """One link of the critical chain, in absolute model seconds."""

    name: str
    cat: str
    start: float
    end: float
    track: str

    @property
    def dur(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathResult:
    """Longest dependency chain + per-resource attribution of one window."""

    base: float = 0.0  # analysis window start on the model timeline
    completion: float = 0.0  # last wire arrival
    segments: list[PathSegment] = field(default_factory=list)  # time order
    attribution: dict[str, float] = field(default_factory=dict)
    resource_busy: dict[str, float] = field(default_factory=dict)
    resource_blocked: dict[str, float] = field(default_factory=dict)
    messages: int = 0  # distinct logical messages in the window
    wire_segments: int = 0

    @property
    def total_time(self) -> float:
        """Modeled exchange time of the window (completion - base)."""
        return self.completion - self.base

    @property
    def total_attributed(self) -> float:
        """Sum of the per-category attribution (== total_time by construction)."""
        return sum(self.attribution.values())

    def bottlenecks(self) -> list[tuple[str, float, float]]:
        """Categories ranked by critical-path share: (cat, seconds, percent)."""
        total = self.total_time
        ranked = sorted(self.attribution.items(), key=lambda kv: -kv[1])
        return [
            (cat, secs, 100.0 * secs / total if total > 0 else 0.0)
            for cat, secs in ranked
        ]

    def top_bottleneck(self) -> str:
        """The category holding the largest share of the critical path."""
        ranked = self.bottlenecks()
        return ranked[0][0] if ranked else ""


def _model_path_spans(tracer: Tracer) -> list[SpanRecord]:
    return [
        s
        for s in tracer.spans
        if s.clock == MODEL and s.cat in PATH_CATS
    ]


def analyze_critical_path(
    tracer: Tracer | None = None, spans: list[SpanRecord] | None = None
) -> CriticalPathResult:
    """Walk the dependency chain back from the last wire arrival.

    ``spans`` overrides the tracer as the input window (useful for
    analyzing one simulator round out of a longer trace); by default
    every model-clock exchange span of the global tracer is analyzed —
    one traced exchange round per analysis is the intended use.
    """
    if spans is None:
        tracer = tracer if tracer is not None else TRACER
        spans = _model_path_spans(tracer)
    else:
        spans = [s for s in spans if s.clock == MODEL and s.cat in PATH_CATS]

    result = CriticalPathResult()
    if not spans:
        return result

    wires = [s for s in spans if s.cat == "wire"]
    base = min(s.ts for s in spans)
    completion = max((s.end for s in wires), default=max(s.end for s in spans))
    result.base = base
    result.completion = completion
    result.wire_segments = len(wires)
    result.messages = len({(s.args.get("stage", 0), s.args.get("msg")) for s in wires})

    # -- aggregate busy/blocked per resource (all spans, path or not) ----
    for s in spans:
        if s.cat in ("tni", "inject", "wire", "vcq", "barrier", "fault"):
            result.resource_busy[s.track] = result.resource_busy.get(s.track, 0.0) + s.dur
        elif s.cat == "queue":
            result.resource_blocked[s.track] = (
                result.resource_blocked.get(s.track, 0.0) + s.dur
            )

    # -- chain walk-back -------------------------------------------------
    tol = 1e-12 + 1e-9 * max(abs(completion), 1.0)
    by_end = sorted(spans, key=lambda s: s.end)
    ends = [s.end for s in by_end]

    def candidates_at(t: float) -> list[SpanRecord]:
        """Spans whose end lands within ``tol`` of ``t`` (binary search)."""
        lo = bisect.bisect_left(ends, t - tol)
        hi = bisect.bisect_right(ends, t + tol)
        return by_end[lo:hi]

    def predecessor(cur: SpanRecord) -> SpanRecord | None:
        cands = [c for c in candidates_at(cur.ts) if c is not cur and c.cat != "queue"]
        if not cands:
            return None
        msg = cur.args.get("msg")
        seg = cur.args.get("seg")
        stage = cur.args.get("stage")

        def score(c: SpanRecord) -> tuple:
            same_msg = (
                c.args.get("msg") == msg
                and c.args.get("seg") == seg
                and c.args.get("stage") == stage
                and msg is not None
            )
            same_track = c.track == cur.track
            # Prefer the message's own upstream segment, then the same
            # resource's previous occupant (engine/thread serialization),
            # then anything else ending here (barrier <- wire edges).
            return (not same_msg, not same_track, abs(c.end - cur.ts))

        return min(cands, key=score)

    chain: list[PathSegment] = []
    # Start from the wire span realizing the completion time.
    cur = max(wires, key=lambda s: s.end) if wires else max(spans, key=lambda s: s.end)
    cursor = cur.end
    for _ in range(len(spans) + 2):
        chain.append(PathSegment(cur.name, cur.cat, cur.ts, cursor, cur.track))
        cursor = cur.ts
        if cursor <= base + tol:
            break
        nxt = predecessor(cur)
        if nxt is None:
            # Gap with no producing span: close it as idle down to the
            # latest earlier span end (or the window base) and continue.
            earlier = [s for s in by_end if s.end < cursor - tol]
            floor = max((s.end for s in earlier), default=base)
            chain.append(PathSegment("idle", "idle", floor, cursor, ""))
            cursor = floor
            if cursor <= base + tol or not earlier:
                break
            nxt = max(earlier, key=lambda s: s.end)
        cur = nxt

    chain.reverse()
    result.segments = chain
    attribution: dict[str, float] = {}
    for seg in chain:
        attribution[seg.cat] = attribution.get(seg.cat, 0.0) + seg.dur
    result.attribution = attribution
    return result


def render_critical_path(result: CriticalPathResult) -> str:
    """Text report: ranked bottlenecks, then the chain itself."""
    lines = [
        "Critical path through the simulated exchange:",
        f"  completion {result.completion * 1e6:.3f} us over "
        f"{result.messages} messages ({result.wire_segments} wire segments); "
        f"attributed {result.total_attributed * 1e6:.3f} us "
        f"in {len(result.segments)} links",
        "",
        f"{'rank':<5}| {'category':<10}| {'share':>7} | {'seconds':>12} | what it is",
        "-" * 78,
    ]
    for i, (cat, secs, pct) in enumerate(result.bottlenecks(), 1):
        lines.append(
            f"{i:<5}| {cat:<10}|{pct:>6.1f}% | {secs:>12.4g} | "
            f"{CATEGORY_LABELS.get(cat, cat)}"
        )
    lines.append("-" * 78)
    busiest = sorted(result.resource_busy.items(), key=lambda kv: -kv[1])[:4]
    if busiest:
        lines.append(
            "busiest resources: "
            + ", ".join(f"{trk} {sec * 1e6:.2f}us" for trk, sec in busiest)
        )
    blocked = sum(result.resource_blocked.values())
    if blocked:
        lines.append(f"total injector time blocked on busy TNI engines: {blocked * 1e6:.2f}us")
    return "\n".join(lines)


def critpath_to_dict(result: CriticalPathResult) -> dict:
    """Structured (JSON-ready) form of a critical-path analysis.

    The machine-readable twin of :func:`render_critical_path`, consumed
    by ``repro diag`` and external tooling instead of parsing text.
    Versioned as ``repro-critpath/1``; attribution keys/values are the
    exact floats of the analysis (the partition invariant survives
    serialization).
    """
    return {
        "schema": "repro-critpath/1",
        "base": result.base,
        "completion": result.completion,
        "total": result.total_time,
        "attributed": result.total_attributed,
        "messages": result.messages,
        "wire_segments": result.wire_segments,
        "attribution": dict(result.attribution),
        "bottlenecks": [
            {"rank": i, "category": cat, "seconds": secs, "percent": pct,
             "label": CATEGORY_LABELS.get(cat, cat)}
            for i, (cat, secs, pct) in enumerate(result.bottlenecks(), 1)
        ],
        "segments": [
            {"name": s.name, "cat": s.cat, "start": s.start, "end": s.end,
             "track": s.track}
            for s in result.segments
        ],
        "resource_busy": dict(result.resource_busy),
        "resource_blocked": dict(result.resource_blocked),
    }


def write_critpath_csv(path: str, result: CriticalPathResult) -> None:
    """CSV export: one row per attribution category, ranked."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["rank", "category", "seconds", "percent", "label"])
        for i, (cat, secs, pct) in enumerate(result.bottlenecks(), 1):
            writer.writerow([i, cat, repr(secs), f"{pct:.2f}", CATEGORY_LABELS.get(cat, cat)])


def critpath_counter_events(result: CriticalPathResult, pid: int = 2) -> list[dict]:
    """Perfetto counter-track events for the critical-path occupancy.

    Emits a ``critical-path`` counter that steps to 1 on the active
    category at each chain-link boundary (a stacked step plot of *what*
    the exchange was limited by over time), plus one final cumulative
    ``critpath-seconds`` sample per category.  Feed the list to
    :func:`repro.obs.export.chrome_trace_events` via ``extra_events``.
    """
    cats = sorted({seg.cat for seg in result.segments})
    events: list[dict] = []
    for seg in result.segments:
        args = {c: (1.0 if c == seg.cat else 0.0) for c in cats}
        events.append(
            {
                "name": "critical-path",
                "cat": "critpath",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": max(seg.start, 0.0) * 1e6,
                "args": args,
            }
        )
    if result.segments:
        events.append(
            {
                "name": "critical-path",
                "cat": "critpath",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": max(result.completion, 0.0) * 1e6,
                "args": {c: 0.0 for c in cats},
            }
        )
        events.append(
            {
                "name": "critpath-seconds",
                "cat": "critpath",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": max(result.completion, 0.0) * 1e6,
                "args": dict(result.attribution),
            }
        )
    return events


def main(argv=None) -> int:
    """``python -m repro.obs.critpath TRACE.json [--json] [--csv PATH]``.

    Replays the model-clock spans of an exported Chrome trace through
    :func:`analyze_critical_path` and prints the attribution — as the
    text report by default, as ``repro-critpath/1`` JSON with ``--json``
    (the structured form ``repro diag`` and external tooling consume).
    """
    import argparse
    import json as _json
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.obs.critpath",
        description="Critical-path attribution of an exported trace.",
    )
    parser.add_argument("trace", help="Chrome trace-event JSON (from --trace)")
    parser.add_argument(
        "--json", action="store_true",
        help="print repro-critpath/1 JSON instead of the text report",
    )
    parser.add_argument("--csv", metavar="PATH", help="also write the ranked CSV")
    args = parser.parse_args(argv)

    from repro.obs.export import spans_from_chrome

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            doc = _json.load(fh)
        spans = spans_from_chrome(doc)
    except (OSError, ValueError) as exc:
        print(f"critpath: cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    result = analyze_critical_path(spans=spans)
    if not result.segments:
        print(
            f"critpath: {args.trace} holds no model-clock exchange spans "
            "(record with --trace on a modeled run)",
            file=sys.stderr,
        )
        return 2
    if args.csv:
        write_critpath_csv(args.csv, result)
    if args.json:
        print(_json.dumps(critpath_to_dict(result), indent=1, sort_keys=True))
    else:
        print(render_critical_path(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
