"""`repro diag`: automated regression diagnosis over observability artifacts.

Given two artifacts of the same kind — ``repro-bench/1`` records,
``repro-scaling/1`` ladders, ``repro-rankprof/1`` tables, or two
exported Chrome traces — the engine diffs them and emits a *ranked,
human-readable explanation* of the delta instead of a wall of numbers:

* which **stage** (Pair/Neigh/Comm/...) accounts for the change,
* which **critical-path category** (inject/queue/tni/wire/vcq/barrier/
  fault/idle) inside it,
* which **rank cohort** carries it (when per-rank data is present),
* and the **shape** of the regression:

  - ``imbalance`` — a minority cohort of ranks slowed down (a straggler
    problem; rebalance or look at that cohort's node),
  - ``wire``      — the delta sits in wire time across ranks (more
    bytes, more hops, or a slower link: a traffic/topology problem),
  - ``overhead``  — injection/queue/TNI/VCQ/barrier/fault time grew (a
    software-stack or contention problem, the paper's §3.2–3.3 axis),
  - ``mixed``     — no single signature dominates.

Every finding is quantified (seconds, share of the total delta) and,
when the inputs carry span-anchored evidence, points at the concrete
slowest link.  ``--json`` writes a versioned ``repro-diag/1`` report for
CI gating; identical artifacts produce an empty finding list and a
"no significant deltas" verdict.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

#: Versioned schema identifier checked by :func:`validate_diag_doc`.
SCHEMA = "repro-diag/1"

#: Regression shapes a finding may be classified as.
SHAPES = ("imbalance", "wire", "overhead", "mixed")

#: Critical-path categories that count as software/contention overhead.
OVERHEAD_CATS = frozenset(
    {"inject", "queue", "tni", "vcq", "barrier", "fault", "idle"}
)

#: A per-rank delta joins the straggler cohort when it carries at least
#: this fraction of the largest aligned per-rank delta.
COHORT_FRACTION = 0.5


@dataclass(frozen=True)
class DiagFinding:
    """One ranked explanation of part of the old->new delta."""

    scope: str  # run key / "ranks=8" / phase / "trace"
    delta: float  # seconds, new - old (sign preserved)
    share: float  # |delta| / sum of |finding deltas|
    stage: str  # Pair/Neigh/Comm/Modify/Other ("" if unknown)
    category: str  # critpath category ("" if no attribution present)
    cohort: tuple[int, ...]  # ranks carrying the delta (() if no rank data)
    shape: str  # one of SHAPES
    detail: str  # one-line human explanation
    evidence: dict = field(default_factory=dict)  # span-anchored, optional


@dataclass
class DiagReport:
    """The full diagnosis of one artifact pair."""

    kind: str  # bench | scaling | rankprof | trace
    old_label: str
    new_label: str
    old_total: float
    new_total: float
    findings: list[DiagFinding] = field(default_factory=list)

    @property
    def delta(self) -> float:
        return self.new_total - self.old_total

    @property
    def verdict(self) -> str:
        if not self.findings:
            return "no significant deltas: the artifacts are equivalent"
        top = self.findings[0]
        word = "regressed" if top.delta > 0 else "improved"
        where = f"stage {top.stage}" if top.stage else top.scope
        cat = f", category {top.category}" if top.category else ""
        who = f", ranks {list(top.cohort)}" if top.cohort else ""
        return (
            f"{word} by {abs(self.delta):.4g}s total; dominant finding is "
            f"{top.shape}-shaped in {where}{cat}{who} "
            f"({top.share:.0%} of the explained delta)"
        )

    def to_dict(self) -> dict:
        """The versioned ``repro-diag/1`` form of this report."""
        return {
            "schema": SCHEMA,
            "kind": self.kind,
            "old": self.old_label,
            "new": self.new_label,
            "total": {
                "old": self.old_total,
                "new": self.new_total,
                "delta": self.delta,
            },
            "verdict": self.verdict,
            "findings": [
                {
                    "scope": f.scope,
                    "delta": f.delta,
                    "share": f.share,
                    "stage": f.stage,
                    "category": f.category,
                    "cohort": list(f.cohort),
                    "shape": f.shape,
                    "detail": f.detail,
                    "evidence": dict(f.evidence),
                }
                for f in self.findings
            ],
        }


# -- artifact loading -----------------------------------------------------
def artifact_kind(doc: dict) -> str:
    """Classify a loaded JSON document by its schema."""
    if not isinstance(doc, dict):
        raise ValueError("artifact is not a JSON object")
    if "traceEvents" in doc:
        return "trace"
    schema = doc.get("schema", "")
    for kind, prefix in (
        ("bench", "repro-bench/"),
        ("scaling", "repro-scaling/"),
        ("rankprof", "repro-rankprof/"),
    ):
        if isinstance(schema, str) and schema.startswith(prefix):
            return kind
    raise ValueError(
        f"unrecognized artifact: schema {schema!r} is none of repro-bench/*, "
        "repro-scaling/*, repro-rankprof/*, or a Chrome trace"
    )


def load_artifact(path: str) -> tuple[str, dict]:
    """Load ``path`` and classify it; returns ``(kind, doc)``."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return artifact_kind(doc), doc


# -- shared analysis helpers ----------------------------------------------
def _noise_floor(*totals: float) -> float:
    """Deltas below this are float noise, not findings."""
    scale = max([abs(t) for t in totals] + [0.0])
    return max(1e-15, 1e-9 * scale)


def _top_delta(old: dict, new: dict, direction: float) -> tuple[str, float]:
    """Key with the largest delta aligned with ``direction`` (+1/-1).

    Falls back to the largest absolute delta when nothing moved the
    aligned way (e.g. the total regressed but every component improved —
    impossible for exact partitions, possible across partial tables).
    """
    deltas = {
        k: new.get(k, 0.0) - old.get(k, 0.0) for k in set(old) | set(new)
    }
    if not deltas:
        return "", 0.0
    aligned = {k: d for k, d in deltas.items() if d * direction > 0}
    pool = aligned if aligned else deltas
    key = max(pool, key=lambda k: abs(pool[k]))
    return key, deltas[key]


def _cohort(per_rank_delta: dict[int, float], direction: float,
            noise: float) -> tuple[int, ...]:
    """Ranks carrying the delta: within COHORT_FRACTION of the worst."""
    aligned = {
        r: d * direction for r, d in per_rank_delta.items()
        if d * direction > noise
    }
    if not aligned:
        return ()
    worst = max(aligned.values())
    return tuple(sorted(r for r, d in aligned.items()
                        if d >= COHORT_FRACTION * worst))


def _shape(category: str, cohort: tuple[int, ...], nranks: int) -> str:
    """Classify a finding: imbalance-, wire-, or overhead-shaped."""
    if cohort and nranks > 1 and len(cohort) <= max(1, nranks // 4):
        return "imbalance"
    if category == "wire":
        return "wire"
    if category in OVERHEAD_CATS:
        return "overhead"
    return "mixed"


def _rankprof_phase_diff(old_phase: dict, new_phase: dict) -> dict:
    """Diff one phase of two rankprof docs -> cohort/category/evidence."""
    old_rows = {r["rank"]: r for r in old_phase.get("rows", ())}
    new_rows = {r["rank"]: r for r in new_phase.get("rows", ())}
    common = sorted(set(old_rows) & set(new_rows))
    old_total = sum(old_rows[r]["completion"] for r in common)
    new_total = sum(new_rows[r]["completion"] for r in common)
    delta = new_total - old_total
    noise = _noise_floor(old_total, new_total)
    direction = 1.0 if delta >= 0 else -1.0
    per_rank = {
        r: new_rows[r]["completion"] - old_rows[r]["completion"] for r in common
    }
    cohort = _cohort(per_rank, direction, noise)
    # Attribute the category over the cohort (falling back to all ranks):
    # the cohort's attribution deltas say *why* the slow ranks slowed.
    pool = cohort if cohort else tuple(common)
    old_cats: dict[str, float] = {}
    new_cats: dict[str, float] = {}
    for r in pool:
        for c, s in old_rows[r].get("attribution", {}).items():
            old_cats[c] = old_cats.get(c, 0.0) + s
        for c, s in new_rows[r].get("attribution", {}).items():
            new_cats[c] = new_cats.get(c, 0.0) + s
    category, _ = _top_delta(old_cats, new_cats, direction)
    evidence = {}
    if cohort:
        worst = max(cohort, key=lambda r: per_rank[r] * direction)
        evidence = dict(new_rows[worst].get("evidence", {}))
        evidence["rank"] = worst
    return {
        "delta": delta,
        "noise": noise,
        "cohort": cohort,
        "nranks": len(common),
        "category": category,
        "evidence": evidence,
        "old_total": old_total,
        "new_total": new_total,
    }


def _finalize(report: DiagReport) -> DiagReport:
    """Rank findings by |delta| and fill in the shares."""
    report.findings.sort(key=lambda f: -abs(f.delta))
    explained = sum(abs(f.delta) for f in report.findings)
    if explained > 0:
        report.findings = [
            DiagFinding(
                scope=f.scope, delta=f.delta, share=abs(f.delta) / explained,
                stage=f.stage, category=f.category, cohort=f.cohort,
                shape=f.shape, detail=f.detail, evidence=f.evidence,
            )
            for f in report.findings
        ]
    return report


# -- per-kind diagnosis ---------------------------------------------------
def _diag_rankprof(old: dict, new: dict, report: DiagReport) -> None:
    phases = sorted(set(old.get("phases", {})) & set(new.get("phases", {})))
    for phase in phases:
        d = _rankprof_phase_diff(old["phases"][phase], new["phases"][phase])
        report.old_total += d["old_total"]
        report.new_total += d["new_total"]
        if abs(d["delta"]) <= d["noise"]:
            continue
        shape = _shape(d["category"], d["cohort"], d["nranks"])
        who = (f"ranks {list(d['cohort'])}" if d["cohort"]
               else f"all {d['nranks']} ranks")
        report.findings.append(
            DiagFinding(
                scope=phase, delta=d["delta"], share=0.0, stage="Comm",
                category=d["category"], cohort=d["cohort"], shape=shape,
                detail=(
                    f"{phase} exchange {'slowed' if d['delta'] > 0 else 'sped up'} "
                    f"{abs(d['delta']):.4g}s on {who}; "
                    f"largest attribution shift in {d['category'] or 'n/a'}"
                ),
                evidence=d["evidence"],
            )
        )


def _diag_bench(old: dict, new: dict, report: DiagReport) -> None:
    old_runs = {r["key"]: r for r in old.get("runs", ())}
    new_runs = {r["key"]: r for r in new.get("runs", ())}
    for key in sorted(set(old_runs) & set(new_runs)):
        o, n = old_runs[key], new_runs[key]
        o_total = o["model"]["total"]
        n_total = n["model"]["total"]
        report.old_total += o_total
        report.new_total += n_total
        delta = n_total - o_total
        noise = _noise_floor(o_total, n_total)
        direction = 1.0 if delta >= 0 else -1.0
        stage, stage_delta = _top_delta(
            o["model"]["stages"], n["model"]["stages"], direction
        )
        category, _ = _top_delta(
            o.get("critpath", {}).get("attribution", {}),
            n.get("critpath", {}).get("attribution", {}),
            direction,
        )
        cohort: tuple[int, ...] = ()
        nranks = 0
        evidence: dict = {}
        o_rp, n_rp = o.get("rankprof"), n.get("rankprof")
        if isinstance(o_rp, dict) and isinstance(n_rp, dict):
            o_rows = {r["rank"]: r for r in o_rp.get("ranks", ())}
            n_rows = {r["rank"]: r for r in n_rp.get("ranks", ())}
            common = sorted(set(o_rows) & set(n_rows))
            nranks = len(common)
            per_rank = {
                r: n_rows[r]["completion"] - o_rows[r]["completion"]
                for r in common
            }
            cohort = _cohort(per_rank, direction, noise)
            # When the per-rank table is live, re-derive the category from
            # the cohort's attribution shift — sharper than rank 0's path.
            if cohort:
                oc: dict[str, float] = {}
                nc: dict[str, float] = {}
                for r in cohort:
                    for c, s in o_rows[r].get("attribution", {}).items():
                        oc[c] = oc.get(c, 0.0) + s
                    for c, s in n_rows[r].get("attribution", {}).items():
                        nc[c] = nc.get(c, 0.0) + s
                cohort_cat, _ = _top_delta(oc, nc, direction)
                if cohort_cat:
                    category = cohort_cat
        if abs(delta) <= noise:
            continue
        shape = _shape(category, cohort, nranks)
        report.findings.append(
            DiagFinding(
                scope=key, delta=delta, share=0.0, stage=stage,
                category=category, cohort=cohort, shape=shape,
                detail=(
                    f"{key}: modeled total moved {delta:+.4g}s, led by stage "
                    f"{stage} ({stage_delta:+.4g}s); critpath shift in "
                    f"{category or 'n/a'}"
                ),
                evidence=evidence,
            )
        )


def _diag_scaling(old: dict, new: dict, report: DiagReport) -> None:
    old_pts = {p["ranks"]: p for p in old.get("points", ())}
    new_pts = {p["ranks"]: p for p in new.get("points", ())}
    for ranks in sorted(set(old_pts) & set(new_pts)):
        o, n = old_pts[ranks], new_pts[ranks]
        o_total = o["model"]["per_step"]
        n_total = n["model"]["per_step"]
        report.old_total += o_total
        report.new_total += n_total
        delta = n_total - o_total
        noise = _noise_floor(o_total, n_total)
        direction = 1.0 if delta >= 0 else -1.0
        stage, stage_delta = _top_delta(
            o["model"]["stages"], n["model"]["stages"], direction
        )
        d = _rankprof_phase_diff(
            o.get("rankprof", {}).get("phases", {}).get("forward", {}),
            n.get("rankprof", {}).get("phases", {}).get("forward", {}),
        )
        if abs(delta) <= noise:
            continue
        eff_note = ""
        if "efficiency" in o and "efficiency" in n:
            eff_note = (
                f"; efficiency {o['efficiency']:.3f} -> {n['efficiency']:.3f}"
            )
        shape = _shape(d["category"], d["cohort"], d["nranks"])
        who = (f"ranks {list(d['cohort'])}" if d["cohort"]
               else f"all {d['nranks']} ranks")
        report.findings.append(
            DiagFinding(
                scope=f"ranks={ranks}", delta=delta, share=0.0, stage=stage,
                category=d["category"], cohort=d["cohort"], shape=shape,
                detail=(
                    f"rung {ranks} ranks: per-step model moved {delta:+.4g}s, "
                    f"led by stage {stage} ({stage_delta:+.4g}s/run) on {who}"
                    f"{eff_note}"
                ),
                evidence=d["evidence"],
            )
        )


def _diag_trace(old: dict, new: dict, report: DiagReport) -> None:
    import re

    from repro.obs.critpath import analyze_critical_path
    from repro.obs.export import spans_from_chrome

    results = []
    busy = []
    for doc in (old, new):
        spans = spans_from_chrome(doc)
        results.append(analyze_critical_path(spans=spans))
        # Per-rank busy seconds from the simulator's injector tracks
        # ("rank3/thr0"): the only rank-granular signal a trace carries.
        per_rank: dict[int, float] = {}
        for s in spans:
            m = re.match(r"rank(\d+)(/|$)", s.track)
            if m and s.cat in ("inject", "vcq", "fault"):
                r = int(m.group(1))
                per_rank[r] = per_rank.get(r, 0.0) + s.dur
        busy.append(per_rank)
    o_cp, n_cp = results
    report.old_total = o_cp.total_time
    report.new_total = n_cp.total_time
    delta = report.new_total - report.old_total
    noise = _noise_floor(report.old_total, report.new_total)
    if abs(delta) <= noise:
        return
    direction = 1.0 if delta >= 0 else -1.0
    category, _ = _top_delta(o_cp.attribution, n_cp.attribution, direction)
    common = sorted(set(busy[0]) & set(busy[1]))
    per_rank = {r: busy[1][r] - busy[0][r] for r in common}
    cohort = _cohort(per_rank, direction, noise)
    shape = _shape(category, cohort, len(common))
    evidence = {}
    if n_cp.segments:
        seg = max(n_cp.segments, key=lambda s: s.end - s.start)
        evidence = {"name": seg.name, "cat": seg.cat, "track": seg.track,
                    "start": seg.start, "end": seg.end}
    report.findings.append(
        DiagFinding(
            scope="trace", delta=delta, share=0.0, stage="Comm",
            category=category, cohort=cohort, shape=shape,
            detail=(
                f"modeled exchange completion moved {delta:+.4g}s; critpath "
                f"shift in {category or 'n/a'}"
                + (f", rank-side time grew on ranks {list(cohort)}"
                   if cohort else "")
            ),
            evidence=evidence,
        )
    )


def diagnose(
    old_doc: dict,
    new_doc: dict,
    old_label: str = "old",
    new_label: str = "new",
) -> DiagReport:
    """Diff two same-kind artifacts into a ranked :class:`DiagReport`."""
    old_kind = artifact_kind(old_doc)
    new_kind = artifact_kind(new_doc)
    if old_kind != new_kind:
        raise ValueError(
            f"cannot diag across kinds: {old_label} is {old_kind}, "
            f"{new_label} is {new_kind}"
        )
    report = DiagReport(
        kind=old_kind, old_label=old_label, new_label=new_label,
        old_total=0.0, new_total=0.0,
    )
    dispatch = {
        "bench": _diag_bench,
        "scaling": _diag_scaling,
        "rankprof": _diag_rankprof,
        "trace": _diag_trace,
    }
    dispatch[old_kind](old_doc, new_doc, report)
    return _finalize(report)


# -- rendering / validation / CLI -----------------------------------------
def render_diag(report: DiagReport, top: int = 5) -> str:
    """Human-readable diagnosis: headline verdict, then ranked findings."""
    lines = [
        f"diagnosis [{report.kind}]: {report.old_label} -> {report.new_label}",
        f"  totals {report.old_total:.6g}s -> {report.new_total:.6g}s "
        f"({report.delta:+.4g}s)",
        f"  verdict: {report.verdict}",
    ]
    for i, f in enumerate(report.findings[:top], 1):
        lines.append("")
        lines.append(
            f"#{i} [{f.shape}] {f.scope}: {f.delta:+.4g}s "
            f"({f.share:.0%} of explained delta)"
        )
        lines.append(f"    {f.detail}")
        if f.evidence and "name" in f.evidence:
            ev = f.evidence
            where = f" on {ev['track']}" if ev.get("track") else ""
            who = f" (rank {ev['rank']})" if "rank" in ev else ""
            lines.append(
                f"    evidence{who}: span {ev['name']!r} [{ev.get('cat', '?')}]"
                f"{where}"
            )
    hidden = len(report.findings) - top
    if hidden > 0:
        lines.append(f"  ... {hidden} more finding(s); raise --top to see them")
    return "\n".join(lines)


def _require(cond: bool, path: str, why: str) -> None:
    if not cond:
        raise ValueError(f"diag report invalid at {path}: {why}")


def validate_diag_doc(doc: dict) -> int:
    """Validate a ``repro-diag/1`` report; returns the finding count."""
    _require(isinstance(doc, dict), "$", "not an object")
    _require(doc.get("schema") == SCHEMA, "$.schema",
             f"expected {SCHEMA!r}, got {doc.get('schema')!r}")
    _require(doc.get("kind") in ("bench", "scaling", "rankprof", "trace"),
             "$.kind", f"invalid {doc.get('kind')!r}")
    total = doc.get("total")
    _require(isinstance(total, dict), "$.total", "missing totals")
    for k in ("old", "new", "delta"):
        v = total.get(k)
        _require(isinstance(v, (int, float)) and math.isfinite(v),
                 f"$.total.{k}", f"invalid {v!r}")
    _require(
        abs(total["delta"] - (total["new"] - total["old"])) <= 1e-9,
        "$.total.delta", "delta != new - old",
    )
    _require(isinstance(doc.get("verdict"), str) and doc["verdict"],
             "$.verdict", "missing verdict")
    findings = doc.get("findings")
    _require(isinstance(findings, list), "$.findings", "missing findings")
    prev = math.inf
    share_sum = 0.0
    for i, f in enumerate(findings):
        ctx = f"$.findings[{i}]"
        _require(isinstance(f, dict), ctx, "not an object")
        for k in ("scope", "stage", "category", "shape", "detail"):
            _require(isinstance(f.get(k), str), f"{ctx}.{k}", "not a string")
        _require(f["shape"] in SHAPES, f"{ctx}.shape", f"invalid {f['shape']!r}")
        d = f.get("delta")
        _require(isinstance(d, (int, float)) and math.isfinite(d),
                 f"{ctx}.delta", f"invalid {d!r}")
        _require(abs(d) <= prev + 1e-12, f"{ctx}.delta",
                 "findings not ranked by |delta|")
        prev = abs(d)
        s = f.get("share")
        _require(isinstance(s, (int, float)) and 0.0 <= s <= 1.0,
                 f"{ctx}.share", f"invalid {s!r}")
        share_sum += s
        cohort = f.get("cohort")
        _require(
            isinstance(cohort, list) and all(isinstance(r, int) for r in cohort),
            f"{ctx}.cohort", f"invalid {cohort!r}",
        )
    if findings:
        _require(abs(share_sum - 1.0) <= 1e-6, "$.findings[*].share",
                 f"shares sum to {share_sum!r}, not 1.0")
    return len(findings)


def main(argv=None) -> int:
    """``python -m repro diag OLD NEW [--json PATH] [--top N]``."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro diag",
        description=(
            "Diff two observability artifacts (bench, scaling, rankprof, or "
            "Chrome traces) and explain the delta: stage, critpath category, "
            "rank cohort, and regression shape."
        ),
    )
    parser.add_argument("old", help="baseline artifact (JSON)")
    parser.add_argument("new", help="candidate artifact (JSON)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the repro-diag/1 report")
    parser.add_argument("--top", type=int, default=5,
                        help="findings to print (default 5)")
    args = parser.parse_args(argv)

    try:
        old_kind, old_doc = load_artifact(args.old)
        new_kind, new_doc = load_artifact(args.new)
    except (OSError, ValueError, KeyError) as exc:
        print(f"diag: {exc}", file=sys.stderr)
        return 2
    if old_kind != new_kind:
        # A kind mismatch is a *failed check* on valid inputs, not a
        # usage error: name the check and exit 1 (no traceback).
        print(
            f"diag: FAILED kind-match — cannot diag across kinds: "
            f"{args.old} is {old_kind!r}, {args.new} is {new_kind!r}",
            file=sys.stderr,
        )
        return 1
    try:
        report = diagnose(old_doc, new_doc, old_label=args.old,
                          new_label=args.new)
    except (OSError, ValueError, KeyError) as exc:
        print(f"diag: {exc}", file=sys.stderr)
        return 2
    print(render_diag(report, top=args.top))
    if args.json:
        doc = report.to_dict()
        validate_diag_doc(doc)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
