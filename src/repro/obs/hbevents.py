"""Happens-before event emission for the race detector.

The RDMA plane's correctness argument is an ordering argument: a PUT's
payload may be *read* (ring consume, post-fence ghost access) only after
it has *landed*, and a ring slot may be *rewritten* only after it has
been consumed.  The fault layer (``rdma-stale``/``ring-stale``) creates
exactly the §3.4 windows where those orders are violated; the detector
in :mod:`repro.analysis.hb` reconstructs the order from trace events.

This module is the single place those events are emitted.  All are
zero-duration instants with ``cat="hb"`` on the wall timeline, guarded
on ``TRACER.enabled`` so the simulation hot path pays one attribute read
when tracing is off.  The vocabulary:

=============  ==========================  =================================
event          track                       meaning
=============  ==========================  =================================
``hb-put``     ``rank{r}`` (writer)        a PUT was *issued* toward ``res``
                                           (``inflight=1`` when fault-deferred)
``hb-land``    ``nic``                     the PUT's bytes became visible
``hb-write``   ``rank{r}`` (ring owner)    a ring slot was acquired for
                                           writing (``ok=0``: slot dirty)
``hb-read``    ``rank{r}`` (reader)        a ring slot was consumed
                                           (``ok=0``: slot clean = stale)
``hb-fence``   ``comm``                    a fence entered its retry loop
                                           with ``pending`` PUTs in flight
=============  ==========================  =================================

Resource keys: ``stag{N}`` for registered memory regions (element
ranges ``[lo, lo+n)``), ``ring{id}/slot{k}`` for ring slots, and the
bare ``ring{id}`` for a deferred ring PUT whose slot is only chosen when
it lands.  Put ids are per-resource sequence numbers, so land events
pair with their put deterministically across replays.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.trace import TRACER

#: Category shared by every happens-before instant.
HB_CAT = "hb"

#: Track name of the simulated NIC actor (where PUTs land).
NIC_TRACK = "nic"

_put_seq: defaultdict[str, int] = defaultdict(int)


def _next_put_id(res: str) -> int:
    _put_seq[res] += 1
    return _put_seq[res]


def reset() -> None:
    """Restart every per-resource put sequence (for test isolation)."""
    _put_seq.clear()


def emit_put(rank: int, res: str, lo: int, n: int, inflight: bool) -> int:
    """A PUT was issued by ``rank`` toward ``res[lo:lo+n]``.

    Returns the put id pairing this event with its ``hb-land`` (0 when
    tracing is disabled and nothing was emitted).
    """
    if not TRACER.enabled:
        return 0
    pid = _next_put_id(res)
    TRACER.instant(
        "hb-put", cat=HB_CAT, track=f"rank{rank}",
        res=res, lo=lo, n=n, put=pid, inflight=int(inflight),
    )
    return pid


def emit_land(res: str, lo: int, n: int, put: int) -> None:
    """The bytes of put ``put`` became visible in ``res[lo:lo+n]``."""
    if not TRACER.enabled:
        return
    TRACER.instant(
        "hb-land", cat=HB_CAT, track=NIC_TRACK, res=res, lo=lo, n=n, put=put
    )


def emit_write(rank: int, res: str, ok: bool) -> None:
    """Ring slot ``res`` was acquired for writing (``ok=False``: dirty)."""
    if not TRACER.enabled:
        return
    TRACER.instant(
        "hb-write", cat=HB_CAT, track=f"rank{rank}", res=res, ok=int(ok)
    )


def emit_read(rank: int, res: str, ok: bool) -> None:
    """Ring slot ``res`` was consumed (``ok=False``: clean = stale poll)."""
    if not TRACER.enabled:
        return
    TRACER.instant(
        "hb-read", cat=HB_CAT, track=f"rank{rank}", res=res, ok=int(ok)
    )


def emit_fence(stage: str, pending: int) -> None:
    """A fence entered its retry loop with ``pending`` PUTs in flight."""
    if not TRACER.enabled:
        return
    TRACER.instant(
        "hb-fence", cat=HB_CAT, track="comm", stage=stage, pending=pending
    )
