"""Reports derived from the trace — the breakdowns, *recomputed*.

The point of the observability layer is that the numbers the repository
already reports (``StageTimers`` breakdown, ``TrafficLog`` accounts) can
be re-derived from the span/event stream and cross-checked.  This module
does the deriving:

* :func:`stage_breakdown_from_trace` — Table-3-style per-stage seconds
  summed from ``cat="stage"`` spans (bit-exact against ``StageTimers``
  because spans store the same measured floats the timers accumulate).
* :func:`phase_summary_from_trace` — per-phase message counts and byte
  volumes recomputed from the per-message instants, comparable 1:1 with
  :meth:`repro.runtime.transport.TrafficLog.summary` and with the
  Table 1 analytic predictions.
* text / CSV renderers for both.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass

from repro.md.stages import Stage
from repro.obs.trace import MODEL, TRACER, Tracer, WALL


def stage_breakdown_from_trace(tracer: Tracer | None = None, which: str = "wall") -> dict[str, float]:
    """Per-stage seconds summed from the trace's stage spans.

    ``which`` selects the timeline: ``"wall"`` for measured process time,
    ``"model"`` for simulated Fugaku seconds.  Spans are summed in record
    order — the same float-addition order the timers used — so the result
    equals ``StageTimers`` totals exactly, not just approximately.
    """
    if which not in ("wall", "model"):
        raise ValueError(f"which must be 'wall' or 'model', got {which!r}")
    tracer = tracer if tracer is not None else TRACER
    clock = WALL if which == "wall" else MODEL
    out = {s.value: 0.0 for s in Stage}
    for span in tracer.spans:
        if span.cat == "stage" and span.clock == clock:
            out[span.name] = out.get(span.name, 0.0) + span.dur
    return out


def render_stage_table(tracer: Tracer | None = None, which: str = "wall") -> str:
    """Table-3-style breakdown rendered from spans (not from the timers)."""
    breakdown = stage_breakdown_from_trace(tracer, which)
    total = sum(breakdown.values())
    unit = "wall" if which == "wall" else "simulated Fugaku"
    lines = [
        f"Span-derived stage breakdown ({unit} seconds):",
        f"{'Section':<10}| {'time':>12} |{'%total':>8}",
        "-" * 36,
    ]
    for name, t in breakdown.items():
        pct = 100.0 * t / total if total > 0 else 0.0
        lines.append(f"{name:<10}| {t:>12.5g} |{pct:>7.2f}%")
    lines.append("-" * 36)
    lines.append(f"Total: {total:.5g} s over {len(tracer.spans if tracer else TRACER.spans)} spans")
    return "\n".join(lines)


@dataclass(frozen=True)
class PhaseTraffic:
    """Message count and byte volume of one phase, recomputed from trace."""

    phase: str
    count: int
    total_bytes: int


def phase_summary_from_trace(tracer: Tracer | None = None) -> dict[str, PhaseTraffic]:
    """Per-phase traffic recomputed from the per-message instants.

    The instants are emitted by :class:`~repro.runtime.transport.Transport`
    (category ``"msg"``), so this is an independent re-aggregation of the
    same ground truth :class:`~repro.runtime.transport.TrafficLog` keeps —
    the consistency checks compare the two.
    """
    tracer = tracer if tracer is not None else TRACER
    counts: dict[str, int] = {}
    nbytes: dict[str, int] = {}
    for ev in tracer.instants:
        if ev.cat != "msg":
            continue
        phase = ev.args.get("phase", "")
        counts[phase] = counts.get(phase, 0) + 1
        nbytes[phase] = nbytes.get(phase, 0) + int(ev.args.get("nbytes", 0))
    return {
        ph: PhaseTraffic(phase=ph, count=counts[ph], total_bytes=nbytes[ph])
        for ph in counts
    }


def render_phase_table(tracer: Tracer | None = None) -> str:
    """Per-phase message counts/bytes recomputed from the trace."""
    summary = phase_summary_from_trace(tracer)
    lines = [
        "Span-derived traffic by phase:",
        f"{'Phase':<18}| {'messages':>9} | {'bytes':>12}",
        "-" * 45,
    ]
    for phase in sorted(summary):
        t = summary[phase]
        lines.append(f"{phase:<18}| {t.count:>9d} | {t.total_bytes:>12d}")
    lines.append("-" * 45)
    return "\n".join(lines)


def write_stage_csv(path: str, tracer: Tracer | None = None) -> None:
    """CSV export of the span-derived breakdown (both timelines)."""
    wall = stage_breakdown_from_trace(tracer, "wall")
    model = stage_breakdown_from_trace(tracer, "model")
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["stage", "wall_seconds", "model_seconds"])
        for stage in Stage:
            writer.writerow([stage.value, wall[stage.value], model[stage.value]])


def write_phase_csv(path: str, tracer: Tracer | None = None) -> None:
    """CSV export of the span-derived traffic table (phase rows sorted)."""
    summary = phase_summary_from_trace(tracer)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["phase", "messages", "bytes"])
        for phase in sorted(summary):
            t = summary[phase]
            writer.writerow([t.phase, t.count, t.total_bytes])
