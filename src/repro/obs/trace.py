"""Span/event tracer over two timelines: wall clock and simulated machine.

Every timing claim of the paper is an *attribution* claim — which stage,
which message, which TNI — so the tracer records attributed intervals
rather than bare totals:

* **Wall spans** — real elapsed intervals of this Python process
  (``time.perf_counter``), nested via a context-manager stack, used for
  the five-stage breakdown and the exchange phases.
* **Model spans** — intervals on the simulated-Fugaku timeline: message
  injection / TNI-engine / wire segments from the network simulator,
  thread-pool fork/join regions, and the per-stage modeled seconds that
  :class:`~repro.md.stages.StageTimers` accounts.
* **Instants** — zero-duration events (one per transported message),
  the raw material for the traffic consistency checks.

The module-level singleton :data:`TRACER` starts **disabled**; every
instrumentation site guards on ``TRACER.enabled`` (one attribute read)
so the hot paths pay no measurable cost until tracing is switched on.
The singleton object is never replaced — instrumented modules may hold a
reference to it — only reset.

Durations are recorded *exactly as measured* (``t1 - t0``, the same
float the timers accumulate), which is what lets
:func:`repro.obs.report.stage_breakdown_from_trace` reproduce
``StageTimers`` totals to the last bit.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Clock identifiers for :class:`SpanRecord.clock`.
WALL = "wall"
MODEL = "model"


@dataclass
class SpanRecord:
    """One completed interval on one timeline."""

    name: str
    cat: str  # "stage" | "step" | "comm" | "inject" | "tni" | "wire" | ...
    ts: float  # seconds since the tracer epoch (its clock's zero)
    dur: float  # recorded exactly as measured, never recomputed
    clock: str  # WALL or MODEL
    track: str  # display row: "stages", "rank0/thr2", "tni3", ...
    args: dict = field(default_factory=dict)
    id: int = 0
    parent: int | None = None

    @property
    def end(self) -> float:
        """Interval end (``ts + dur``)."""
        return self.ts + self.dur


@dataclass
class InstantRecord:
    """A zero-duration event (e.g. one message leaving a rank)."""

    name: str
    cat: str
    ts: float
    clock: str
    track: str
    args: dict = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()

#: Public no-op span: hot paths that guard on ``TRACER.enabled`` return
#: this directly, skipping even the span-name/kwargs construction.
NULL_SPAN = _NULL_SPAN


class _OpenSpan:
    """A live wall-clock span; records itself on exit."""

    __slots__ = ("tracer", "name", "cat", "track", "args", "id", "parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args

    def __enter__(self):
        tr = self.tracer
        self.id = tr._next_id
        tr._next_id += 1
        self.parent = tr._stack[-1].id if tr._stack else None
        tr._stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter()
        tr = self.tracer
        tr._stack.pop()
        tr.spans.append(
            SpanRecord(
                name=self.name,
                cat=self.cat,
                ts=self._t0 - tr._epoch,
                dur=t1 - self._t0,
                clock=WALL,
                track=self.track,
                args=self.args,
                id=self.id,
                parent=self.parent,
            )
        )
        return False


class Tracer:
    """Recorder of spans and instants over the wall and model timelines.

    ``model_clock`` is the high-water mark of the simulated timeline;
    components with no absolute machine clock (thread-pool regions,
    per-stage modeled seconds) append at the cursor, while the network
    simulator places whole rounds at :attr:`model_offset` (set by
    :meth:`begin_model_round`) so rounds laid out with internal absolute
    times do not overlap earlier activity.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Record every Nth instant event (1 = all, the default).  Spans
        #: are never sampled — only the high-rate per-message instants.
        self.sample_every = 1
        self.reset()

    def reset(self) -> None:
        """Drop all records and restart both timelines at zero."""
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self._stack: list[_OpenSpan] = []
        self._next_id = 1
        self._epoch = time.perf_counter()
        self.model_clock = 0.0
        self.model_offset = 0.0
        self._instant_seq = 0

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "", track: str = "main", **args):
        """Context manager measuring a wall-clock span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _OpenSpan(self, name, cat, track, args)

    def add_wall_span(
        self, name: str, t0: float, t1: float, cat: str = "", track: str = "main", **args
    ) -> None:
        """Record a completed span from raw ``perf_counter`` readings.

        ``dur`` is stored as exactly ``t1 - t0`` — the same float a
        caller that also accumulates the interval adds to its own total,
        so trace-derived sums can match external accounts bit-for-bit.
        """
        if not self.enabled:
            return
        parent = self._stack[-1].id if self._stack else None
        sid = self._next_id
        self._next_id += 1
        self.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                ts=t0 - self._epoch,
                dur=t1 - t0,
                clock=WALL,
                track=track,
                args=args,
                id=sid,
                parent=parent,
            )
        )

    def add_model_span(
        self, name: str, start: float, dur: float, cat: str = "", track: str = "machine", **args
    ) -> None:
        """Record a span at an absolute position on the simulated timeline."""
        if not self.enabled:
            return
        sid = self._next_id
        self._next_id += 1
        self.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                ts=start,
                dur=dur,
                clock=MODEL,
                track=track,
                args=args,
                id=sid,
                parent=None,
            )
        )
        end = start + dur
        if end > self.model_clock:
            self.model_clock = end

    def model_span_seq(
        self, name: str, dur: float, cat: str = "", track: str = "machine", **args
    ) -> None:
        """Append a model span at the running cursor (no absolute clock)."""
        if not self.enabled:
            return
        self.add_model_span(name, self.model_clock, dur, cat=cat, track=track, **args)

    def begin_model_round(self) -> float:
        """Start an independent simulator round; returns its base offset."""
        self.model_offset = self.model_clock
        return self.model_offset

    def instant(
        self,
        name: str,
        cat: str = "",
        track: str = "main",
        clock: str = WALL,
        ts: float | None = None,
        **args,
    ) -> None:
        """Record a zero-duration event on either timeline.

        With ``sample_every > 1`` only every Nth instant is kept — an
        opt-in pressure valve for long traced runs where the per-message
        instants dominate trace size.  Consistency checks that compare
        instant counts against the traffic log require the default of 1.
        """
        if not self.enabled:
            return
        if self.sample_every > 1:
            self._instant_seq += 1
            if self._instant_seq % self.sample_every:
                return
        if ts is None:
            ts = time.perf_counter() - self._epoch if clock == WALL else self.model_clock
        self.instants.append(InstantRecord(name, cat, ts, clock, track, args))

    # -- queries -----------------------------------------------------------
    def spans_with(self, cat: str | None = None, clock: str | None = None) -> list[SpanRecord]:
        """Spans filtered by category and/or clock, in completion order."""
        return [
            s
            for s in self.spans
            if (cat is None or s.cat == cat) and (clock is None or s.clock == clock)
        ]

    def instants_with(self, cat: str | None = None) -> list[InstantRecord]:
        """Instant events filtered by category, in record order."""
        return [e for e in self.instants if cat is None or e.cat == cat]


#: The process-wide tracer. Never replaced, only reset, so modules may
#: safely hold a reference to it.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The global tracer singleton."""
    return TRACER


@contextmanager
def tracing(fresh: bool = True, sample_every: int = 1):
    """Enable the global tracer for a block; restores the prior state."""
    prev = TRACER.enabled
    prev_sample = TRACER.sample_every
    if fresh:
        TRACER.reset()
    TRACER.enabled = True
    TRACER.sample_every = sample_every
    try:
        yield TRACER
    finally:
        TRACER.enabled = prev
        TRACER.sample_every = prev_sample
