"""repro.obs — unified tracing and metrics for the whole reproduction.

One observability layer under every account the repository keeps:

* :mod:`repro.obs.trace` — span/event tracer over two timelines (wall
  clock and simulated machine), attributed by rank/thread/TNI/stage/
  phase, a no-op when disabled.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms (message sizes, hops, RDMA registrations, receive-ring
  occupancy, per-TNI busy time, injections).
* :mod:`repro.obs.export` — Chrome trace-event JSON, viewable in
  Perfetto.
* :mod:`repro.obs.report` — Table-3-style breakdowns and traffic
  summaries *derived from spans*, which the self-check battery compares
  against ``StageTimers``, ``TrafficLog``, and the Table 1 formulas.
* :mod:`repro.obs.critpath` — critical-path analysis of the simulated
  exchange: which inject/TNI/wire/barrier segments determined the
  completion time, attributed per category and per resource.
* :mod:`repro.obs.bench` — the continuous benchmark harness
  (``python -m repro.obs.bench run|compare|report``) recording wall and
  model breakdowns, traffic, critical paths, and the Table 1/3 +
  Fig. 13 model outputs into versioned ``BENCH_*.json`` artifacts with
  regression gating (see docs/benchmarking.md).
* :mod:`repro.obs.telemetry` / :mod:`repro.obs.sketch` /
  :mod:`repro.obs.flight` — the third, **always-on** tier: batched
  counters/gauges fed from fast-path bookkeeping, mergeable quantile
  sketches (p50/p95/p99 without samples), a bounded flight-recorder
  ring dumped on terminal failures, and an OpenMetrics exporter
  (``python -m repro telemetry``).  Unlike the tracer and the metrics
  registry, telemetry never disables the exchange fast path.
* :mod:`repro.obs.rankprof` / :mod:`repro.obs.scaling` /
  :mod:`repro.obs.diag` — the fourth tier, the **scaling observatory**:
  critical-path attribution at *rank* granularity (per-rank × per-phase
  × per-category tables, max/mean + p99/p50 imbalance, span-anchored
  straggler evidence), scaling-curve capture across a rank-grid ladder
  into ``repro-scaling/1`` artifacts (measured vs
  ``repro.perfmodel.scaling`` prediction), and the automated diagnosis
  engine ``python -m repro diag`` that diffs two artifacts into a
  ranked stage/category/cohort explanation.

Typical use::

    from repro.obs import observe
    from repro.obs.export import write_chrome_trace

    with observe() as (tracer, metrics):
        sim = quick_lj_simulation(pattern="parallel-p2p")
        sim.run(20)
    write_chrome_trace("out.json", tracer)
    print(metrics.render())

or from the CLI: ``python -m repro --trace out.json --metrics``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.flight import FlightRecorder, load_flight_doc, validate_flight_doc
from repro.obs.metrics import METRICS, MetricsRegistry, collecting, get_metrics
from repro.obs.rankprof import RankProfileResult, profile_exchange
from repro.obs.sketch import QuantileSketch
from repro.obs.telemetry import TELEMETRY, StepTelemetry, get_telemetry
from repro.obs.trace import TRACER, Tracer, get_tracer, tracing


@contextmanager
def observe(trace: bool = True, metrics: bool = True, fresh: bool = True):
    """Enable tracing and/or metrics for a block; restore state on exit.

    Yields ``(tracer, registry)`` — the global singletons, whose records
    remain readable after the block ends.
    """
    prev_trace, prev_metrics = TRACER.enabled, METRICS.enabled
    if fresh:
        if trace:
            TRACER.reset()
        if metrics:
            METRICS.reset()
    TRACER.enabled = trace or prev_trace
    METRICS.enabled = metrics or prev_metrics
    try:
        yield TRACER, METRICS
    finally:
        TRACER.enabled = prev_trace
        METRICS.enabled = prev_metrics


__all__ = [
    "TRACER",
    "METRICS",
    "TELEMETRY",
    "Tracer",
    "MetricsRegistry",
    "StepTelemetry",
    "QuantileSketch",
    "FlightRecorder",
    "get_tracer",
    "get_metrics",
    "get_telemetry",
    "load_flight_doc",
    "validate_flight_doc",
    "tracing",
    "collecting",
    "observe",
    "RankProfileResult",
    "profile_exchange",
]
