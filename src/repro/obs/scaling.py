"""Scaling-curve capture: measured ladders vs the calibrated model.

``python -m repro.obs.bench scaling`` runs one benchmark configuration
across a *rank-grid ladder* (strong scaling: the cell count is fixed, so
every rung simulates the same atoms on more ranks) and emits a versioned
``repro-scaling/1`` artifact.  Every rung records:

* measured wall statistics over N repeats and the deterministic modeled
  stage breakdown (the same accounts ``repro-bench/1`` keeps);
* **parallel efficiency** of both curves relative to the first rung
  (``eff_i = t_0 r_0 / (t_i r_i)``, the Fig. 13a formula);
* per-rank **imbalance** from the rank profiler
  (:mod:`repro.obs.rankprof`) — max/mean, p99/p50, straggler cohort —
  plus the full embedded ``repro-rankprof/1`` table;
* the **predicted** step time from :func:`repro.perfmodel.scaling.\
  modeled_ladder` at the matching node counts, and the
  predicted-vs-measured curve-shape **divergence**
  (``(t_i/t_0) / (p_i/p_0) - 1``: zero when the measured curve bends
  exactly like the analytic one, positive when measurement scales worse
  than predicted).

The artifact is what :mod:`repro.obs.diag` diffs to answer "why did
config B scale worse than A".
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass

from repro.obs.bench import STAGES, BenchConfig, _stats, build_simulation

#: Versioned schema identifier checked by :func:`validate_scaling_doc`.
SCHEMA = "repro-scaling/1"

#: Default 2-rung ladder: cheap enough for CI, enough for a slope.
DEFAULT_LADDER = ((1, 2, 2), (2, 2, 2))

#: Functional exchange pattern -> perfmodel variant used for the
#: predicted curve.  (3-stage maps to the MPI reference; plain p2p to
#: the single-thread 4-TNI artifact; parallel-p2p to the full opt.)
PATTERN_VARIANTS = {"3stage": "ref", "p2p": "4tni_p2p", "parallel-p2p": "opt"}


@dataclass(frozen=True)
class ScalingSpec:
    """The configuration swept across the ladder (grid comes per rung)."""

    potential: str = "lj"
    pattern: str = "parallel-p2p"
    rdma: bool = True
    cells: tuple[int, int, int] = (4, 4, 4)
    steps: int = 10

    def config(self, grid: tuple[int, int, int]) -> BenchConfig:
        """This spec instantiated as one rung's :class:`BenchConfig`."""
        return BenchConfig(
            self.potential, self.pattern, grid, self.rdma, self.cells, self.steps
        )


def parse_ladder(text: str) -> tuple[tuple[int, int, int], ...]:
    """Parse ``"1x2x2,2x2x2"`` into a grid ladder."""
    ladder = []
    for part in text.split(","):
        dims = tuple(int(d) for d in part.strip().split("x"))
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(f"bad grid {part!r}; want e.g. 2x2x2")
        ladder.append(dims)
    if not ladder:
        raise ValueError("empty ladder")
    return tuple(ladder)


def workload_from_sim(sim, potential: str) -> "Workload":
    """Project a live Simulation onto the stage model's Workload axis.

    ``potential`` is the preset key ("lj" | "eam"); everything else —
    atom count, density, communication radius, timestep, rebuild
    cadence, Newton mode — is read off the live simulation so the
    predicted curve prices exactly the system that was measured.
    """
    from repro.perfmodel.stagemodel import Workload

    cfg = sim.config
    return Workload(
        name=f"capture-{potential}",
        potential=potential,
        natoms=sim.natoms,
        density=sim.natoms / sim.box.volume,
        rcomm=sim.potential.cutoff + cfg.skin,
        dt=cfg.dt,
        rebuild_every=cfg.neighbor_every,
        allreduce_every=5 if potential == "eam" else 0,
        newton=cfg.newton,
    )


def capture_scaling(
    spec: ScalingSpec,
    ladder=DEFAULT_LADDER,
    repeats: int = 2,
    label: str = "local",
) -> dict:
    """Run ``spec`` across ``ladder`` and build a ``repro-scaling/1`` doc.

    Rungs must be ordered by increasing rank count (strong-scaling
    convention: efficiencies are relative to the first rung).
    """
    from repro.md.stages import Stage
    from repro.obs.rankprof import profile_exchange, to_dict as rankprof_to_dict
    from repro.perfmodel.scaling import modeled_ladder, ranks_to_nodes

    ranks_list = [g[0] * g[1] * g[2] for g in ladder]
    if ranks_list != sorted(ranks_list):
        raise ValueError(f"ladder must be ordered by rank count, got {ranks_list}")

    points = []
    workload = None
    for grid in ladder:
        cfg = spec.config(grid)
        total_samples: list[float] = []
        wall_samples: dict[str, list[float]] = {s: [] for s in STAGES}
        sim = None
        for _ in range(max(repeats, 1)):
            sim = build_simulation(cfg)
            sim.run(cfg.steps)
            for stage in Stage:
                wall_samples[stage.value].append(sim.timers.wall[stage])
            total_samples.append(sim.timers.total_wall())
        if workload is None:
            workload = workload_from_sim(sim, spec.potential)
        model = {s.value: sim.timers.model[s] for s in Stage}
        prof = profile_exchange(sim.exchange, phases=("forward",))
        imb = prof.imbalance("forward")
        points.append(
            {
                "key": cfg.key,
                "grid": list(grid),
                "ranks": cfg.grid[0] * cfg.grid[1] * cfg.grid[2],
                "atoms": sim.natoms,
                "wall": {
                    "stages": {s: _stats(v) for s, v in wall_samples.items()},
                    "total": _stats(total_samples),
                },
                "model": {
                    "stages": model,
                    "total": sum(model.values()),
                    "per_step": sum(model.values()) / cfg.steps,
                },
                "imbalance": {
                    "max_mean": imb.max_mean,
                    "p99_p50": imb.p99_p50,
                    "stragglers": list(imb.stragglers),
                },
                "rankprof": rankprof_to_dict(prof, label=cfg.key),
            }
        )

    variant = PATTERN_VARIANTS[spec.pattern]
    predicted = modeled_ladder(workload, variant, ranks_list)
    t0 = points[0]["model"]["per_step"]
    r0 = ranks_list[0]
    p0 = predicted[0].step_time
    for pt, pred, ranks in zip(points, predicted, ranks_list):
        t = pt["model"]["per_step"]
        pt["efficiency"] = (t0 * r0) / (t * ranks) if t > 0 else math.nan
        pt["predicted"] = {
            "nodes": ranks_to_nodes(ranks),
            "step_time": pred.step_time,
            "efficiency": (p0 * predicted[0].nodes)
            / (pred.step_time * pred.nodes),
            "stages": dict(pred.result.stages),
        }
        # Curve-shape divergence: how much worse (positive) or better
        # (negative) the measured curve bends than the predicted one,
        # both normalized to their first rung.
        pt["divergence"] = (t / t0) / (pred.step_time / p0) - 1.0

    return {
        "schema": SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "spec": {
            "potential": spec.potential,
            "pattern": spec.pattern,
            "rdma": spec.rdma,
            "cells": list(spec.cells),
            "steps": spec.steps,
            "repeats": repeats,
            "variant": variant,
        },
        "workload": {
            "natoms": workload.natoms,
            "density": workload.density,
            "rcomm": workload.rcomm,
        },
        "points": points,
    }


# -- validation -----------------------------------------------------------
def _require(cond: bool, path: str, why: str) -> None:
    if not cond:
        raise ValueError(f"scaling document invalid at {path}: {why}")


def validate_scaling_doc(doc: dict) -> int:
    """Validate a ``repro-scaling/1`` document; returns the rung count."""
    from repro.obs.rankprof import validate_rankprof_doc

    _require(isinstance(doc, dict), "$", "not an object")
    _require(doc.get("schema") == SCHEMA, "$.schema",
             f"expected {SCHEMA!r}, got {doc.get('schema')!r}")
    spec = doc.get("spec")
    _require(isinstance(spec, dict), "$.spec", "missing spec")
    for k in ("potential", "pattern", "variant"):
        _require(isinstance(spec.get(k), str), f"$.spec.{k}", "missing")
    points = doc.get("points")
    _require(isinstance(points, list) and points, "$.points", "missing points")
    prev_ranks = 0
    for i, pt in enumerate(points):
        ctx = f"$.points[{i}]"
        _require(isinstance(pt, dict), ctx, "not an object")
        ranks = pt.get("ranks")
        _require(isinstance(ranks, int) and ranks > prev_ranks, f"{ctx}.ranks",
                 f"rungs must strictly increase, got {ranks!r}")
        prev_ranks = ranks
        for k in ("efficiency", "divergence"):
            v = pt.get(k)
            _require(isinstance(v, (int, float)) and math.isfinite(v),
                     f"{ctx}.{k}", f"invalid {v!r}")
        model = pt.get("model")
        _require(isinstance(model, dict) and isinstance(model.get("stages"), dict),
                 f"{ctx}.model", "missing model stages")
        _require(set(model["stages"]) == set(STAGES), f"{ctx}.model.stages",
                 f"stage set mismatch {sorted(model['stages'])}")
        pred = pt.get("predicted")
        _require(
            isinstance(pred, dict)
            and isinstance(pred.get("step_time"), (int, float))
            and pred["step_time"] > 0,
            f"{ctx}.predicted", "missing predicted step_time",
        )
        imb = pt.get("imbalance")
        _require(isinstance(imb, dict) and "max_mean" in imb and "p99_p50" in imb,
                 f"{ctx}.imbalance", "missing imbalance")
        rp = pt.get("rankprof")
        _require(isinstance(rp, dict), f"{ctx}.rankprof", "missing rankprof")
        try:
            validate_rankprof_doc(rp)
        except ValueError as exc:
            _require(False, f"{ctx}.rankprof", str(exc))
    _require(
        abs(points[0]["efficiency"] - 1.0) < 1e-9, "$.points[0].efficiency",
        "first rung must have efficiency 1.0",
    )
    return len(points)


def render_scaling(doc: dict) -> str:
    """Human-readable scaling-curve table."""
    spec = doc["spec"]
    lines = [
        f"scaling capture [{doc.get('label', '?')}]: {spec['potential']}/"
        f"{spec['pattern']}{'/rdma' if spec.get('rdma') else ''} "
        f"cells {'x'.join(str(c) for c in spec['cells'])}, "
        f"{spec['steps']} steps, model variant {spec['variant']}",
        f"{'ranks':>5} | {'model ms/step':>13} | {'eff':>6} | {'pred eff':>8} | "
        f"{'diverg':>7} | {'max/mean':>8} | stragglers",
        "-" * 76,
    ]
    for pt in doc["points"]:
        imb = pt["imbalance"]
        strag = imb["stragglers"]
        lines.append(
            f"{pt['ranks']:>5} | {pt['model']['per_step'] * 1e3:>13.4f} | "
            f"{pt['efficiency']:>6.3f} | {pt['predicted']['efficiency']:>8.3f} | "
            f"{pt['divergence']:>+7.1%} | {imb['max_mean']:>8.3f} | "
            f"{strag if strag else 'none'}"
        )
    return "\n".join(lines)


def write_scaling(path: str, doc: dict) -> None:
    """Write a scaling artifact as stable, diffable JSON."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
