"""Continuous benchmark harness with regression gating.

The paper's whole argument is a performance delta; this module makes the
repository's own perf trajectory a first-class, machine-checked
artifact.  Three subcommands::

    python -m repro.obs.bench run --out BENCH_PR2.json [--suite smoke]
    python -m repro.obs.bench compare baseline.json BENCH_PR2.json
    python -m repro.obs.bench report BENCH_PR2.json [--csv out.csv]

``run`` executes a declared suite of configurations (potential x pattern
x rank grid x rdma) and records, per configuration:

* **wall** — pytest-benchmark-style stats (min/median/mean/stddev/max
  over ``--repeats`` runs) of the five-stage wall breakdown,
* **model** — the deterministic simulated-Fugaku stage seconds
  (``StageTimers.model``) of the same run,
* **traffic** — per-phase message counts and byte volumes from the
  :class:`~repro.runtime.transport.TrafficLog`,
* **critpath** — the critical-path attribution of the modeled forward
  exchange (:mod:`repro.obs.critpath`): completion time, per-category
  seconds, and the top bottleneck,

plus the Table 1 / Table 3 / Fig. 13-headline model outputs, into a
versioned ``repro-bench/1`` JSON document.

``compare`` diffs two artifacts with per-metric-group tolerances and
exits nonzero on regressions: model times and critical-path completion
gate at 5 % (so an injected 10 % stage-time slowdown fails), traffic
shape at 2 % in either direction, the Fig. 13 speedups must not drop
more than 5 %.  Wall-clock stats are warn-only by default (they compare
across machines); ``--gate-wall`` turns them into gates for same-machine
comparisons.  See ``docs/benchmarking.md``.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import statistics
import sys
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

#: Versioned schema identifier checked by :func:`validate_bench_doc`.
SCHEMA = "repro-bench/1"

STAGES = ("Pair", "Neigh", "Comm", "Modify", "Other")

#: Per-metric-group relative tolerances for ``compare``.
DEFAULT_TOLERANCES = {
    "model_stage": 0.05,  # modeled stage seconds (deterministic)
    "model_total": 0.05,
    "critpath": 0.05,  # modeled exchange completion time
    "traffic_count": 0.02,  # message counts (match both directions)
    "traffic_bytes": 0.02,
    "table1": 1e-6,  # pure analytics
    "table3": 0.05,  # modeled Table 3 totals
    "fig13": 0.05,  # headline speedups must not drop
    "wall": 0.5,  # wall medians (warn-only unless --gate-wall)
    "imbalance": 0.10,  # per-rank max/mean + p99/p50 ratios (warn-only)
}


@dataclass(frozen=True)
class BenchConfig:
    """One declared benchmark configuration."""

    potential: str  # "lj" | "eam"
    pattern: str  # "3stage" | "p2p" | "parallel-p2p"
    grid: tuple[int, int, int]
    rdma: bool
    cells: tuple[int, int, int] = (4, 4, 4)
    steps: int = 10

    @property
    def key(self) -> str:
        """Stable identifier used to match runs across artifacts."""
        g = "x".join(str(n) for n in self.grid)
        return f"{self.potential}/{self.pattern}/{g}" + ("/rdma" if self.rdma else "")

    def to_dict(self) -> dict:
        """JSON-ready form of this configuration."""
        return {
            "potential": self.potential,
            "pattern": self.pattern,
            "grid": list(self.grid),
            "rdma": self.rdma,
            "cells": list(self.cells),
            "steps": self.steps,
        }


#: The declared suites.  ``smoke`` is the CI gate (seconds); ``full``
#: covers the whole potential x pattern x grid x rdma lattice;
#: ``faults-off`` reruns the smoke configs and additionally proves the
#: disabled fault-injection layer is free (:func:`fault_overhead_guard`);
#: ``comm-fastpath`` is the exchange-dominated set the plan-cache /
#: flat-buffer fast path must speed up (gated by the ``speedup``
#: subcommand); ``telemetry-overhead`` reruns those configs and proves
#: the always-on telemetry plane costs <5% wall with the fast path still
#: active (:func:`telemetry_overhead_guard`); ``ci`` is smoke +
#: comm-fastpath in one artifact.
SUITES: dict[str, tuple[BenchConfig, ...]] = {
    "smoke": (
        BenchConfig("lj", "3stage", (2, 2, 2), rdma=False),
        BenchConfig("lj", "parallel-p2p", (2, 2, 2), rdma=True),
        BenchConfig("eam", "parallel-p2p", (2, 2, 2), rdma=True),
    ),
    "comm-fastpath": (
        BenchConfig("lj", "p2p", (3, 3, 3), rdma=False, cells=(6, 6, 6), steps=40),
        BenchConfig("lj", "parallel-p2p", (3, 3, 3), rdma=True, cells=(6, 6, 6), steps=40),
        BenchConfig("eam", "parallel-p2p", (3, 3, 3), rdma=True, cells=(5, 5, 5), steps=15),
    ),
    "faults-off": (
        BenchConfig("lj", "3stage", (2, 2, 2), rdma=False),
        BenchConfig("lj", "parallel-p2p", (2, 2, 2), rdma=True),
        BenchConfig("eam", "parallel-p2p", (2, 2, 2), rdma=True),
    ),
    "full": (
        BenchConfig("lj", "3stage", (2, 2, 2), rdma=False),
        BenchConfig("lj", "p2p", (2, 2, 2), rdma=False),
        BenchConfig("lj", "p2p", (2, 2, 2), rdma=True),
        BenchConfig("lj", "parallel-p2p", (2, 2, 2), rdma=True),
        BenchConfig("lj", "parallel-p2p", (1, 2, 2), rdma=True),
        BenchConfig("eam", "3stage", (2, 2, 2), rdma=False),
        BenchConfig("eam", "parallel-p2p", (2, 2, 2), rdma=True),
    ),
}
SUITES["ci"] = SUITES["smoke"] + SUITES["comm-fastpath"]
SUITES["telemetry-overhead"] = SUITES["comm-fastpath"]


def build_simulation(cfg: BenchConfig):
    """A fresh Simulation for one bench configuration."""
    from repro.md.presets import PRESETS

    preset = PRESETS[cfg.potential]
    return preset.simulation(
        cfg.cells,
        cfg.grid,
        pattern=cfg.pattern,
        rdma=cfg.rdma,
        model_machine_time=True,
        thermo_every=0,
    )


def _stats(samples: list[float]) -> dict:
    """pytest-benchmark-style summary of repeated wall measurements."""
    return {
        "min": min(samples),
        "max": max(samples),
        "mean": statistics.fmean(samples),
        "median": statistics.median(samples),
        "stddev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "repeats": len(samples),
    }


def run_config(cfg: BenchConfig, repeats: int = 3) -> tuple[dict, object]:
    """Execute one configuration; returns (run record, critpath tracer).

    The wall breakdown is measured ``repeats`` times; the model
    breakdown, traffic, and critical path are deterministic and taken
    from the final repeat.
    """
    from repro.core.modeling import modeled_exchange_time
    from repro.md.stages import Stage
    from repro.obs import observe
    from repro.obs.critpath import analyze_critical_path
    from repro.obs.trace import Tracer

    wall_samples: dict[str, list[float]] = {s: [] for s in STAGES}
    total_samples: list[float] = []
    sim = None
    for _ in range(max(repeats, 1)):
        sim = build_simulation(cfg)
        sim.run(cfg.steps)
        for stage in Stage:
            wall_samples[stage.value].append(sim.timers.wall[stage])
        total_samples.append(sim.timers.total_wall())

    model = {s.value: sim.timers.model[s] for s in Stage}
    log = sim.world.transport.log
    phases = sorted({m.phase for m in log.messages})
    traffic = {
        ph: {"count": log.summary(ph).count, "bytes": log.summary(ph).total_bytes}
        for ph in phases
    }

    # Critical path of the modeled forward exchange (rank 0's schedule).
    with observe(metrics=False) as (tracer, _):
        modeled_exchange_time(sim.exchange, "forward", rank=0)
    cp = analyze_critical_path(tracer)
    snapshot = Tracer()
    snapshot.spans = list(tracer.spans)
    snapshot.instants = list(tracer.instants)

    # Per-rank profile of the same phase: the imbalance account `repro
    # diag` diffs (rank 0's row equals the critpath record above).
    from repro.obs.rankprof import bench_record, profile_exchange

    rankprof = bench_record(profile_exchange(sim.exchange, phases=("forward",)))

    record = {
        "key": cfg.key,
        "config": {**cfg.to_dict(), "atoms": sim.natoms},
        "wall": {
            "stages": {s: _stats(v) for s, v in wall_samples.items()},
            "total": _stats(total_samples),
        },
        "model": {"stages": model, "total": sum(model.values())},
        "traffic": traffic,
        "critpath": {
            "completion": cp.completion - cp.base,
            "messages": cp.messages,
            "wire_segments": cp.wire_segments,
            "attribution": dict(cp.attribution),
            "top": cp.top_bottleneck(),
        },
        "rankprof": rankprof,
    }
    stats = getattr(sim.exchange, "plan_stats", None)
    if stats is not None:
        # Allocation-count evidence for the flat-buffer fast path: the
        # ``speedup`` gate requires zero pool regrowth and a nonzero
        # fast-path phase count on the comm-fastpath configurations.
        record["alloc"] = stats()
    return record, (snapshot, cp)


#: Relative wall-clock overhead the *disabled* fault layer may add.
OVERHEAD_LIMIT = 0.02


def _traffic_shape(sim) -> dict:
    """Per-phase (count, bytes) of one run's traffic log."""
    log = sim.world.transport.log
    return {
        ph: (log.summary(ph).count, log.summary(ph).total_bytes)
        for ph in sorted({m.phase for m in log.messages})
    }


def fault_overhead_guard(repeats: int = 5) -> dict:
    """Prove the fault-injection layer is free when it has nothing to do.

    Runs every smoke configuration twice per repeat — plain, and inside
    an *empty* :class:`~repro.faults.plan.FaultPlan` session (layer
    active, zero faults scheduled) — interleaved so machine drift hits
    both arms equally, and checks per configuration:

    * the modeled stage seconds are **exactly** equal: an armed-but-idle
      session must add zero modeled time;
    * the traffic shape (per-phase message counts and bytes) is exactly
      equal: envelope wrapping must not change what is sent;
    * the wall overhead stays under :data:`OVERHEAD_LIMIT`.  Scheduler
      noise is bursty and one-sided (a burst only slows a sample), so
      the estimate is the minimum of the min-over-samples ratio and the
      best interleaved pair ratio — a lower bound that converges to the
      true overhead and never false-fails on noise; when it still reads
      over the limit, sampling escalates (up to 4x) before concluding.
      The deterministic equality checks are the hard gate; the wall
      bound is the smoke alarm for gross overhead regressions.
    """
    from repro.faults import FAULTS, FaultPlan
    from repro.md.stages import Stage

    plan = FaultPlan(seed=0, faults=())
    entries = []
    for cfg in SUITES["smoke"]:
        off_wall: list[float] = []
        on_wall: list[float] = []
        off_model = on_model = None
        off_traffic = on_traffic = None

        def sample_pair() -> None:
            nonlocal off_model, on_model, off_traffic, on_traffic
            sim = build_simulation(cfg)
            sim.run(cfg.steps)
            off_wall.append(sim.timers.total_wall())
            off_model = {s.value: sim.timers.model[s] for s in Stage}
            off_traffic = _traffic_shape(sim)

            sim = build_simulation(cfg)
            with FAULTS.inject(plan):
                sim.run(cfg.steps)
            on_wall.append(sim.timers.total_wall())
            on_model = {s.value: sim.timers.model[s] for s in Stage}
            on_traffic = _traffic_shape(sim)

        def overhead_now() -> float:
            # Scheduler noise only ever *slows* a sample, so both the
            # min-over-samples ratio and the best interleaved pair are
            # upper bounds contaminated from above; their minimum is the
            # tightest noise-immune estimate of the true overhead.
            if min(off_wall) <= 0:
                return 0.0
            global_ratio = min(on_wall) / min(off_wall)
            pair_ratio = min(on / off for on, off in zip(on_wall, off_wall))
            return min(global_ratio, pair_ratio) - 1.0

        for _ in range(max(repeats, 1)):
            sample_pair()
        # Real overhead survives more samples; scheduler noise does not.
        # Keep sampling (up to 4x) while the min-ratio looks over limit.
        while overhead_now() >= OVERHEAD_LIMIT and len(off_wall) < 4 * max(repeats, 1):
            sample_pair()
        overhead = overhead_now()
        entry = {
            "key": cfg.key,
            "model_equal": off_model == on_model,
            "traffic_equal": off_traffic == on_traffic,
            "wall_off_min": min(off_wall),
            "wall_on_min": min(on_wall),
            "overhead": overhead,
            "samples": len(off_wall),
            "ok": off_model == on_model
            and off_traffic == on_traffic
            and overhead < OVERHEAD_LIMIT,
        }
        entries.append(entry)
    return {
        "limit": OVERHEAD_LIMIT,
        "entries": entries,
        "ok": all(e["ok"] for e in entries),
    }


def render_fault_guard(guard: dict) -> str:
    """Text summary of one :func:`fault_overhead_guard` result."""
    lines = [
        f"fault-layer overhead guard (limit {100 * guard['limit']:g}% wall, "
        "model/traffic must match exactly):"
    ]
    for e in guard["entries"]:
        lines.append(
            f"  [{'OK' if e['ok'] else 'FAIL':>4}] {e['key']}: "
            f"model {'==' if e['model_equal'] else '!='}, "
            f"traffic {'==' if e['traffic_equal'] else '!='}, "
            f"wall {e['wall_off_min']:.4g}s -> {e['wall_on_min']:.4g}s "
            f"({100 * e['overhead']:+.2f}%)"
        )
    return "\n".join(lines)


#: Relative wall-clock overhead the *enabled* telemetry plane may add.
TELEMETRY_OVERHEAD_LIMIT = 0.05


def telemetry_overhead_guard(repeats: int = 5) -> dict:
    """Prove the always-on telemetry plane is nearly free on the hot path.

    Runs every ``comm-fastpath`` configuration twice per repeat —
    telemetry on (the default) and inside
    :meth:`~repro.obs.telemetry.TelemetryControl.disabled` — interleaved
    so machine drift hits both arms equally, and checks per
    configuration:

    * the exchange fast path stays active in **both** arms
      (``fastpath_phases > 0``): telemetry must never trip
      ``_fastpath_ok``;
    * the modeled stage seconds and the traffic shape are exactly
      equal: counters observe the run, they do not change it;
    * the wall overhead stays under :data:`TELEMETRY_OVERHEAD_LIMIT`,
      estimated with the same noise-robust min-ratio lower bound as
      :func:`fault_overhead_guard` (escalating samples before
      concluding).
    """
    from repro.md.stages import Stage
    from repro.obs.telemetry import TELEMETRY

    entries = []
    for cfg in SUITES["telemetry-overhead"]:
        off_wall: list[float] = []
        on_wall: list[float] = []
        off_model = on_model = None
        off_traffic = on_traffic = None
        off_fastpath = on_fastpath = 0

        def sample_pair() -> None:
            nonlocal off_model, on_model, off_traffic, on_traffic
            nonlocal off_fastpath, on_fastpath
            with TELEMETRY.disabled():
                sim = build_simulation(cfg)
                sim.run(cfg.steps)
            off_wall.append(sim.timers.total_wall())
            off_model = {s.value: sim.timers.model[s] for s in Stage}
            off_traffic = _traffic_shape(sim)
            off_fastpath = sim.exchange.plan_stats()["fastpath_phases"]

            sim = build_simulation(cfg)
            sim.run(cfg.steps)
            on_wall.append(sim.timers.total_wall())
            on_model = {s.value: sim.timers.model[s] for s in Stage}
            on_traffic = _traffic_shape(sim)
            on_fastpath = sim.exchange.plan_stats()["fastpath_phases"]

        def overhead_now() -> float:
            if min(off_wall) <= 0:
                return 0.0
            global_ratio = min(on_wall) / min(off_wall)
            pair_ratio = min(on / off for on, off in zip(on_wall, off_wall))
            return min(global_ratio, pair_ratio) - 1.0

        for _ in range(max(repeats, 1)):
            sample_pair()
        while (
            overhead_now() >= TELEMETRY_OVERHEAD_LIMIT
            and len(off_wall) < 4 * max(repeats, 1)
        ):
            sample_pair()
        overhead = overhead_now()
        entry = {
            "key": cfg.key,
            "model_equal": off_model == on_model,
            "traffic_equal": off_traffic == on_traffic,
            "fastpath_off": off_fastpath,
            "fastpath_on": on_fastpath,
            "wall_off_min": min(off_wall),
            "wall_on_min": min(on_wall),
            "overhead": overhead,
            "samples": len(off_wall),
            "ok": off_model == on_model
            and off_traffic == on_traffic
            and off_fastpath > 0
            and on_fastpath > 0
            and overhead < TELEMETRY_OVERHEAD_LIMIT,
        }
        entries.append(entry)
    return {
        "limit": TELEMETRY_OVERHEAD_LIMIT,
        "entries": entries,
        "ok": all(e["ok"] for e in entries),
    }


def render_telemetry_guard(guard: dict) -> str:
    """Text summary of one :func:`telemetry_overhead_guard` result."""
    lines = [
        f"telemetry overhead guard (limit {100 * guard['limit']:g}% wall, "
        "fast path active in both arms, model/traffic must match exactly):"
    ]
    for e in guard["entries"]:
        lines.append(
            f"  [{'OK' if e['ok'] else 'FAIL':>4}] {e['key']}: "
            f"fastpath {e['fastpath_off']}/{e['fastpath_on']} phases (off/on), "
            f"model {'==' if e['model_equal'] else '!='}, "
            f"traffic {'==' if e['traffic_equal'] else '!='}, "
            f"wall {e['wall_off_min']:.4g}s -> {e['wall_on_min']:.4g}s "
            f"({100 * e['overhead']:+.2f}%)"
        )
    return "\n".join(lines)


def model_tables() -> dict:
    """The Table 1 / Table 3 / Fig. 13-headline model outputs."""
    from repro.figures import fig13, table1
    from repro.perfmodel import StageModel, variant_by_name

    t1 = table1.compute()
    model = StageModel()
    table3 = []
    for pot, w in (("lj", fig13.lj_workload()), ("eam", fig13.eam_workload())):
        for vname in ("ref", "opt"):
            r = model.step_times(w, 36864, variant_by_name(vname))
            table3.append(
                {
                    "workload": w.name,
                    "variant": vname,
                    "nodes": 36864,
                    "stages": dict(r.stages),
                    "total": r.total,
                }
            )

    def speedup(pot: str) -> float:
        ref = next(e for e in table3 if e["workload"].startswith(pot) and e["variant"] == "ref")
        opt = next(e for e in table3 if e["workload"].startswith(pot) and e["variant"] == "opt")
        return ref["total"] / opt["total"]

    return {
        "table1": {
            "msgs_3stage": t1.three_stage.total_messages,
            "msgs_p2p": t1.p2p.total_messages,
            "volume_ratio": t1.volume_ratio,
            "bytes_3stage": t1.three_stage.total_bytes,
            "bytes_p2p": t1.p2p.total_bytes,
        },
        "table3": table3,
        "fig13": {"lj_speedup_36864": speedup("lj"), "eam_speedup_36864": speedup("eam")},
    }


def run_configs(
    configs: Sequence[BenchConfig],
    suite: str,
    repeats: int = 3,
    label: str = "local",
    trace_dir: str | None = None,
) -> dict:
    """Run an explicit config list; returns the ``repro-bench/1`` doc.

    This is the suite-agnostic core ``run_suite`` and ``bench fleet``
    share: the ``suite`` string only labels the artifact (fleet runs use
    ``"fleet:<spec-name>"``), the gating machinery (``compare``,
    per-group tolerances) works on the document either way.
    """
    runs = []
    for cfg in configs:
        record, (tracer, cp) = run_config(cfg, repeats)
        runs.append(record)
        if trace_dir is not None:
            from repro.obs.critpath import critpath_counter_events
            from repro.obs.export import write_chrome_trace

            name = record["key"].replace("/", "-")
            write_chrome_trace(
                f"{trace_dir}/trace_{name}.json",
                tracer,
                extra_events=critpath_counter_events(cp),
            )
    from repro.obs.metrics import METRICS
    from repro.obs.telemetry import TELEMETRY
    from repro.obs.trace import TRACER

    doc = {
        "schema": SCHEMA,
        "label": label,
        "suite": suite,
        "meta": {
            "generator": "repro.obs.bench",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
            "unix_time": time.time(),
            # Wall numbers measured under different observability regimes
            # are not comparable; ``compare`` refuses mismatched artifacts.
            "observability": {
                "tracer": TRACER.enabled,
                "metrics": METRICS.enabled,
                "telemetry": TELEMETRY.enabled,
                "fastpath_phases": sum(
                    r.get("alloc", {}).get("fastpath_phases", 0) for r in runs
                ),
            },
        },
        "runs": runs,
        "model_tables": model_tables(),
    }
    if suite == "faults-off":
        doc["fault_guard"] = fault_overhead_guard(repeats)
    if suite == "telemetry-overhead":
        doc["telemetry_guard"] = telemetry_overhead_guard(repeats)
    validate_bench_doc(doc)
    return doc


def run_suite(
    suite: str = "smoke",
    repeats: int = 3,
    label: str = "local",
    trace_dir: str | None = None,
) -> dict:
    """Run a declared suite; returns the ``repro-bench/1`` document."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {sorted(SUITES)}")
    return run_configs(SUITES[suite], suite, repeats, label, trace_dir)


def fleet_configs(spec_path: str) -> tuple[str, list[BenchConfig]]:
    """(spec name, BenchConfigs) of a spec's ``bench``-role scenarios.

    Imported lazily so the scenarios package never cycles with bench.
    """
    from repro.scenarios.spec import expand_spec, load_json

    spec = load_json(spec_path)
    scenarios = [s for s in expand_spec(spec) if s["role"] == "bench"]
    if not scenarios:
        raise ValueError(f"{spec_path}: spec has no bench-role scenarios")
    configs = [
        BenchConfig(
            potential=s["params"]["potential"],
            pattern=s["params"]["pattern"],
            grid=tuple(s["params"]["grid"]),
            rdma=bool(s["params"]["rdma"]),
            cells=tuple(s["params"]["cells"]),
            steps=int(s["params"]["steps"]),
        )
        for s in scenarios
    ]
    return spec["name"], configs


# -- schema ---------------------------------------------------------------
def _require(cond: bool, path: str, why: str) -> None:
    if not cond:
        raise ValueError(f"bench document invalid at {path}: {why}")


def validate_bench_doc(doc: dict) -> int:
    """Validate a ``repro-bench/1`` document; returns the run count.

    Raises :class:`ValueError` naming the first offending path — the
    same contract as ``validate_chrome_trace``.
    """
    _require(isinstance(doc, dict), "$", "not an object")
    _require(doc.get("schema") == SCHEMA, "$.schema", f"expected {SCHEMA!r}, got {doc.get('schema')!r}")
    _require(isinstance(doc.get("label"), str), "$.label", "missing string label")
    _require(isinstance(doc.get("meta"), dict), "$.meta", "missing meta object")
    runs = doc.get("runs")
    _require(isinstance(runs, list) and runs, "$.runs", "missing non-empty runs array")
    seen = set()
    for i, run in enumerate(runs):
        ctx = f"$.runs[{i}]"
        _require(isinstance(run, dict), ctx, "not an object")
        key = run.get("key")
        _require(isinstance(key, str) and bool(key), f"{ctx}.key", "missing key")
        _require(key not in seen, f"{ctx}.key", f"duplicate key {key!r}")
        seen.add(key)
        _require(isinstance(run.get("config"), dict), f"{ctx}.config", "missing config")
        wall = run.get("wall")
        _require(isinstance(wall, dict), f"{ctx}.wall", "missing wall stats")
        for part in ("stages", "total"):
            _require(part in wall, f"{ctx}.wall.{part}", "missing")
        for s in STAGES:
            st = wall["stages"].get(s)
            _require(isinstance(st, dict), f"{ctx}.wall.stages.{s}", "missing stage stats")
            for k in ("min", "max", "mean", "median", "stddev", "repeats"):
                v = st.get(k)
                _require(
                    isinstance(v, (int, float)) and not math.isnan(v) and v >= 0,
                    f"{ctx}.wall.stages.{s}.{k}",
                    f"invalid {v!r}",
                )
        model = run.get("model")
        _require(isinstance(model, dict) and isinstance(model.get("stages"), dict),
                 f"{ctx}.model", "missing model stages")
        for s in STAGES:
            v = model["stages"].get(s)
            _require(isinstance(v, (int, float)) and v >= 0, f"{ctx}.model.stages.{s}", f"invalid {v!r}")
        traffic = run.get("traffic")
        _require(isinstance(traffic, dict) and traffic, f"{ctx}.traffic", "missing traffic")
        for ph, t in traffic.items():
            _require(
                isinstance(t, dict) and isinstance(t.get("count"), int) and isinstance(t.get("bytes"), int),
                f"{ctx}.traffic.{ph}", f"invalid {t!r}",
            )
        cp = run.get("critpath")
        _require(isinstance(cp, dict), f"{ctx}.critpath", "missing critpath")
        _require(isinstance(cp.get("completion"), (int, float)) and cp["completion"] >= 0,
                 f"{ctx}.critpath.completion", f"invalid {cp.get('completion')!r}")
        _require(isinstance(cp.get("attribution"), dict) and cp["attribution"],
                 f"{ctx}.critpath.attribution", "missing attribution")
        total = sum(cp["attribution"].values())
        _require(
            abs(total - cp["completion"]) <= 1e-9 * max(cp["completion"], 1e-12),
            f"{ctx}.critpath.attribution",
            f"sums to {total!r}, not completion {cp['completion']!r}",
        )
        # Per-rank profile: optional (pre-observatory artifacts lack it),
        # but when present each rank's attribution must partition its
        # completion — the same invariant the critpath record obeys.
        rp = run.get("rankprof")
        if rp is not None:
            _require(isinstance(rp, dict), f"{ctx}.rankprof", "not an object")
            rows = rp.get("ranks")
            _require(isinstance(rows, list) and rows, f"{ctx}.rankprof.ranks",
                     "missing per-rank rows")
            for j, row in enumerate(rows):
                rctx = f"{ctx}.rankprof.ranks[{j}]"
                _require(
                    isinstance(row, dict) and isinstance(row.get("rank"), int),
                    rctx, "missing rank",
                )
                comp = row.get("completion")
                attr = row.get("attribution")
                _require(isinstance(comp, (int, float)) and comp >= 0,
                         f"{rctx}.completion", f"invalid {comp!r}")
                _require(isinstance(attr, dict) and attr,
                         f"{rctx}.attribution", "missing attribution")
                rtotal = sum(attr.values())
                _require(
                    abs(rtotal - comp) <= 1e-9 * max(comp, 1e-12),
                    f"{rctx}.attribution",
                    f"sums to {rtotal!r}, not completion {comp!r}",
                )
            imb = rp.get("imbalance")
            _require(
                isinstance(imb, dict) and "max_mean" in imb and "p99_p50" in imb,
                f"{ctx}.rankprof.imbalance", "missing imbalance ratios",
            )
    tables = doc.get("model_tables")
    _require(isinstance(tables, dict), "$.model_tables", "missing")
    for name in ("table1", "table3", "fig13"):
        _require(name in tables, f"$.model_tables.{name}", "missing")
    for guard_key in ("fault_guard", "telemetry_guard"):
        guard = doc.get(guard_key)
        if guard is not None:
            _require(isinstance(guard, dict), f"$.{guard_key}", "not an object")
            _require(
                isinstance(guard.get("ok"), bool), f"$.{guard_key}.ok", "missing bool"
            )
            _require(
                isinstance(guard.get("entries"), list) and guard["entries"],
                f"$.{guard_key}.entries", "missing non-empty entries",
            )
    obs = doc["meta"].get("observability")
    if obs is not None:
        _require(isinstance(obs, dict), "$.meta.observability", "not an object")
        for k in ("tracer", "metrics", "telemetry"):
            _require(
                isinstance(obs.get(k), bool),
                f"$.meta.observability.{k}", f"invalid {obs.get(k)!r}",
            )
    return len(runs)


# -- compare --------------------------------------------------------------
@dataclass(frozen=True)
class CompareEntry:
    """One compared metric."""

    path: str
    old: float
    new: float
    group: str
    mode: str  # "lower_better" | "higher_better" | "match" | "info"
    tol: float
    status: str  # "ok" | "improved" | "warn" | "regressed"

    @property
    def rel(self) -> float:
        if self.old == 0:
            return 0.0 if self.new == 0 else math.inf
        return (self.new - self.old) / self.old


@dataclass
class CompareReport:
    """Outcome of diffing two bench artifacts."""

    old_label: str
    new_label: str
    entries: list[CompareEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[CompareEntry]:
        return [e for e in self.entries if e.status == "regressed"]

    @property
    def warnings(self) -> list[CompareEntry]:
        return [e for e in self.entries if e.status == "warn"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, verbose: bool = False) -> str:
        """Text summary: deltas worst-first, per-group summary, verdict.

        Deviating metrics print sorted by severity (regressed before
        warn before improved, larger relative delta first); warn-only
        groups — ``mode="info"`` entries that can never gate — are
        annotated so a red-looking line is readable as non-blocking.
        ``verbose`` appends the in-tolerance metrics too.
        """
        lines = [
            f"bench compare: {self.old_label} -> {self.new_label} "
            f"({len(self.entries)} metrics)"
        ]
        severity = {"regressed": 0, "warn": 1, "improved": 2, "ok": 3}

        def sort_key(e: CompareEntry):
            rel = abs(e.rel) if math.isfinite(e.rel) else math.inf
            return (severity[e.status], -rel, e.path)

        shown = [e for e in self.entries if e.status != "ok"]
        if verbose:
            shown = list(self.entries)
        for e in sorted(shown, key=sort_key):
            rel = "inf" if math.isinf(e.rel) else f"{100 * e.rel:+.1f}%"
            note = " (warn-only)" if e.mode == "info" else ""
            lines.append(
                f"  [{e.status.upper():>9}] {e.path}: {e.old:.6g} -> {e.new:.6g} "
                f"({rel}, tol {100 * e.tol:g}% [{e.group}]){note}"
            )
        # Per-group roll-up, worst group first.
        groups: dict[str, list[CompareEntry]] = {}
        for e in self.entries:
            groups.setdefault(e.group, []).append(e)

        def group_key(item):
            name, entries = item
            worst = min(severity[e.status] for e in entries)
            size = max(
                (abs(e.rel) for e in entries if e.status != "ok"
                 and math.isfinite(e.rel)),
                default=0.0,
            )
            inf_dev = any(
                e.status != "ok" and math.isinf(e.rel) for e in entries
            )
            return (worst, not inf_dev, -size, name)

        lines.append("per-group (worst first):")
        for name, entries in sorted(groups.items(), key=group_key):
            n_reg = sum(1 for e in entries if e.status == "regressed")
            n_warn = sum(1 for e in entries if e.status == "warn")
            n_imp = sum(1 for e in entries if e.status == "improved")
            gated = any(e.mode != "info" for e in entries)
            tag = "gated" if gated else "warn-only"
            lines.append(
                f"  {name:<14} [{tag}]: {len(entries)} metric(s), "
                f"{n_reg} regressed, {n_warn} warned, {n_imp} improved"
            )
        if self.regressions:
            verdict = (
                f"verdict: FAIL — {len(self.regressions)} regression(s) in "
                f"gated groups "
                f"({', '.join(sorted({e.group for e in self.regressions}))})"
            )
        else:
            tail = (
                f" ({len(self.warnings)} warn-only deviation(s))"
                if self.warnings else ""
            )
            verdict = f"verdict: OK — no regressions beyond tolerance{tail}"
        lines.append(verdict)
        return "\n".join(lines)


def _classify(old: float, new: float, mode: str, tol: float) -> str:
    if old == new:
        return "ok"
    rel = (new - old) / old if old != 0 else math.inf
    if mode == "match":
        return "regressed" if abs(rel) > tol else "ok"
    if mode == "info":
        return "warn" if abs(rel) > tol else "ok"
    if mode == "higher_better":
        rel = -rel
    # now: positive rel = slower/worse
    if rel > tol:
        return "regressed"
    if rel < -tol:
        return "improved"
    return "ok"


def compare(
    old: dict,
    new: dict,
    tolerances: dict | None = None,
    gate_wall: bool = False,
) -> CompareReport:
    """Diff two artifacts; regressions beyond tolerance fail the gate.

    Refuses (``ValueError``) when both artifacts declare their
    observability regime and the regimes differ — wall numbers measured
    with telemetry/tracing on are not comparable against a baseline
    measured with them off.  Artifacts predating the observability
    metadata compare as before.
    """
    validate_bench_doc(old)
    validate_bench_doc(new)
    old_obs = old.get("meta", {}).get("observability")
    new_obs = new.get("meta", {}).get("observability")
    if old_obs is not None and new_obs is not None:
        flags = ("tracer", "metrics", "telemetry")
        mismatch = [k for k in flags if old_obs.get(k) != new_obs.get(k)]
        if mismatch:
            detail = ", ".join(
                f"{k}: {old_obs.get(k)} vs {new_obs.get(k)}" for k in mismatch
            )
            raise ValueError(
                f"refusing to compare artifacts with different observability "
                f"regimes ({detail}); re-run the baseline under the same flags"
            )
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    report = CompareReport(old.get("label", "?"), new.get("label", "?"))

    def add(path, o, n, group, mode):
        t = tol[group]
        report.entries.append(
            CompareEntry(path, float(o), float(n), group, mode,
                         t, _classify(float(o), float(n), mode, t))
        )

    new_runs = {r["key"]: r for r in new["runs"]}
    for run in old["runs"]:
        key = run["key"]
        other = new_runs.get(key)
        if other is None:
            report.entries.append(
                CompareEntry(f"runs[{key}]", 1.0, 0.0, "coverage", "match", 0.0, "regressed")
            )
            continue
        for s in STAGES:
            o = run["model"]["stages"][s]
            if o > 0 or other["model"]["stages"][s] > 0:
                add(f"runs[{key}].model.{s}", o, other["model"]["stages"][s],
                    "model_stage", "lower_better")
        add(f"runs[{key}].model.total", run["model"]["total"], other["model"]["total"],
            "model_total", "lower_better")
        for ph in run["traffic"]:
            if ph not in other["traffic"]:
                report.entries.append(
                    CompareEntry(f"runs[{key}].traffic.{ph}", 1.0, 0.0,
                                 "traffic_count", "match", 0.0, "regressed")
                )
                continue
            add(f"runs[{key}].traffic.{ph}.count", run["traffic"][ph]["count"],
                other["traffic"][ph]["count"], "traffic_count", "match")
            add(f"runs[{key}].traffic.{ph}.bytes", run["traffic"][ph]["bytes"],
                other["traffic"][ph]["bytes"], "traffic_bytes", "match")
        add(f"runs[{key}].critpath.completion", run["critpath"]["completion"],
            other["critpath"]["completion"], "critpath", "lower_better")
        for cat, secs in run["critpath"]["attribution"].items():
            add(f"runs[{key}].critpath.{cat}", secs,
                other["critpath"]["attribution"].get(cat, 0.0), "critpath", "info")
        wall_mode = "lower_better" if gate_wall else "info"
        add(f"runs[{key}].wall.total.median", run["wall"]["total"]["median"],
            other["wall"]["total"]["median"], "wall", wall_mode)
        # Per-rank imbalance (warn-only): only when both sides carry the
        # profile, so pre-observatory baselines keep comparing cleanly.
        o_imb = run.get("rankprof", {}).get("imbalance")
        n_imb = other.get("rankprof", {}).get("imbalance")
        if o_imb and n_imb:
            for ratio in ("max_mean", "p99_p50"):
                add(f"runs[{key}].imbalance.{ratio}", o_imb[ratio],
                    n_imb[ratio], "imbalance", "info")

    t1o, t1n = old["model_tables"]["table1"], new["model_tables"]["table1"]
    for k in ("msgs_3stage", "msgs_p2p", "volume_ratio", "bytes_3stage", "bytes_p2p"):
        add(f"table1.{k}", t1o[k], t1n[k], "table1", "match")
    t3n = {(e["workload"], e["variant"]): e for e in new["model_tables"]["table3"]}
    for e in old["model_tables"]["table3"]:
        other = t3n.get((e["workload"], e["variant"]))
        if other is not None:
            add(f"table3[{e['workload']}/{e['variant']}].total", e["total"],
                other["total"], "table3", "lower_better")
    f13o, f13n = old["model_tables"]["fig13"], new["model_tables"]["fig13"]
    for k in ("lj_speedup_36864", "eam_speedup_36864"):
        add(f"fig13.{k}", f13o[k], f13n[k], "fig13", "higher_better")
    return report


# -- speedup gate ----------------------------------------------------------
def speedup_gate(old: dict, new: dict, min_ratio: float = 1.5) -> dict:
    """Gate the comm-fastpath wall speedup of ``new`` over ``old``.

    For every ``comm-fastpath`` configuration present in the baseline:

    * the wall-total median must be at least ``min_ratio`` times faster;
    * the modeled stage seconds and the traffic shape must be *exactly*
      equal — the fast path may only change how bytes move, never what
      is sent or what the machine model prices;
    * the candidate's ``alloc`` record must show a working plan cache:
      ``fastpath_phases > 0`` and ``pool_grow_events == 0`` (the pooled
      buffers were sized right once and never reallocated).
    """
    validate_bench_doc(old)
    validate_bench_doc(new)
    keys = [cfg.key for cfg in SUITES["comm-fastpath"]]
    old_runs = {r["key"]: r for r in old["runs"]}
    new_runs = {r["key"]: r for r in new["runs"]}
    entries = []
    for key in keys:
        o, n = old_runs.get(key), new_runs.get(key)
        if o is None or n is None:
            entries.append(
                {"key": key, "ok": False,
                 "why": "missing from " + ("baseline" if o is None else "candidate")}
            )
            continue
        o_med = o["wall"]["total"]["median"]
        n_med = n["wall"]["total"]["median"]
        ratio = o_med / n_med if n_med > 0 else math.inf
        model_equal = o["model"] == n["model"]
        traffic_equal = o["traffic"] == n["traffic"]
        alloc = n.get("alloc", {})
        plan_ok = (
            alloc.get("fastpath_phases", 0) > 0
            and alloc.get("pool_grow_events", 1) == 0
        )
        why = []
        if ratio < min_ratio:
            why.append(f"speedup {ratio:.2f}x < {min_ratio:g}x")
        if not model_equal:
            why.append("modeled stage seconds differ")
        if not traffic_equal:
            why.append("traffic shape differs")
        if not plan_ok:
            why.append(f"alloc gate failed ({alloc or 'no alloc record'})")
        entries.append(
            {
                "key": key,
                "wall_old": o_med,
                "wall_new": n_med,
                "speedup": ratio,
                "model_equal": model_equal,
                "traffic_equal": traffic_equal,
                "alloc": alloc,
                "ok": not why,
                "why": "; ".join(why),
            }
        )
    return {
        "min_ratio": min_ratio,
        "entries": entries,
        "ok": bool(entries) and all(e["ok"] for e in entries),
    }


def render_speedup(gate: dict) -> str:
    """Text summary of one :func:`speedup_gate` result."""
    lines = [
        f"comm-fastpath speedup gate (wall >= {gate['min_ratio']:g}x, "
        "model/traffic exactly equal, pool never regrown):"
    ]
    for e in gate["entries"]:
        if "speedup" not in e:
            lines.append(f"  [FAIL] {e['key']}: {e['why']}")
            continue
        alloc = e["alloc"]
        detail = (
            f"wall {e['wall_old']:.4g}s -> {e['wall_new']:.4g}s "
            f"({e['speedup']:.2f}x), "
            f"model {'==' if e['model_equal'] else '!='}, "
            f"traffic {'==' if e['traffic_equal'] else '!='}, "
            f"plans {alloc.get('plan_builds', '?')} built / "
            f"{alloc.get('fastpath_phases', '?')} fast phases / "
            f"{alloc.get('pool_grow_events', '?')} regrows"
        )
        lines.append(f"  [{'OK' if e['ok'] else 'FAIL':>4}] {e['key']}: {detail}")
        if not e["ok"]:
            lines.append(f"         -> {e['why']}")
    return "\n".join(lines)


# -- report ---------------------------------------------------------------
def render_report(doc: dict) -> str:
    """Human-readable rendering of one bench artifact."""
    validate_bench_doc(doc)
    lines = [
        f"bench artifact {doc['label']!r} (suite {doc.get('suite', '?')}, "
        f"{len(doc['runs'])} configs, schema {doc['schema']})",
    ]
    for run in doc["runs"]:
        cp = run["critpath"]
        w = run["wall"]["total"]
        lines.append("")
        lines.append(f"== {run['key']} ({run['config']['atoms']} atoms, "
                     f"{run['config']['steps']} steps) ==")
        lines.append(
            f"  wall total: median {w['median']:.4g}s "
            f"(min {w['min']:.4g}, stddev {w['stddev']:.2g}, n={w['repeats']})"
        )
        lines.append(f"  model Comm: {run['model']['stages']['Comm']:.4g}s")
        traffic = ", ".join(
            f"{ph}={t['count']}msg/{t['bytes']}B" for ph, t in sorted(run["traffic"].items())
        )
        lines.append(f"  traffic: {traffic}")
        ranked = sorted(cp["attribution"].items(), key=lambda kv: -kv[1])
        attr = ", ".join(
            f"{cat} {100 * secs / cp['completion']:.0f}%" for cat, secs in ranked
        )
        lines.append(
            f"  critical path ({cp['completion'] * 1e6:.2f}us over "
            f"{cp['messages']} msgs): {attr} -> bottleneck: {cp['top']}"
        )
    t1 = doc["model_tables"]["table1"]
    f13 = doc["model_tables"]["fig13"]
    lines.append("")
    lines.append(
        f"model tables: Table1 {t1['msgs_p2p']} vs {t1['msgs_3stage']} msgs "
        f"(volume ratio {t1['volume_ratio']:.3f}); Fig13 speedups "
        f"LJ {f13['lj_speedup_36864']:.2f}x / EAM {f13['eam_speedup_36864']:.2f}x"
    )
    return "\n".join(lines)


def write_report_csv(path: str, doc: dict) -> None:
    """CSV: one row per (config, stage) with wall stats + model seconds."""
    import csv

    validate_bench_doc(doc)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["key", "stage", "wall_min", "wall_median", "wall_mean",
             "wall_stddev", "model_seconds"]
        )
        for run in doc["runs"]:
            for s in STAGES:
                st = run["wall"]["stages"][s]
                writer.writerow(
                    [run["key"], s, repr(st["min"]), repr(st["median"]),
                     repr(st["mean"]), repr(st["stddev"]),
                     repr(run["model"]["stages"][s])]
                )


# -- CLI ------------------------------------------------------------------
def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``run|compare|report`` subcommands."""
    p = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Continuous benchmark harness with regression gating.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a suite and write a BENCH json artifact")
    run.add_argument("--out", required=True, help="output artifact path (BENCH_PR<k>.json)")
    run.add_argument("--suite", choices=sorted(SUITES), default="smoke")
    run.add_argument("--repeats", type=int, default=3)
    run.add_argument("--label", default=None, help="artifact label (default: out stem)")
    run.add_argument(
        "--trace-dir", default=None,
        help="also write one Perfetto trace (with critical-path counter "
        "tracks) per configuration into this directory",
    )

    flt = sub.add_parser(
        "fleet",
        help="run the bench-role scenarios of a scenario spec "
        "(repro-scenario-spec/1) and optionally gate vs a baseline",
    )
    flt.add_argument("spec", help="path to a repro-scenario-spec/1 JSON file")
    flt.add_argument("--out", required=True, help="output artifact path")
    flt.add_argument("--repeats", type=int, default=3)
    flt.add_argument("--label", default=None, help="artifact label (default: out stem)")
    flt.add_argument(
        "--baseline", default=None,
        help="also compare against this BENCH artifact (reuses the "
        "per-group gating; exit 1 on regression)",
    )
    flt.add_argument("--warn-only", action="store_true",
                     help="with --baseline: report regressions but exit 0")
    flt.add_argument("--trace-dir", default=None,
                     help="write one Perfetto trace per configuration")

    cmp_ = sub.add_parser("compare", help="diff two artifacts; exit 1 on regression")
    cmp_.add_argument("baseline")
    cmp_.add_argument("candidate")
    cmp_.add_argument("--warn-only", action="store_true",
                      help="report regressions but exit 0 (first-PR mode)")
    cmp_.add_argument("--gate-wall", action="store_true",
                      help="gate wall medians too (same-machine comparisons)")
    cmp_.add_argument("--verbose", action="store_true", help="print every metric")
    cmp_.add_argument(
        "--tol", action="append", default=[], metavar="GROUP=REL",
        help=f"override a tolerance group, e.g. --tol model_stage=0.1 "
        f"(groups: {', '.join(sorted(DEFAULT_TOLERANCES))})",
    )

    rep = sub.add_parser("report", help="render one artifact as text (and CSV)")
    rep.add_argument("artifact")
    rep.add_argument("--csv", default=None, help="also write a per-stage CSV")

    spd = sub.add_parser(
        "speedup",
        help="gate the comm-fastpath wall speedup of candidate over baseline",
    )
    spd.add_argument("baseline")
    spd.add_argument("candidate")
    spd.add_argument("--min", type=float, default=1.5, dest="min_ratio",
                     help="required wall-median speedup factor (default 1.5)")

    scl = sub.add_parser(
        "scaling",
        help="run one config across a rank-grid ladder and write a "
        "repro-scaling/1 artifact (see repro.obs.scaling)",
    )
    scl.add_argument("--out", required=True, help="output artifact path")
    scl.add_argument("--potential", choices=("lj", "eam"), default="lj")
    scl.add_argument(
        "--pattern", choices=("3stage", "p2p", "parallel-p2p"),
        default="parallel-p2p",
    )
    scl.add_argument("--rdma", action="store_true")
    scl.add_argument("--cells", type=int, nargs=3, default=(4, 4, 4),
                     metavar=("CX", "CY", "CZ"))
    scl.add_argument("--steps", type=int, default=10)
    scl.add_argument("--repeats", type=int, default=2)
    scl.add_argument(
        "--ladder", default="1x2x2,2x2x2",
        help="comma-separated rank grids, ordered by rank count "
        "(default 1x2x2,2x2x2)",
    )
    scl.add_argument("--label", default=None, help="artifact label (default: out stem)")
    return p


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code (1 = regression)."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        label = args.label
        if label is None:
            stem = args.out.rsplit("/", 1)[-1]
            label = stem[:-5] if stem.endswith(".json") else stem
        doc = run_suite(args.suite, args.repeats, label, args.trace_dir)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"# bench: {len(doc['runs'])} configs -> {args.out} (schema {SCHEMA})")
        print(render_report(doc))
        guard = doc.get("fault_guard")
        if guard is not None:
            print()
            print(render_fault_guard(guard))
            if not guard["ok"]:
                print("FAIL: disabled fault layer is not free")
                return 1
        guard = doc.get("telemetry_guard")
        if guard is not None:
            print()
            print(render_telemetry_guard(guard))
            if not guard["ok"]:
                print("FAIL: telemetry plane is not cheap enough")
                return 1
        return 0
    if args.command == "fleet":
        label = args.label
        if label is None:
            stem = args.out.rsplit("/", 1)[-1]
            label = stem[:-5] if stem.endswith(".json") else stem
        try:
            spec_name, configs = fleet_configs(args.spec)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
        doc = run_configs(
            configs, f"fleet:{spec_name}", args.repeats, label, args.trace_dir
        )
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"# bench fleet: {len(doc['runs'])} configs from {spec_name} "
              f"-> {args.out} (schema {SCHEMA})")
        print(render_report(doc))
        if args.baseline is None:
            return 0
        try:
            report = compare(_load(args.baseline), doc)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        print(report.render())
        if not report.ok:
            if args.warn_only:
                print("WARN: regressions found (ignored: --warn-only)")
                return 0
            print("FAIL: perf regression beyond tolerance")
            return 1
        print("OK: no regressions beyond tolerance")
        return 0
    if args.command == "compare":
        overrides = {}
        for spec in args.tol:
            group, _, value = spec.partition("=")
            if group not in DEFAULT_TOLERANCES or not value:
                print(f"error: bad --tol {spec!r}")
                return 2
            overrides[group] = float(value)
        try:
            report = compare(
                _load(args.baseline), _load(args.candidate),
                tolerances=overrides, gate_wall=args.gate_wall,
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
        print(report.render(verbose=args.verbose))
        if not report.ok:
            if args.warn_only:
                print("WARN: regressions found (ignored: --warn-only)")
                return 0
            print("FAIL: perf regression beyond tolerance")
            return 1
        print("OK: no regressions beyond tolerance")
        return 0
    if args.command == "report":
        doc = _load(args.artifact)
        print(render_report(doc))
        if args.csv:
            write_report_csv(args.csv, doc)
            print(f"# csv -> {args.csv}")
        return 0
    if args.command == "speedup":
        gate = speedup_gate(_load(args.baseline), _load(args.candidate), args.min_ratio)
        print(render_speedup(gate))
        if not gate["ok"]:
            print("FAIL: comm-fastpath speedup gate not met")
            return 1
        print("OK: comm-fastpath speedup gate met")
        return 0
    if args.command == "scaling":
        from repro.obs.scaling import (
            ScalingSpec,
            capture_scaling,
            parse_ladder,
            render_scaling,
            validate_scaling_doc,
            write_scaling,
        )

        label = args.label
        if label is None:
            stem = args.out.rsplit("/", 1)[-1]
            label = stem[:-5] if stem.endswith(".json") else stem
        try:
            ladder = parse_ladder(args.ladder)
            spec = ScalingSpec(args.potential, args.pattern, args.rdma,
                               tuple(args.cells), args.steps)
            doc = capture_scaling(spec, ladder, args.repeats, label)
            validate_scaling_doc(doc)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        write_scaling(args.out, doc)
        print(f"# scaling: {len(doc['points'])} rungs -> {args.out} "
              f"(schema {doc['schema']})")
        print(render_scaling(doc))
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
