"""Step-granular flight recorder: the last N steps, always in memory.

Production failures rarely announce themselves while a tracer happens to
be attached.  The flight recorder is the always-on black box: a bounded
ring of per-step stage summaries (wall/model seconds per stage, fastpath
phase counts, traffic deltas) plus a second ring of recent notable
events (fault injections, retries, degradation-ladder transitions,
retry exhaustion).  Both rings are O(1) per step and bounded, so they
can stay on for a run of any length.

On a terminal failure — ``RetryExhaustedError`` escaping the retry
layer, a degradation-ladder transition, or a selfcheck failure — the
ring is dumped as a versioned ``repro-flightrec/1`` JSON document, the
post-mortem artifact CI uploads and ``python -m repro telemetry dump``
produces on demand.  :func:`validate_flight_doc` is the schema contract
(same style as ``validate_bench_doc``), and :meth:`FlightRecorder.from_doc`
rebuilds a recorder from a dump so replay round-trips exactly.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

#: Versioned schema identifier checked by :func:`validate_flight_doc`.
SCHEMA = "repro-flightrec/1"

#: Default ring depths (steps retained, events retained).
DEFAULT_MAX_STEPS = 64
DEFAULT_MAX_EVENTS = 256


class FlightRecorder:
    """Bounded rings of per-step frames and notable events."""

    def __init__(
        self,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_steps < 1 or max_events < 1:
            raise ValueError("flight recorder rings must hold at least one entry")
        self.max_steps = max_steps
        self.max_events = max_events
        self.frames: deque[dict] = deque(maxlen=max_steps)
        self.events: deque[dict] = deque(maxlen=max_events)
        #: total frames/events ever recorded (ring drops do not decrement)
        self.frames_seen = 0
        self.events_seen = 0
        self._event_seq = 0
        self._current_step = 0

    # -- ingest -------------------------------------------------------------
    def record_frame(self, frame: dict) -> None:
        """Append one per-step summary (must carry a ``step`` key)."""
        if "step" not in frame:
            raise ValueError("flight frame must carry a 'step' key")
        self._current_step = int(frame["step"])
        self.frames.append(frame)
        self.frames_seen += 1

    def record_event(self, kind: str, **fields: Any) -> None:
        """Append one notable event, stamped with a sequence number and
        the most recent completed step."""
        if {"kind", "seq", "step"} & fields.keys():
            raise ValueError("event fields may not shadow 'kind', 'seq', or 'step'")
        self.events.append(
            {"seq": self._event_seq, "step": self._current_step,
             "kind": kind, **fields}
        )
        self._event_seq += 1
        self.events_seen += 1

    def clear(self) -> None:
        """Drop both rings (counters and sequence keep running)."""
        self.frames.clear()
        self.events.clear()

    # -- dump / load ----------------------------------------------------------
    def dump(self, reason: str, meta: dict | None = None) -> dict:
        """The ring contents as a versioned ``repro-flightrec/1`` document."""
        return {
            "schema": SCHEMA,
            "reason": reason,
            "meta": dict(meta or {}),
            "limits": {"max_steps": self.max_steps, "max_events": self.max_events},
            "totals": {
                "frames_seen": self.frames_seen,
                "events_seen": self.events_seen,
            },
            "frames": list(self.frames),
            "events": list(self.events),
        }

    def write(self, path: str, reason: str, meta: dict | None = None) -> dict:
        """Dump to ``path`` as JSON; returns the document written."""
        doc = self.dump(reason, meta)
        validate_flight_doc(doc)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> FlightRecorder:
        """Rebuild a recorder from a dump (``rec.dump(r) == from_doc(...)
        .dump(r)`` — the replay round-trip the tests pin)."""
        validate_flight_doc(doc)
        rec = cls(
            max_steps=doc["limits"]["max_steps"],
            max_events=doc["limits"]["max_events"],
        )
        for frame in doc["frames"]:
            rec.frames.append(dict(frame))
        for event in doc["events"]:
            rec.events.append(dict(event))
        rec.frames_seen = doc["totals"]["frames_seen"]
        rec.events_seen = doc["totals"]["events_seen"]
        if doc["events"]:
            rec._event_seq = max(e["seq"] for e in doc["events"]) + 1
        if doc["frames"]:
            rec._current_step = int(doc["frames"][-1]["step"])
        return rec


def load_flight_doc(path: str) -> dict:
    """Load and validate one flight-recorder dump."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_flight_doc(doc)
    return doc


# -- schema ---------------------------------------------------------------
def _require(cond: bool, path: str, why: str) -> None:
    if not cond:
        raise ValueError(f"flight document invalid at {path}: {why}")


def validate_flight_doc(doc: dict) -> int:
    """Validate a ``repro-flightrec/1`` document; returns the frame count.

    Raises :class:`ValueError` naming the first offending path — the
    same contract as ``validate_bench_doc`` / ``validate_chrome_trace``.
    """
    _require(isinstance(doc, dict), "$", "not an object")
    _require(
        doc.get("schema") == SCHEMA,
        "$.schema", f"expected {SCHEMA!r}, got {doc.get('schema')!r}",
    )
    _require(isinstance(doc.get("reason"), str) and bool(doc["reason"]),
             "$.reason", "missing non-empty reason")
    _require(isinstance(doc.get("meta"), dict), "$.meta", "missing meta object")
    limits = doc.get("limits")
    _require(isinstance(limits, dict), "$.limits", "missing limits")
    for k in ("max_steps", "max_events"):
        _require(
            isinstance(limits.get(k), int) and limits[k] >= 1,
            f"$.limits.{k}", f"invalid {limits.get(k)!r}",
        )
    totals = doc.get("totals")
    _require(isinstance(totals, dict), "$.totals", "missing totals")
    frames = doc.get("frames")
    _require(isinstance(frames, list), "$.frames", "missing frames array")
    _require(len(frames) <= limits["max_steps"], "$.frames",
             f"{len(frames)} frames exceed max_steps {limits['max_steps']}")
    last_step = None
    for i, frame in enumerate(frames):
        ctx = f"$.frames[{i}]"
        _require(isinstance(frame, dict), ctx, "not an object")
        step = frame.get("step")
        _require(isinstance(step, int) and step >= 0, f"{ctx}.step",
                 f"invalid {step!r}")
        _require(last_step is None or step > last_step, f"{ctx}.step",
                 f"steps not strictly increasing ({last_step} -> {step})")
        last_step = step
        for part in ("wall", "model"):
            table = frame.get(part)
            _require(isinstance(table, dict), f"{ctx}.{part}", "missing stage table")
            for stage, v in table.items():
                _require(
                    isinstance(v, (int, float)) and v >= 0,
                    f"{ctx}.{part}.{stage}", f"invalid {v!r}",
                )
    events = doc.get("events")
    _require(isinstance(events, list), "$.events", "missing events array")
    _require(len(events) <= limits["max_events"], "$.events",
             f"{len(events)} events exceed max_events {limits['max_events']}")
    last_seq = None
    for i, event in enumerate(events):
        ctx = f"$.events[{i}]"
        _require(isinstance(event, dict), ctx, "not an object")
        _require(isinstance(event.get("kind"), str) and bool(event["kind"]),
                 f"{ctx}.kind", "missing kind")
        seq = event.get("seq")
        _require(isinstance(seq, int) and seq >= 0, f"{ctx}.seq", f"invalid {seq!r}")
        _require(last_seq is None or seq > last_seq, f"{ctx}.seq",
                 f"events out of order ({last_seq} -> {seq})")
        last_seq = seq
    return len(frames)
