"""Chrome trace-event export (viewable in Perfetto / chrome://tracing).

Maps the tracer's two timelines onto two trace "processes":

* pid 1 — the wall clock of this Python process (steps, stages,
  exchange phases, message instants),
* pid 2 — the simulated Fugaku machine (injection / TNI-engine / wire
  segments, thread-pool regions, modeled stage seconds).

Tracks (``"rank0/thr2"``, ``"tni3"``, ``"stages"``, ...) become named
threads.  Spans are emitted as complete events (``"ph": "X"``), instants
as ``"ph": "i"``, with timestamps in microseconds per the trace-event
format.  :func:`validate_chrome_trace` checks the schema the CI smoke
run relies on — it is intentionally strict about the fields viewers
actually parse.
"""

from __future__ import annotations

import json
import numbers

from repro.obs.metrics import METRICS, Counter, Gauge, MetricsRegistry
from repro.obs.trace import MODEL, TRACER, Tracer, WALL

_PID = {WALL: 1, MODEL: 2}
_PROCESS_NAMES = {1: "wall clock", 2: "simulated machine"}


def _clean_args(args: dict) -> dict:
    """JSON-safe copy of span args (everything else stringified)."""
    out = {}
    for k, v in args.items():
        if isinstance(v, (str, bool)) or isinstance(v, numbers.Real):
            out[k] = v
        else:
            out[k] = repr(v)
    return out


def chrome_trace_events(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    extra_events: list[dict] | None = None,
) -> dict:
    """Build the trace-event JSON document for ``tracer`` (+ metrics).

    Counters and gauges from ``registry`` (default: the global one) ride
    along as a final batch of counter (``"ph": "C"``) samples so the
    totals are visible in the same viewer.  ``extra_events`` appends
    pre-built trace events (e.g. the critical-path counter tracks from
    :func:`repro.obs.critpath.critpath_counter_events`); they pass
    through :func:`validate_chrome_trace` like everything else.
    """
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else METRICS

    events: list[dict] = []
    tids: dict[tuple[int, str], int] = {}

    for pid, name in _PROCESS_NAMES.items():
        events.append(
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name", "args": {"name": name}}
        )

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == pid]) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[key],
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tids[key]

    for span in tracer.spans:
        pid = _PID[span.clock]
        events.append(
            {
                "name": span.name,
                "cat": span.cat or "default",
                "ph": "X",
                "pid": pid,
                "tid": tid_for(pid, span.track),
                "ts": span.ts * 1e6,
                "dur": span.dur * 1e6,
                "args": _clean_args(span.args),
            }
        )

    for ev in tracer.instants:
        pid = _PID[ev.clock]
        events.append(
            {
                "name": ev.name,
                "cat": ev.cat or "default",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid_for(pid, ev.track),
                "ts": ev.ts * 1e6,
                "args": _clean_args(ev.args),
            }
        )

    t_end = max(
        [s.end for s in tracer.spans if s.clock == WALL] + [e.ts for e in tracer.instants],
        default=0.0,
    )
    for metric in registry.all_metrics():
        if isinstance(metric, (Counter, Gauge)):
            events.append(
                {
                    "name": metric.name,
                    "cat": "metric",
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "ts": t_end * 1e6,
                    "args": {metric.name: metric.value},
                }
            )

    if extra_events:
        events.extend(extra_events)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    extra_events: list[dict] | None = None,
) -> dict:
    """Serialize :func:`chrome_trace_events` to ``path``; returns the doc."""
    doc = chrome_trace_events(tracer, registry, extra_events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: dict) -> int:
    """Validate a trace-event document; returns the event count.

    Raises :class:`ValueError` naming the first offending event.  Checks
    the invariants viewers depend on: the ``traceEvents`` array, known
    phase types, string names, integer pid/tid, and finite non-negative
    microsecond timestamps/durations on timed events.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"trace document must be an object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document lacks a 'traceEvents' array")
    for i, ev in enumerate(events):
        ctx = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{ctx} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            raise ValueError(f"{ctx} has unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{ctx} lacks a non-empty string 'name'")
        for field in ("pid", "tid"):
            if field in ev and not isinstance(ev[field], int):
                raise ValueError(f"{ctx} field {field!r} must be an integer")
        if ph in ("X", "i", "I", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, numbers.Real) or ts != ts or ts < 0:
                raise ValueError(f"{ctx} has invalid ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, numbers.Real) or dur != dur or dur < 0:
                raise ValueError(f"{ctx} has invalid dur {dur!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"{ctx} field 'args' must be an object")
    return len(events)


def spans_from_chrome(doc: dict) -> list:
    """Rebuild :class:`~repro.obs.trace.SpanRecord` s from an exported doc.

    The inverse of the span half of :func:`chrome_trace_events`: complete
    events (``"ph": "X"``) map back to spans, pid back to the clock via
    the same ``_PID`` table, tid back to the track name via the
    ``thread_name`` metadata events, and microsecond timestamps back to
    seconds.  This is what lets the critical-path analyzer and ``repro
    diag`` replay a trace *file* instead of a live tracer — attribution
    over an exported trace agrees with the live analysis to float
    round-trip precision.
    """
    from repro.obs.trace import SpanRecord

    validate_chrome_trace(doc)
    clock_for = {pid: clock for clock, pid in _PID.items()}
    tracks: dict[tuple[int, int], str] = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[(ev["pid"], ev["tid"])] = ev.get("args", {}).get("name", "")
    spans = []
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        pid = ev.get("pid")
        if pid not in clock_for:
            continue
        spans.append(
            SpanRecord(
                name=ev["name"],
                cat=ev.get("cat", ""),
                ts=ev["ts"] / 1e6,
                dur=ev["dur"] / 1e6,
                clock=clock_for[pid],
                track=tracks.get((pid, ev.get("tid")), ""),
                args=dict(ev.get("args", {})),
            )
        )
    return spans


def validate_chrome_trace_file(path: str) -> int:
    """Load ``path`` as JSON and validate it; returns the event count."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return validate_chrome_trace(doc)
