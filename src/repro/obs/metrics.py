"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The quantitative companions to the tracer's timelines — the distributions
and totals the paper's analysis keeps coming back to:

* ``message_size_bytes`` / ``message_hops`` histograms (Table 1's two
  axes),
* ``rdma_registrations_total`` (the kernel-trap count pre-registration
  is designed to flatten, section 3.4),
* ``recv_ring_occupancy`` (the round-robin receive-buffer depth
  argument of Fig. 10),
* ``tni_busy_seconds`` per TNI (the engine-contention account behind
  Fig. 8),
* ``injections_total`` (retransmit-free wire injections — Tofu does not
  retransmit, so every injection counted here reached the wire).

Like the tracer, the module-level :data:`METRICS` singleton starts
disabled and every instrumentation site guards on ``METRICS.enabled``,
keeping the disabled path free of any allocation or lookup.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Default histogram buckets (upper bounds) for message payload sizes.
SIZE_BUCKETS = (64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0)
#: Default buckets for logical-torus hop counts (Table 1's ``hop`` column).
HOP_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
#: Default buckets for receive-ring occupancy (depth 4 rings, Fig. 10).
OCCUPANCY_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 8.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def render(self) -> str:
        """One report line: ``name{labels} value``."""
        return f"{self.name}{_label_str(self.labels)} {self.value:g}"


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def render(self) -> str:
        """One report line: ``name{labels} value``."""
        return f"{self.name}{_label_str(self.labels)} {self.value:g}"


class Histogram:
    """Fixed-bucket histogram (cumulative style: bucket = values <= bound).

    Buckets are frozen at creation; an implicit ``+Inf`` bucket catches
    everything above the last bound, so ``observe`` never fails.
    """

    def __init__(self, name: str, labels: dict, buckets: tuple[float, ...]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted, got {bounds}")
        self.name = name
        self.labels = dict(labels)
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Average of all observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated ``q``-th percentile (Prometheus-style).

        Linear interpolation within the containing bucket, ``0`` as the
        lower edge of the first bucket, and the last finite bound for
        samples in the ``+Inf`` bucket.  An **empty histogram has no
        percentiles**: returns ``nan`` (consistently, for every ``q``)
        rather than letting an index error fall out — callers that need
        a hard failure can check ``math.isnan``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return math.nan
        rank = q / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if cumulative + n >= rank and n > 0:
                frac = (rank - cumulative) / n
                return lower + frac * (bound - lower)
            cumulative += n
            lower = bound
        # Sample lies in the +Inf bucket: the last finite bound is the
        # best (and conventional) answer a fixed-bucket histogram has.
        return self.bounds[-1]

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper bound, count) pairs, ending with the +Inf bucket."""
        out = [(b, c) for b, c in zip(self.bounds, self.counts)]
        out.append((math.inf, self.counts[-1]))
        return out

    def render(self) -> str:
        """Multi-line report block for this histogram."""
        head = (
            f"{self.name}{_label_str(self.labels)} "
            f"count={self.count} sum={self.total:g} mean={self.mean:g}"
        )
        cells = []
        for bound, n in self.bucket_counts():
            label = "+Inf" if math.isinf(bound) else f"{bound:g}"
            cells.append(f"<={label}:{n}")
        return head + "\n    " + "  ".join(cells)


class MetricsRegistry:
    """Create-on-first-use registry of named, labelled instruments."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: dict[tuple, object] = {}

    def reset(self) -> None:
        """Drop every instrument."""
        self._metrics.clear()

    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (kind, name, _label_key(labels))
        inst = self._metrics.get(key)
        if inst is None:
            inst = factory()
            self._metrics[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        """The counter ``name`` with these labels (created on first use)."""
        return self._get("counter", name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge ``name`` with these labels (created on first use)."""
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = SIZE_BUCKETS, **labels
    ) -> Histogram:
        """The histogram ``name``; ``buckets`` only applies at creation."""
        return self._get("histogram", name, labels, lambda: Histogram(name, labels, buckets))

    def all_metrics(self) -> list:
        """Every instrument, sorted by (kind, name, labels) for stable output."""
        return [self._metrics[k] for k in sorted(self._metrics, key=repr)]

    def find(self, name: str) -> list:
        """All instruments (any labels) registered under ``name``."""
        return [m for m in self.all_metrics() if m.name == name]

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Current value of a counter/gauge, or ``default`` if absent."""
        for kind in ("counter", "gauge"):
            inst = self._metrics.get((kind, name, _label_key(labels)))
            if inst is not None:
                return inst.value
        return default

    def render(self) -> str:
        """Text report: counters and gauges first, then histogram blocks."""
        lines = ["metrics report:"]
        scalars = [m for m in self.all_metrics() if isinstance(m, (Counter, Gauge))]
        hists = [m for m in self.all_metrics() if isinstance(m, Histogram)]
        if not scalars and not hists:
            lines.append("  (no metrics recorded)")
        for m in scalars:
            lines.append("  " + m.render())
        for h in hists:
            lines.append("  " + h.render())
        return "\n".join(lines)


#: The process-wide registry. Never replaced, only reset.
METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The global metrics registry singleton."""
    return METRICS


@contextmanager
def collecting(fresh: bool = True):
    """Enable the global registry for a block; restores the prior state."""
    prev = METRICS.enabled
    if fresh:
        METRICS.reset()
    METRICS.enabled = True
    try:
        yield METRICS
    finally:
        METRICS.enabled = prev
