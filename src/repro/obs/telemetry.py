"""Always-on telemetry: counters, sketches, and the flight recorder.

The third observability tier.  The tracer and the metrics registry are
*sessions* — heavyweight, per-event, and deliberately disabled on the
exchange fast path (``GhostExchange._fastpath_ok``) because per-message
spans/histograms cost more than the pooled replay they would observe.
Telemetry is the tier production cannot turn off: **counter-shaped, not
event-shaped** (the pMR lesson — per-connection/buffer accounting stays
on the hot path when it is amortized), so enabling it forfeits nothing.

The batching discipline:

* hot-path code keeps doing exactly what it already does — bump plain
  integer attributes (``_fastpath_phases``, ``retries``, pool
  allocation counts, the traffic log's running totals).  No telemetry
  call ever appears inside a per-message or per-phase loop;
* once per step, :meth:`StepTelemetry.flush_step` folds the *deltas* of
  those cumulative feeds into named counters/gauges, records per-stage
  wall/model durations into mergeable
  :class:`~repro.obs.sketch.QuantileSketch` es (p50/p95/p99 without
  storing samples), and appends one frame to the
  :class:`~repro.obs.flight.FlightRecorder` ring;
* rare notable events (fault injections, retries, degradations, retry
  exhaustion) are pushed eagerly via :meth:`TelemetryControl.emit` —
  they only fire under an armed fault session, so the fault-free hot
  path never sees them.

The module-level :data:`TELEMETRY` control starts **enabled** (unlike
``TRACER``/``METRICS``): the ``telemetry-overhead`` bench guard holds
its cost under 5% wall on the exchange-dominated suite with the fast
path still active in both arms.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.flight import FlightRecorder
from repro.obs.sketch import QuantileSketch

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.md.simulation import Simulation

#: Quantiles exported by the OpenMetrics summary blocks.
EXPORT_QUANTILES = (0.5, 0.95, 0.99)

#: Event kinds that trigger an automatic flight-recorder dump when
#: ``TELEMETRY.autodump_path`` is set.
AUTODUMP_EVENTS = frozenset({"degradation", "retry-exhausted", "selfcheck-failure"})

_MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, Any]) -> _MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics/Prometheus text format.

    Backslash, double-quote, and newline are the three characters the
    exposition format requires escaping inside quoted label values —
    unescaped they corrupt the line for every scraper.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
        + "}"
    )


def write_textfile(path: str, text: str) -> None:
    """Atomically (re)write ``path`` — write a sibling temp file, then
    rename into place, so concurrent readers (node-exporter's textfile
    collector, a tailing CI step) always see a complete document, never
    a torn write.
    """
    import os

    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


class StepTelemetry:
    """Per-run telemetry state: counters, gauges, sketches, flight ring.

    One instance per :class:`~repro.md.simulation.Simulation` (attached
    at construction when :data:`TELEMETRY` is enabled), so concurrent or
    back-to-back runs never bleed into each other's percentiles.
    """

    def __init__(
        self,
        flight_steps: int | None = None,
        flight_events: int | None = None,
        rel_accuracy: float = 0.01,
    ) -> None:
        self.counters: dict[_MetricKey, float] = {}
        self.gauges: dict[_MetricKey, float] = {}
        self.sketches: dict[_MetricKey, QuantileSketch] = {}
        self.rel_accuracy = rel_accuracy
        self.flight = FlightRecorder(
            max_steps=flight_steps or TELEMETRY.flight_steps,
            max_events=flight_events or TELEMETRY.flight_events,
        )
        # Cumulative-feed snapshots for delta folding.
        self._prev_wall: dict[str, float] = {}
        self._prev_model: dict[str, float] = {}
        self._prev_exchange: dict[str, float] = {}
        self._prev_exchange_id: int | None = None
        self._prev_msg_count = 0
        self._prev_msg_bytes = 0

    # -- primitive instruments ----------------------------------------------
    def counter_add(self, name: str, amount: float, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to a named monotonic counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        k = _key(name, labels)
        self.counters[k] = self.counters.get(k, 0.0) + amount

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        """Overwrite a named gauge."""
        self.gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into a named quantile sketch."""
        k = _key(name, labels)
        sk = self.sketches.get(k)
        if sk is None:
            sk = QuantileSketch(rel_accuracy=self.rel_accuracy)
            self.sketches[k] = sk
        sk.add(value)

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter (0 when never incremented)."""
        return self.counters.get(_key(name, labels), 0.0)

    def sketch(self, name: str, **labels: Any) -> QuantileSketch | None:
        """The sketch registered under ``name``/labels, if any."""
        return self.sketches.get(_key(name, labels))

    # -- events ----------------------------------------------------------------
    def record_event(self, kind: str, **fields: Any) -> None:
        """One notable event: counted, ring-buffered, maybe auto-dumped."""
        self.counter_add("events_total", 1.0, kind=kind)
        self.flight.record_event(kind, **fields)
        if kind in AUTODUMP_EVENTS and TELEMETRY.autodump_path is not None:
            self.flight.write(TELEMETRY.autodump_path, reason=kind)

    # -- the per-step flush -----------------------------------------------------
    def flush_step(self, sim: Simulation) -> None:
        """Fold one step's cumulative feeds into counters/sketches/frames.

        Amortized O(stages + ranks) per step, independent of atom or
        message counts — every per-message cost was already paid (or
        skipped) by the existing fast-path bookkeeping this reads.
        """
        timers = sim.timers
        wall_delta: dict[str, float] = {}
        model_delta: dict[str, float] = {}
        for stage, total in timers.wall.items():
            d = total - self._prev_wall.get(stage.value, 0.0)
            wall_delta[stage.value] = d
            self._prev_wall[stage.value] = total
            self.observe("stage_wall_seconds", d, stage=stage.value)
        model_on = sim.config.model_machine_time
        for stage, total in timers.model.items():
            d = total - self._prev_model.get(stage.value, 0.0)
            model_delta[stage.value] = d
            self._prev_model[stage.value] = total
            if model_on:
                self.observe("stage_model_seconds", d, stage=stage.value)
        step_wall = sum(wall_delta.values())
        self.observe("step_wall_seconds", step_wall)

        # Exchange feed (plan cache, pools, retries).  A degradation
        # swaps the exchange object; its counters restart from zero, so
        # the snapshot resets with it and monotonicity is preserved.
        counters, gauges = sim.exchange.telemetry_feed()
        if id(sim.exchange) != self._prev_exchange_id:
            self._prev_exchange = {}
            self._prev_exchange_id = id(sim.exchange)
        exchange_delta: dict[str, float] = {}
        for name, total in counters.items():
            d = total - self._prev_exchange.get(name, 0.0)
            self._prev_exchange[name] = total
            exchange_delta[name] = d
            if d:
                self.counter_add(name + "_total", d)
        for name, value in gauges.items():
            self.gauge_set(name, value)

        # Transport feed: the traffic log's running grand totals (kept
        # by ``record`` in O(1), surviving per-step log clears).
        log = sim.world.transport.log
        msg_d = log.grand_total_count - self._prev_msg_count
        bytes_d = log.grand_total_bytes - self._prev_msg_bytes
        self._prev_msg_count = log.grand_total_count
        self._prev_msg_bytes = log.grand_total_bytes
        self.counter_add("messages_total", msg_d)
        self.counter_add("message_bytes_total", bytes_d)
        self.counter_add("steps_total", 1.0)

        self.flight.record_frame(
            {
                "step": sim.step_count,
                "wall": wall_delta,
                "model": model_delta,
                "messages": msg_d,
                "bytes": bytes_d,
                "fastpath_phases": exchange_delta.get("fastpath_phases", 0.0),
                "slowpath_phases": exchange_delta.get("slowpath_phases", 0.0),
                "retries": exchange_delta.get("retries", 0.0),
                "pattern": sim.exchange.name,
            }
        )

    # -- export ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Structured snapshot (JSON-ready) of every instrument."""
        def table(d: dict[_MetricKey, float]) -> dict[str, float]:
            return {
                name + _label_str(labels): v
                for (name, labels), v in sorted(d.items())
            }

        return {
            "counters": table(self.counters),
            "gauges": table(self.gauges),
            "sketches": {
                name + _label_str(labels): sk.to_dict()
                for (name, labels), sk in sorted(self.sketches.items())
            },
            "flight": {
                "frames": len(self.flight.frames),
                "events": len(self.flight.events),
            },
        }

    def render_openmetrics(self, prefix: str = "repro_") -> str:
        """OpenMetrics/Prometheus text exposition of every instrument.

        Counters render with the conventional ``_total`` suffix (the
        feed names already carry it), sketches as summary blocks with
        ``quantile`` labels plus ``_count``/``_sum`` series, and the
        document ends with the OpenMetrics ``# EOF`` marker.
        """
        lines: list[str] = []
        by_name_c: dict[str, list[tuple[tuple[tuple[str, str], ...], float]]] = {}
        for (name, labels), v in sorted(self.counters.items()):
            by_name_c.setdefault(name, []).append((labels, v))
        for name, series in by_name_c.items():
            base = prefix + name
            lines.append(f"# TYPE {base} counter")
            for labels, v in series:
                lines.append(f"{base}{_label_str(labels)} {v:g}")
        by_name_g: dict[str, list[tuple[tuple[tuple[str, str], ...], float]]] = {}
        for (name, labels), v in sorted(self.gauges.items()):
            by_name_g.setdefault(name, []).append((labels, v))
        for name, series in by_name_g.items():
            base = prefix + name
            lines.append(f"# TYPE {base} gauge")
            for labels, v in series:
                lines.append(f"{base}{_label_str(labels)} {v:g}")
        by_name_s: dict[str, list[tuple[tuple[tuple[str, str], ...], QuantileSketch]]] = {}
        for (name, labels), sk in sorted(self.sketches.items()):
            by_name_s.setdefault(name, []).append((labels, sk))
        for name, sketches in by_name_s.items():
            base = prefix + name
            lines.append(f"# TYPE {base} summary")
            for labels, sk in sketches:
                for q in EXPORT_QUANTILES:
                    ql = labels + (("quantile", f"{q:g}"),)
                    lines.append(f"{base}{_label_str(ql)} {sk.quantile(q):g}")
                lines.append(f"{base}_count{_label_str(labels)} {sk.count}")
                lines.append(f"{base}_sum{_label_str(labels)} {sk.total:g}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


class TelemetryControl:
    """Process-wide switchboard for the always-on telemetry plane.

    Holds the enable flag (default **on**), the flight-recorder ring
    depths new :class:`StepTelemetry` instances inherit, the optional
    auto-dump path, and a reference to the most recently attached
    per-run telemetry (what the CLI exports and global event sources —
    the fault injector — feed into).
    """

    def __init__(self) -> None:
        self.enabled = True
        self.flight_steps = 64
        self.flight_events = 256
        self.autodump_path: str | None = None
        self.active: StepTelemetry | None = None

    def attach(self, telemetry: StepTelemetry) -> None:
        """Make ``telemetry`` the active sink for global event sources."""
        self.active = telemetry

    def emit(self, kind: str, **fields: Any) -> None:
        """Route one event to the active per-run telemetry (if any)."""
        st = self.active
        if st is not None:
            st.record_event(kind, **fields)

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily turn the plane off (overhead-guard control arm)."""
        prev_enabled, prev_active = self.enabled, self.active
        self.enabled = False
        self.active = None
        try:
            yield
        finally:
            self.enabled = prev_enabled
            self.active = prev_active

    @contextmanager
    def scope(self) -> Iterator[None]:
        """Isolate attachments for a block (tests / selfcheck batteries):
        whatever runs inside attaches its own telemetry; the previous
        active instance is restored on exit."""
        prev = self.active
        try:
            yield
        finally:
            self.active = prev


#: The process-wide control.  Never replaced, only toggled/attached.
TELEMETRY = TelemetryControl()


def get_telemetry() -> TelemetryControl:
    """The global telemetry control singleton."""
    return TELEMETRY
