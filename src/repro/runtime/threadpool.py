"""Spin-lock thread-pool model and deterministic load splitting.

Section 3.3 of the paper replaces OpenMP parallel regions with a
persistent spin-lock thread pool because LAMMPS enters a parallel region
in *every* stage of *every* step: at 22 atoms per rank the 5.8 us OpenMP
fork/join dwarfs the work, while the pool's measured 1.1 us does not.

Two things live here:

* :class:`ThreadPoolModel` — the timing model: dispatching N work items
  over T threads costs ``fork_join + max(per-thread work)``.
* :func:`split_load` — the paper's communication load balancing (Fig. 10):
  13 neighbor messages with heterogeneous sizes and hop counts are
  distributed over 6 communication threads so the per-thread *cost* (not
  count) is balanced.  We use LPT (longest-processing-time-first) greedy
  scheduling, which is deterministic and within 4/3 of optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.machine.params import FUGAKU, MachineParams
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: an opaque payload with a known cost."""

    payload: object
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"negative cost {self.cost}")


def split_load(items: Sequence[WorkItem], n_threads: int) -> list[list[WorkItem]]:
    """LPT-balance ``items`` over ``n_threads`` bins by cost.

    Deterministic: ties broken by original order.  Returns ``n_threads``
    lists (some possibly empty when there are fewer items than threads).
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    bins: list[list[WorkItem]] = [[] for _ in range(n_threads)]
    loads = [0.0] * n_threads
    order = sorted(range(len(items)), key=lambda i: (-items[i].cost, i))
    for i in order:
        j = min(range(n_threads), key=lambda b: (loads[b], b))
        bins[j].append(items[i])
        loads[j] += items[i].cost
    return bins


def makespan(bins: Sequence[Sequence[WorkItem]]) -> float:
    """The bottleneck (max per-bin) cost of a partition."""
    return max((sum(w.cost for w in b) for b in bins), default=0.0)


@dataclass
class ThreadPoolModel:
    """Timing model of a persistent spin-lock thread pool.

    ``fork_join`` is the full dispatch + spin-wait-join overhead of one
    parallel region (paper-measured 1.1 us).  The pool is persistent, so
    no thread start cost is ever paid after construction.
    """

    n_threads: int
    params: MachineParams = field(default=FUGAKU)
    parallel_regions: int = 0

    @property
    def fork_join(self) -> float:
        return self.params.threadpool_fork_join

    def parallel_time(self, work: Sequence[float]) -> float:
        """Wall time of one parallel region executing ``work`` items.

        Items are LPT-balanced over the threads; the region costs the
        fork/join overhead plus the bottleneck thread's work.  An empty
        region still pays the fork/join (the code enters it regardless).
        """
        self.parallel_regions += 1
        items = [WorkItem(None, w) for w in work]
        bottleneck = makespan(split_load(items, self.n_threads))
        if TRACER.enabled:
            # Two back-to-back model spans make the fixed fork/join
            # overhead (the paper's 1.1 us) visible next to the work.
            start = TRACER.model_clock
            TRACER.add_model_span(
                "fork_join", start, self.fork_join,
                cat="threadpool", track="threadpool", n_threads=self.n_threads,
            )
            TRACER.add_model_span(
                "parallel_work", start + self.fork_join, bottleneck,
                cat="threadpool", track="threadpool", n_items=len(items),
            )
        if METRICS.enabled:
            METRICS.counter("threadpool_regions_total").inc()
            METRICS.counter("threadpool_fork_join_seconds").inc(self.fork_join)
        return self.fork_join + bottleneck

    def serial_fraction_speedup(self, total_work: float, serial_work: float) -> float:
        """Amdahl helper: speedup of this pool on a mixed workload."""
        if total_work <= 0:
            return 1.0
        parallel_work = max(total_work - serial_work, 0.0)
        t_parallel = serial_work + parallel_work / self.n_threads + self.fork_join
        return total_work / t_parallel
