"""Collective operations: functional results + log-tree cost models.

The paper's EAM path performs an ``MPI_Allreduce`` every 5 timesteps to
decide whether any rank's atoms moved beyond half the neighbor skin
(section 4.2); at 36 864 nodes this allreduce dominates the "Other"
column of Table 3 (31.84 % for Opt-EAM).  The cost model here is the
standard recursive-doubling estimate: ``ceil(log2 P)`` rounds, each a
small-message point-to-point, plus per-element reduction bandwidth for
larger payloads.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.machine.params import FUGAKU, MachineParams
from repro.network.stacks import SoftwareStack, MpiStack


def allreduce(values: Sequence, op: Callable = None):
    """Functional allreduce: every rank contributed a value, all get the
    reduction.  ``op`` reduces a list (default: sum; use ``max``/``min``
    or ``any``-style reducers for flags)."""
    seq = list(values)
    if not seq:
        raise ValueError("allreduce over zero ranks")
    if op is None:
        if isinstance(seq[0], np.ndarray):
            return np.sum(np.stack(seq), axis=0)
        return sum(seq)
    return op(seq)


def _round_cost(
    nbytes: int, stack: SoftwareStack, params: MachineParams, avg_hops: float
) -> float:
    """One point-to-point round of a recursive-doubling exchange."""
    return (
        stack.injection_interval(nbytes)
        + stack.software_latency(nbytes)
        + params.rdma_put_latency
        + max(avg_hops - 1.0, 0.0) * params.hop_latency
        + nbytes / params.link_bandwidth
    )


def allreduce_cost(
    world_size: int,
    nbytes: int = 8,
    stack: SoftwareStack | None = None,
    params: MachineParams = FUGAKU,
    avg_hops: float = 2.0,
) -> float:
    """Recursive-doubling allreduce time for ``world_size`` ranks.

    At large scale the partners of late rounds are far apart on the torus,
    so ``avg_hops`` grows with the round index; we use a simple model
    where round *k* spans ``min(2**k, diameter)`` hops, capped by the
    torus diameter implied by ``world_size``.
    """
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if world_size == 1:
        return 0.0
    stack = stack if stack is not None else MpiStack(params=params)
    rounds = math.ceil(math.log2(world_size))
    # Torus diameter for an ideal cubic layout of world_size nodes:
    side = max(world_size ** (1.0 / 3.0), 1.0)
    diameter = 3.0 * side / 2.0
    total = 0.0
    for k in range(rounds):
        hops = min(float(2**k), diameter)
        total += _round_cost(nbytes, stack, params, hops)
    return total


def barrier_cost(
    world_size: int,
    stack: SoftwareStack | None = None,
    params: MachineParams = FUGAKU,
) -> float:
    """A barrier is an allreduce of nothing (8-byte token)."""
    return allreduce_cost(world_size, nbytes=8, stack=stack, params=params)


def broadcast_cost(
    world_size: int,
    nbytes: int,
    stack: SoftwareStack | None = None,
    params: MachineParams = FUGAKU,
) -> float:
    """Binomial-tree broadcast estimate (used for setup-stage exchanges)."""
    if world_size <= 1:
        return 0.0
    stack = stack if stack is not None else MpiStack(params=params)
    rounds = math.ceil(math.log2(world_size))
    return rounds * _round_cost(nbytes, stack, params, avg_hops=2.0)
