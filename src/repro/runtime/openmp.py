"""OpenMP fork-join model — the baseline the thread pool replaces.

Identical interface to :class:`repro.runtime.threadpool.ThreadPoolModel`
but with the measured 5.8 us fork/join of an OpenMP parallel region
(paper section 3.3).  The paper's observation that enabling OpenMP makes
the NVE modify stage *10x slower* at small atom counts falls straight out
of this model: with 22 atoms the useful work is tens of nanoseconds while
the region overhead is microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.machine.params import FUGAKU, MachineParams
from repro.runtime.threadpool import WorkItem, makespan, split_load


@dataclass
class OpenMPModel:
    """Timing model of OpenMP parallel regions (static scheduling)."""

    n_threads: int
    params: MachineParams = field(default=FUGAKU)
    parallel_regions: int = 0

    @property
    def fork_join(self) -> float:
        return self.params.openmp_fork_join

    def parallel_time(self, work: Sequence[float]) -> float:
        """Wall time of one ``#pragma omp parallel for`` region.

        OpenMP static scheduling splits the iteration space evenly by
        *count*, not cost — we model that by round-robin assignment in
        the original order, which is pessimal for skewed work (another
        reason the paper's cost-aware pool wins on communication).
        """
        self.parallel_regions += 1
        bins: list[list[WorkItem]] = [[] for _ in range(self.n_threads)]
        for i, w in enumerate(work):
            bins[i % self.n_threads].append(WorkItem(None, w))
        return self.fork_join + makespan(bins)

    def serial_fraction_speedup(self, total_work: float, serial_work: float) -> float:
        """Amdahl helper: speedup on a mixed serial/parallel workload."""
        if total_work <= 0:
            return 1.0
        parallel_work = max(total_work - serial_work, 0.0)
        t_parallel = serial_work + parallel_work / self.n_threads + self.fork_join
        return total_work / t_parallel
