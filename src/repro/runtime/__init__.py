"""Parallel-runtime substrate: in-process simulated ranks.

Real Fugaku runs 4 MPI ranks per node across tens of thousands of nodes.
Here an entire job runs inside one Python process: each rank is an object
holding its own sub-domain, and a :class:`~repro.runtime.world.World`
drives all ranks through the same program phases in lockstep (SPMD by
phase).  Messages move through :class:`~repro.runtime.transport.Transport`
mailboxes, which also record counts/bytes/hops so functional runs can be
cross-checked against the analytic model and priced by the network
simulator.

* :mod:`repro.runtime.world` — the rank container and phase driver.
* :mod:`repro.runtime.transport` — mailbox message passing + traffic log.
* :mod:`repro.runtime.collectives` — allreduce/barrier, functional +
  log-tree cost model (the EAM neighbor-check allreduce of section 4.2).
* :mod:`repro.runtime.threadpool` — the paper's spin-lock thread pool:
  fork/join overhead model and deterministic load splitting.
* :mod:`repro.runtime.openmp` — the OpenMP fork-join model it replaces.
"""

from repro.runtime.transport import Transport, TrafficLog, SentMessage
from repro.runtime.world import World, RankContext
from repro.runtime.collectives import (
    allreduce,
    allreduce_cost,
    barrier_cost,
    broadcast_cost,
)
from repro.runtime.threadpool import ThreadPoolModel, split_load, WorkItem
from repro.runtime.openmp import OpenMPModel

__all__ = [
    "Transport",
    "TrafficLog",
    "SentMessage",
    "World",
    "RankContext",
    "allreduce",
    "allreduce_cost",
    "barrier_cost",
    "broadcast_cost",
    "ThreadPoolModel",
    "OpenMPModel",
    "split_load",
    "WorkItem",
]
