"""Mailbox transport between in-process ranks, with traffic accounting.

Functionally this is the MPI/uTofu data plane: rank A deposits a payload
addressed ``(dst, tag)``; rank B collects it with ``recv(src, tag)``.
Because the :class:`~repro.runtime.world.World` drives all ranks through
each program phase in lockstep, every send of a phase completes before any
receive of that phase — the same guarantee a correct two-sided exchange
or a fenced one-sided epoch provides.

Every send is also recorded in a :class:`TrafficLog`.  The log is how the
repository keeps itself honest: tests compare the *measured* message
counts and byte volumes of a functional ghost exchange against the
paper's Table 1 formulas, and the performance model prices logged traffic
with the network simulator instead of guessing.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.faults.injector import FAULTS, HOLD, REORDER
from repro.obs.metrics import METRICS, SIZE_BUCKETS
from repro.obs.trace import TRACER


class TransportError(RuntimeError):
    """Raised on protocol misuse (missing message, bad addressing)."""


class _Envelope:
    """Payload wrapper used while a fault session is active.

    The sequence number is assigned per mailbox ``(src, dst, tag)`` in
    send order; the receive path always pops the lowest sequence still
    waiting, which transparently restores injection order after a
    reorder fault or a late limbo release.
    """

    __slots__ = ("seq", "payload")

    def __init__(self, seq: int, payload: Any) -> None:
        self.seq = seq
        self.payload = payload


@dataclass(frozen=True)
class SentMessage:
    """Record of one logical message for accounting."""

    src: int
    dst: int
    tag: Hashable
    nbytes: int
    phase: str = ""


@dataclass
class TrafficLog:
    """Aggregated traffic statistics, queryable per phase and per pair.

    By default every :class:`SentMessage` is retained (the seed
    behavior).  Long production runs can instead bound the record list
    with :meth:`set_window`: the log keeps a rolling window of the most
    recent messages while *exact* per-phase aggregates (counts, bytes,
    per-pair bytes, per-source counts) are maintained incrementally, so
    every query below still answers for the whole run.
    """

    messages: list[SentMessage] = field(default_factory=list)
    max_messages: int | None = None
    #: Monotonic run-lifetime totals: unlike the aggregates below they
    #: survive :meth:`clear` (per-step clearing), so the telemetry plane
    #: can delta them once per step without retaining records.
    grand_total_count: int = 0
    grand_total_bytes: int = 0
    _phase_count: dict = field(default_factory=dict, repr=False)
    _phase_bytes: dict = field(default_factory=dict, repr=False)
    _phase_pair_bytes: dict = field(default_factory=dict, repr=False)
    _phase_src_count: dict = field(default_factory=dict, repr=False)

    def set_window(self, max_messages: int | None) -> None:
        """Bound the retained record list to a rolling window.

        Aggregates are (re)built from the currently retained messages;
        call this before traffic of interest starts (the usual place is
        simulation setup).  ``None`` restores unbounded retention.
        """
        self.max_messages = max_messages
        self._phase_count.clear()
        self._phase_bytes.clear()
        self._phase_pair_bytes.clear()
        self._phase_src_count.clear()
        if max_messages is not None:
            for m in self.messages:
                self._aggregate(m)
            self._trim()

    def _aggregate(self, msg: SentMessage) -> None:
        phase = msg.phase
        self._phase_count[phase] = self._phase_count.get(phase, 0) + 1
        self._phase_bytes[phase] = self._phase_bytes.get(phase, 0) + msg.nbytes
        pair_bytes = self._phase_pair_bytes.setdefault(phase, {})
        pair = (msg.src, msg.dst)
        pair_bytes[pair] = pair_bytes.get(pair, 0) + msg.nbytes
        src_count = self._phase_src_count.setdefault(phase, {})
        src_count[msg.src] = src_count.get(msg.src, 0) + 1

    def _trim(self) -> None:
        # Amortized O(1): trim in chunks once the list doubles the window.
        assert self.max_messages is not None
        if len(self.messages) > 2 * self.max_messages:
            del self.messages[: len(self.messages) - self.max_messages]

    def record(self, msg: SentMessage) -> None:
        """Append one message record."""
        self.messages.append(msg)
        self.grand_total_count += 1
        self.grand_total_bytes += msg.nbytes
        if self.max_messages is not None:
            self._aggregate(msg)
            self._trim()

    def clear(self) -> None:
        """Drop all records (and aggregates)."""
        self.messages.clear()
        self._phase_count.clear()
        self._phase_bytes.clear()
        self._phase_pair_bytes.clear()
        self._phase_src_count.clear()

    # -- queries -----------------------------------------------------------
    def count(self, phase: str | None = None) -> int:
        """Message count, optionally filtered by phase."""
        if self.max_messages is not None:
            if phase is None:
                return sum(self._phase_count.values())
            return self._phase_count.get(phase, 0)
        return sum(1 for m in self.messages if phase is None or m.phase == phase)

    def total_bytes(self, phase: str | None = None) -> int:
        """Byte volume, optionally filtered by phase."""
        if self.max_messages is not None:
            if phase is None:
                return sum(self._phase_bytes.values())
            return self._phase_bytes.get(phase, 0)
        return sum(m.nbytes for m in self.messages if phase is None or m.phase == phase)

    def count_by_rank(self, phase: str | None = None) -> dict[int, int]:
        """Send counts keyed by source rank."""
        out: dict[int, int] = defaultdict(int)
        if self.max_messages is not None:
            for ph, src_count in self._phase_src_count.items():
                if phase is None or ph == phase:
                    for src, n in src_count.items():
                        out[src] += n
            return dict(out)
        for m in self.messages:
            if phase is None or m.phase == phase:
                out[m.src] += 1
        return dict(out)

    def pairs(self, phase: str | None = None) -> set[tuple[int, int]]:
        """Distinct (src, dst) pairs that communicated."""
        if self.max_messages is not None:
            out: set[tuple[int, int]] = set()
            for ph, pair_bytes in self._phase_pair_bytes.items():
                if phase is None or ph == phase:
                    out.update(pair_bytes)
            return out
        return {
            (m.src, m.dst)
            for m in self.messages
            if phase is None or m.phase == phase
        }

    def summary(self, phase: str | None = None) -> "TrafficSummary":
        """One-call aggregate (counts, bytes, busiest pair) of a phase.

        The convenience figures and tests kept re-deriving by hand from
        ``log.messages``; also the unit the observability self-checks
        compare against the trace-recomputed account.
        """
        pair_bytes: dict[tuple[int, int], int] = defaultdict(int)
        count = 0
        total = 0
        if self.max_messages is not None:
            for ph, pb in self._phase_pair_bytes.items():
                if phase is not None and ph != phase:
                    continue
                for pair, nbytes in pb.items():
                    pair_bytes[pair] += nbytes
            count = self.count(phase)
            total = self.total_bytes(phase)
        else:
            for m in self.messages:
                if phase is not None and m.phase != phase:
                    continue
                count += 1
                total += m.nbytes
                pair_bytes[(m.src, m.dst)] += m.nbytes
        max_pair: tuple[int, int] | None = None
        max_pair_bytes = 0
        if pair_bytes:
            max_pair = max(pair_bytes, key=lambda p: (pair_bytes[p], p))
            max_pair_bytes = pair_bytes[max_pair]
        return TrafficSummary(
            phase=phase,
            count=count,
            total_bytes=total,
            pair_count=len(pair_bytes),
            max_pair=max_pair,
            max_pair_bytes=max_pair_bytes,
        )


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate view of one phase's traffic (or of the whole log)."""

    phase: str | None
    count: int
    total_bytes: int
    pair_count: int
    max_pair: tuple[int, int] | None
    max_pair_bytes: int


def _payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a payload (ndarray-aware)."""
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(p) for p in payload)
    return 0


class Transport:
    """Point-to-point mailboxes for ``size`` ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self._boxes: dict[tuple[int, int, Hashable], deque[Any]] = defaultdict(deque)
        self._seq: dict[tuple[int, int, Hashable], int] = defaultdict(int)
        self.log = TrafficLog()
        self.phase = ""

    def set_phase(self, phase: str) -> None:
        """Label subsequent traffic (border/forward/reverse/...)."""
        self.phase = phase

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise TransportError(f"{what} rank {rank} out of range [0, {self.size})")

    def send(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Deposit ``payload`` for ``dst``; completes immediately.

        Self-sends are allowed (a rank that is its own periodic neighbor
        on a 1-wide decomposition still runs the exchange protocol).
        """
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        key = (src, dst, tag)
        session = FAULTS.session
        if session is None or not session.message_faults:
            self._boxes[key].append(payload)
        else:
            # Envelope every message while message faults are armed so
            # the receive path can restore send order after faults.
            seq = self._seq[key]
            self._seq[key] = seq + 1
            env = _Envelope(seq, payload)
            verdict = session.on_send(src, dst, tag, self.phase)
            if verdict is None:
                self._boxes[key].append(env)
            elif verdict[0] == HOLD:
                session.hold(key, seq, payload, verdict[1], verdict[2])
            elif verdict[0] == REORDER:
                box = self._boxes[key]
                box.insert(session.rng.randrange(len(box) + 1), env)
                session.note_reorder(key)
            else:  # pragma: no cover - defensive
                raise TransportError(f"unknown fault verdict {verdict!r}")
        nbytes = _payload_nbytes(payload)
        self.log.record(SentMessage(src, dst, tag, nbytes, self.phase))
        if TRACER.enabled:
            TRACER.instant(
                "msg",
                cat="msg",
                track=f"rank{src}",
                src=src,
                dst=dst,
                phase=self.phase,
                nbytes=nbytes,
                tag=repr(tag),
            )
        if METRICS.enabled:
            METRICS.counter("messages_total", phase=self.phase).inc()
            METRICS.histogram("message_size_bytes", buckets=SIZE_BUCKETS).observe(nbytes)

    def send_fast(
        self, src: int, dst: int, tag: Hashable, payload: Any, nbytes: int
    ) -> None:
        """Hot-path send: deposit + traffic record, nothing else.

        Callers (the exchange fast path) guarantee no fault session is
        active and tracing/metrics are disabled, and pass the payload
        byte size resolved once at plan-build time — so the rank checks,
        fault envelopes and per-message observability of :meth:`send`
        are all skipped.  ``payload`` may be a zero-copy view of a
        pooled buffer.
        """
        self._boxes[(src, dst, tag)].append(payload)
        self.log.record(SentMessage(src, dst, tag, nbytes, self.phase))

    def recv_fast(self, dst: int, src: int, tag: Hashable) -> Any:
        """Hot-path receive pairing :meth:`send_fast` (no fault session)."""
        box = self._boxes.get((src, dst, tag))
        if not box:
            raise TransportError(
                f"rank {dst} has no message from {src} with tag {tag!r} "
                f"(phase {self.phase!r})"
            )
        payload = box.popleft()
        if type(payload) is _Envelope:  # pragma: no cover - defensive
            payload = payload.payload
        return payload

    @staticmethod
    def _take(box: deque) -> Any:
        """Pop the next message: FIFO for plain payloads, min-seq for
        envelopes (restores send order after reorder/limbo release)."""
        head = box[0]
        if not isinstance(head, _Envelope):
            return box.popleft()
        best = min(range(len(box)), key=lambda i: box[i].seq)
        env = box[best]
        del box[best]
        return env.payload

    def recv(self, dst: int, src: int, tag: Hashable) -> Any:
        """Collect the oldest matching message; raises if none is waiting."""
        self._check_rank(dst, "destination")
        self._check_rank(src, "source")
        box = self._boxes.get((src, dst, tag))
        if not box:
            raise TransportError(
                f"rank {dst} has no message from {src} with tag {tag!r} "
                f"(phase {self.phase!r})"
            )
        payload = self._take(box)
        self._note_recv(src, dst)
        return payload

    def try_recv(self, dst: int, src: int, tag: Hashable) -> Any | None:
        """Like :meth:`recv` but returns ``None`` when nothing is waiting."""
        box = self._boxes.get((src, dst, tag))
        if not box:
            return None
        payload = self._take(box)
        self._note_recv(src, dst)
        return payload

    def _note_recv(self, src: int, dst: int) -> None:
        """Record a delivery as a trace instant (the race detector's
        message-synchronization edge from ``src`` to ``dst``)."""
        if TRACER.enabled:
            TRACER.instant(
                "recv", cat="recv", track=f"rank{dst}",
                src=src, dst=dst, phase=self.phase,
            )

    def fault_poll(self, dst: int, src: int, tag: Hashable) -> None:
        """One retry poll: age this mailbox's limbo, redeliver releases.

        Called by the robust receive between backoff attempts; a no-op
        without an active fault session.
        """
        session = FAULTS.session
        if session is None:
            return
        key = (src, dst, tag)
        released = session.tick(key)
        if released:
            box = self._boxes[key]
            for seq, payload in released:
                box.append(_Envelope(seq, payload))

    def purge(self) -> int:
        """Drop all undelivered messages and reset sequence counters.

        Used by the degradation ladder: after a tier change the exchange
        protocol restarts from scratch, so in-flight traffic of the
        abandoned attempt must not leak into :meth:`assert_drained`.
        """
        dropped = self.pending_count()
        self._boxes.clear()
        self._seq.clear()
        return dropped

    def pending_count(self) -> int:
        """Messages deposited but not yet received."""
        return sum(len(b) for b in self._boxes.values())

    def assert_drained(self) -> None:
        """Protocol check: no message may be left behind after a step."""
        pending = self.pending_count()
        if pending:
            stuck = [k for k, b in self._boxes.items() if b]
            raise TransportError(
                f"{pending} undelivered message(s) left in transport: {stuck[:8]}"
            )
