"""Mailbox transport between in-process ranks, with traffic accounting.

Functionally this is the MPI/uTofu data plane: rank A deposits a payload
addressed ``(dst, tag)``; rank B collects it with ``recv(src, tag)``.
Because the :class:`~repro.runtime.world.World` drives all ranks through
each program phase in lockstep, every send of a phase completes before any
receive of that phase — the same guarantee a correct two-sided exchange
or a fenced one-sided epoch provides.

Every send is also recorded in a :class:`TrafficLog`.  The log is how the
repository keeps itself honest: tests compare the *measured* message
counts and byte volumes of a functional ghost exchange against the
paper's Table 1 formulas, and the performance model prices logged traffic
with the network simulator instead of guessing.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.obs.metrics import METRICS, SIZE_BUCKETS
from repro.obs.trace import TRACER


class TransportError(RuntimeError):
    """Raised on protocol misuse (missing message, bad addressing)."""


@dataclass(frozen=True)
class SentMessage:
    """Record of one logical message for accounting."""

    src: int
    dst: int
    tag: Hashable
    nbytes: int
    phase: str = ""


@dataclass
class TrafficLog:
    """Aggregated traffic statistics, queryable per phase and per pair."""

    messages: list[SentMessage] = field(default_factory=list)

    def record(self, msg: SentMessage) -> None:
        """Append one message record."""
        self.messages.append(msg)

    def clear(self) -> None:
        """Drop all records."""
        self.messages.clear()

    # -- queries -----------------------------------------------------------
    def count(self, phase: str | None = None) -> int:
        """Message count, optionally filtered by phase."""
        return sum(1 for m in self.messages if phase is None or m.phase == phase)

    def total_bytes(self, phase: str | None = None) -> int:
        """Byte volume, optionally filtered by phase."""
        return sum(m.nbytes for m in self.messages if phase is None or m.phase == phase)

    def count_by_rank(self, phase: str | None = None) -> dict[int, int]:
        """Send counts keyed by source rank."""
        out: dict[int, int] = defaultdict(int)
        for m in self.messages:
            if phase is None or m.phase == phase:
                out[m.src] += 1
        return dict(out)

    def pairs(self, phase: str | None = None) -> set[tuple[int, int]]:
        """Distinct (src, dst) pairs that communicated."""
        return {
            (m.src, m.dst)
            for m in self.messages
            if phase is None or m.phase == phase
        }

    def summary(self, phase: str | None = None) -> "TrafficSummary":
        """One-call aggregate (counts, bytes, busiest pair) of a phase.

        The convenience figures and tests kept re-deriving by hand from
        ``log.messages``; also the unit the observability self-checks
        compare against the trace-recomputed account.
        """
        pair_bytes: dict[tuple[int, int], int] = defaultdict(int)
        count = 0
        total = 0
        for m in self.messages:
            if phase is not None and m.phase != phase:
                continue
            count += 1
            total += m.nbytes
            pair_bytes[(m.src, m.dst)] += m.nbytes
        max_pair: tuple[int, int] | None = None
        max_pair_bytes = 0
        if pair_bytes:
            max_pair = max(pair_bytes, key=lambda p: (pair_bytes[p], p))
            max_pair_bytes = pair_bytes[max_pair]
        return TrafficSummary(
            phase=phase,
            count=count,
            total_bytes=total,
            pair_count=len(pair_bytes),
            max_pair=max_pair,
            max_pair_bytes=max_pair_bytes,
        )


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate view of one phase's traffic (or of the whole log)."""

    phase: str | None
    count: int
    total_bytes: int
    pair_count: int
    max_pair: tuple[int, int] | None
    max_pair_bytes: int


def _payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a payload (ndarray-aware)."""
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(p) for p in payload)
    return 0


class Transport:
    """Point-to-point mailboxes for ``size`` ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self._boxes: dict[tuple[int, int, Hashable], deque[Any]] = defaultdict(deque)
        self.log = TrafficLog()
        self.phase = ""

    def set_phase(self, phase: str) -> None:
        """Label subsequent traffic (border/forward/reverse/...)."""
        self.phase = phase

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise TransportError(f"{what} rank {rank} out of range [0, {self.size})")

    def send(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Deposit ``payload`` for ``dst``; completes immediately.

        Self-sends are allowed (a rank that is its own periodic neighbor
        on a 1-wide decomposition still runs the exchange protocol).
        """
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        self._boxes[(src, dst, tag)].append(payload)
        nbytes = _payload_nbytes(payload)
        self.log.record(SentMessage(src, dst, tag, nbytes, self.phase))
        if TRACER.enabled:
            TRACER.instant(
                "msg",
                cat="msg",
                track=f"rank{src}",
                src=src,
                dst=dst,
                phase=self.phase,
                nbytes=nbytes,
                tag=repr(tag),
            )
        if METRICS.enabled:
            METRICS.counter("messages_total", phase=self.phase).inc()
            METRICS.histogram("message_size_bytes", buckets=SIZE_BUCKETS).observe(nbytes)

    def recv(self, dst: int, src: int, tag: Hashable) -> Any:
        """Collect the oldest matching message; raises if none is waiting."""
        self._check_rank(dst, "destination")
        self._check_rank(src, "source")
        box = self._boxes.get((src, dst, tag))
        if not box:
            raise TransportError(
                f"rank {dst} has no message from {src} with tag {tag!r} "
                f"(phase {self.phase!r})"
            )
        return box.popleft()

    def try_recv(self, dst: int, src: int, tag: Hashable) -> Any | None:
        """Like :meth:`recv` but returns ``None`` when nothing is waiting."""
        box = self._boxes.get((src, dst, tag))
        if not box:
            return None
        return box.popleft()

    def pending_count(self) -> int:
        """Messages deposited but not yet received."""
        return sum(len(b) for b in self._boxes.values())

    def assert_drained(self) -> None:
        """Protocol check: no message may be left behind after a step."""
        pending = self.pending_count()
        if pending:
            stuck = [k for k, b in self._boxes.items() if b]
            raise TransportError(
                f"{pending} undelivered message(s) left in transport: {stuck[:8]}"
            )
