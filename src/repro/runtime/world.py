"""The World: a container of in-process ranks driven phase-by-phase.

SPMD code normally runs as *P* processes executing the same program.
Here the same effect is achieved single-process: the world owns *P*
per-rank states and a driver calls ``for rank in world: do_phase(rank)``
for each program phase.  Phase boundaries are the synchronization points;
within a phase, ranks may only *send*; receives happen in the next phase
(or later in the same phase via a second sweep), which is exactly the
post-all-sends / complete-all-receives structure of the LAMMPS exchange
code.

:class:`RankContext` is the per-rank handle: rank id, cartesian position
in the rank grid, transport endpoints, and a scratch namespace the MD
engine hangs its per-rank state on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from repro.runtime.transport import Transport


@dataclass
class RankContext:
    """Per-rank state handle."""

    rank: int
    world: "World"
    grid_pos: tuple[int, int, int] = (0, 0, 0)
    #: free-form per-rank state (the MD engine stores its Domain etc. here)
    state: dict[str, Any] = field(default_factory=dict)

    def send(self, dst: int, tag, payload) -> None:
        """Send ``payload`` to ``dst`` through the world transport."""
        self.world.transport.send(self.rank, dst, tag, payload)

    def recv(self, src: int, tag):
        """Receive the oldest matching message (raises if missing)."""
        return self.world.transport.recv(self.rank, src, tag)

    def try_recv(self, src: int, tag):
        """Receive if available, else None."""
        return self.world.transport.try_recv(self.rank, src, tag)


class World:
    """``size`` simulated ranks arranged (optionally) on a 3D grid.

    Parameters
    ----------
    size:
        Total rank count.
    grid:
        Optional ``(px, py, pz)`` rank grid; must multiply to ``size``.
        When present, each rank knows its grid position — the basis of the
        3D domain decomposition and of neighbor enumeration.
    """

    def __init__(self, size: int, grid: tuple[int, int, int] | None = None) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        if grid is not None:
            px, py, pz = grid
            if px * py * pz != size:
                raise ValueError(f"grid {grid} does not multiply to size {size}")
        self.size = size
        self.grid = grid
        self.transport = Transport(size)
        self.ranks = [RankContext(r, self) for r in range(size)]
        if grid is not None:
            for r, ctx in enumerate(self.ranks):
                ctx.grid_pos = self.grid_pos_of(r)

    # -- grid arithmetic -----------------------------------------------------
    def grid_pos_of(self, rank: int) -> tuple[int, int, int]:
        """Rank -> (ix, iy, iz), x fastest (LAMMPS rank ordering)."""
        if self.grid is None:
            raise ValueError("world has no rank grid")
        px, py, pz = self.grid
        ix = rank % px
        iy = (rank // px) % py
        iz = rank // (px * py)
        return (ix, iy, iz)

    def rank_at(self, pos: tuple[int, int, int]) -> int:
        """(ix, iy, iz) -> rank, with periodic wrap on every axis."""
        if self.grid is None:
            raise ValueError("world has no rank grid")
        px, py, pz = self.grid
        ix, iy, iz = pos[0] % px, pos[1] % py, pos[2] % pz
        return ix + px * (iy + py * iz)

    def neighbor_rank(self, rank: int, offset: tuple[int, int, int]) -> int:
        """Rank at grid offset ``offset`` from ``rank`` (periodic)."""
        ix, iy, iz = self.grid_pos_of(rank)
        return self.rank_at((ix + offset[0], iy + offset[1], iz + offset[2]))

    # -- phase driving ---------------------------------------------------------
    def __iter__(self) -> Iterator[RankContext]:
        return iter(self.ranks)

    def run_phase(self, name: str, fn: Callable[[RankContext], None]) -> None:
        """Run ``fn`` once per rank, labelling the traffic with ``name``."""
        self.transport.set_phase(name)
        for ctx in self.ranks:
            fn(ctx)

    def run_exchange(
        self,
        name: str,
        send_fn: Callable[[RankContext], None],
        recv_fn: Callable[[RankContext], None],
    ) -> None:
        """A send sweep followed by a receive sweep (one bulk exchange)."""
        self.transport.set_phase(name)
        for ctx in self.ranks:
            send_fn(ctx)
        for ctx in self.ranks:
            recv_fn(ctx)

    # -- collectives helpers ------------------------------------------------------
    def gather_scalars(self, values: dict[int, float]) -> np.ndarray:
        """Utility: dense array of one scalar per rank (driver-side)."""
        out = np.zeros(self.size)
        for r, v in values.items():
            out[r] = v
        return out
