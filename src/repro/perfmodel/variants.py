"""The five artifact code variants (paper appendix "Artifact Description").

Each variant is a declarative spec consumed by the stage model:

=============  =======  ========  ============  =====  ==================
variant        stack    pattern   comm threads  TNIs   compute threading
=============  =======  ========  ============  =====  ==================
ref            MPI      3-stage   1             (MPI)  OpenMP
utofu_3stage   uTofu    3-stage   1             1      OpenMP
4tni_p2p       uTofu    p2p       1             1/rank OpenMP
6tni_p2p       uTofu    p2p       1             6      OpenMP
opt            uTofu    p2p       6             6      thread pool
=============  =======  ========  ============  =====  ==================

``mpi_p2p`` is added beyond the artifact list because Fig. 6 plots it
(the naive MPI p2p that *loses* to MPI 3-stage and motivates uTofu).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.params import FUGAKU, MachineParams
from repro.network.stacks import MpiStack, SoftwareStack, UtofuStack


@dataclass(frozen=True)
class Variant:
    """One code variant's communication/threading configuration."""

    name: str
    stack_name: str  # "mpi" | "utofu"
    pattern: str  # "3stage" | "p2p"
    comm_threads: int  # threads driving communication
    tnis_used: int  # distinct TNIs one rank injects through
    threadpool_compute: bool  # thread pool (True) vs OpenMP (False)
    rdma_preregistered: bool = False
    message_combine: bool = False
    border_bins: bool = False

    def stack(self, params: MachineParams = FUGAKU) -> SoftwareStack:
        """The software-stack cost model this variant runs on."""
        if self.stack_name == "mpi":
            return MpiStack(params=params)
        return UtofuStack(params=params)

    @property
    def is_parallel_comm(self) -> bool:
        return self.comm_threads > 1

    @property
    def label(self) -> str:
        return self.name


#: The paper's artifact variants plus the Fig. 6 MPI-p2p strawman.
VARIANTS: dict[str, Variant] = {
    "ref": Variant(
        name="ref",
        stack_name="mpi",
        pattern="3stage",
        comm_threads=1,
        tnis_used=1,
        threadpool_compute=False,
    ),
    "mpi_p2p": Variant(
        name="mpi_p2p",
        stack_name="mpi",
        pattern="p2p",
        comm_threads=1,
        tnis_used=1,
        threadpool_compute=False,
    ),
    "utofu_3stage": Variant(
        name="utofu_3stage",
        stack_name="utofu",
        pattern="3stage",
        comm_threads=1,
        tnis_used=1,
        threadpool_compute=False,
    ),
    "4tni_p2p": Variant(
        name="4tni_p2p",
        stack_name="utofu",
        pattern="p2p",
        comm_threads=1,
        tnis_used=1,  # each of the 4 ranks owns its own TNI
        threadpool_compute=False,
        rdma_preregistered=True,
        message_combine=True,
    ),
    "6tni_p2p": Variant(
        name="6tni_p2p",
        stack_name="utofu",
        pattern="p2p",
        comm_threads=1,
        tnis_used=6,  # one thread hopping across 6 VCQs (contended)
        threadpool_compute=False,
        rdma_preregistered=True,
        message_combine=True,
    ),
    "opt": Variant(
        name="opt",
        stack_name="utofu",
        pattern="p2p",
        comm_threads=6,
        tnis_used=6,
        threadpool_compute=True,
        rdma_preregistered=True,
        message_combine=True,
        border_bins=True,
    ),
}


def variant_by_name(name: str) -> Variant:
    """Look up a variant; raises ValueError with choices on miss."""
    try:
        return VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown variant {name!r}; choose from {sorted(VARIANTS)}"
        ) from None


def ablation_variants() -> dict[str, Variant]:
    """``opt`` with each optimization removed in turn.

    The paper reports sections 3.3-3.5 qualitatively; these variants let
    the stage model quantify each choice (the ablation bench).
    """
    from dataclasses import replace

    opt = VARIANTS["opt"]
    return {
        "opt": opt,
        "opt-openmp": replace(opt, name="opt-openmp", threadpool_compute=False),
        "opt-single-comm-thread": replace(
            opt, name="opt-single-comm-thread", comm_threads=1
        ),
        "opt-no-combine": replace(opt, name="opt-no-combine", message_combine=False),
        "opt-no-prereg": replace(
            opt, name="opt-no-prereg", rdma_preregistered=False
        ),
        "opt-no-borderbins": replace(
            opt, name="opt-no-borderbins", border_bins=False
        ),
    }
