"""Calibration sensitivity: is the reproduction's story robust?

Several machine constants are estimates (marked in
:class:`~repro.machine.params.MachineParams` and
:class:`~repro.perfmodel.stagemodel.CalibrationConstants`).  A
reproduction whose conclusions flip when an estimated constant moves by
30 % would be calibration-fitting, not reproduction.  This module
perturbs each constant over a multiplicative range and re-evaluates the
paper's qualitative claims:

* C1 — opt beats ref at 36 864 nodes (LJ), speedup > 1.5x;
* C2 — communication-time reduction stays above 50 %;
* C3 — naive MPI p2p stays slower than MPI 3-stage (Fig. 6);
* C4 — uTofu p2p stays faster than uTofu 3-stage (Fig. 6);
* C5 — single-thread 6TNI stays slower than 4TNI at small messages.

``sweep()`` reports, per constant, the perturbation range over which all
claims hold.  The bench asserts every claim survives +/-30 % on every
estimated constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.machine.params import FUGAKU, MachineParams
from repro.network.simulator import Message, simulate_round
from repro.network.stacks import UtofuStack
from repro.perfmodel.scaling import STRONG_LJ_ATOMS
from repro.perfmodel.stagemodel import LJ_WORKLOAD_65K, StageModel, Workload
from repro.perfmodel.variants import variant_by_name

#: MachineParams fields documented as estimates (not paper-measured).
ESTIMATED_PARAMS = (
    "hop_latency",
    "mpi_t_inj",
    "utofu_t_inj",
    "mpi_per_message_overhead",
    "utofu_per_message_overhead",
    "tni_engine_message_time",
    "vcq_switch_overhead",
    "registration_base",
    "buffer_copy_bandwidth",
)


@dataclass
class ClaimResults:
    """Truth value of each qualitative claim under one parameterization."""

    opt_beats_ref: bool
    comm_reduction_ok: bool
    mpi_p2p_loses: bool
    utofu_p2p_wins: bool
    six_tni_worse: bool

    @property
    def all_hold(self) -> bool:
        return all(
            (
                self.opt_beats_ref,
                self.comm_reduction_ok,
                self.mpi_p2p_loses,
                self.utofu_p2p_wins,
                self.six_tni_worse,
            )
        )

    def failed(self) -> list[str]:
        """Names of the claims that did not hold."""
        out = []
        for name in (
            "opt_beats_ref",
            "comm_reduction_ok",
            "mpi_p2p_loses",
            "utofu_p2p_wins",
            "six_tni_worse",
        ):
            if not getattr(self, name):
                out.append(name)
        return out


def evaluate_claims(params: MachineParams) -> ClaimResults:
    """Re-derive the five qualitative claims under ``params``."""
    model = StageModel(params)
    lj = Workload("lj", "lj", STRONG_LJ_ATOMS, 0.8442, 2.8, 0.005, rebuild_every=20)
    ref = model.step_times(lj, 36864, variant_by_name("ref"))
    opt = model.step_times(lj, 36864, variant_by_name("opt"))

    w = LJ_WORKLOAD_65K
    t_mpi3s = model.exchange_round_time(variant_by_name("ref"), w, 768)
    t_mpip2p = model.exchange_round_time(variant_by_name("mpi_p2p"), w, 768)
    t_ut3s = model.exchange_round_time(variant_by_name("utofu_3stage"), w, 768)
    t_utp2p = model.exchange_round_time(variant_by_name("4tni_p2p"), w, 768)

    stack = UtofuStack(params=params)
    four = simulate_round(
        [Message(256, rank=r, thread=0, tni=r) for r in range(4) for _ in range(40)],
        stack,
        params,
    )
    six = simulate_round(
        [
            Message(256, rank=r, thread=0, tni=i % 6)
            for r in range(4)
            for i in range(40)
        ],
        stack,
        params,
    )

    return ClaimResults(
        opt_beats_ref=ref.total / opt.total > 1.5,
        comm_reduction_ok=(1 - opt.stages["Comm"] / ref.stages["Comm"]) > 0.5,
        mpi_p2p_loses=t_mpip2p > t_mpi3s,
        utofu_p2p_wins=t_utp2p < t_ut3s,
        six_tni_worse=six.completion_time > four.completion_time,
    )


@dataclass
class SensitivityRow:
    """Sweep outcome for one constant."""

    name: str
    base_value: float
    results: dict[float, ClaimResults] = field(default_factory=dict)

    def holds_at(self, factor: float) -> bool:
        """Whether every claim held at the given perturbation factor."""
        return self.results[factor].all_hold

    @property
    def robust_range(self) -> tuple[float, float]:
        """Widest contiguous factor range (around 1.0) where all hold."""
        factors = sorted(self.results)
        lo = hi = 1.0
        for f in reversed([f for f in factors if f <= 1.0]):
            if self.results[f].all_hold:
                lo = f
            else:
                break
        for f in [f for f in factors if f >= 1.0]:
            if self.results[f].all_hold:
                hi = f
            else:
                break
        return (lo, hi)


def sweep(
    factors=(0.5, 0.7, 1.0, 1.3, 2.0),
    params: MachineParams = FUGAKU,
    names=ESTIMATED_PARAMS,
) -> list[SensitivityRow]:
    """Perturb each estimated constant and re-check every claim."""
    rows = []
    for name in names:
        base = getattr(params, name)
        row = SensitivityRow(name=name, base_value=base)
        for factor in factors:
            perturbed = replace(params, **{name: base * factor})
            row.results[factor] = evaluate_claims(perturbed)
        rows.append(row)
    return rows


def render(rows: list[SensitivityRow]) -> str:
    """Plain-text sensitivity table."""
    from repro.figures.common import format_table

    table_rows = []
    for row in rows:
        lo, hi = row.robust_range
        factors = sorted(row.results)
        marks = " ".join(
            ("Y" if row.results[f].all_hold else "n") for f in factors
        )
        table_rows.append([row.name, f"{row.base_value:.3g}", marks, f"[{lo}x, {hi}x]"])
    factors = sorted(rows[0].results) if rows else []
    title = (
        "Calibration sensitivity — claims hold (Y/n) at factors "
        + ", ".join(f"{f}x" for f in factors)
    )
    return format_table(["constant", "base", "claims hold", "robust range"], table_rows, title=title)
