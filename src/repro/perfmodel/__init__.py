"""Whole-application performance model for paper-scale experiments.

The functional engine runs real atoms on tens of ranks; the paper's
evaluation runs 768-36 864 *nodes*.  This package bridges the gap with a
calibrated per-stage model:

* :mod:`repro.perfmodel.variants` — the five artifact code variants
  (ref, utofu-3stage, 4tni-p2p, 6tni-p2p, opt/parallel-p2p) as
  declarative specs: software stack, pattern, threading, TNI binding.
* :mod:`repro.perfmodel.stagemodel` — per-stage times (Pair / Neigh /
  Comm / Modify / Other) for a workload on a variant; communication is
  priced by the discrete-event network simulator on the actual message
  schedule, compute stages by calibrated per-atom costs and the
  OpenMP/thread-pool overhead models.
* :mod:`repro.perfmodel.scaling` — strong/weak scaling sweeps and the
  derived metrics the figures report (speedup, parallel efficiency,
  tau/day, us/day).

Calibration anchors (documented per constant in ``stagemodel``) come
from the paper's Table 3 and section 3 micro-measurements; tests pin the
qualitative claims (orderings, crossovers, reduction percentages within
stated bands), not exact microseconds.
"""

from repro.perfmodel.variants import Variant, VARIANTS, variant_by_name
from repro.perfmodel.stagemodel import (
    CalibrationConstants,
    StageModel,
    StageTimesResult,
    Workload,
    LJ_WORKLOAD_65K,
    LJ_WORKLOAD_1M7,
    EAM_WORKLOAD_65K,
    EAM_WORKLOAD_1M7,
)
from repro.perfmodel.scaling import (
    ScalingPoint,
    strong_scaling,
    weak_scaling,
    parallel_efficiency,
    performance_per_day,
)
from repro.perfmodel.export import breakdown_to_csv, scaling_to_csv

__all__ = [
    "Variant",
    "VARIANTS",
    "variant_by_name",
    "CalibrationConstants",
    "StageModel",
    "StageTimesResult",
    "Workload",
    "LJ_WORKLOAD_65K",
    "LJ_WORKLOAD_1M7",
    "EAM_WORKLOAD_65K",
    "EAM_WORKLOAD_1M7",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "parallel_efficiency",
    "performance_per_day",
    "scaling_to_csv",
    "breakdown_to_csv",
]
