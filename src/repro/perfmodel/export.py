"""CSV export of scaling sweeps and stage breakdowns.

Downstream plotting (gnuplot, pandas, the paper-figure pipelines this
repository's tables feed) wants flat CSV; these helpers serialize the
perfmodel's result objects without pulling in any plotting dependency.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from repro.perfmodel.scaling import ScalingPoint, parallel_efficiency
from repro.perfmodel.stagemodel import StageTimesResult

STAGE_ORDER = ("Pair", "Neigh", "Comm", "Modify", "Other")


def scaling_to_csv(points: Sequence[ScalingPoint], path=None) -> str:
    """Serialize a scaling curve: one row per node count.

    Columns: nodes, natoms, atoms_per_core, step time, parallel
    efficiency, and the five per-stage seconds.  Returns the CSV text;
    writes it to ``path`` when given.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["nodes", "natoms", "atoms_per_core", "step_seconds", "efficiency"]
        + [f"{s.lower()}_seconds" for s in STAGE_ORDER]
    )
    effs = parallel_efficiency(list(points))
    for p, eff in zip(points, effs):
        writer.writerow(
            [
                p.nodes,
                p.natoms,
                f"{p.atoms_per_core:.6g}",
                f"{p.step_time:.8e}",
                f"{eff:.6f}",
            ]
            + [f"{p.result.stages[s]:.8e}" for s in STAGE_ORDER]
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def breakdown_to_csv(results: Sequence[StageTimesResult], path=None) -> str:
    """Serialize stage breakdowns: one row per (workload, variant, nodes)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["workload", "variant", "nodes", "total_seconds"]
        + [f"{s.lower()}_seconds" for s in STAGE_ORDER]
        + [f"{s.lower()}_pct" for s in STAGE_ORDER]
    )
    for r in results:
        writer.writerow(
            [r.workload, r.variant, r.nodes, f"{r.total:.8e}"]
            + [f"{r.stages[s]:.8e}" for s in STAGE_ORDER]
            + [f"{r.percent(s):.3f}" for s in STAGE_ORDER]
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
