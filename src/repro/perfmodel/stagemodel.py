"""Per-stage time model: one MD step of a workload on a variant.

The model composes, per step:

* **Pair** — per-atom force cost (calibrated per potential) divided over
  the 12 worker threads, a fixed list-traversal cost, the parallel-region
  fork/join overhead (OpenMP for the baseline variants, thread pool for
  ``opt`` — the section 3.3 measurement), a load-imbalance factor, and
  for EAM the two mid-pair ghost exchanges priced on this variant's
  communication configuration (they are counted in Pair, as LAMMPS and
  Table 3 do).
* **Neigh** — rebuild cost amortized over the rebuild interval.
* **Comm** — forward + reverse rounds every step plus border + exchange
  on rebuild steps, all priced by the discrete-event network simulator
  on the variant's actual message schedule (stack, pattern, threads,
  TNI binding), plus the scale-dependent synchronization-noise
  absorption described below.
* **Modify** — NVE update + its parallel-region overhead (the stage the
  paper saw go 10x slower under OpenMP at small atom counts).
* **Other** — output plus, for EAM's ``check yes`` policy, the global
  allreduce every 5 steps (Table 3's dominant "Other" cost at scale).

**Synchronization noise.**  The paper's absolute stage times at 36 864
nodes (Table 3) are far larger than pure message arithmetic predicts —
at 147 456 ranks every bulk-synchronous exchange absorbs OS jitter and
arrival skew.  We model this with a per-step noise budget
``c_os_noise * ln(total_ranks)`` charged to the synchronizing stages:
staged patterns absorb all of it in Comm (every stage is a sync point);
the parallel p2p pattern splits it between Comm and Other (its single
dependency round re-syncs less often).  The constant is calibrated so
the Table 3 *percentages* come out right; pure-communication
microbenchmarks (Fig. 6/8) never include this term, matching how the
paper's tight comm loops keep ranks in lockstep.

Calibration notes per constant are inline; tests assert the paper's
qualitative claims (orderings, reduction bands, crossovers), not exact
microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.analytic import analyze_p2p, analyze_three_stage
from repro.machine.params import FUGAKU, MachineParams
from repro.network.simulator import Message, NetworkSimulator
from repro.perfmodel.variants import Variant
from repro.runtime.collectives import allreduce_cost
from repro.runtime.threadpool import WorkItem, split_load

BYTES_PER_ATOM_FORWARD = 24  # 3 float64 coordinates
BYTES_PER_ATOM_BORDER = 32  # coordinates + tag


@dataclass(frozen=True)
class CalibrationConstants:
    """Every tunable of the stage model, with provenance."""

    # Per-atom pair force cost, single core (estimated from LAMMPS
    # throughput on A64FX-class cores; EAM pays its two passes plus
    # spline interpolation of rho/phi/F — calibrated against the Table 3
    # Pair-stage ratio between Origin-EAM and Opt-EAM).
    c_atom_pair_lj: float = 0.5e-6
    c_atom_pair_eam: float = 6.0e-6
    # Fixed per-step pair-stage cost (list traversal setup, cache warm).
    c_pair_fixed: float = 2.0e-6
    # Parallel regions entered per step per stage (drives the OpenMP vs
    # thread-pool gap; EAM's two passes double the pair regions).
    pair_regions_lj: int = 2
    pair_regions_eam: int = 4
    modify_regions: int = 2
    neigh_regions: int = 1
    # Neighbor rebuild: per-atom binning+stencil cost, single core.
    c_neigh_atom: float = 0.4e-6
    # NVE update per atom, single core.
    c_mod_atom: float = 0.01e-6
    # Output/bookkeeping per step ("Other" floor).
    c_output: float = 3.0e-6
    # Per-atom-per-region border test (ablation: border bins cut the
    # count from ~27 axis tests to 6 per atom).
    c_region_test: float = 2.0e-9
    # Probability that a rebuild grows a communication buffer when
    # buffers are NOT pre-sized (ablation: forces re-registration).
    buffer_growth_probability: float = 0.2
    # OS/sync noise absorbed per step per sync chain at scale; the
    # ln(ranks) scaling follows the standard jitter-absorption argument.
    c_os_noise: float = 1.2e-6
    # Fraction of the noise budget the parallel-p2p pattern absorbs in
    # Comm (the rest surfaces at the next global sync -> Other).
    parallel_noise_comm_fraction: float = 0.7
    # Load imbalance cap (Poisson max/mean saturates with migration).
    imbalance_cap: float = 3.0


@dataclass(frozen=True)
class Workload:
    """One benchmark system (paper Table 2 + section 4 scales)."""

    name: str
    potential: str  # "lj" | "eam"
    natoms: int
    density: float  # atoms per unit volume (model units)
    rcomm: float  # cutoff + skin, model units
    dt: float
    rebuild_every: int  # effective rebuild interval in steps
    allreduce_every: int = 0  # 0: no global check (LJ); EAM: 5
    newton: bool = True
    shell_radius: int = 1

    @property
    def time_unit_per_step(self) -> float:
        return self.dt


#: The paper's four step-by-step workloads (Fig. 12) at 768 nodes; atom
#: counts follow section 3 ("65K and 1.7 million hydrogen atoms").
LJ_WORKLOAD_65K = Workload(
    "lj-65k", "lj", 65_536, 0.8442, 2.8, 0.005, rebuild_every=20
)
LJ_WORKLOAD_1M7 = Workload(
    "lj-1.7m", "lj", 1_700_000, 0.8442, 2.8, 0.005, rebuild_every=20
)
EAM_WORKLOAD_65K = Workload(
    "eam-65k", "eam", 65_536, 0.0847, 5.95, 0.005, rebuild_every=20, allreduce_every=5
)
EAM_WORKLOAD_1M7 = Workload(
    "eam-1.7m", "eam", 1_700_000, 0.0847, 5.95, 0.005, rebuild_every=20, allreduce_every=5
)


@dataclass
class StageTimesResult:
    """Per-step stage seconds for one (workload, nodes, variant)."""

    workload: str
    variant: str
    nodes: int
    stages: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def percent(self, stage: str) -> float:
        """Stage share of the step in percent."""
        return 100.0 * self.stages[stage] / self.total if self.total else 0.0

    def breakdown(self) -> dict[str, tuple[float, float]]:
        """Stage -> (seconds, percent), Table 3 style."""
        return {k: (v, self.percent(k)) for k, v in self.stages.items()}


class StageModel:
    """Prices one MD step of a workload on a variant at a node count."""

    def __init__(
        self,
        params: MachineParams = FUGAKU,
        calib: CalibrationConstants | None = None,
    ) -> None:
        self.params = params
        self.calib = calib if calib is not None else CalibrationConstants()

    # -- helpers -----------------------------------------------------------
    def ranks(self, nodes: int) -> int:
        """Total MPI ranks at ``nodes`` (4 per node)."""
        return nodes * self.params.ranks_per_node

    def atoms_per_rank(self, w: Workload, nodes: int) -> float:
        """Average atoms owned per rank."""
        return w.natoms / self.ranks(nodes)

    def sub_box_edge(self, w: Workload, nodes: int) -> float:
        """Cubic sub-box side implied by atoms/rank and density."""
        return (self.atoms_per_rank(w, nodes) / w.density) ** (1.0 / 3.0)

    def imbalance(self, w: Workload, nodes: int) -> float:
        """Poisson max/mean across ranks: 1 + sqrt(2 ln R / mean)."""
        mean = max(self.atoms_per_rank(w, nodes), 1.0)
        r = max(self.ranks(nodes), 2)
        return min(1.0 + math.sqrt(2.0 * math.log(r) / mean), self.calib.imbalance_cap)

    def _region_overhead(self, variant: Variant, regions: int) -> float:
        per = (
            self.params.threadpool_fork_join
            if variant.threadpool_compute
            else self.params.openmp_fork_join
        )
        return regions * per

    def noise_budget(self, nodes: int) -> float:
        """Per-step OS/sync jitter at this scale."""
        return self.calib.c_os_noise * math.log(max(self.ranks(nodes), 2))

    # -- communication rounds --------------------------------------------------
    def _node_messages(
        self,
        variant: Variant,
        w: Workload,
        nodes: int,
        bytes_per_atom: int,
    ) -> list[list[Message]] | list[Message]:
        """Message schedule of one node's 4 ranks for one exchange.

        Returns a list of stages (3-stage) or a flat list (p2p).
        """
        a = self.sub_box_edge(w, nodes)
        known = variant.message_combine
        if variant.pattern == "3stage":
            ana = analyze_three_stage(a, w.rcomm, w.density, bytes_per_atom)
            stages = []
            for cls in ana.classes:
                stage = []
                for rank in range(self.params.ranks_per_node):
                    for _ in range(cls.count):
                        stage.append(
                            Message(
                                nbytes=max(cls.nbytes, 8),
                                hops=cls.hops,
                                rank=rank,
                                thread=0,
                                tni=rank % self.params.tnis_per_node,
                                known_length=known,
                            )
                        )
                stages.append(stage)
            return stages

        ana = analyze_p2p(
            a,
            w.rcomm,
            w.density,
            bytes_per_atom,
            newton=w.newton,
            radius=w.shell_radius,
        )
        per_rank: list[tuple[int, int]] = []
        for cls in ana.classes:
            per_rank.extend([(max(cls.nbytes, 8), cls.hops)] * cls.count)

        msgs: list[Message] = []
        for rank in range(self.params.ranks_per_node):
            if variant.comm_threads > 1:
                # Fig. 10 load balancing: LPT over the comm threads by
                # estimated message cost; thread t drives TNI t.
                stack = variant.stack(self.params)
                items = [
                    WorkItem(
                        payload=(nbytes, hops),
                        cost=stack.injection_interval(nbytes)
                        + self.params.wire_time(nbytes, hops),
                    )
                    for nbytes, hops in per_rank
                ]
                for thread, bucket in enumerate(
                    split_load(items, variant.comm_threads)
                ):
                    for item in bucket:
                        nbytes, hops = item.payload
                        msgs.append(
                            Message(
                                nbytes=nbytes,
                                hops=hops,
                                rank=rank,
                                thread=thread,
                                tni=thread,
                                known_length=known,
                            )
                        )
            else:
                for i, (nbytes, hops) in enumerate(per_rank):
                    if variant.tnis_used > 1:
                        tni = i % variant.tnis_used  # VCQ hopping (6tni mode)
                    else:
                        tni = rank % self.params.tnis_per_node
                    msgs.append(
                        Message(
                            nbytes=nbytes,
                            hops=hops,
                            rank=rank,
                            thread=0,
                            tni=tni,
                            known_length=known,
                        )
                    )
        return msgs

    def exchange_round_time(
        self,
        variant: Variant,
        w: Workload,
        nodes: int,
        bytes_per_atom: int = BYTES_PER_ATOM_FORWARD,
    ) -> float:
        """One forward-equivalent exchange on this variant (no noise).

        Pack/unpack is part of the exchange: the staged pattern pays it
        serially inside every stage (the "threefold magnification" the
        paper describes at 1.7M atoms, section 4.2), while p2p overlaps
        copying with the transmission of earlier messages — only the
        portion exceeding the wire time remains visible.
        """
        stack = variant.stack(self.params)
        sim = NetworkSimulator(stack, self.params)
        sched = self._node_messages(variant, w, nodes, bytes_per_atom)
        if variant.pattern == "3stage":
            flat = [m for stage in sched for m in stage]
            pack = sum(m.nbytes for m in flat) / (
                self.params.buffer_copy_bandwidth * self.params.ranks_per_node
            )
            t = sim.run_staged(sched).completion_time + 2.0 * pack  # pack+unpack
        else:
            pack = sum(m.nbytes for m in sched) / (
                self.params.buffer_copy_bandwidth * self.params.ranks_per_node
            )
            wire = sim.run_round(sched).completion_time
            t = max(wire, 2.0 * pack)  # copies hide behind transmission
        if variant.comm_threads > 1:
            # Thread-pool dispatch + join wraps the parallel round.
            t += self.params.threadpool_fork_join
        return t

    # -- stages -------------------------------------------------------------------
    def step_times(
        self, w: Workload, nodes: int, variant: Variant
    ) -> StageTimesResult:
        """Price one MD step: the five-stage breakdown."""
        c = self.calib
        p = self.params
        threads = p.threads_per_rank
        atoms = self.atoms_per_rank(w, nodes)
        imb = self.imbalance(w, nodes)
        nu = self.noise_budget(nodes)

        is_eam = w.potential == "eam"
        c_atom = c.c_atom_pair_eam if is_eam else c.c_atom_pair_lj
        pair_regions = c.pair_regions_eam if is_eam else c.pair_regions_lj

        # --- communication rounds (pure message time) -------------------
        fwd = self.exchange_round_time(variant, w, nodes, BYTES_PER_ATOM_FORWARD)
        rev = fwd if w.newton else 0.0
        border = self.exchange_round_time(variant, w, nodes, BYTES_PER_ATOM_BORDER)
        exchange_mig = 0.3 * fwd  # migration is a sparse subset of a border

        # Ablations of the section 3.4/3.5 optimizations ---------------
        n_msgs = 13 if w.newton else 26
        if variant.pattern == "p2p" and variant.stack_name == "utofu":
            if not variant.message_combine:
                # Two-step unknown-length protocol: one extra tiny
                # injection per border message.
                stack = variant.stack(p)
                border += n_msgs * (
                    stack.injection_interval(8) + stack.software_latency(8)
                )
            if not variant.rdma_preregistered:
                # Dynamically grown buffers re-register on growth.
                border += (
                    c.buffer_growth_probability
                    * n_msgs
                    * p.registration_cost(4096)
                )
        # Border-atom routing CPU: bins classify once, brute scans all
        # neighbor regions (~27 axis tests for the half shell).
        tests = 6.0 if variant.border_bins else 27.0
        border += atoms * tests * c.c_region_test / threads

        comm = fwd + rev + (border + exchange_mig) / w.rebuild_every

        # Noise absorption at the comm sync chain.
        if variant.pattern == "3stage" or variant.comm_threads == 1:
            comm_noise, other_noise = nu, 0.0
        else:
            comm_noise = nu * c.parallel_noise_comm_fraction
            other_noise = nu * (1.0 - c.parallel_noise_comm_fraction)
        comm += comm_noise

        # --- pair -----------------------------------------------------------
        pair = (
            c.c_pair_fixed
            + self._region_overhead(variant, pair_regions)
            + (atoms * c_atom / threads) * imb
        )
        if is_eam:
            # Two mid-pair ghost exchanges (density reverse + fp forward),
            # priced on this variant's comm configuration — the pair-stage
            # communication the paper also optimizes (section 4.2).
            pair += 2.0 * self.exchange_round_time(
                variant, w, nodes, bytes_per_atom=8
            )

        # --- neigh ------------------------------------------------------------
        neigh = (
            self._region_overhead(variant, c.neigh_regions)
            + (atoms * c.c_neigh_atom / threads) * imb
        ) / w.rebuild_every

        # --- modify ------------------------------------------------------------
        modify = self._region_overhead(variant, c.modify_regions) + (
            atoms * c.c_mod_atom / threads
        )

        # --- other --------------------------------------------------------------
        other = c.c_output + other_noise
        if w.allreduce_every:
            stack = variant.stack(self.params)  # allreduce stays MPI-like
            other += (
                allreduce_cost(self.ranks(nodes), 8, stack, p) + nu
            ) / w.allreduce_every

        return StageTimesResult(
            workload=w.name,
            variant=variant.name,
            nodes=nodes,
            stages={
                "Pair": pair,
                "Neigh": neigh,
                "Comm": comm,
                "Modify": modify,
                "Other": other,
            },
        )
