"""Strong/weak scaling sweeps and derived figure metrics.

Reproduces the axes of Figs. 13 and 14:

* Strong scaling (Fig. 13): fixed total atoms (4,194,304 LJ / 3,456,000
  EAM), node counts {768, 2160, 6144, 18432, 36864}; report step time,
  simulated time per day (Mtau/day for LJ, us/day for EAM), speedup of
  ``opt`` over ``ref``, and parallel efficiency relative to the first
  point.
* Weak scaling (Fig. 14): fixed atoms per core (100K LJ / 72K EAM),
  nodes {768, 2160, 6144, 20736}; report atoms simulated per second
  (nearly flat per-step time = linear scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machine.params import FUGAKU, MachineParams
from repro.perfmodel.stagemodel import StageModel, StageTimesResult, Workload
from repro.perfmodel.variants import Variant, variant_by_name

#: Node counts of the paper's strong-scaling sweep (section 4.3.1).
STRONG_SCALING_NODES = (768, 2160, 6144, 18432, 36864)
#: Node counts of the weak-scaling sweep (section 4.3.2).
WEAK_SCALING_NODES = (768, 2160, 6144, 20736)

#: Strong-scaling particle counts (section 4.3.1).
STRONG_LJ_ATOMS = 4_194_304
STRONG_EAM_ATOMS = 3_456_000
#: Weak-scaling atoms per core (section 4.3.2).
WEAK_LJ_ATOMS_PER_CORE = 100_000
WEAK_EAM_ATOMS_PER_CORE = 72_000


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    nodes: int
    natoms: int
    result: StageTimesResult

    @property
    def step_time(self) -> float:
        return self.result.total

    @property
    def atoms_per_core(self) -> float:
        return self.natoms / (self.nodes * 48)


def strong_scaling(
    workload: Workload,
    variant: Variant | str,
    nodes_list=STRONG_SCALING_NODES,
    params: MachineParams = FUGAKU,
    model: StageModel | None = None,
) -> list[ScalingPoint]:
    """Fixed-size sweep over node counts."""
    if isinstance(variant, str):
        variant = variant_by_name(variant)
    model = model if model is not None else StageModel(params)
    return [
        ScalingPoint(n, workload.natoms, model.step_times(workload, n, variant))
        for n in nodes_list
    ]


def weak_scaling(
    workload: Workload,
    variant: Variant | str,
    atoms_per_core: int,
    nodes_list=WEAK_SCALING_NODES,
    params: MachineParams = FUGAKU,
    model: StageModel | None = None,
) -> list[ScalingPoint]:
    """Fixed atoms-per-core sweep over node counts."""
    if isinstance(variant, str):
        variant = variant_by_name(variant)
    model = model if model is not None else StageModel(params)
    out = []
    for n in nodes_list:
        natoms = atoms_per_core * n * 48
        w = replace(workload, natoms=natoms)
        out.append(ScalingPoint(n, natoms, model.step_times(w, n, variant)))
    return out


def ranks_to_nodes(ranks: int, params: MachineParams = FUGAKU) -> int:
    """Node count whose rank budget best matches ``ranks``.

    The stage model is parameterized by *nodes* (``StageModel.ranks``
    multiplies by ``params.ranks_per_node``); the functional engine is
    parameterized by *ranks*.  This is the bridge the scaling
    observatory uses to project a measured rank grid onto the model's
    node axis — never below one node.
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    return max(1, round(ranks / params.ranks_per_node))


def modeled_ladder(
    workload: Workload,
    variant: Variant | str,
    ranks_list,
    params: MachineParams = FUGAKU,
    model: StageModel | None = None,
) -> list[ScalingPoint]:
    """Strong-scaling sweep over *rank* counts (for measured ladders).

    Maps each rank count through :func:`ranks_to_nodes` and prices the
    fixed-size workload at the resulting node counts.  Used by
    ``repro.obs.scaling`` to put predicted and measured curves on the
    same axis.
    """
    nodes_list = [ranks_to_nodes(r, params) for r in ranks_list]
    return strong_scaling(workload, variant, nodes_list, params, model)


def parallel_efficiency(points: list[ScalingPoint]) -> list[float]:
    """Fig. 13a percentages: efficiency vs the first (768-node) point.

    ``eff_i = (t_0 * n_0) / (t_i * n_i)`` for strong scaling.
    """
    if not points:
        return []
    t0, n0 = points[0].step_time, points[0].nodes
    return [t0 * n0 / (p.step_time * p.nodes) for p in points]


def performance_per_day(point: ScalingPoint, dt: float) -> float:
    """Simulated time units per wall-clock day (Fig. 13a right axis).

    For LJ, dt is in tau -> returns tau/day (paper: 8.77 Mtau/day).
    For EAM, dt in ps -> returns ps/day (paper: 2.87 us/day = 2.87e6 ps).
    """
    steps_per_day = 86400.0 / point.step_time
    return steps_per_day * dt


def weak_scaling_rate(points: list[ScalingPoint]) -> list[float]:
    """Fig. 14 y-axis: atom-steps per second."""
    return [p.natoms / p.step_time for p in points]
