"""Fugaku hardware substrate.

This subpackage models the pieces of the Fugaku supercomputer that the
paper's communication layer touches:

* :mod:`repro.machine.params` — every calibrated timing/size constant,
  collected in one frozen dataclass so experiments are reproducible and
  sweepable.
* :mod:`repro.machine.a64fx` — the A64FX node: 4 CMGs of 12 compute cores
  (+1 assistant core) and HBM2 memory groups.
* :mod:`repro.machine.topology` — the TofuD 6D mesh/torus coordinate
  system (X, Y, Z, a, b, c), its 2x3x2 cells, and hop-count routing.
* :mod:`repro.machine.tni` — the Tofu Network Interfaces: 6 TNIs per node,
  9 control queues (CQ) per TNI, and the VCQ binding rules the paper's
  fine-grained thread pool exploits.
* :mod:`repro.machine.rdma` — one-sided RDMA put/get with explicit memory
  registration (the cost the paper's pre-registered buffers avoid).

The real hardware obviously cannot run here; these models reproduce the
*geometry* (coordinates, hops, queue ownership) exactly and the *timing*
through the calibrated constants in :class:`~repro.machine.params.MachineParams`.
"""

from repro.machine.params import MachineParams, FUGAKU
from repro.machine.a64fx import A64FX, CMG
from repro.machine.topology import TofuCoord, TofuTopology, TOFU_CELL_SHAPE
from repro.machine.tni import TNI, ControlQueue, VirtualControlQueue, NodeNIC
from repro.machine.rdma import RdmaEngine, MemoryRegion, RegistrationCache

__all__ = [
    "MachineParams",
    "FUGAKU",
    "A64FX",
    "CMG",
    "TofuCoord",
    "TofuTopology",
    "TOFU_CELL_SHAPE",
    "TNI",
    "ControlQueue",
    "VirtualControlQueue",
    "NodeNIC",
    "RdmaEngine",
    "MemoryRegion",
    "RegistrationCache",
]
