"""Dimension-order routing and link-congestion analysis.

The TofuD router forwards packets dimension by dimension (x, y, z, a,
b, c), taking the short way around each torus ring.  This module
enumerates the actual links of each route so placements can be compared
by *congestion*, not just hop count — the quantitative backing for the
paper's topo-map optimization (section 3.5.3): mapping the MD rank grid
onto the torus keeps neighbor traffic on disjoint short paths, while a
random placement piles unrelated routes onto shared links.

A link is identified as ``(node_coord, axis, direction)`` — the egress
port used.  Each node has at most 10 ports (2 per torus axis of x, y,
z, b; 1 each for the mesh axes a, c), matching the hardware.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.machine.topology import AXIS_NAMES, TORUS_AXES, TofuCoord, TofuTopology


@dataclass(frozen=True)
class Link:
    """One directed egress link: from ``node`` along ``axis`` toward ``direction``."""

    node: TofuCoord
    axis: int  # 0..5 = x y z a b c
    direction: int  # +1 or -1

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        sign = "+" if self.direction > 0 else "-"
        return f"{self.node}{sign}{AXIS_NAMES[self.axis]}"


def _axis_steps(src: int, dst: int, size: int, torus: bool) -> list[int]:
    """Per-hop directions along one axis (short way around on tori)."""
    if src == dst:
        return []
    fwd = (dst - src) % size
    back = (src - dst) % size
    if torus and size > 1:
        if fwd <= back:
            return [+1] * fwd
        return [-1] * back
    # Mesh: must go directly.
    step = 1 if dst > src else -1
    return [step] * abs(dst - src)


def route(topo: TofuTopology, src: TofuCoord, dst: TofuCoord) -> list[Link]:
    """The links of the dimension-order route from ``src`` to ``dst``."""
    for c in (src, dst):
        if not topo.contains(c):
            raise ValueError(f"coordinate {c} outside topology")
    links: list[Link] = []
    current = list(src.as_tuple())
    for axis in range(6):
        size = topo.full_shape[axis]
        for step in _axis_steps(current[axis], dst.as_tuple()[axis], size, TORUS_AXES[axis]):
            links.append(Link(TofuCoord(*current), axis, step))
            current[axis] = (current[axis] + step) % size
    assert tuple(current) == dst.as_tuple()
    return links


@dataclass
class CongestionReport:
    """Link-load statistics for a set of routed messages."""

    total_messages: int
    total_link_traversals: int
    max_link_load: int
    distinct_links: int

    @property
    def mean_hops(self) -> float:
        if self.total_messages == 0:
            return 0.0
        return self.total_link_traversals / self.total_messages

    @property
    def congestion(self) -> float:
        """Max over mean link load — 1.0 means perfectly spread."""
        if self.distinct_links == 0:
            return 0.0
        mean = self.total_link_traversals / self.distinct_links
        return self.max_link_load / mean if mean > 0 else 0.0


def link_congestion(
    topo: TofuTopology, pairs: list[tuple[TofuCoord, TofuCoord]]
) -> CongestionReport:
    """Route every (src, dst) pair and report link-load statistics.

    Same-node pairs contribute zero links (NoC traffic, not network).
    """
    loads: Counter = Counter()
    traversals = 0
    for src, dst in pairs:
        for link in route(topo, src, dst):
            loads[link] += 1
            traversals += 1
    return CongestionReport(
        total_messages=len(pairs),
        total_link_traversals=traversals,
        max_link_load=max(loads.values(), default=0),
        distinct_links=len(loads),
    )


def neighbor_traffic_pairs(
    topo_map, offsets: list[tuple[int, int, int]], placement: dict | None = None
) -> list[tuple[TofuCoord, TofuCoord]]:
    """(src, dst) node coordinates for every rank's sends to ``offsets``.

    ``placement`` optionally remaps rank grid positions to other rank
    grid positions (e.g. a random permutation) to model a
    topology-oblivious scheduler; ``None`` is the paper's topo map.
    """
    pairs = []
    gx, gy, gz = topo_map.rank_grid
    for x in range(gx):
        for y in range(gy):
            for z in range(gz):
                src_pos = (x, y, z)
                for off in offsets:
                    dst_pos = tuple(
                        (p + o) % g for p, o, g in zip(src_pos, off, topo_map.rank_grid)
                    )
                    a, b = src_pos, dst_pos
                    if placement is not None:
                        a, b = placement[a], placement[b]
                    na = topo_map.node_of_rank(a)
                    nb = topo_map.node_of_rank(b)
                    if na == nb:
                        continue  # intra-node: no network links
                    pairs.append(
                        (
                            topo_map.topology.coord_for_virtual(na),
                            topo_map.topology.coord_for_virtual(nb),
                        )
                    )
    return pairs
