"""Calibrated machine parameters for the Fugaku substrate.

Every timing constant used by the network simulator and the performance
model lives here, in a single frozen dataclass.  The values are anchored to
numbers reported in the paper (and the TofuD paper it cites):

* uTofu RDMA PUT minimal latency: **0.49 us** (paper section 2.2).
* Link bandwidth: **6.8 GB/s** per port, 10 ports per node (section 2.2).
* Thread-pool start/sync overhead **1.1 us** vs OpenMP **5.8 us**
  (section 3.3, measured by the authors).
* The MPI software stack's injection interval ``T_inj`` is large enough
  that a naive MPI p2p (12 extra injections) loses to MPI 3-stage, while
  the uTofu ``T_inj`` is small enough that uTofu-p2p beats uTofu-3stage by
  about 1.5x (section 3.2, Fig. 6).  We calibrate ``mpi_t_inj = 1.45 us``
  and ``utofu_t_inj = 0.135 us`` to reproduce those orderings and the
  reported 79 % reduction of uTofu-p2p vs MPI-3stage.
* A64FX: 4 CMGs x 12 compute cores, 512-bit SVE, 32 DP flop/cycle/core at
  2.0 GHz nominal (section 2.2 and the A64FX reference the paper cites).

Anything not stated in the paper is estimated from the cited literature and
clearly marked ``# estimated``.  Tests in ``tests/machine/test_params.py``
pin the orderings the paper's analysis depends on (e.g. the Fig. 6
inequalities), so a recalibration that breaks the paper's story fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineParams:
    """All calibrated constants of the simulated machine.

    Times are in **seconds**, sizes in **bytes**, rates in **bytes/second**
    unless a field name says otherwise.  Instances are immutable; derive
    variants with :meth:`evolve`.
    """

    # --- node / CPU ------------------------------------------------------
    cmgs_per_node: int = 4
    compute_cores_per_cmg: int = 12
    assistant_cores_per_cmg: int = 1
    clock_hz: float = 2.0e9
    dp_flops_per_cycle_per_core: float = 32.0  # 2x 512-bit SVE FMA pipes
    hbm_bandwidth_per_cmg: float = 256e9  # HBM2, section 2.2
    hbm_capacity_per_cmg: float = 8 * 2**30

    # --- TofuD network ---------------------------------------------------
    tnis_per_node: int = 6
    cqs_per_tni: int = 9
    ports_per_node: int = 10
    link_bandwidth: float = 6.8e9  # per paper: 6.8 GB/s injection per port
    hop_latency: float = 0.08e-6  # estimated per-hop switch delay
    rdma_put_latency: float = 0.49e-6  # paper: uTofu minimal latency
    cache_injection_saving: float = 0.05e-6  # estimated LLC-injection gain
    tni_engine_message_time: float = 0.08e-6  # estimated engine occupancy floor
    vcq_switch_overhead: float = 0.06e-6  # estimated cost of hopping VCQs
    mrq_poll_cost: float = 0.3e-6  # estimated per-message completion handling
    ring_probe_cost: float = 0.01e-6  # estimated single ring-status probe

    # --- software stacks -------------------------------------------------
    # T_inj: interval between two consecutive messages reaching the network
    # from the same sending core (paper section 3.1, citing Zambre et al.).
    mpi_t_inj: float = 1.45e-6  # calibrated: heavy MPI stack
    utofu_t_inj: float = 0.135e-6  # calibrated: thin one-sided stack
    mpi_per_message_overhead: float = 0.95e-6  # tag matching, fragmentation
    utofu_per_message_overhead: float = 0.12e-6  # descriptor build + ring
    mpi_rendezvous_threshold: int = 16 * 1024  # eager/rendezvous switch
    mpi_rendezvous_extra: float = 1.8e-6  # RTS/CTS handshake round trip
    mpi_unknown_length_extra_message: bool = True  # 2-step length protocol

    # --- memory registration (section 3.4) --------------------------------
    registration_base: float = 2.4e-6  # kernel trap, estimated
    registration_per_page: float = 0.25e-6  # page pinning, estimated
    page_size: int = 4096
    buffer_copy_bandwidth: float = 20e9  # pack/unpack memcpy rate

    # --- threading (section 3.3) -----------------------------------------
    threadpool_fork_join: float = 1.1e-6  # paper-measured
    openmp_fork_join: float = 5.8e-6  # paper-measured
    comm_threads_per_rank: int = 6

    # --- deployment -------------------------------------------------------
    ranks_per_node: int = 4  # one per CMG (section 3.2)

    # ---------------------------------------------------------------------
    @property
    def cores_per_node(self) -> int:
        """Compute cores available to the application per node."""
        return self.cmgs_per_node * self.compute_cores_per_cmg

    @property
    def node_peak_flops(self) -> float:
        """Peak double-precision flop/s of one node."""
        return self.cores_per_node * self.clock_hz * self.dp_flops_per_cycle_per_core

    @property
    def threads_per_rank(self) -> int:
        """Worker threads per MPI rank (12 on Fugaku: 48 cores / 4 ranks)."""
        return self.cores_per_node // self.ranks_per_node

    def registration_cost(self, nbytes: int) -> float:
        """Cost of registering ``nbytes`` of memory for RDMA.

        Registration requires a kernel trap plus per-page pinning; this is
        the overhead the paper's pre-registered address scheme (section
        3.4) pays exactly once instead of on every buffer growth.
        """
        if nbytes <= 0:
            return self.registration_base
        pages = -(-nbytes // self.page_size)
        return self.registration_base + pages * self.registration_per_page

    def wire_time(self, nbytes: int, hops: int) -> float:
        """Pure hardware time for one message of ``nbytes`` over ``hops``.

        Transmission is fully pipelined (section 3.1), so serialization is
        paid once and each extra hop adds only switch latency.
        """
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        serial = nbytes / self.link_bandwidth
        return self.rdma_put_latency + max(hops - 1, 0) * self.hop_latency + serial

    def copy_time(self, nbytes: int) -> float:
        """Time to memcpy ``nbytes`` (pack/unpack of ghost buffers)."""
        return nbytes / self.buffer_copy_bandwidth

    def evolve(self, **changes) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: The default, paper-calibrated Fugaku machine.
FUGAKU = MachineParams()
