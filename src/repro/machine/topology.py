"""TofuD 6D mesh/torus topology.

Fugaku's interconnect addresses every node with a six-dimensional
coordinate ``(x, y, z, a, b, c)`` (paper Fig. 3):

* ``(a, b, c)`` index a node within a **cell** of 12 nodes shaped
  ``2 x 3 x 2``.  The ``a`` and ``c`` axes are 2-node *meshes* (one port
  each); the ``b`` axis is a 3-node *torus* (two ports).
* ``(x, y, z)`` index the cell within a system-wide 3D **torus** (two
  ports per axis).

This module reproduces that geometry exactly: coordinate arithmetic,
shortest-path hop counts under dimension-order routing, and the folding of
the 6D space into a *virtual 3D torus* that lets a 3D domain decomposition
map onto the machine with nearest-neighbor locality (the paper's "topo
map" optimization, section 3.5.3, uses exactly this property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Shape of one TofuD cell along (a, b, c).
TOFU_CELL_SHAPE = (2, 3, 2)

#: Which of the six axes wrap around.  x, y, z and b are tori; a and c are
#: meshes (a/c have a single port per direction on the router).
TORUS_AXES = (True, True, True, False, True, False)

AXIS_NAMES = ("x", "y", "z", "a", "b", "c")


@dataclass(frozen=True, order=True)
class TofuCoord:
    """A 6D TofuD coordinate ``(x, y, z, a, b, c)``."""

    x: int
    y: int
    z: int
    a: int
    b: int
    c: int

    def as_tuple(self) -> tuple[int, int, int, int, int, int]:
        """The six coordinates as a plain tuple."""
        return (self.x, self.y, self.z, self.a, self.b, self.c)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return "(" + ",".join(str(v) for v in self.as_tuple()) + ")"


def _axis_distance(d: int, size: int, torus: bool) -> int:
    """Hop distance along one axis for displacement ``d`` in a ring/line."""
    d = abs(d)
    if torus and size > 1:
        return min(d % size, size - d % size)
    return d


class TofuTopology:
    """A TofuD machine of ``shape_cells`` cells of 12 nodes each.

    Parameters
    ----------
    shape_cells:
        Number of cells along (x, y, z).  Fugaku's full system is
        (24, 23, 24) cells = 158 976 nodes; the paper's job shapes (e.g.
        32x36x32 *nodes* for 36 864 nodes) are expressed on the folded
        virtual 3D grid, see :meth:`virtual_shape`.
    """

    def __init__(self, shape_cells: tuple[int, int, int]) -> None:
        if any(s < 1 for s in shape_cells):
            raise ValueError(f"cell shape must be positive, got {shape_cells}")
        self.shape_cells = tuple(shape_cells)
        self.full_shape = self.shape_cells + TOFU_CELL_SHAPE

    # -- sizing ------------------------------------------------------------
    @property
    def node_count(self) -> int:
        n = 1
        for s in self.full_shape:
            n *= s
        return n

    @property
    def virtual_shape(self) -> tuple[int, int, int]:
        """Shape of the folded virtual 3D node grid.

        The ``a`` axis folds into ``x``, ``b`` into ``y`` and ``c`` into
        ``z``, giving a ``(2X, 3Y, 2Z)`` grid of nodes.  This is the grid
        the job scheduler exposes (the paper requests shapes like
        ``8x12x8 = 768`` nodes on it).
        """
        (cx, cy, cz) = self.shape_cells
        (ca, cb, cc) = TOFU_CELL_SHAPE
        return (cx * ca, cy * cb, cz * cc)

    @classmethod
    def for_virtual_shape(cls, shape: tuple[int, int, int]) -> "TofuTopology":
        """Build the smallest topology whose virtual grid is ``shape``."""
        (vx, vy, vz) = shape
        (ca, cb, cc) = TOFU_CELL_SHAPE
        if vx % ca or vy % cb or vz % cc:
            raise ValueError(
                f"virtual shape {shape} is not a multiple of the cell shape "
                f"{(ca, cb, cc)}"
            )
        return cls((vx // ca, vy // cb, vz // cc))

    # -- coordinate conversion ----------------------------------------------
    def contains(self, coord: TofuCoord) -> bool:
        """Whether ``coord`` lies inside this machine."""
        return all(0 <= v < s for v, s in zip(coord.as_tuple(), self.full_shape))

    def node_index(self, coord: TofuCoord) -> int:
        """Linearize a 6D coordinate (row-major over the full shape)."""
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside topology {self.full_shape}")
        idx = 0
        for v, s in zip(coord.as_tuple(), self.full_shape):
            idx = idx * s + v
        return idx

    def coord_of(self, index: int) -> TofuCoord:
        """Inverse of :meth:`node_index`."""
        if not 0 <= index < self.node_count:
            raise ValueError(f"node index {index} out of range")
        vals = []
        for s in reversed(self.full_shape):
            vals.append(index % s)
            index //= s
        return TofuCoord(*reversed(vals))

    def all_coords(self) -> Iterator[TofuCoord]:
        """Iterate every node coordinate (row-major)."""
        for i in range(self.node_count):
            yield self.coord_of(i)

    # -- virtual 3D folding ---------------------------------------------------
    def virtual_of(self, coord: TofuCoord) -> tuple[int, int, int]:
        """Fold a 6D coordinate onto the virtual 3D node grid.

        Intra-cell axes interleave serpentine-style so that +/-1 steps on
        the virtual grid are 1-hop (inside a cell) or 2-hop (crossing a
        cell boundary) on the physical network — never worse.
        """
        (ca, cb, cc) = TOFU_CELL_SHAPE

        def fold(cell: int, intra: int, span: int) -> int:
            # serpentine: odd cells traverse the intra axis backwards, so
            # the last node of cell k is intra-adjacent to the first node
            # visited in cell k+1.
            local = intra if cell % 2 == 0 else span - 1 - intra
            return cell * span + local

        return (
            fold(coord.x, coord.a, ca),
            fold(coord.y, coord.b, cb),
            fold(coord.z, coord.c, cc),
        )

    def coord_for_virtual(self, v: tuple[int, int, int]) -> TofuCoord:
        """Inverse of :meth:`virtual_of`."""
        (vx, vy, vz) = v
        vshape = self.virtual_shape
        if not (0 <= vx < vshape[0] and 0 <= vy < vshape[1] and 0 <= vz < vshape[2]):
            raise ValueError(f"virtual coordinate {v} outside grid {vshape}")
        (ca, cb, cc) = TOFU_CELL_SHAPE

        def unfold(virt: int, span: int) -> tuple[int, int]:
            cell, local = divmod(virt, span)
            intra = local if cell % 2 == 0 else span - 1 - local
            return cell, intra

        x, a = unfold(vx, ca)
        y, b = unfold(vy, cb)
        z, c = unfold(vz, cc)
        return TofuCoord(x, y, z, a, b, c)

    # -- routing ---------------------------------------------------------------
    def hops(self, src: TofuCoord, dst: TofuCoord) -> int:
        """Shortest-path hop count under per-axis (dimension-order) routing."""
        for coord in (src, dst):
            if not self.contains(coord):
                raise ValueError(f"coordinate {coord} outside topology")
        total = 0
        for vs, vd, size, torus in zip(
            src.as_tuple(), dst.as_tuple(), self.full_shape, TORUS_AXES
        ):
            total += _axis_distance(vd - vs, size, torus)
        return total

    def virtual_hops(self, va: tuple[int, int, int], vb: tuple[int, int, int]) -> int:
        """Physical hops between two virtual-grid nodes."""
        return self.hops(self.coord_for_virtual(va), self.coord_for_virtual(vb))
