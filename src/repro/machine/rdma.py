"""RDMA memory registration and one-sided put/get semantics.

uTofu one-sided communication requires both the local and remote buffers
to be *registered* (pinned and mapped into the NIC's address space) before
a PUT/GET can target them.  Registration traps into the kernel, which the
paper identifies as a significant overhead when LAMMPS grows its buffers
dynamically (section 3.4); the fix is to size every buffer from the
theoretical maximum once, in setup.

This module provides the functional half of that story for the in-process
runtime:

* :class:`MemoryRegion` — a registered window over a NumPy array, with an
  STag-like handle that remote ranks use as a PUT destination.
* :class:`RegistrationCache` — per-rank registry that accounts the time
  cost of each registration (so tests and benches can show exactly what
  pre-registration saves) and enforces that PUTs only touch registered
  memory.
* :class:`RdmaEngine` — put/get between regions with bounds checking and
  a completion callback, mirroring uTofu's ``utofu_put``/TCQ polling.

The *timing* of the transfers themselves lives in
:mod:`repro.network.simulator`; here we account only registration costs
and enforce the semantics the optimized code path depends on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.faults.injector import FAULTS
from repro.machine.params import FUGAKU, MachineParams
from repro.obs import hbevents
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER


class RdmaError(RuntimeError):
    """Raised on invalid RDMA operations (unregistered memory, OOB, ...)."""


_stag_counter = itertools.count(1)


@dataclass
class MemoryRegion:
    """A registered RDMA window over a flat byte-addressable buffer.

    ``data`` is always viewed as a 1-D byte-like array: callers register
    float64 arrays and address them with *element* offsets for clarity,
    so ``itemsize`` tracks the element granularity.
    """

    owner_rank: int
    data: np.ndarray
    stag: int = field(default_factory=lambda: next(_stag_counter))

    def __post_init__(self) -> None:
        if self.data.ndim != 1:
            raise RdmaError("RDMA regions must be registered over 1-D arrays")

    @property
    def length(self) -> int:
        return self.data.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def check_range(self, offset: int, count: int) -> None:
        """Bounds-check an access; raises RdmaError if outside."""
        if offset < 0 or count < 0 or offset + count > self.length:
            raise RdmaError(
                f"RDMA access [{offset}, {offset + count}) outside region of "
                f"length {self.length} (stag {self.stag})"
            )


class RegistrationCache:
    """Tracks registered regions for one rank and accounts their cost.

    ``total_registration_time`` accumulates the simulated seconds spent in
    registration; the paper's pre-registered scheme pays this once per
    buffer, while the baseline re-registers whenever a buffer grows.
    """

    def __init__(self, rank: int, params: MachineParams = FUGAKU) -> None:
        self.rank = rank
        self.params = params
        self._regions: dict[int, MemoryRegion] = {}
        self.total_registration_time = 0.0
        self.registration_count = 0

    def register(self, data: np.ndarray) -> MemoryRegion:
        """Register ``data`` and pay the kernel-trap + pinning cost."""
        region = MemoryRegion(owner_rank=self.rank, data=data)
        self._regions[region.stag] = region
        self.total_registration_time += self.params.registration_cost(region.nbytes)
        self.registration_count += 1
        if METRICS.enabled:
            METRICS.counter("rdma_registrations_total").inc()
            METRICS.counter("rdma_registered_bytes_total").inc(region.nbytes)
        if TRACER.enabled:
            TRACER.instant(
                "rdma-register", cat="rdma", track=f"rank{self.rank}",
                nbytes=region.nbytes, stag=region.stag,
            )
        return region

    def deregister(self, region: MemoryRegion) -> None:
        """Forget a region (no cost model; teardown is off-path)."""
        self._regions.pop(region.stag, None)

    def lookup(self, stag: int) -> MemoryRegion:
        """Resolve an STag to its region; raises if unknown."""
        try:
            return self._regions[stag]
        except KeyError:
            raise RdmaError(
                f"stag {stag} is not registered on rank {self.rank}"
            ) from None

    def region_count(self) -> int:
        """Number of currently registered regions."""
        return len(self._regions)


class RdmaEngine:
    """One-sided PUT/GET between registered regions across ranks.

    The engine holds every rank's :class:`RegistrationCache` so a PUT can
    resolve its remote STag — this mirrors how uTofu exchanges STags during
    setup (the paper sends all registered addresses to neighbors in the
    setup stage, Fig. 10).
    """

    def __init__(self, params: MachineParams = FUGAKU) -> None:
        self.params = params
        self._caches: dict[int, RegistrationCache] = {}
        self.put_count = 0
        self.get_count = 0
        self.bytes_put = 0

    def cache_for(self, rank: int) -> RegistrationCache:
        """The (lazily created) registration cache of ``rank``."""
        if rank not in self._caches:
            self._caches[rank] = RegistrationCache(rank, self.params)
        return self._caches[rank]

    def put(
        self,
        src: MemoryRegion,
        src_offset: int,
        dst_rank: int,
        dst_stag: int,
        dst_offset: int,
        count: int,
    ) -> None:
        """RDMA PUT ``count`` elements into a remote registered region.

        The write lands directly in the remote array — there is no
        intermediate buffer, which is exactly the behaviour the paper's
        forward stage relies on (positions written straight into the
        neighbor's position array, Fig. 9a).
        """
        src.check_range(src_offset, count)
        dst = self.cache_for(dst_rank).lookup(dst_stag)
        dst.check_range(dst_offset, count)
        session = FAULTS.session
        ticks = 0
        if session is not None:
            ticks = session.rdma_defer("rdma-stale", src.owner_rank)
        res = f"stag{dst_stag}"
        pid = hbevents.emit_put(
            src.owner_rank, res, dst_offset, count, inflight=ticks > 0
        )
        if ticks > 0:
            # The PUT is issued but still in flight: snapshot the
            # source now (the sender may reuse its buffer) and land
            # the bytes only after ``ticks`` fence polls — until
            # then the remote window shows the previous epoch.
            data = src.data[src_offset : src_offset + count].copy()

            def land(dst=dst, off=dst_offset, data=data, res=res, pid=pid) -> None:
                dst.data[off : off + data.size] = data
                hbevents.emit_land(res, off, data.size, pid)

            session.defer(ticks, land, "rdma-stale")
        else:
            dst.data[dst_offset : dst_offset + count] = src.data[
                src_offset : src_offset + count
            ]
            hbevents.emit_land(res, dst_offset, count, pid)
        self.put_count += 1
        self.bytes_put += count * src.data.itemsize
        if METRICS.enabled:
            METRICS.counter("rdma_puts_total").inc()
            METRICS.counter("rdma_put_bytes_total").inc(count * src.data.itemsize)

    def get(
        self,
        dst: MemoryRegion,
        dst_offset: int,
        src_rank: int,
        src_stag: int,
        src_offset: int,
        count: int,
    ) -> None:
        """RDMA GET ``count`` elements from a remote registered region."""
        dst.check_range(dst_offset, count)
        src = self.cache_for(src_rank).lookup(src_stag)
        src.check_range(src_offset, count)
        dst.data[dst_offset : dst_offset + count] = src.data[
            src_offset : src_offset + count
        ]
        self.get_count += 1

    def total_registration_time(self) -> float:
        """Summed registration cost across all ranks."""
        return sum(c.total_registration_time for c in self._caches.values())
