"""Tofu Network Interface (TNI) / control-queue model.

Paper Fig. 7: each node's TofuD controller has **6 TNIs**, each with **9
control queues (CQs)**; all CQs of a TNI share one message-processing
engine, so two threads injecting through different CQs of the *same* TNI
serialize, while injections through different TNIs proceed in parallel.
A CQ is not thread-safe: software creates a **virtual control queue
(VCQ)** bound to exactly one CQ and gives each thread its own VCQ.

The ownership rules the paper exploits are encoded here:

* By default an MPI rank may allocate **one CQ per TNI** (so 4 ranks per
  node can collectively own 4 CQs on each of the 6 TNIs = 24 CQs).
* Coarse-grained mode (section 3.2) binds rank *i* to a single CQ on TNI
  *i* — 4 ranks use 4 TNIs.
* Fine-grained mode (section 3.3) gives each rank 6 VCQs, one CQ on each
  of the 6 TNIs, each driven by its own thread.

The timing consequences (per-TNI serialization, contention when several
ranks hit one TNI) are consumed by :mod:`repro.network.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.params import FUGAKU, MachineParams


class TNIAllocationError(RuntimeError):
    """Raised when CQ allocation violates the hardware ownership rules."""


@dataclass(frozen=True)
class ControlQueue:
    """One hardware control queue: ``(tni, index)`` on some node."""

    tni: int
    index: int


@dataclass(frozen=True)
class VirtualControlQueue:
    """A software VCQ: a (rank, thread) handle bound to one hardware CQ.

    VCQs are the unit of thread-safety — one thread drives one VCQ; the
    bound CQ (and hence TNI engine) is where serialization happens.
    """

    owner_rank: int
    thread: int
    cq: ControlQueue

    @property
    def tni(self) -> int:
        return self.cq.tni


@dataclass
class TNI:
    """One Tofu network interface with its 9 CQs and busy-time tracking.

    ``busy_until`` is the discrete-event availability horizon of the TNI's
    shared message-processing engine; the network simulator advances it as
    messages are injected.
    """

    index: int
    params: MachineParams = field(default=FUGAKU)
    busy_until: float = 0.0

    def __post_init__(self) -> None:
        self._allocated: dict[int, int] = {}  # cq index -> owning rank

    @property
    def cq_count(self) -> int:
        return self.params.cqs_per_tni

    def allocate_cq(self, rank: int) -> ControlQueue:
        """Allocate the next free CQ on this TNI to ``rank``.

        Hardware rule (paper section 3.3): each rank may hold at most one
        CQ per TNI.
        """
        if rank in self._allocated.values():
            raise TNIAllocationError(
                f"rank {rank} already owns a CQ on TNI {self.index}"
            )
        for i in range(self.cq_count):
            if i not in self._allocated:
                self._allocated[i] = rank
                return ControlQueue(self.index, i)
        raise TNIAllocationError(f"TNI {self.index} has no free CQs")

    def owner_of(self, cq_index: int) -> int | None:
        """Rank owning ``cq_index``, or None if free."""
        return self._allocated.get(cq_index)

    def allocated_count(self) -> int:
        """Number of CQs currently allocated on this TNI."""
        return len(self._allocated)

    def reset_time(self) -> None:
        """Clear the engine's busy horizon (new simulation round)."""
        self.busy_until = 0.0


class NodeNIC:
    """The full TofuD controller of one node: 6 TNIs and VCQ bookkeeping."""

    def __init__(self, params: MachineParams = FUGAKU) -> None:
        self.params = params
        self.tnis = [TNI(i, params) for i in range(params.tnis_per_node)]
        self._vcqs: list[VirtualControlQueue] = []

    @property
    def tni_count(self) -> int:
        return len(self.tnis)

    def reset_time(self) -> None:
        """Reset every TNI's busy horizon."""
        for t in self.tnis:
            t.reset_time()

    # -- binding policies ---------------------------------------------------
    def bind_coarse(self, local_ranks: list[int], tni_count: int | None = None):
        """Coarse-grained binding: rank *i* gets one VCQ on TNI ``i % n``.

        ``tni_count`` limits how many TNIs are used (the paper's 4-TNI
        coarse mode binds 4 ranks to TNIs 0..3).  Returns a mapping
        ``rank -> [VCQ]`` (one VCQ each).
        """
        n = tni_count if tni_count is not None else len(local_ranks)
        if not 1 <= n <= self.tni_count:
            raise TNIAllocationError(
                f"cannot bind over {n} TNIs on a node with {self.tni_count}"
            )
        out: dict[int, list[VirtualControlQueue]] = {}
        for i, rank in enumerate(local_ranks):
            tni = self.tnis[i % n]
            cq = tni.allocate_cq(rank)
            vcq = VirtualControlQueue(owner_rank=rank, thread=0, cq=cq)
            self._vcqs.append(vcq)
            out[rank] = [vcq]
        return out

    def bind_fine(self, local_ranks: list[int]):
        """Fine-grained binding: every rank gets one VCQ on *every* TNI.

        This is the paper's thread-pool layout (Fig. 7 right): with 4
        ranks, 4 x 6 = 24 distinct CQs are in use and each rank can drive
        6 communication threads without sharing a CQ.  Returns a mapping
        ``rank -> [VCQ x 6]`` ordered by TNI.
        """
        out: dict[int, list[VirtualControlQueue]] = {}
        for rank in local_ranks:
            vcqs = []
            for thread, tni in enumerate(self.tnis):
                cq = tni.allocate_cq(rank)
                vcqs.append(VirtualControlQueue(owner_rank=rank, thread=thread, cq=cq))
            self._vcqs.extend(vcqs)
            out[rank] = vcqs
        return out

    def bind_single_rank_multi_tni(self, rank: int, tni_count: int):
        """One rank, one thread, VCQs on ``tni_count`` TNIs (6TNI-p2p mode).

        The paper's "6TNI single-thread" variant: a lone thread round-robins
        its messages over 6 VCQs.  Useful or not is a measured question —
        Fig. 8 shows it *loses* to 4 TNIs because of per-call overhead.
        """
        if not 1 <= tni_count <= self.tni_count:
            raise TNIAllocationError(f"tni_count {tni_count} out of range")
        vcqs = []
        for tni in self.tnis[:tni_count]:
            cq = tni.allocate_cq(rank)
            vcqs.append(VirtualControlQueue(owner_rank=rank, thread=0, cq=cq))
        self._vcqs.extend(vcqs)
        return vcqs

    # -- queries -------------------------------------------------------------
    def vcqs_of(self, rank: int) -> list[VirtualControlQueue]:
        """All VCQs owned by ``rank`` on this node."""
        return [v for v in self._vcqs if v.owner_rank == rank]

    def cqs_in_use(self) -> int:
        """Total CQs allocated across the node's TNIs."""
        return sum(t.allocated_count() for t in self.tnis)
