"""A64FX node model.

The paper runs 4 MPI ranks per node, one per CMG (core memory group), each
rank driving 12 compute threads (section 3.2).  This module models that
resource layout so the runtime can reason about NUMA placement, core
assignment and per-CMG memory limits.  Fig. 2 of the paper is the source
for the shape: 4 CMGs x (12 compute + 1 assistant) cores, 8 GB HBM2 per
CMG at 256 GB/s, all CMGs joined to a TofuD controller by a ring NoC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.params import FUGAKU, MachineParams


@dataclass(frozen=True)
class Core:
    """One A64FX core.

    ``assistant`` cores are dedicated to the OS and I/O (the paper's "AS"
    cores) and are never handed to application ranks.
    """

    cmg: int
    index: int  # index within the CMG
    assistant: bool = False

    @property
    def global_id(self) -> int:
        """Node-wide core id; assistant cores get the last slot per CMG."""
        per_cmg = FUGAKU.compute_cores_per_cmg + FUGAKU.assistant_cores_per_cmg
        return self.cmg * per_cmg + self.index


@dataclass
class CMG:
    """A core memory group: 12 compute cores + 1 assistant core + HBM2."""

    index: int
    params: MachineParams = field(default=FUGAKU)

    def __post_init__(self) -> None:
        n = self.params.compute_cores_per_cmg
        self.compute_cores = [Core(self.index, i) for i in range(n)]
        self.assistant_core = Core(self.index, n, assistant=True)

    @property
    def hbm_bandwidth(self) -> float:
        return self.params.hbm_bandwidth_per_cmg

    @property
    def hbm_capacity(self) -> float:
        return self.params.hbm_capacity_per_cmg


class A64FX:
    """One Fugaku node: 4 CMGs and a core-affinity map for ranks.

    The key policy the paper derives (section 3.2) is encoded in
    :meth:`cores_for_rank`: with 4 ranks per node each rank owns exactly
    one CMG, so all memory traffic stays NUMA-local.  Rank counts that do
    not divide the CMG count straddle NUMA domains — :meth:`numa_local`
    reports whether a given rank layout is NUMA-clean, which the
    performance model uses to penalize odd layouts.
    """

    def __init__(self, params: MachineParams = FUGAKU) -> None:
        self.params = params
        self.cmgs = [CMG(i, params) for i in range(params.cmgs_per_node)]

    @property
    def compute_core_count(self) -> int:
        return self.params.cores_per_node

    def cores_for_rank(self, rank_on_node: int, ranks_per_node: int) -> list[Core]:
        """Compute cores assigned to local rank ``rank_on_node``.

        Cores are dealt out CMG-contiguously: the node's compute cores are
        laid out CMG by CMG and split into ``ranks_per_node`` equal
        contiguous slices.
        """
        if not 0 <= rank_on_node < ranks_per_node:
            raise ValueError(
                f"rank_on_node {rank_on_node} out of range for {ranks_per_node} ranks"
            )
        if self.compute_core_count % ranks_per_node:
            raise ValueError(
                f"{ranks_per_node} ranks do not evenly divide "
                f"{self.compute_core_count} compute cores"
            )
        all_cores = [c for cmg in self.cmgs for c in cmg.compute_cores]
        per_rank = self.compute_core_count // ranks_per_node
        lo = rank_on_node * per_rank
        return all_cores[lo : lo + per_rank]

    def numa_local(self, ranks_per_node: int) -> bool:
        """True if every rank's cores land inside a single CMG."""
        try:
            for r in range(ranks_per_node):
                cores = self.cores_for_rank(r, ranks_per_node)
                if len({c.cmg for c in cores}) != 1:
                    return False
        except ValueError:
            return False
        return True

    def hbm_capacity_for_rank(self, ranks_per_node: int) -> float:
        """Usable HBM per rank, assuming even division across ranks."""
        total = self.params.cmgs_per_node * self.params.hbm_capacity_per_cmg
        return total / ranks_per_node
