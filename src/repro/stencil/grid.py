"""Distributed 3D scalar fields with halo storage.

A global ``(NX, NY, NZ)`` periodic grid is block-decomposed over the
rank grid; each rank stores its block plus a halo of ``width`` cells on
every side: local array shape ``(nx + 2w, ny + 2w, nz + 2w)`` with the
interior at ``[w:-w, w:-w, w:-w]``.  This mirrors the MD engine's
local+ghost layout — the halo is the ghost region of a mesh problem.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.world import World


class DistributedField:
    """One scalar field distributed over a rank world."""

    def __init__(
        self,
        world: World,
        global_shape: tuple[int, int, int],
        halo_width: int = 1,
    ) -> None:
        if world.grid is None:
            raise ValueError("distributed fields require a world with a rank grid")
        if halo_width < 1:
            raise ValueError(f"halo width must be >= 1, got {halo_width}")
        for n, p in zip(global_shape, world.grid):
            if n % p:
                raise ValueError(
                    f"global shape {global_shape} not divisible by grid {world.grid}"
                )
        self.world = world
        self.global_shape = tuple(global_shape)
        self.halo = halo_width
        self.block_shape = tuple(n // p for n, p in zip(global_shape, world.grid))
        if min(self.block_shape) < halo_width:
            raise ValueError(
                f"block {self.block_shape} thinner than halo width {halo_width}"
            )
        w = halo_width
        self.blocks: dict[int, np.ndarray] = {
            r: np.zeros(tuple(b + 2 * w for b in self.block_shape))
            for r in range(world.size)
        }

    # -- views ----------------------------------------------------------------
    def interior(self, rank: int) -> np.ndarray:
        """Writable view of a rank's owned cells."""
        w = self.halo
        return self.blocks[rank][w:-w, w:-w, w:-w]

    def full(self, rank: int) -> np.ndarray:
        """The whole local array including halos."""
        return self.blocks[rank]

    # -- global <-> local ------------------------------------------------------
    def scatter_global(self, data: np.ndarray) -> None:
        """Distribute a full global array into the rank blocks."""
        if data.shape != self.global_shape:
            raise ValueError(f"expected {self.global_shape}, got {data.shape}")
        bx, by, bz = self.block_shape
        for rank in range(self.world.size):
            ix, iy, iz = self.world.grid_pos_of(rank)
            self.interior(rank)[:] = data[
                ix * bx : (ix + 1) * bx,
                iy * by : (iy + 1) * by,
                iz * bz : (iz + 1) * bz,
            ]

    def gather_global(self) -> np.ndarray:
        """Assemble the global array from the rank interiors."""
        out = np.zeros(self.global_shape)
        bx, by, bz = self.block_shape
        for rank in range(self.world.size):
            ix, iy, iz = self.world.grid_pos_of(rank)
            out[
                ix * bx : (ix + 1) * bx,
                iy * by : (iy + 1) * by,
                iz * bz : (iz + 1) * bz,
            ] = self.interior(rank)
        return out

    # -- halo slab addressing ---------------------------------------------------
    def send_slab(self, rank: int, offset: tuple[int, int, int]) -> np.ndarray:
        """Interior cells the neighbor at ``offset`` needs as halo."""
        w = self.halo
        idx = []
        for k, o in enumerate(offset):
            n = self.block_shape[k]
            if o > 0:
                idx.append(slice(w + n - w, w + n))  # high interior strip
            elif o < 0:
                idx.append(slice(w, 2 * w))  # low interior strip
            else:
                idx.append(slice(w, w + n))
        return self.blocks[rank][tuple(idx)]

    def recv_slab(self, rank: int, offset: tuple[int, int, int]) -> np.ndarray:
        """The halo region filled by the neighbor at ``offset``."""
        w = self.halo
        idx = []
        for k, o in enumerate(offset):
            n = self.block_shape[k]
            if o > 0:
                idx.append(slice(w + n, w + n + w))  # high halo
            elif o < 0:
                idx.append(slice(0, w))  # low halo
            else:
                idx.append(slice(w, w + n))
        return self.blocks[rank][tuple(idx)]

    def total_interior_sum(self) -> float:
        """Sum of all owned cells (conservation checks)."""
        return float(sum(self.interior(r).sum() for r in range(self.world.size)))
