"""Jacobi diffusion on the distributed field (27- or 125-point).

The update averages the full (2w+1)^3 neighborhood::

    u'[i,j,k] = (1 - theta) u[i,j,k] + theta * mean(u over the cube)

with periodic boundaries.  ``radius`` 1 is the 27-point kernel; radius 2
(125 points) needs width-2 halos — the mesh analogue of the paper's
long-cutoff scenario, where the exchange must deliver data from deeper
in the neighbor blocks.  The corner/edge halos are load-bearing either
way: an exchange that fails to deliver them (the mistake the 3-stage
forwarding exists to avoid) produces visibly wrong fields, which the
tests check by sabotage.

The smoother conserves the field mean exactly (the stencil weights sum
to one), giving a clean conservation property test.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.world import World
from repro.stencil.grid import DistributedField
from repro.stencil.halo import HaloExchange, make_halo

def _apply_cube(block: np.ndarray, theta: float, w: int) -> np.ndarray:
    """One smoothing step over an array with width-``w`` valid halos."""
    interior = block[w:-w, w:-w, w:-w]
    acc = np.zeros_like(interior)
    offsets = range(-w, w + 1)
    for dx in offsets:
        for dy in offsets:
            for dz in offsets:
                acc += block[
                    w + dx : block.shape[0] - w + dx,
                    w + dy : block.shape[1] - w + dy,
                    w + dz : block.shape[2] - w + dz,
                ]
    mean = acc / float((2 * w + 1) ** 3)
    return (1.0 - theta) * interior + theta * mean


def jacobi_reference(
    data: np.ndarray, steps: int, theta: float = 0.8, radius: int = 1
) -> np.ndarray:
    """Single-array reference: periodic cube smoothing via np.roll."""
    u = np.array(data, dtype=float, copy=True)
    offsets = range(-radius, radius + 1)
    n_points = float((2 * radius + 1) ** 3)
    for _ in range(steps):
        acc = np.zeros_like(u)
        for dx in offsets:
            for dy in offsets:
                for dz in offsets:
                    acc += np.roll(u, shift=(dx, dy, dz), axis=(0, 1, 2))
        u = (1.0 - theta) * u + theta * acc / n_points
    return u


class JacobiSolver:
    """Distributed Jacobi smoother over a halo exchange."""

    def __init__(
        self,
        world: World,
        global_shape: tuple[int, int, int],
        pattern: str = "p2p",
        theta: float = 0.8,
        radius: int = 1,
    ) -> None:
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        self.world = world
        self.radius = radius
        self.field = DistributedField(world, global_shape, halo_width=radius)
        self.halo: HaloExchange = make_halo(self.field, pattern)
        self.theta = theta
        self.steps_run = 0

    def set_initial(self, data: np.ndarray) -> None:
        """Scatter a global initial field to the ranks."""
        self.field.scatter_global(data)

    def step(self) -> None:
        """One halo exchange + one cube-kernel update."""
        self.halo.exchange()
        new_blocks = {
            r: _apply_cube(self.field.full(r), self.theta, self.radius)
            for r in range(self.world.size)
        }
        for r, interior in new_blocks.items():
            self.field.interior(r)[:] = interior
        self.steps_run += 1

    def run(self, n_steps: int) -> None:
        """Advance ``n_steps`` smoothing steps."""
        for _ in range(n_steps):
            self.step()

    def solution(self) -> np.ndarray:
        """Gather the global field."""
        return self.field.gather_global()

    def residual_vs(self, reference: np.ndarray) -> float:
        """Max abs deviation from a reference field."""
        return float(np.abs(self.solution() - reference).max())
