"""Stencil mini-app: the paper's generalization claim, implemented.

The conclusion of the paper argues that its communication optimizations
"can also be adapted to other applications with the similar
communication pattern, such as domain decomposition and stencil
computation".  This package makes that claim concrete: a 3D periodic
scalar field decomposed over the same simulated rank world, with halo
exchange implemented in both of the paper's patterns —

* :class:`~repro.stencil.halo.ThreeStageHalo` — six staged face swaps
  whose later dimensions forward earlier halos (corners arrive
  transitively, exactly like the MD ghost exchange), and
* :class:`~repro.stencil.halo.P2PHalo` — 26 direct neighbor messages —

driving a 27-point Jacobi diffusion solver
(:class:`~repro.stencil.jacobi.JacobiSolver`) whose corner dependencies
exercise the full shell.  Both exchanges produce bit-identical fields,
and the communication analytics (message counts, volumes, modeled
times) transfer unchanged from the MD case.
"""

from repro.stencil.grid import DistributedField
from repro.stencil.halo import HaloExchange, P2PHalo, ThreeStageHalo, make_halo
from repro.stencil.jacobi import JacobiSolver, jacobi_reference

__all__ = [
    "DistributedField",
    "HaloExchange",
    "ThreeStageHalo",
    "P2PHalo",
    "make_halo",
    "JacobiSolver",
    "jacobi_reference",
]
