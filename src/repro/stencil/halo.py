"""Halo exchanges: the paper's two patterns, applied to mesh blocks.

Same structure as the MD ghost exchanges in :mod:`repro.core`:

* **3-stage** — two swaps per dimension in x, y, z order.  A dimension's
  swap sends slabs that span the *full extent* (halos included) of the
  dimensions already exchanged, so edge and corner halos arrive by
  forwarding — 6 messages build the full 26-neighbor halo.
* **p2p** — 26 direct messages per rank (faces, edges, corners).  A
  stencil needs values from *all* neighbors (there is no Newton's-law
  saving for a read-only halo), so this corresponds to the paper's
  full-shell p2p mode (Fig. 15's 26-message scenario).

Both fill identical halos; tests assert bit equality.  Message counts
and bytes are observable through the world transport's traffic log, and
:meth:`HaloExchange.message_schedule` exports (nbytes, hops) pairs for
the network simulator — the same cross-layer pricing the MD side uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import offset_hops, shell_offsets
from repro.stencil.grid import DistributedField


class HaloExchange:
    """Base: fills every rank's halo from its neighbors' interiors."""

    name = "abstract"

    def __init__(self, field: DistributedField) -> None:
        self.field = field
        self.world = field.world

    def exchange(self) -> None:
        """Fill every rank's halos from neighbor interiors."""
        raise NotImplementedError

    def message_schedule(self, rank: int = 0) -> list[tuple[int, int]]:
        """(nbytes, hops) per message of one exchange for ``rank``."""
        raise NotImplementedError

    def messages_per_exchange(self) -> int:
        """Messages one rank sends per exchange."""
        return len(self.message_schedule())


class P2PHalo(HaloExchange):
    """26 direct neighbor messages (full shell — stencils read all)."""

    name = "p2p"

    def __init__(self, field: DistributedField, radius: int = 1) -> None:
        super().__init__(field)
        if radius != 1:
            raise ValueError("halo exchange currently supports radius 1")
        self.offsets = shell_offsets(1)

    def exchange(self) -> None:
        """26 direct sends + receives, one per shell neighbor."""
        world = self.world
        transport = world.transport
        transport.set_phase("halo-p2p")
        field = self.field
        for rank in range(world.size):
            for o_send in self.offsets:
                peer = world.neighbor_rank(rank, o_send)
                o_recv = tuple(-o for o in o_send)
                payload = np.array(field.send_slab(rank, o_send), copy=True)
                transport.send(rank, peer, ("halo", o_recv), payload)
        for rank in range(world.size):
            for o_recv in self.offsets:
                src = world.neighbor_rank(rank, o_recv)
                payload = transport.recv(rank, src, ("halo", o_recv))
                field.recv_slab(rank, o_recv)[:] = payload

    def message_schedule(self, rank: int = 0) -> list[tuple[int, int]]:
        """(nbytes, hops) per direct message."""
        field = self.field
        return [
            (field.send_slab(rank, o).size * 8, offset_hops(o)) for o in self.offsets
        ]


class ThreeStageHalo(HaloExchange):
    """Six staged swaps with corner forwarding (baseline pattern)."""

    name = "3stage"

    def _slab(self, rank: int, dim: int, direction: int, role: str):
        """Send/recv slab for one swap; done dims span halos."""
        field = self.field
        w = field.halo
        idx = []
        for axis in range(3):
            n = field.block_shape[axis]
            if axis == dim:
                if role == "send":
                    if direction > 0:
                        idx.append(slice(w + n - w, w + n))
                    else:
                        idx.append(slice(w, 2 * w))
                else:
                    if direction > 0:
                        idx.append(slice(w + n, w + n + w))
                    else:
                        idx.append(slice(0, w))
            elif axis < dim:
                idx.append(slice(0, n + 2 * w))  # full extent incl. halos
            else:
                idx.append(slice(w, w + n))  # interior only
        return field.blocks[rank][tuple(idx)]

    def exchange(self) -> None:
        """Six staged swaps; later dims forward earlier halos."""
        world = self.world
        transport = world.transport
        transport.set_phase("halo-3stage")
        for dim in range(3):
            for direction in (+1, -1):
                tag = ("halo3s", dim, direction)
                for rank in range(world.size):
                    o_send = tuple(direction if d == dim else 0 for d in range(3))
                    peer = world.neighbor_rank(rank, o_send)
                    payload = np.array(
                        self._slab(rank, dim, direction, "send"), copy=True
                    )
                    transport.send(rank, peer, tag, payload)
                for rank in range(world.size):
                    o_send = tuple(direction if d == dim else 0 for d in range(3))
                    src = world.neighbor_rank(rank, tuple(-o for o in o_send))
                    payload = transport.recv(rank, src, tag)
                    # Received from -direction side: fill that halo.
                    self._slab(rank, dim, -direction, "recv")[:] = payload

    def message_schedule(self, rank: int = 0) -> list[tuple[int, int]]:
        """(nbytes, hops) per staged message."""
        out = []
        for dim in range(3):
            for direction in (+1, -1):
                out.append((self._slab(rank, dim, direction, "send").size * 8, 1))
        return out


def make_halo(field: DistributedField, pattern: str) -> HaloExchange:
    """Factory: ``"3stage"`` or ``"p2p"``."""
    if pattern == "3stage":
        return ThreeStageHalo(field)
    if pattern == "p2p":
        return P2PHalo(field)
    raise ValueError(f"unknown halo pattern {pattern!r}")
