"""Benchmark presets: the paper's Table 2, as data.

Every knob of the two benchmark configurations lives here, in one place,
quoted against the paper:

===============  ===================  ==========================
parameter        L-J                  EAM
===============  ===================  ==========================
Units            lj                   metal
Lattice          0.8442 FCC           3.615 FCC
Cutoff           2.5                  4.95
Skin             0.3                  1.0
Timestep         0.005 tau            0.005 psec
Newton           on                   on
Neigh_modify     20, check no         5, check yes
Fix              NVE                  NVE
Potential        sigma=1, epsilon=1   Cu_u3.eam (-> Sutton-Chen)
===============  ===================  ==========================

The CLI and tests build systems from these so a change to the paper's
configuration is made exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.potentials import LennardJones, SuttonChenEAM
from repro.md.simulation import Simulation, SimulationConfig


@dataclass(frozen=True)
class BenchPreset:
    """One Table 2 column."""

    name: str
    units: str
    lattice_value: float  # reduced density (lj) or lattice constant (metal)
    cutoff: float
    skin: float
    dt: float
    neigh_every: int
    neigh_check: bool
    newton: bool = True
    default_temperature: float = 1.44

    def cell_edge(self) -> float:
        """FCC cell edge implied by the units/lattice value."""
        if self.units == "lj":
            return lj_density_to_cell(self.lattice_value)
        return self.lattice_value

    def potential(self):
        """A fresh potential instance for this benchmark."""
        if self.name == "lj":
            return LennardJones(epsilon=1.0, sigma=1.0, cutoff=self.cutoff)
        return SuttonChenEAM(cutoff=self.cutoff)

    def build_system(self, cells: tuple[int, int, int], temperature=None, seed=12345):
        """Lattice positions, velocities and box for ``cells``."""
        x, box = fcc_lattice(cells, self.cell_edge())
        t = temperature if temperature is not None else self.default_temperature
        if t > 0:
            v = maxwell_velocities(x.shape[0], t, seed=seed)
        else:
            v = np.zeros_like(x)
        return x, v, box

    def config(self, pattern="parallel-p2p", rdma=True, **overrides) -> SimulationConfig:
        """SimulationConfig with the preset's Table 2 knobs."""
        kw = dict(
            dt=self.dt,
            skin=self.skin,
            newton=self.newton,
            neighbor_every=self.neigh_every,
            neighbor_check=self.neigh_check,
            pattern=pattern,
            rdma=rdma,
        )
        kw.update(overrides)
        return SimulationConfig(**kw)

    def simulation(
        self,
        cells: tuple[int, int, int],
        grid: tuple[int, int, int],
        pattern: str = "parallel-p2p",
        rdma: bool = True,
        temperature=None,
        seed: int = 12345,
        **config_overrides,
    ) -> Simulation:
        """A ready-to-run Simulation of this benchmark."""
        x, v, box = self.build_system(cells, temperature, seed)
        cfg = self.config(pattern, rdma, **config_overrides)
        return Simulation(x, v, box, self.potential(), cfg, grid=grid)


#: Table 2, left column.
LJ_BENCH = BenchPreset(
    name="lj", units="lj", lattice_value=0.8442, cutoff=2.5, skin=0.3,
    dt=0.005, neigh_every=20, neigh_check=False, default_temperature=1.44,
)

#: Table 2, right column (Cu_u3.eam -> Sutton-Chen substitution).
EAM_BENCH = BenchPreset(
    name="eam", units="metal", lattice_value=3.615, cutoff=4.95, skin=1.0,
    dt=0.005, neigh_every=5, neigh_check=True, default_temperature=0.03,
)

PRESETS = {"lj": LJ_BENCH, "eam": EAM_BENCH}
