"""Vectorized scatter-accumulation kernels for the force loops.

``np.add.at`` is the obvious way to scatter per-pair forces onto atoms,
but it dispatches through the slow buffered-ufunc path; ``np.bincount``
with weights does the same reduction ~5x faster (a standard NumPy
hot-path trick — see the HPC-Python guides on vectorizing the inner
loop).  All force kernels route through these helpers so the whole
engine benefits and the accumulation order is consistent everywhere
(bit-identical results between the serial reference and every parallel
path require *one* summation strategy).
"""

from __future__ import annotations

import numpy as np


def scatter_signed_vec(
    out: np.ndarray, idx: np.ndarray, vec: np.ndarray, sign: int
) -> None:
    """``out[idx] += sign * vec`` for (N, 3) arrays, bincount-accelerated.

    The one signed reduction both force kernels and the communication
    unpack path share; ``sign`` must be ``+1`` or ``-1``.  The add and
    subtract branches are kept literal (``+=`` / ``-=``) so results stay
    bit-identical to accumulating the un-negated weights directly.
    """
    if idx.size == 0:
        return
    n = out.shape[0]
    if sign >= 0:
        for k in range(out.shape[1]):
            out[:, k] += np.bincount(idx, weights=vec[:, k], minlength=n)
    else:
        for k in range(out.shape[1]):
            out[:, k] -= np.bincount(idx, weights=vec[:, k], minlength=n)


def scatter_add_vec(out: np.ndarray, idx: np.ndarray, vec: np.ndarray) -> None:
    """``out[idx] += vec`` for (N, 3) arrays, bincount-accelerated."""
    scatter_signed_vec(out, idx, vec, 1)


def scatter_sub_vec(out: np.ndarray, idx: np.ndarray, vec: np.ndarray) -> None:
    """``out[idx] -= vec`` for (N, 3) arrays."""
    scatter_signed_vec(out, idx, vec, -1)


def scatter_add_scalar(out: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
    """``out[idx] += values`` for 1-D arrays (EAM density accumulation)."""
    if idx.size == 0:
        return
    out += np.bincount(idx, weights=values, minlength=out.shape[0])
