"""Fixes: per-step modifiers in the LAMMPS sense (``fix nve`` etc.).

The paper's benchmarks use plain NVE, but a usable MD code needs
temperature control for equilibration.  Two standard thermostats are
provided, both operating on local atoms only (they are embarrassingly
parallel, like LAMMPS' implementations — no extra communication beyond
the temperature allreduce the driver already performs):

* :class:`VelocityRescale` — direct rescaling toward a target
  temperature every N steps (LAMMPS ``fix temp/rescale``).
* :class:`Langevin` — stochastic friction + kicks (LAMMPS
  ``fix langevin``), deterministic per (seed, step, rank) so multi-rank
  runs are reproducible regardless of communication pattern.

Fixes hook the driver at ``end_of_step`` with the *global* temperature
(already reduced), keeping the stage accounting honest: thermostat work
lands in Modify, its allreduce in Other, as LAMMPS reports it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.md.atoms import Atoms


class Fix:
    """Base class: one per-step modifier."""

    #: whether this fix needs the global temperature each step
    needs_temperature: bool = False

    def end_of_step(
        self, atoms: Atoms, rank: int, step: int, temperature: float | None
    ) -> None:
        """Hook called after final_integrate with the global temperature."""
        raise NotImplementedError


class VelocityRescale(Fix):
    """Rescale velocities toward ``t_target`` every ``every`` steps.

    ``fraction`` = 1 snaps straight to the target; smaller values move
    part way (LAMMPS semantics).  Rescaling only triggers when the
    temperature deviates by more than ``window``.
    """

    needs_temperature = True

    def __init__(
        self,
        t_target: float,
        every: int = 1,
        fraction: float = 1.0,
        window: float = 0.0,
    ) -> None:
        if t_target <= 0:
            raise ValueError(f"target temperature must be positive, got {t_target}")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.t_target = t_target
        self.every = every
        self.fraction = fraction
        self.window = window
        self.rescale_count = 0

    def end_of_step(self, atoms, rank, step, temperature):
        """Rescale local velocities toward the target temperature."""
        if step % self.every or temperature is None or temperature <= 0:
            return
        if abs(temperature - self.t_target) <= self.window:
            return
        t_new = temperature + self.fraction * (self.t_target - temperature)
        scale = math.sqrt(t_new / temperature)
        atoms.v[:] *= scale
        if rank == 0:
            self.rescale_count += 1


class Langevin(Fix):
    """Langevin thermostat: ``dv = -gamma v dt + sqrt(...) dW``.

    Uses the standard discrete form: after the NVE update,
    ``v' = a v + b xi`` with ``a = exp(-gamma dt)`` and
    ``b = sqrt(T_target (1 - a^2) / m)``, which samples the exact
    Ornstein-Uhlenbeck transition.  The noise stream is seeded per
    (seed, step, rank) so reruns and different comm patterns see the
    same kicks.
    """

    def __init__(
        self,
        t_target: float,
        damp: float,
        dt: float,
        mass: float = 1.0,
        seed: int = 2024,
    ) -> None:
        if t_target <= 0 or damp <= 0 or dt <= 0 or mass <= 0:
            raise ValueError("t_target, damp, dt, mass must all be positive")
        self.t_target = t_target
        self.damp = damp
        self.dt = dt
        self.mass = mass
        self.seed = seed
        self._a = math.exp(-dt / damp)
        self._b = math.sqrt(t_target * (1.0 - self._a * self._a) / mass)

    def end_of_step(self, atoms, rank, step, temperature):
        """Apply the exact OU friction + noise update to local atoms."""
        rng = np.random.default_rng((self.seed, step, rank))
        xi = rng.standard_normal((atoms.nlocal, 3))
        atoms.v[:] = self._a * atoms.v + self._b * xi
