"""Simulation checkpoints: save/restore full dynamical state.

The complete state of an NVE run is (positions, velocities, tags, types,
step counter, box); everything else — ghosts, neighbor lists, routes,
RDMA registrations — is derived and rebuilt on restore.  Checkpoints are
NumPy ``.npz`` archives, and restoring into a *different* rank grid or
communication pattern is explicitly supported (and tested): the physics
must not depend on either, which makes restart round-trips one more
cross-check of the communication layer.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.md.region import Box
from repro.md.simulation import Simulation, SimulationConfig

#: Format version written into every checkpoint.
RESTART_VERSION = 1


def save_checkpoint(sim: Simulation, path) -> None:
    """Write the simulation's dynamical state to ``path`` (.npz)."""
    x = sim.gather_positions()
    v = sim.gather_velocities()
    types = np.zeros(sim.natoms, dtype=np.int32)
    for rank in range(sim.world.size):
        atoms = sim.atoms_of(rank)
        types[atoms.tag[: atoms.nlocal]] = atoms.type[: atoms.nlocal]
    np.savez(
        Path(path),
        version=np.int64(RESTART_VERSION),
        step=np.int64(sim.step_count),
        box_lo=np.asarray(sim.box.lo),
        box_hi=np.asarray(sim.box.hi),
        x=x,
        v=v,
        types=types,
        dt=np.float64(sim.config.dt),
        mass=np.float64(sim.config.mass),
    )


def load_checkpoint(
    path,
    potential,
    config: SimulationConfig | None = None,
    grid: tuple[int, int, int] | None = None,
    n_ranks: int | None = None,
) -> Simulation:
    """Rebuild a :class:`Simulation` from a checkpoint.

    ``config`` may change run parameters (including the communication
    pattern) — only the physical state is pinned by the file.  The file's
    dt/mass are used unless the supplied config overrides them.
    """
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != RESTART_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(this build reads {RESTART_VERSION})"
            )
        box = Box(tuple(data["box_lo"]), tuple(data["box_hi"]))
        x = data["x"]
        v = data["v"]
        types = data["types"]
        step = int(data["step"])
        if config is None:
            config = SimulationConfig(dt=float(data["dt"]), mass=float(data["mass"]))

    sim = Simulation(
        x, v, box, potential, config, grid=grid, n_ranks=n_ranks, types=types
    )
    sim.step_count = step
    return sim
