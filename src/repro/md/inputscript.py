"""LAMMPS input-script reader (the bench-script subset).

The paper's artifact drives everything through LAMMPS input files
(``in.threadpool.lj`` etc., derived from the official ``bench/in.lj``
and ``bench/in.eam``).  This module parses that command subset and
builds the equivalent :class:`~repro.md.simulation.Simulation`, so the
reproduction is driven the same way::

    sim = InputScript.from_file("examples/inputs/in.lj").build()
    sim.run(100)

Supported commands (everything the two bench scripts use):

``units``, ``atom_style``, ``lattice fcc``, ``region ... block``,
``create_box``, ``create_atoms``, ``mass``, ``velocity ... create``,
``pair_style lj/cut | eam``, ``pair_coeff``, ``neighbor``,
``neigh_modify every/delay/check``, ``fix ... nve``, ``timestep``,
``thermo``, ``run``.

Two extension commands select this reproduction's communication layer
(the knob the paper's five artifact builds hard-compile):

``comm_pattern 3stage|p2p|parallel-p2p`` and ``comm_rdma on|off``.

Unknown commands raise — silent misconfiguration is how benchmark
numbers go wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.md.lattice import FCC_BASIS, lj_density_to_cell, maxwell_velocities
from repro.md.potentials import LennardJones, SuttonChenEAM
from repro.md.region import Box
from repro.md.simulation import Simulation, SimulationConfig


class InputScriptError(ValueError):
    """Raised for unknown or malformed commands."""


@dataclass
class ScriptState:
    """Accumulated settings as commands are parsed."""

    units: str = "lj"
    lattice_style: str | None = None
    lattice_value: float | None = None
    region: tuple[float, float, float, float, float, float] | None = None
    box_created: bool = False
    atoms_created: bool = False
    mass: float = 1.0
    velocity_temp: float | None = None
    velocity_seed: int = 87287
    pair_style: str | None = None
    pair_params: dict = field(default_factory=dict)
    skin: float = 0.3
    neigh_every: int = 1
    neigh_delay: int = 0
    neigh_check: bool = True
    fix_nve: bool = False
    timestep: float | None = None
    thermo: int = 0
    run_steps: list[int] = field(default_factory=list)
    comm_pattern: str = "parallel-p2p"
    comm_rdma: bool = True


class InputScript:
    """A parsed script plus the machinery to build the simulation."""

    def __init__(self, text: str) -> None:
        self.state = ScriptState()
        self.commands: list[list[str]] = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            self.commands.append(tokens)
            self._apply(tokens)

    @classmethod
    def from_file(cls, path) -> "InputScript":
        return cls(Path(path).read_text())

    # ------------------------------------------------------------------
    def _apply(self, tokens: list[str]) -> None:
        cmd, args = tokens[0], tokens[1:]
        handler = getattr(self, f"_cmd_{cmd}", None)
        if handler is None:
            raise InputScriptError(f"unsupported command {cmd!r}")
        try:
            handler(args)
        except (IndexError, ValueError) as exc:
            if isinstance(exc, InputScriptError):
                raise
            raise InputScriptError(
                f"malformed {cmd!r} command: {' '.join(tokens)}"
            ) from exc

    # -- command handlers -------------------------------------------------
    def _cmd_units(self, args):
        if args[0] not in ("lj", "metal"):
            raise InputScriptError(f"unsupported units {args[0]!r}")
        self.state.units = args[0]

    def _cmd_atom_style(self, args):
        if args[0] != "atomic":
            raise InputScriptError(f"unsupported atom_style {args[0]!r}")

    def _cmd_lattice(self, args):
        if args[0] != "fcc":
            raise InputScriptError(f"unsupported lattice {args[0]!r}")
        self.state.lattice_style = "fcc"
        self.state.lattice_value = float(args[1])

    def _cmd_region(self, args):
        # region <id> block xlo xhi ylo yhi zlo zhi
        if args[1] != "block":
            raise InputScriptError(f"unsupported region style {args[1]!r}")
        self.state.region = tuple(float(v) for v in args[2:8])

    def _cmd_create_box(self, args):
        if self.state.region is None:
            raise InputScriptError("create_box before region")
        self.state.box_created = True

    def _cmd_create_atoms(self, args):
        if not self.state.box_created:
            raise InputScriptError("create_atoms before create_box")
        self.state.atoms_created = True

    def _cmd_mass(self, args):
        self.state.mass = float(args[1])

    def _cmd_velocity(self, args):
        # velocity all create <T> <seed> [loop geom]
        if args[1] != "create":
            raise InputScriptError(f"unsupported velocity mode {args[1]!r}")
        self.state.velocity_temp = float(args[2])
        self.state.velocity_seed = int(args[3])

    def _cmd_pair_style(self, args):
        style = args[0]
        if style == "lj/cut":
            self.state.pair_style = "lj/cut"
            self.state.pair_params["cutoff"] = float(args[1])
        elif style == "eam":
            self.state.pair_style = "eam"
        else:
            raise InputScriptError(f"unsupported pair_style {style!r}")

    def _cmd_pair_coeff(self, args):
        if self.state.pair_style == "lj/cut":
            # pair_coeff 1 1 eps sigma [cutoff]
            self.state.pair_params["epsilon"] = float(args[2])
            self.state.pair_params["sigma"] = float(args[3])
            if len(args) > 4:
                self.state.pair_params["cutoff"] = float(args[4])
        elif self.state.pair_style == "eam":
            # pair_coeff * * Cu_u3.eam -> documented Sutton-Chen substitute
            self.state.pair_params["file"] = args[2] if len(args) > 2 else "Cu_u3.eam"
        else:
            raise InputScriptError("pair_coeff before pair_style")

    def _cmd_neighbor(self, args):
        self.state.skin = float(args[0])

    def _cmd_neigh_modify(self, args):
        it = iter(args)
        for key in it:
            value = next(it)
            if key == "every":
                self.state.neigh_every = int(value)
            elif key == "delay":
                self.state.neigh_delay = int(value)
            elif key == "check":
                self.state.neigh_check = value == "yes"
            else:
                raise InputScriptError(f"unsupported neigh_modify key {key!r}")

    def _cmd_fix(self, args):
        # fix <id> <group> nve
        if args[2] != "nve":
            raise InputScriptError(f"unsupported fix style {args[2]!r}")
        self.state.fix_nve = True

    def _cmd_timestep(self, args):
        self.state.timestep = float(args[0])

    def _cmd_thermo(self, args):
        self.state.thermo = int(args[0])

    def _cmd_run(self, args):
        self.state.run_steps.append(int(args[0]))

    def _cmd_comm_pattern(self, args):
        if args[0] not in ("3stage", "p2p", "parallel-p2p"):
            raise InputScriptError(f"unknown comm pattern {args[0]!r}")
        self.state.comm_pattern = args[0]

    def _cmd_comm_rdma(self, args):
        if args[0] not in ("on", "off"):
            raise InputScriptError("comm_rdma takes 'on' or 'off'")
        self.state.comm_rdma = args[0] == "on"

    # ------------------------------------------------------------------
    def _cell_edge(self) -> float:
        s = self.state
        if s.lattice_value is None:
            raise InputScriptError("no lattice defined")
        if s.units == "lj":
            return lj_density_to_cell(s.lattice_value)  # value is rho*
        return s.lattice_value  # metal: lattice constant

    def build_system(self) -> tuple[np.ndarray, Box]:
        """Positions + box from lattice/region (region in lattice units)."""
        s = self.state
        if not s.atoms_created:
            raise InputScriptError("script never created atoms")
        edge = self._cell_edge()
        xlo, xhi, ylo, yhi, zlo, zhi = s.region
        cells = (
            int(round(xhi - xlo)),
            int(round(yhi - ylo)),
            int(round(zhi - zlo)),
        )
        if min(cells) < 1:
            raise InputScriptError(f"degenerate region {s.region}")
        ii, jj, kk = np.meshgrid(
            np.arange(cells[0]), np.arange(cells[1]), np.arange(cells[2]),
            indexing="ij",
        )
        corners = np.stack([ii, jj, kk], axis=-1).reshape(-1, 3).astype(float)
        pos = (corners[:, None, :] + FCC_BASIS[None, :, :]).reshape(-1, 3) * edge
        origin = np.array([xlo, ylo, zlo]) * edge
        box = Box(
            tuple(origin),
            tuple(origin + np.array(cells) * edge),
        )
        return pos + origin, box

    def build_potential(self):
        """The potential object the script's pair_style describes."""
        s = self.state
        if s.pair_style == "lj/cut":
            return LennardJones(
                epsilon=s.pair_params.get("epsilon", 1.0),
                sigma=s.pair_params.get("sigma", 1.0),
                cutoff=s.pair_params.get("cutoff", 2.5),
            )
        if s.pair_style == "eam":
            # Cu_u3.eam is not redistributable; Sutton-Chen Cu is the
            # documented substitution (DESIGN.md).
            return SuttonChenEAM(cutoff=4.95)
        raise InputScriptError("script never set a pair_style")

    def build(
        self, grid: tuple[int, int, int] | None = None, n_ranks: int = 8
    ) -> Simulation:
        """Construct the simulation this script describes."""
        s = self.state
        if not s.fix_nve:
            raise InputScriptError("script has no integrator (fix nve)")
        if s.timestep is None:
            raise InputScriptError("script never set a timestep")
        x, box = self.build_system()
        temp = s.velocity_temp if s.velocity_temp is not None else 0.0
        if temp > 0:
            v = maxwell_velocities(x.shape[0], temp, seed=s.velocity_seed)
        else:
            v = np.zeros_like(x)
        cfg = SimulationConfig(
            dt=s.timestep,
            skin=s.skin,
            neighbor_every=max(s.neigh_every, 1),
            neighbor_check=s.neigh_check,
            pattern=s.comm_pattern,
            rdma=s.comm_rdma,
            thermo_every=s.thermo,
            mass=s.mass,
        )
        return Simulation(
            x, v, box, self.build_potential(), cfg,
            grid=grid, n_ranks=None if grid else n_ranks,
        )

    def total_run_steps(self) -> int:
        """Sum of all ``run N`` commands."""
        return sum(self.state.run_steps)
