"""Neighbor lists: binned, vectorized pair construction.

LAMMPS builds Verlet lists over local + ghost atoms with an extended
cutoff ``r_comm = cutoff + skin`` and rebuilds them either on a fixed
cadence (``neigh_modify every N check no``, the LJ benchmark) or when any
atom has moved more than half the skin (``check yes``, the EAM benchmark
— the variant whose global allreduce dominates "Other" in Table 3).

Two list flavors (paper section 4.4):

* **half** — each pair appears once; forces are applied to both partners
  (Newton's 3rd law).  For local-local pairs the rule is ``i < j``.  For
  local-ghost pairs the rule depends on how ghosts were communicated:

  - ``ghost_rule="all"`` — the p2p pattern's half shell: ghosts only
    arrive from the 13 plus-side neighbors, so every local-ghost pair is
    owned by exactly one rank already and all of them are kept.
  - ``ghost_rule="coord"`` — the 3-stage pattern's full shell: both ranks
    see the pair, so the conventional coordinate tie-break keeps it only
    where the ghost is lexicographically above in (z, y, x).

* **full** — each local atom lists *all* its neighbors (Tersoff/DeePMD
  style); communication must then supply the full 26-neighbor shell.

The builder is fully vectorized: atoms are binned into cells at least
``r_comm`` wide, sorted by cell, and candidate pairs are generated per
cell-offset with ``repeat``/cumsum arithmetic — no Python-level loop over
atoms (per the HPC-Python guides, the hot path is NumPy end to end).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _ranges_to_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k]+counts[k])`` vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    # Standard trick: offsets where each range begins, then cumulative fix-up.
    ends = np.cumsum(counts)
    out = np.ones(total, dtype=np.intp)
    out[0] = starts[0]
    prev_last = starts[:-1] + counts[:-1] - 1  # last value of each range
    out[ends[:-1]] = starts[1:] - prev_last
    return np.cumsum(out)


def build_pairs(
    x: np.ndarray,
    nlocal: int,
    cutoff: float,
    half: bool = True,
    ghost_rule: str = "all",
) -> tuple[np.ndarray, np.ndarray]:
    """Build neighbor pairs ``(i, j)`` with ``|x_i - x_j| < cutoff``.

    ``i`` is always a local atom (< ``nlocal``); ``j`` ranges over all
    atoms.  With ``half=True`` each pair appears once (see module doc for
    the ghost rules); with ``half=False`` the list is directed — both
    (i, j) and (j, i) appear for local-local pairs.
    """
    x = np.asarray(x, dtype=float)
    n = x.shape[0]
    if nlocal > n:
        raise ValueError(f"nlocal {nlocal} exceeds atom count {n}")
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    if ghost_rule not in ("all", "coord"):
        raise ValueError(f"unknown ghost_rule {ghost_rule!r}")
    if nlocal == 0 or n < 2:
        e = np.empty(0, dtype=np.intp)
        return e, e

    # --- binning ----------------------------------------------------------
    lo = x.min(axis=0) - 1e-9
    hi = x.max(axis=0) + 1e-9
    span = np.maximum(hi - lo, 1e-12)
    ncell = np.maximum((span // cutoff).astype(np.intp), 1)
    cell_edge = span / ncell
    cell3 = np.minimum((x - lo) // cell_edge, ncell - 1).astype(np.intp)
    strides = np.array([ncell[1] * ncell[2], ncell[2], 1], dtype=np.intp)
    cell_id = cell3 @ strides
    total_cells = int(ncell.prod())

    order = np.argsort(cell_id, kind="stable")
    sorted_cells = cell_id[order]
    # One searchsorted gives every boundary: left edge of cell k is
    # bounds[k], right edge is bounds[k + 1] (== left edge of k + 1 for
    # integer ids).
    bounds = np.searchsorted(sorted_cells, np.arange(total_cells + 1), side="left")
    cell_start = bounds[:-1]
    cell_end = bounds[1:]

    local_mask_sorted = order < nlocal

    # All 27 stencil offsets processed in one batch.  The flattened
    # (offset, atom) enumeration is offset-major with atoms ascending —
    # exactly the order a per-offset loop would concatenate in, so the
    # resulting pair list (and with it every downstream accumulation
    # order) is unchanged.
    offsets = np.array(
        [
            (ox, oy, oz)
            for ox in (-1, 0, 1)
            for oy in (-1, 0, 1)
            for oz in (-1, 0, 1)
        ],
        dtype=np.intp,
    )
    sorted_cell3 = cell3[order]
    ncell3 = sorted_cell3[None, :, :] + offsets[:, None, :]
    valid = ((ncell3 >= 0) & (ncell3 < ncell)).all(axis=2)
    # Only local atoms originate pairs.
    valid &= local_mask_sorted[None, :]
    flat = np.flatnonzero(valid.ravel())
    if flat.size == 0:
        e = np.empty(0, dtype=np.intp)
        return e, e
    nsorted = sorted_cell3.shape[0]
    src = flat % nsorted
    ncid = ncell3.reshape(-1, 3)[flat] @ strides
    starts = cell_start[ncid]
    counts = cell_end[ncid] - starts
    have = counts > 0
    src = src[have]
    if src.size == 0:
        e = np.empty(0, dtype=np.intp)
        return e, e
    starts = starts[have]
    counts = counts[have]
    i_sorted = np.repeat(src, counts)
    j_sorted = _ranges_to_indices(starts, counts)
    i = order[i_sorted]
    j = order[j_sorted]

    # --- distance + pair rules ---------------------------------------------
    keep = i != j
    i, j = i[keep], j[keep]
    d = x[i] - x[j]
    keep = np.einsum("ij,ij->i", d, d) < cutoff * cutoff
    i, j = i[keep], j[keep]

    if not half:
        return i, j

    j_local = j < nlocal
    keep_local = j_local & (i < j)
    if ghost_rule == "all":
        keep_ghost = ~j_local
    else:
        # Lexicographic (z, y, x) coordinate rule for full-shell ghosts.
        xi, xj = x[i], x[j]
        gz = xj[:, 2] > xi[:, 2]
        ez = xj[:, 2] == xi[:, 2]
        gy = xj[:, 1] > xi[:, 1]
        ey = xj[:, 1] == xi[:, 1]
        gx = xj[:, 0] > xi[:, 0]
        keep_ghost = ~j_local & (gz | (ez & (gy | (ey & gx))))
    keep = keep_local | keep_ghost
    return i[keep], j[keep]


def build_pairs_bruteforce(
    x: np.ndarray,
    nlocal: int,
    cutoff: float,
    half: bool = True,
    ghost_rule: str = "all",
) -> tuple[np.ndarray, np.ndarray]:
    """O(N^2) reference implementation for testing the binned builder."""
    x = np.asarray(x, dtype=float)
    n = x.shape[0]
    ii, jj = np.meshgrid(np.arange(nlocal), np.arange(n), indexing="ij")
    i, j = ii.ravel(), jj.ravel()
    keep = i != j
    i, j = i[keep], j[keep]
    d = x[i] - x[j]
    keep = np.einsum("ij,ij->i", d, d) < cutoff * cutoff
    i, j = i[keep], j[keep]
    if not half:
        return i.astype(np.intp), j.astype(np.intp)
    j_local = j < nlocal
    keep_local = j_local & (i < j)
    if ghost_rule == "all":
        keep_ghost = ~j_local
    else:
        xi, xj = x[i], x[j]
        gz = xj[:, 2] > xi[:, 2]
        ez = xj[:, 2] == xi[:, 2]
        gy = xj[:, 1] > xi[:, 1]
        ey = xj[:, 1] == xi[:, 1]
        gx = xj[:, 0] > xi[:, 0]
        keep_ghost = ~j_local & (gz | (ez & (gy | (ey & gx))))
    keep = keep_local | keep_ghost
    return i[keep].astype(np.intp), j[keep].astype(np.intp)


@dataclass
class NeighborSettings:
    """Rebuild policy (the ``neigh_modify`` of Table 2)."""

    cutoff: float
    skin: float
    every: int = 20
    check: bool = False
    half: bool = True
    ghost_rule: str = "all"

    @property
    def r_comm(self) -> float:
        """Communication cutoff: force cutoff plus skin."""
        return self.cutoff + self.skin


class NeighborList:
    """A Verlet pair list with displacement-triggered rebuild support."""

    def __init__(self, settings: NeighborSettings) -> None:
        self.settings = settings
        self.pair_i = np.empty(0, dtype=np.intp)
        self.pair_j = np.empty(0, dtype=np.intp)
        self._x_at_build: np.ndarray | None = None
        self.builds = 0

    def build(self, x: np.ndarray, nlocal: int) -> None:
        """(Re)build the pair list over local+ghost positions ``x``."""
        s = self.settings
        self.pair_i, self.pair_j = build_pairs(
            x, nlocal, s.r_comm, half=s.half, ghost_rule=s.ghost_rule
        )
        self._x_at_build = np.array(x[:nlocal], copy=True)
        self.builds += 1

    @property
    def n_pairs(self) -> int:
        return int(self.pair_i.shape[0])

    def max_displacement_sq(self, x_local: np.ndarray) -> float:
        """Largest squared displacement of a local atom since last build."""
        if self._x_at_build is None:
            return float("inf")
        ref = self._x_at_build
        if x_local.shape[0] != ref.shape[0]:
            # Atom migration changed the local set; force a rebuild.
            return float("inf")
        d = x_local - ref
        return float(np.einsum("ij,ij->i", d, d).max(initial=0.0))

    def needs_rebuild(self, x_local: np.ndarray) -> bool:
        """LAMMPS ``check yes`` criterion: moved beyond half the skin."""
        half_skin = 0.5 * self.settings.skin
        return self.max_displacement_sq(x_local) > half_skin * half_skin

    def per_atom(self, nlocal: int) -> tuple[np.ndarray, np.ndarray]:
        """CSR view of the list: ``(firstneigh, neighbors)``.

        ``neighbors[firstneigh[i]:firstneigh[i+1]]`` are atom ``i``'s
        partners — LAMMPS' per-atom representation, which downstream
        analysis (coordination numbers, bond-order parameters, custom
        potentials) expects.  Rows are sorted by ``i``; neighbor order
        within a row is unspecified.
        """
        order = np.argsort(self.pair_i, kind="stable")
        sorted_i = self.pair_i[order]
        firstneigh = np.searchsorted(sorted_i, np.arange(nlocal + 1))
        return firstneigh.astype(np.intp), self.pair_j[order]

    def coordination(self, nlocal: int) -> np.ndarray:
        """Neighbor count per local atom (full coordination only when
        this is a full list; a half list counts each pair once)."""
        counts = np.bincount(self.pair_i, minlength=nlocal)[:nlocal]
        if self.settings.half:
            counts = counts + np.bincount(
                self.pair_j[self.pair_j < nlocal], minlength=nlocal
            )[:nlocal]
        return counts
