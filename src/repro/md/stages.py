"""The five-stage timing breakdown of LAMMPS (paper Table 3).

LAMMPS attributes every cycle of a run to one of: **Pair** (force
evaluation, including EAM's mid-pair communication), **Neigh** (neighbor
list builds), **Comm** (border / forward / reverse / exchange ghost
communication), **Modify** (integration fixes: the NVE update), and
**Other** (everything else — output, and for EAM the global
neighbor-check allreduce that dominates at scale).

:class:`StageTimers` accumulates two parallel accounts:

* ``wall`` — real elapsed seconds of this Python process (what
  pytest-benchmark measures), and
* ``model`` — simulated Fugaku seconds contributed by the cost models
  (network simulator, thread-pool overheads).  The perfmodel package
  reports these; functional tests mostly assert on structure, not time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum

from repro.obs.trace import TRACER


class Stage(str, Enum):
    """The five LAMMPS timing stages of Table 3."""
    PAIR = "Pair"
    NEIGH = "Neigh"
    COMM = "Comm"
    MODIFY = "Modify"
    OTHER = "Other"


@dataclass
class StageTimers:
    """Accumulated per-stage times (wall and modeled)."""

    wall: dict[Stage, float] = field(default_factory=lambda: {s: 0.0 for s in Stage})
    model: dict[Stage, float] = field(default_factory=lambda: {s: 0.0 for s in Stage})

    @contextmanager
    def timing(self, stage: Stage):
        """Context manager accumulating wall time into ``stage``.

        When tracing is enabled, the *same* measured interval is also
        recorded as a ``cat="stage"`` span — one measurement, two
        accounts — so the span-derived breakdown reproduces these
        totals exactly (the observability self-check relies on it).
        """
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.wall[stage] += t1 - t0
            if TRACER.enabled:
                TRACER.add_wall_span(stage.value, t0, t1, cat="stage", track="stages")

    def add_model(self, stage: Stage, seconds: float) -> None:
        """Account simulated machine time to ``stage``."""
        if seconds < 0:
            raise ValueError(f"negative model time {seconds}")
        self.model[stage] += seconds
        if TRACER.enabled:
            TRACER.model_span_seq(stage.value, seconds, cat="stage", track="stages")

    def total_wall(self) -> float:
        """Summed wall seconds across stages."""
        return sum(self.wall.values())

    def total_model(self) -> float:
        """Summed modeled seconds across stages."""
        return sum(self.model.values())

    def breakdown(self, which: str = "wall") -> dict[str, tuple[float, float]]:
        """Stage -> (seconds, percent) like LAMMPS' "MPI task timing".

        ``which`` must be ``"wall"`` or ``"model"``; anything else is a
        caller typo and raises :class:`ValueError` instead of silently
        reporting the model account.
        """
        if which not in ("wall", "model"):
            raise ValueError(f"which must be 'wall' or 'model', got {which!r}")
        table = self.wall if which == "wall" else self.model
        total = sum(table.values())
        return {
            s.value: (t, 100.0 * t / total if total > 0 else 0.0)
            for s, t in table.items()
        }

    def merged_with(self, other: "StageTimers") -> "StageTimers":
        """Element-wise sum of two timer sets."""
        out = StageTimers()
        for s in Stage:
            out.wall[s] = self.wall[s] + other.wall[s]
            out.model[s] = self.model[s] + other.model[s]
        return out
