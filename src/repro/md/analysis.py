"""Trajectory analysis: radial distribution, mean-square displacement.

Physics-validation tools for the examples and tests: the LJ melt at
rho* = 0.8442, T* ~ 1.4 must show a liquid-like g(r) (first peak near
r ~ 1.1 sigma, no long-range order), and a melted system's MSD must grow
~linearly (diffusion) where a cold crystal's plateaus.  These are the
standard sanity checks a downstream user runs before trusting any MD
engine — communication bugs that shift even a few ghost atoms destroy
g(r) immediately.
"""

from __future__ import annotations

import numpy as np

from repro.md.region import Box


def radial_distribution(
    x: np.ndarray,
    box: Box,
    r_max: float,
    n_bins: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """g(r) of one configuration under the minimum-image convention.

    Returns ``(r_centers, g)``.  Requires ``r_max`` below half the
    shortest box edge.  O(N^2) in chunks — analysis-grade, not
    production-grade.
    """
    x = np.asarray(x, dtype=float)
    n = x.shape[0]
    if n < 2:
        raise ValueError("g(r) needs at least two atoms")
    if r_max >= float(np.min(box.lengths)) / 2.0:
        raise ValueError("r_max must be below half the shortest box edge")

    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts = np.zeros(n_bins)
    chunk = max(1, int(2e6 // max(n, 1)))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        d = box.minimum_image(x[lo:hi, None, :] - x[None, :, :])
        r = np.sqrt(np.einsum("ijk,ijk->ij", d, d))
        # Exclude self-distances.
        for row, i in zip(r, range(lo, hi)):
            row[i] = np.inf
        counts += np.histogram(r, bins=edges)[0]

    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / box.volume
    ideal = shell_vol * density * n  # expected pair count in each shell
    g = np.divide(counts, ideal, out=np.zeros_like(counts), where=ideal > 0)
    return centers, g


class MSDTracker:
    """Mean-square displacement against an unwrapped trajectory.

    Positions handed to :meth:`update` may be box-wrapped; the tracker
    unwraps them (minimum-image increments), which is valid while no
    atom moves more than half a box length per update.
    """

    def __init__(self, x0: np.ndarray, box: Box) -> None:
        self.box = box
        self.x0 = np.array(x0, copy=True)
        self._unwrapped = np.array(x0, copy=True)
        self._last = np.array(x0, copy=True)
        self.samples: list[tuple[int, float]] = []

    def update(self, step: int, x: np.ndarray) -> float:
        """Fold in a new (possibly wrapped) frame; returns the MSD."""
        dx = self.box.minimum_image(x - self._last)
        self._unwrapped += dx
        self._last = np.array(x, copy=True)
        d = self._unwrapped - self.x0
        msd = float(np.einsum("ij,ij->", d, d) / d.shape[0])
        self.samples.append((step, msd))
        return msd

    def diffusion_estimate(self, dt: float) -> float:
        """Einstein slope D = MSD / (6 t) from the last sample."""
        if not self.samples:
            return 0.0
        step, msd = self.samples[-1]
        t = step * dt
        return msd / (6.0 * t) if t > 0 else 0.0


def structure_order_parameter(g_r: np.ndarray) -> float:
    """Crude crystallinity score: max(g) / g-tail mean.

    A crystal's sharp peaks give large values; a liquid's ~ 2-3.
    """
    if g_r.size < 8:
        raise ValueError("need a resolved g(r)")
    tail = g_r[-g_r.size // 4 :]
    tail_mean = float(tail.mean()) if float(tail.mean()) > 0 else 1.0
    return float(g_r.max()) / tail_mean
