"""Potential interface and the mid-pair-stage communication hooks.

A potential computes forces from a pair list.  Simple pair potentials
(LJ) need no communication inside the pair stage; EAM does — its
electron density must be complete before embedding derivatives exist,
which takes a reverse-sum of ghost densities and a forward broadcast of
the derivative (the "two additional communications during the pair
stage" of paper section 4.1).  The :class:`GhostComm` protocol is how a
potential asks the active communication pattern to perform those, so the
same EAM code runs over the 3-stage or p2p exchange unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.md.atoms import Atoms


class GhostComm(Protocol):
    """Mid-pair-stage per-atom communication, provided by the exchange."""

    def reverse_sum_scalar(self, values: np.ndarray) -> None:
        """Add each ghost atom's entry into its owner's entry (in place).

        ``values`` has one float per atom (local then ghost); on return
        the local entries include every ghost contribution and the ghost
        entries are unspecified.
        """
        ...

    def forward_scalar(self, values: np.ndarray) -> None:
        """Copy each owner's entry onto all of its ghost copies (in place)."""
        ...


class NullGhostComm:
    """Single-rank stand-in: there are no remote ghosts to merge.

    Used by the serial reference path, where ghosts are same-rank periodic
    images whose contributions were already accumulated locally.
    """

    def reverse_sum_scalar(self, values: np.ndarray) -> None:
        """No-op: single-rank runs have no remote ghosts."""
        return None

    def forward_scalar(self, values: np.ndarray) -> None:
        """No-op: single-rank runs have no remote ghosts."""
        return None


@dataclass
class ForceResult:
    """Outputs of one force evaluation (this rank's share).

    ``energy`` and ``virial`` are *owned* contributions: summing them over
    ranks gives the global potential energy and the global scalar virial
    ``sum_pairs r_ij . f_ij`` (+ embedding terms for EAM).
    """

    energy: float = 0.0
    virial: float = 0.0
    #: per-stage seconds spent inside mid-pair communication, if any
    comm_calls: int = 0
    extra: dict = field(default_factory=dict)


class PairPotential:
    """Base class: cutoff + force kernel over a half or full pair list."""

    #: interaction cutoff (force range, excludes skin)
    cutoff: float = 0.0
    #: whether this potential needs a full neighbor list (Tersoff-style)
    needs_full_list: bool = False
    #: whether the kernel writes forces onto ghost atoms even with a full
    #: list (3-body potentials scatter triplet forces to j and k), which
    #: obliges the driver to run the reverse exchange
    force_ghosts: bool = False

    def compute(
        self,
        atoms: Atoms,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        comm: GhostComm | None = None,
        half_list: bool = True,
    ) -> ForceResult:
        """Accumulate forces into ``atoms.f``; return energy/virial.

        ``pair_i`` are local indices; ``pair_j`` local or ghost.  With
        ``half_list=True`` the kernel applies Newton's 3rd law (force on
        both partners, energy/virial counted once).  With
        ``half_list=False`` the list is directed and only ``i`` receives
        force; energy/virial are halved per visit.
        """
        raise NotImplementedError
