"""Stillinger-Weber three-body potential (silicon).

The paper's Fig. 11 evaluates a silicon system and its section 4.4
extended experiment exists because potentials "such as Tersoff and
DeePMD require a full neighbor list" — the 26-neighbor communication
scenario.  Stillinger-Weber is the classic three-body silicon potential
with the same communication requirements as Tersoff and a much cleaner
functional form:

``U = sum_pairs phi2(r) + sum_triplets(j<k around center i) phi3``

* ``phi2(r) = A eps (B (sigma/r)^p - (sigma/r)^q) exp(sigma/(r - a sigma))``
* ``phi3 = lambda eps (cos(theta_jik) - cos0)^2
  exp(gamma sigma/(r_ij - a sigma)) exp(gamma sigma/(r_ik - a sigma))``

Communication-wise this is the paper's hardest functional case: a **full
neighbor list** (triplets need all of an atom's neighbors) *and*
ghost-force accumulation (a triplet centered on a local atom pushes on
ghost j and k), so the driver must run both the full 26-neighbor shell
and the reverse exchange — exactly LAMMPS' "pair style sw requires
newton pair on" constraint.

Triplet enumeration is vectorized: the full pair list is converted to a
CSR per-atom view and all ``C(n_i, 2)`` ordered pairs per center are
generated with cumsum arithmetic (no Python loop over atoms).
Parameters default to the original Stillinger-Weber silicon set (1985),
in reduced units (eps = sigma = 1); metal-unit silicon uses
``eps = 2.1683`` eV, ``sigma = 2.0951`` A.
"""

from __future__ import annotations

import numpy as np

from repro.md.atoms import Atoms
from repro.md.kernels import scatter_add_vec
from repro.md.neighbor import _ranges_to_indices
from repro.md.potentials.base import ForceResult, GhostComm, PairPotential


class StillingerWeber(PairPotential):
    """SW silicon: two-body + three-body terms over a full list."""

    needs_full_list = True
    force_ghosts = True

    def __init__(
        self,
        epsilon: float = 1.0,
        sigma: float = 1.0,
        A: float = 7.049556277,
        B: float = 0.6022245584,
        p: float = 4.0,
        q: float = 0.0,
        a: float = 1.80,
        lam: float = 21.0,
        gamma: float = 1.20,
        cos_theta0: float = -1.0 / 3.0,
    ) -> None:
        if epsilon <= 0 or sigma <= 0 or a <= 0:
            raise ValueError("epsilon, sigma and a must be positive")
        self.epsilon = epsilon
        self.sigma = sigma
        self.A, self.B, self.p, self.q = A, B, p, q
        self.a = a
        self.lam = lam
        self.gamma = gamma
        self.cos_theta0 = cos_theta0
        self.cutoff = a * sigma

    # -- scalar pieces -----------------------------------------------------
    def _phi2(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(phi2, dphi2/dr) inside the cutoff (vectorized)."""
        s = self.sigma
        rr = r / s
        core = self.A * self.epsilon * (self.B * rr ** (-self.p) - rr ** (-self.q))
        dcore = (
            self.A
            * self.epsilon
            * (-self.p * self.B * rr ** (-self.p - 1) + self.q * rr ** (-self.q - 1))
            / s
        )
        expo = np.exp(s / (r - self.a * s))
        dexpo = -s / (r - self.a * s) ** 2 * expo
        return core * expo, dcore * expo + core * dexpo

    def _g(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Three-body radial factor (g, dg/dr) inside the cutoff."""
        gs = self.gamma * self.sigma
        g = np.exp(gs / (r - self.a * self.sigma))
        dg = -gs / (r - self.a * self.sigma) ** 2 * g
        return g, dg

    # -- triplet enumeration ------------------------------------------------
    @staticmethod
    def _triplets(first: np.ndarray, neigh: np.ndarray, nlocal: int):
        """All (center, j, k) with j before k in each center's CSR row."""
        counts = (first[1:] - first[:-1]).astype(np.intp)
        n_tri_per = counts * (counts - 1) // 2
        total = int(n_tri_per.sum())
        if total == 0:
            e = np.empty(0, dtype=np.intp)
            return e, e, e
        centers = np.repeat(np.arange(nlocal, dtype=np.intp), n_tri_per)
        # Local triplet index within each center's row:
        t_local = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(n_tri_per)[:-1])), n_tri_per
        )
        # Map t_local -> (row_j, row_k) with row_j < row_k for row size n:
        n = counts[centers].astype(float)
        # row_j is the largest jj with jj*(n-1) - jj*(jj-1)/2 <= t_local
        jj = np.floor(
            (2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * t_local)) / 2
        ).astype(np.intp)
        offset = jj * (2 * counts[centers] - jj - 1) // 2
        kk = (t_local - offset + jj + 1).astype(np.intp)
        base = first[centers]
        return centers, neigh[base + jj], neigh[base + kk]

    # -- kernel ----------------------------------------------------------------
    def compute(
        self,
        atoms: Atoms,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        comm: GhostComm | None = None,
        half_list: bool = True,
    ) -> ForceResult:
        """Two-body + three-body forces; requires a full (directed) list."""
        if half_list:
            raise ValueError("Stillinger-Weber requires a full neighbor list")
        x = atoms.x
        f = atoms.f
        nlocal = atoms.nlocal
        cut = self.cutoff

        # Restrict the (skin-padded) list to the true cutoff.
        if pair_i.size:
            d_all = x[pair_i] - x[pair_j]
            r2 = np.einsum("ij,ij->i", d_all, d_all)
            keep = r2 < cut * cut
            pi, pj = pair_i[keep], pair_j[keep]
            d2 = d_all[keep]
            r = np.sqrt(r2[keep])
        else:
            pi = pj = np.empty(0, dtype=np.intp)
            d2 = np.empty((0, 3))
            r = np.empty(0)

        energy = 0.0
        virial = 0.0

        # --- two-body (directed: each undirected pair visited twice) ---
        if r.size:
            e2, de2 = self._phi2(r)
            # f_i = -dphi2/dr * (x_i - x_j)/r; only i receives — the rank
            # owning j computes the mirror visit, halving energy/virial.
            scatter_add_vec(f, pi, (-de2 / r)[:, None] * d2)
            energy += 0.5 * float(e2.sum())
            virial += 0.5 * float((-de2 * r).sum())

        # --- three-body -----------------------------------------------------
        # CSR over the cutoff-restricted directed list.
        order = np.argsort(pi, kind="stable")
        pi_s, pj_s = pi[order], pj[order]
        first = np.searchsorted(pi_s, np.arange(nlocal + 1))
        centers, j_idx, k_idx = self._triplets(first, pj_s, nlocal)
        if centers.size:
            dij = x[j_idx] - x[centers]
            dik = x[k_idx] - x[centers]
            rij = np.sqrt(np.einsum("ij,ij->i", dij, dij))
            rik = np.sqrt(np.einsum("ij,ij->i", dik, dik))
            u = np.einsum("ij,ij->i", dij, dik) / (rij * rik)
            du = u - self.cos_theta0
            gij, dgij = self._g(rij)
            gik, dgik = self._g(rik)
            lam_eps = self.lam * self.epsilon

            e3 = lam_eps * du * du * gij * gik
            energy += float(e3.sum())

            # Gradients of u w.r.t. x_j and x_k:
            du_dxj = dik / (rij * rik)[:, None] - (u / rij**2)[:, None] * dij
            du_dxk = dij / (rij * rik)[:, None] - (u / rik**2)[:, None] * dik

            pref = (2.0 * lam_eps * du * gij * gik)[:, None]
            fj = -(pref * du_dxj + (lam_eps * du * du * dgij * gik / rij)[:, None] * dij)
            fk = -(pref * du_dxk + (lam_eps * du * du * gij * dgik / rik)[:, None] * dik)
            fi = -(fj + fk)

            scatter_add_vec(f, centers, fi)
            scatter_add_vec(f, j_idx, fj)  # may land on ghosts -> reverse
            scatter_add_vec(f, k_idx, fk)
            virial += float(np.einsum("ij,ij->", dij, fj))
            virial += float(np.einsum("ij,ij->", dik, fk))

        return ForceResult(
            energy=energy,
            virial=virial,
            extra={"triplets": int(centers.size)},
        )
