"""Lennard-Jones 12-6 pair potential (paper Eq. 1, Table 2 LJ column).

``U(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ]`` truncated at ``cutoff``
(2.5 sigma in the benchmark) without shift, matching the LAMMPS bench
input the paper uses.  The kernel is a single vectorized pass over the
pair list with bincount-based scatter accumulation (see
:mod:`repro.md.kernels`).
"""

from __future__ import annotations

import numpy as np

from repro.md.atoms import Atoms
from repro.md.kernels import scatter_add_vec, scatter_sub_vec
from repro.md.potentials.base import ForceResult, GhostComm, PairPotential


class LennardJones(PairPotential):
    """LJ 12-6 with energy computed only inside the cutoff (no shift).

    Supports multiple species: construct with ``n_types > 1`` and set
    per-pair coefficients with :meth:`set_coeff`; unset cross terms fill
    in by Lorentz-Berthelot mixing (geometric epsilon, arithmetic sigma),
    matching LAMMPS' default ``pair_modify mix``.
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        sigma: float = 1.0,
        cutoff: float = 2.5,
        n_types: int = 1,
    ):
        if epsilon <= 0 or sigma <= 0 or cutoff <= 0:
            raise ValueError("epsilon, sigma and cutoff must be positive")
        if n_types < 1:
            raise ValueError(f"n_types must be >= 1, got {n_types}")
        self.epsilon = epsilon
        self.sigma = sigma
        self.cutoff = cutoff
        self.n_types = n_types
        # Per-type-pair tables (filled by mixing until set explicitly).
        self._eps = np.full((n_types, n_types), epsilon)
        self._sig = np.full((n_types, n_types), sigma)
        self._cut = np.full((n_types, n_types), cutoff)
        self._diag_set = [False] * n_types
        self._pair_set = np.zeros((n_types, n_types), dtype=bool)

    # -- multi-species coefficients ------------------------------------
    def set_coeff(
        self, i: int, j: int, epsilon: float, sigma: float, cutoff: float | None = None
    ) -> None:
        """Set the (i, j) interaction (symmetric); remix unset cross terms."""
        if not (0 <= i < self.n_types and 0 <= j < self.n_types):
            raise ValueError(f"types ({i}, {j}) out of range for {self.n_types}")
        if epsilon <= 0 or sigma <= 0:
            raise ValueError("epsilon and sigma must be positive")
        cut = cutoff if cutoff is not None else self.cutoff
        for a, b in ((i, j), (j, i)):
            self._eps[a, b] = epsilon
            self._sig[a, b] = sigma
            self._cut[a, b] = cut
            self._pair_set[a, b] = True
        if i == j:
            self._diag_set[i] = True
            self._remix()
        self.cutoff = float(self._cut.max())  # neighbor lists use the max

    def _remix(self) -> None:
        """Lorentz-Berthelot fill for cross terms not set explicitly."""
        for a in range(self.n_types):
            for b in range(self.n_types):
                if a == b or self._pair_set[a, b]:
                    continue
                if self._diag_set[a] and self._diag_set[b]:
                    self._eps[a, b] = np.sqrt(self._eps[a, a] * self._eps[b, b])
                    self._sig[a, b] = 0.5 * (self._sig[a, a] + self._sig[b, b])
                    self._cut[a, b] = max(self._cut[a, a], self._cut[b, b])

    def coeff(self, i: int, j: int) -> tuple[float, float, float]:
        """(epsilon, sigma, cutoff) for the (i, j) interaction."""
        return float(self._eps[i, j]), float(self._sig[i, j]), float(self._cut[i, j])

    def pair_energy(self, r: np.ndarray) -> np.ndarray:
        """U(r) for scalar/array distances (no cutoff applied)."""
        sr6 = (self.sigma / r) ** 6
        return 4.0 * self.epsilon * (sr6 * sr6 - sr6)

    def pair_force_over_r(self, r2: np.ndarray) -> np.ndarray:
        """fpair(r)/r such that f_i += fpair * (x_i - x_j)."""
        sr2 = (self.sigma * self.sigma) / r2
        sr6 = sr2 * sr2 * sr2
        return 24.0 * self.epsilon * sr6 * (2.0 * sr6 - 1.0) / r2

    def compute(
        self,
        atoms: Atoms,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        comm: GhostComm | None = None,
        half_list: bool = True,
    ) -> ForceResult:
        """Vectorized LJ force/energy/virial over the pair list."""
        x = atoms.x
        f = atoms.f
        if pair_i.size == 0:
            return ForceResult()

        d = x[pair_i] - x[pair_j]
        r2 = np.einsum("ij,ij->i", d, d)

        if self.n_types == 1:
            eps = self.epsilon
            sig2 = self.sigma * self.sigma
            cut2 = self.cutoff * self.cutoff
        else:
            ti = atoms.type[pair_i]
            tj = atoms.type[pair_j]
            eps = self._eps[ti, tj]
            sig = self._sig[ti, tj]
            sig2 = sig * sig
            cut = self._cut[ti, tj]
            cut2 = cut * cut

        mask = r2 < cut2
        i = pair_i[mask]
        j = pair_j[mask]
        d = d[mask]
        r2 = r2[mask]
        if self.n_types != 1:
            eps = eps[mask]
            sig2 = sig2[mask]

        sr2 = sig2 / r2
        sr6 = sr2 * sr2 * sr2
        fpair = 24.0 * eps * sr6 * (2.0 * sr6 - 1.0) / r2
        fvec = fpair[:, None] * d
        scatter_add_vec(f, i, fvec)
        if half_list:
            scatter_sub_vec(f, j, fvec)

        e_pair = 4.0 * eps * (sr6 * sr6 - sr6)
        virial_pair = fpair * r2  # r . f per pair

        if half_list:
            energy = float(e_pair.sum())
            virial = float(virial_pair.sum())
        else:
            # Directed list visits each pair twice (once per endpoint).
            energy = 0.5 * float(e_pair.sum())
            virial = 0.5 * float(virial_pair.sum())
        return ForceResult(energy=energy, virial=virial)
