"""Interatomic potentials: Lennard-Jones and EAM (paper Table 2)."""

from repro.md.potentials.base import PairPotential, ForceResult, GhostComm, NullGhostComm
from repro.md.potentials.lj import LennardJones
from repro.md.potentials.eam import EAMPotential, SuttonChenEAM, make_cu_like_eam
from repro.md.potentials.sw import StillingerWeber

__all__ = [
    "PairPotential",
    "ForceResult",
    "GhostComm",
    "NullGhostComm",
    "LennardJones",
    "EAMPotential",
    "SuttonChenEAM",
    "make_cu_like_eam",
    "StillingerWeber",
]
