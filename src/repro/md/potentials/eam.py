"""Embedded-atom method potential (paper Eq. 2, Table 2 EAM column).

``U = sum_i F(rho_i) + 1/2 sum_{i != j} phi(r_ij)``, with
``rho_i = sum_j rho(r_ij)``.

The evaluation is the two-pass structure whose *communication* the paper
cares about (section 4.1): with Newton's law and a half list, pass 1
accumulates density onto both partners (including ghosts), a **reverse
sum** merges ghost densities into owners, embedding derivatives
``fp = F'(rho)`` are computed for owned atoms, a **forward broadcast**
copies fp onto ghosts, and pass 2 evaluates pair forces that need
``fp_i + fp_j``.  Those are exactly the "two additional communications
during the pair stage" the paper optimizes.

The paper's benchmark uses the tabulated ``Cu_u3.eam`` (Foiles-Daw-Adams)
file shipped with LAMMPS, which we cannot redistribute; as documented in
DESIGN.md we substitute the Sutton-Chen copper parameterization — an
analytic EAM with the same evaluation structure and a comparable cutoff
(Table 2: 4.95 A) — and also exercise LAMMPS' tabulated-spline machinery
by building cubic-spline tables from the analytic forms
(:func:`make_cu_like_eam`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.interpolate import CubicSpline

from repro.md.atoms import Atoms
from repro.md.kernels import scatter_add_scalar, scatter_add_vec, scatter_sub_vec
from repro.md.potentials.base import ForceResult, GhostComm, NullGhostComm, PairPotential


def _smoothstep_cut(r_inner: float, r_cut: float):
    """C1 switching function S(r): 1 below ``r_inner``, 0 above ``r_cut``.

    Returns ``(S, dS)`` vectorized callables.
    """
    if not 0.0 < r_inner < r_cut:
        raise ValueError(f"need 0 < r_inner < r_cut, got {r_inner}, {r_cut}")
    width = r_cut - r_inner

    def s(r: np.ndarray) -> np.ndarray:
        x = np.clip((np.asarray(r, dtype=float) - r_inner) / width, 0.0, 1.0)
        return 1.0 - x * x * (3.0 - 2.0 * x)

    def ds(r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=float)
        x = np.clip((r - r_inner) / width, 0.0, 1.0)
        out = -6.0 * x * (1.0 - x) / width
        return out

    return s, ds


class EAMPotential(PairPotential):
    """EAM from callables ``phi, dphi, rho, drho, F, dF`` (all vectorized).

    The callables must already include cutoff smoothing — ``phi`` and
    ``rho`` must vanish at ``cutoff``.
    """

    def __init__(
        self,
        phi: Callable,
        dphi: Callable,
        rho: Callable,
        drho: Callable,
        embed: Callable,
        dembed: Callable,
        cutoff: float,
    ) -> None:
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        self.phi, self.dphi = phi, dphi
        self.rho, self.drho = rho, drho
        self.embed, self.dembed = embed, dembed
        self.cutoff = cutoff

    # ------------------------------------------------------------------
    # Phased API: the multi-rank driver interleaves world-level ghost
    # communication between these passes (reverse-sum density after
    # pass 1, forward fp after the embedding pass).
    # ------------------------------------------------------------------
    def density_pass(
        self,
        atoms: Atoms,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        half_list: bool = True,
    ) -> dict:
        """Pass 1: accumulate electron density; returns the scratch dict.

        ``scratch['density']`` has one entry per atom (local then ghost);
        with a half list, ghost entries hold this rank's contributions to
        remote atoms and must be reverse-summed to owners before the
        embedding pass.
        """
        x = atoms.x
        n = atoms.ntotal
        if pair_i.size:
            d = x[pair_i] - x[pair_j]
            r2 = np.einsum("ij,ij->i", d, d)
            mask = r2 < self.cutoff * self.cutoff
            i, j, d = pair_i[mask], pair_j[mask], d[mask]
            r = np.sqrt(r2[mask])
        else:
            i = j = np.empty(0, dtype=np.intp)
            d = np.empty((0, 3))
            r = np.empty(0)

        density = np.zeros(n)
        if r.size:
            rho_r = self.rho(r)
            scatter_add_scalar(density, i, rho_r)
            if half_list:
                scatter_add_scalar(density, j, rho_r)
        return {"i": i, "j": j, "d": d, "r": r, "density": density, "half": half_list}

    def embedding_pass(self, atoms: Atoms, scratch: dict) -> float:
        """Embedding energies and derivatives from the complete density.

        Fills ``scratch['fp']`` for local atoms (ghost entries zero until
        the driver forwards them) and returns the embedding energy.
        """
        nlocal = atoms.nlocal
        rho_local = np.maximum(scratch["density"][:nlocal], 0.0)
        e_embed = float(np.sum(self.embed(rho_local)))
        fp = np.zeros(atoms.ntotal)
        fp[:nlocal] = self.dembed(rho_local)
        scratch["fp"] = fp
        scratch["embedding_energy"] = e_embed
        return e_embed

    def force_pass(self, atoms: Atoms, scratch: dict) -> ForceResult:
        """Pass 2: pair forces with the embedding chain rule."""
        f = atoms.f
        i, j, d, r = scratch["i"], scratch["j"], scratch["d"], scratch["r"]
        fp = scratch["fp"]
        half_list = scratch["half"]
        e_embed = scratch["embedding_energy"]

        energy_pair = 0.0
        virial = 0.0
        if r.size:
            dphi_r = self.dphi(r)
            drho_r = self.drho(r)
            du = dphi_r + (fp[i] + fp[j]) * drho_r
            fpair = -du / r  # f_i += fpair * (x_i - x_j)
            fvec = fpair[:, None] * d
            scatter_add_vec(f, i, fvec)
            if half_list:
                scatter_sub_vec(f, j, fvec)
            e_p = self.phi(r)
            w = fpair * r * r
            if half_list:
                energy_pair = float(e_p.sum())
                virial = float(w.sum())
            else:
                energy_pair = 0.5 * float(e_p.sum())
                virial = 0.5 * float(w.sum())

        return ForceResult(
            energy=energy_pair + e_embed,
            virial=virial,
            comm_calls=2 if half_list else 1,
            extra={"embedding_energy": e_embed},
        )

    def compute(
        self,
        atoms: Atoms,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        comm: GhostComm | None = None,
        half_list: bool = True,
    ) -> ForceResult:
        """All three passes with inline ghost communication."""
        comm = comm if comm is not None else NullGhostComm()
        scratch = self.density_pass(atoms, pair_i, pair_j, half_list)
        if half_list:
            comm.reverse_sum_scalar(scratch["density"])
        self.embedding_pass(atoms, scratch)
        comm.forward_scalar(scratch["fp"])
        return self.force_pass(atoms, scratch)


class SuttonChenEAM(EAMPotential):
    """Analytic Sutton-Chen EAM (Cu defaults), C1-smoothed to the cutoff.

    ``phi(r) = eps (a/r)^n``, ``rho(r) = (a/r)^m``,
    ``F(rho) = -eps c sqrt(rho)``.  Copper: n=9, m=6, c=39.432,
    eps=1.2382e-2 eV, a=3.615 A (Sutton & Chen 1990).
    """

    def __init__(
        self,
        epsilon: float = 1.2382e-2,
        a: float = 3.615,
        c: float = 39.432,
        n: int = 9,
        m: int = 6,
        cutoff: float = 4.95,
        smooth_fraction: float = 0.85,
    ) -> None:
        s, ds = _smoothstep_cut(smooth_fraction * cutoff, cutoff)

        def phi(r):
            return epsilon * (a / r) ** n * s(r)

        def dphi(r):
            core = epsilon * (a / r) ** n
            return -n * core / r * s(r) + core * ds(r)

        def rho(r):
            return (a / r) ** m * s(r)

        def drho(r):
            core = (a / r) ** m
            return -m * core / r * s(r) + core * ds(r)

        def embed(rho_bar):
            return -epsilon * c * np.sqrt(np.maximum(rho_bar, 0.0))

        def dembed(rho_bar):
            rb = np.maximum(rho_bar, 1e-30)
            return -0.5 * epsilon * c / np.sqrt(rb)

        super().__init__(phi, dphi, rho, drho, embed, dembed, cutoff)
        self.epsilon, self.a, self.c, self.n, self.m = epsilon, a, c, n, m


def make_cu_like_eam(
    cutoff: float = 4.95,
    n_r: int = 2000,
    n_rho: int = 2000,
) -> EAMPotential:
    """Tabulated copper-like EAM via cubic splines (funcfl-style).

    Samples the analytic Sutton-Chen forms onto dense tables and
    interpolates with natural cubic splines, mirroring how LAMMPS
    evaluates ``Cu_u3.eam``.  Agreement with the analytic potential is
    verified in tests to < 1e-8 relative.
    """
    ref = SuttonChenEAM(cutoff=cutoff)
    r_min = 0.5  # well below any physical separation
    r = np.linspace(r_min, cutoff, n_r)
    phi_s = CubicSpline(r, ref.phi(r))
    rho_s = CubicSpline(r, ref.rho(r))

    # Density range: generous upper bound (~12 neighbors at ~0.7 a).
    rho_max = 16.0 * float(ref.rho(np.array([0.7 * ref.a]))[0] + 1.0)
    rho_grid = np.linspace(0.0, rho_max, n_rho)
    embed_s = CubicSpline(rho_grid, ref.embed(rho_grid))

    dphi_s = phi_s.derivative()
    drho_s = rho_s.derivative()
    dembed_s = embed_s.derivative()

    def clamp_r(fn):
        def wrapped(x):
            x = np.clip(np.asarray(x, dtype=float), r_min, cutoff)
            return fn(x)

        return wrapped

    def clamp_rho(fn):
        def wrapped(x):
            x = np.clip(np.asarray(x, dtype=float), 0.0, rho_max)
            return fn(x)

        return wrapped

    return EAMPotential(
        phi=clamp_r(phi_s),
        dphi=clamp_r(dphi_s),
        rho=clamp_r(rho_s),
        drho=clamp_r(drho_s),
        embed=clamp_rho(embed_s),
        dembed=clamp_rho(dembed_s),
        cutoff=cutoff,
    )
