"""The multi-rank MD driver: LAMMPS' run loop over the simulated world.

One :class:`Simulation` owns a :class:`~repro.runtime.world.World` of
ranks, a domain decomposition, per-rank atoms/neighbor lists, and a
pluggable ghost exchange (3-stage, p2p, or fine-grained p2p — the choice
the paper evaluates).  The step structure is LAMMPS':

1. **Modify** — NVE initial integrate (half kick + drift).
2. Every ``every`` steps (and per the ``check`` criterion for EAM):
   **Comm** exchange (migration) + borders, then **Neigh** rebuild;
   otherwise **Comm** forward (ghost positions).
3. **Pair** — force evaluation; EAM interleaves its density reverse-sum
   and fp forward between passes (through the same exchange).
4. **Comm** — reverse (ghost forces -> owners, Newton on).
5. **Modify** — NVE final integrate.
6. **Other** — thermo output and, for ``check=True``, the global
   allreduce that decides rebuilds (the cost that dominates EAM's
   "Other" column in Table 3).

Wall time of each stage is accumulated in :class:`StageTimers`; the
modeled Fugaku time of the same run comes from the perfmodel, which
prices this driver's communication schedules.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.exchange_base import GhostExchange
from repro.core.fine_p2p import FineGrainedP2PExchange
from repro.faults.injector import FAULTS, FaultEscalation
from repro.core.p2p import P2PExchange
from repro.core.three_stage import ThreeStageExchange
from repro.md.atoms import Atoms
from repro.md.domain import Domain, decompose_grid
from repro.md.integrate import NVEIntegrator
from repro.md.neighbor import NeighborList, NeighborSettings
from repro.md.potentials.base import PairPotential
from repro.md.region import Box
from repro.md.stages import Stage, StageTimers
from repro.md.thermo import Thermo, ThermoSample
from repro.obs.telemetry import TELEMETRY, StepTelemetry
from repro.obs.trace import TRACER
from repro.runtime.collectives import allreduce
from repro.runtime.world import World


@dataclass
class SimulationConfig:
    """Run parameters (the input-script knobs of paper Table 2)."""

    dt: float = 0.005
    skin: float = 0.3
    neighbor_every: int = 20
    neighbor_check: bool = False
    newton: bool = True
    pattern: str = "p2p"  # "3stage" | "p2p" | "parallel-p2p"
    rdma: bool = False
    use_border_bins: bool = True
    shell_radius: int = 1
    mass: float = 1.0
    thermo_every: int = 0  # 0: only on demand
    seed: int = 12345
    #: also price each step's communication on the network simulator and
    #: accumulate it into ``timers.model`` (simulated Fugaku seconds)
    model_machine_time: bool = False
    #: bound the transport's traffic log to the most recent N messages
    #: (None keeps the unbounded seed behavior; summaries stay exact via
    #: the log's running aggregates)
    traffic_window: int | None = None
    #: drop the per-message traffic log at the end of every step — for
    #: long runs that never ask for per-message summaries.  Off by
    #: default: benchmarks and self-checks read the full log.
    clear_traffic_each_step: bool = False
    extra: dict = field(default_factory=dict)


class Simulation:
    """A complete multi-rank MD run."""

    def __init__(
        self,
        x: np.ndarray,
        v: np.ndarray,
        box: Box,
        potential: PairPotential,
        config: SimulationConfig,
        grid: tuple[int, int, int] | None = None,
        n_ranks: int | None = None,
        fixes: list | None = None,
        types: np.ndarray | None = None,
    ) -> None:
        x = np.asarray(x, dtype=float)
        v = np.asarray(v, dtype=float)
        if x.shape != v.shape or x.ndim != 2 or x.shape[1] != 3:
            raise ValueError("x and v must both be (N, 3)")
        if types is not None:
            types = np.asarray(types, dtype=np.int32)
            if types.shape != (x.shape[0],):
                raise ValueError("types must be a 1-D array matching x")
        self.config = config
        self.potential = potential
        self.box = box
        self.natoms = x.shape[0]

        if grid is None:
            grid = decompose_grid(n_ranks or 1, tuple(box.lengths))
        self.grid = grid
        self.world = World(int(np.prod(grid)), grid=grid)
        self.domain = Domain(box, grid)

        rcomm = potential.cutoff + config.skin
        sub_len = float(np.min(self.domain.sub_lengths))
        if rcomm > config.shell_radius * sub_len:
            raise ValueError(
                f"ghost shell {rcomm:.3f} exceeds shell_radius "
                f"{config.shell_radius} x sub-box {sub_len:.3f}; increase "
                "shell_radius or use fewer ranks"
            )
        self._rcomm = rcomm
        if config.traffic_window is not None:
            self.world.transport.log.set_window(config.traffic_window)
        self.exchange = self._make_exchange(rcomm)
        self.half = config.newton and not potential.needs_full_list
        #: (from_pattern, to_pattern) of every fault-driven tier change
        self.degradations: list[tuple[str, str]] = []

        settings = NeighborSettings(
            cutoff=potential.cutoff,
            skin=config.skin,
            every=config.neighbor_every,
            check=config.neighbor_check,
            half=self.half,
            ghost_rule=self.exchange.ghost_rule,
        )
        self._neigh_settings = settings
        self.integrator = NVEIntegrator(config.dt, config.mass)
        self.fixes = list(fixes) if fixes else []
        self.thermo = Thermo(box.volume, config.mass)
        self.timers = StageTimers()
        # Always-on telemetry plane (counters/sketches/flight ring) —
        # per-run state so back-to-back simulations never pollute each
        # other's percentiles.  Attaching makes this run the sink for
        # global event sources (the fault injector).
        self.telemetry: StepTelemetry | None = None
        if TELEMETRY.enabled:
            self.telemetry = StepTelemetry()
            TELEMETRY.attach(self.telemetry)
        self.step_count = 0
        self.rebuilds = 0
        self.samples: list[ThermoSample] = []
        self._last_results: dict[int, object] = {}

        # Distribute atoms and per-rank state.
        wrapped = box.wrap(x)
        groups = self.domain.scatter(wrapped)
        tags = np.arange(self.natoms, dtype=np.int64)
        for rank in range(self.world.size):
            pos = self.world.grid_pos_of(rank)
            idx = groups.get(pos, np.empty(0, dtype=np.intp))
            atoms = Atoms(capacity=max(2 * idx.size, 64))
            atoms.set_local(
                wrapped[idx], v[idx], tags[idx],
                None if types is None else types[idx],
            )
            ctx = self.world.ranks[rank]
            ctx.state["atoms"] = atoms
            ctx.state["neigh"] = NeighborList(settings)

        self._setup_done = False

    # ------------------------------------------------------------------
    def _make_exchange(
        self,
        rcomm: float,
        pattern: str | None = None,
        rdma: bool | None = None,
    ) -> GhostExchange:
        cfg = self.config
        pattern = cfg.pattern if pattern is None else pattern
        rdma = cfg.rdma if rdma is None else rdma
        newton = cfg.newton and not self.potential.needs_full_list
        if pattern == "3stage":
            if not newton:
                # Full shell is what 3-stage builds anyway; the list type
                # is decided by `half` below.
                pass
            return ThreeStageExchange(
                self.world, self.domain, rcomm, radius=cfg.shell_radius
            )
        if pattern == "p2p":
            return P2PExchange(
                self.world,
                self.domain,
                rcomm,
                newton=newton,
                radius=cfg.shell_radius,
                rdma=rdma,
                use_border_bins=cfg.use_border_bins,
            )
        if pattern == "parallel-p2p":
            return FineGrainedP2PExchange(
                self.world,
                self.domain,
                rcomm,
                newton=newton,
                radius=cfg.shell_radius,
                rdma=rdma,
                use_border_bins=cfg.use_border_bins,
            )
        raise ValueError(f"unknown communication pattern {pattern!r}")

    # -- graceful degradation (fault-budget escalation) -----------------
    def _degrade(self, exc: FaultEscalation) -> None:
        """Fall back along the pattern ladder after an escalation.

        fine-p2p -> coarse-p2p -> 3-stage: each tier rebuilds the
        exchange on the plain message plane, purges in-flight traffic of
        the abandoned attempt, refreshes the neighbor lists (the ghost
        rule may change), and re-establishes migration + borders + lists
        from the ranks' still-consistent owned atoms.  If re-establishing
        a tier escalates again, the ladder continues; when no tier is
        left the original error propagates.
        """
        while True:
            fallback = self.exchange.fallback_pattern
            session = FAULTS.session
            if fallback is None or session is None:
                raise exc
            from_pattern = self.exchange.name
            session.on_degrade(from_pattern, fallback)
            self.degradations.append((from_pattern, fallback))
            self.world.transport.purge()
            self.exchange = self._make_exchange(
                self._rcomm, pattern=fallback, rdma=False
            )
            self._neigh_settings = dataclasses.replace(
                self._neigh_settings, ghost_rule=self.exchange.ghost_rule
            )
            for rank in range(self.world.size):
                self.world.ranks[rank].state["neigh"] = NeighborList(
                    self._neigh_settings
                )
            try:
                with self.timers.timing(Stage.COMM):
                    self.exchange.exchange()
                    self.exchange.borders()
                with self.timers.timing(Stage.NEIGH):
                    for rank in range(self.world.size):
                        atoms = self.atoms_of(rank)
                        self.neigh_of(rank).build(atoms.x, atoms.nlocal)
                return
            except FaultEscalation as next_exc:
                exc = next_exc

    def _compute_forces_robust(self) -> None:
        """Force computation that survives mid-phase escalations.

        ``_compute_forces`` zeroes forces first, so after a degradation
        (which re-established ghosts and neighbor lists) it can simply
        run again from scratch — no partial sums survive.
        """
        while True:
            try:
                self._compute_forces()
                return
            except FaultEscalation as exc:
                self._degrade(exc)

    def atoms_of(self, rank: int) -> Atoms:
        """The atom storage of ``rank``."""
        return self.world.ranks[rank].state["atoms"]

    def neigh_of(self, rank: int) -> NeighborList:
        """The neighbor list of ``rank``."""
        return self.world.ranks[rank].state["neigh"]

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Initial borders + neighbor lists + forces (LAMMPS setup())."""
        with TRACER.span("setup", cat="step", track="run", pattern=self.config.pattern):
            try:
                with self.timers.timing(Stage.COMM):
                    self.exchange.exchange()
                    self.exchange.borders()
                with self.timers.timing(Stage.NEIGH):
                    for rank in range(self.world.size):
                        atoms = self.atoms_of(rank)
                        self.neigh_of(rank).build(atoms.x, atoms.nlocal)
            except FaultEscalation as exc:
                # _degrade re-establishes borders + lists on the new tier.
                self._degrade(exc)
            self._compute_forces_robust()
            self._setup_done = True

    def _compute_forces(self) -> None:
        """Pair stage (+ reverse comm) on every rank."""
        pot = self.potential
        with self.timers.timing(Stage.PAIR):
            for rank in range(self.world.size):
                self.atoms_of(rank).zero_forces()
            if hasattr(pot, "density_pass"):
                scratch = {}
                for rank in range(self.world.size):
                    atoms = self.atoms_of(rank)
                    nl = self.neigh_of(rank)
                    scratch[rank] = pot.density_pass(
                        atoms, nl.pair_i, nl.pair_j, half_list=self.half
                    )
                if self.half:
                    self.exchange.reverse_sum_scalar_world(
                        {r: s["density"] for r, s in scratch.items()}
                    )
                for rank in range(self.world.size):
                    pot.embedding_pass(self.atoms_of(rank), scratch[rank])
                self.exchange.forward_scalar_world(
                    {r: s["fp"] for r, s in scratch.items()}
                )
                for rank in range(self.world.size):
                    self._last_results[rank] = pot.force_pass(
                        self.atoms_of(rank), scratch[rank]
                    )
            else:
                for rank in range(self.world.size):
                    atoms = self.atoms_of(rank)
                    nl = self.neigh_of(rank)
                    self._last_results[rank] = pot.compute(
                        atoms, nl.pair_i, nl.pair_j, half_list=self.half
                    )
        if self.half or self.potential.force_ghosts:
            # Newton's-law runs always reverse; 3-body full-list kernels
            # (Stillinger-Weber/Tersoff style) also scatter triplet forces
            # onto ghosts and need the same merge (LAMMPS: "pair style sw
            # requires newton pair on").
            with self.timers.timing(Stage.COMM):
                self.exchange.reverse()

    def _needs_rebuild(self) -> bool:
        """The every/check policy of ``neigh_modify`` (Table 2)."""
        cfg = self.config
        if self.step_count == 0:
            return False
        if self.step_count % cfg.neighbor_every:
            return False
        if not cfg.neighbor_check:
            return True
        # check yes: any rank's atoms moved beyond half the skin ->
        # global OR via allreduce (the EAM cost in Table 3 "Other").
        flags = [
            self.neigh_of(rank).needs_rebuild(self.atoms_of(rank).x_local())
            for rank in range(self.world.size)
        ]
        with self.timers.timing(Stage.OTHER):
            decision = bool(allreduce(flags, op=any))
        return decision

    def step(self) -> None:
        """Advance one MD timestep."""
        if not self._setup_done:
            self.setup()
        self.step_count += 1
        with TRACER.span(f"step {self.step_count}", cat="step", track="run"):
            self._step_impl()

    def _step_impl(self) -> None:
        """One timestep's body (wrapped in a ``cat="step"`` span)."""
        with self.timers.timing(Stage.MODIFY):
            for rank in range(self.world.size):
                self.integrator.initial_integrate(self.atoms_of(rank))

        rebuilt = self._needs_rebuild()
        if rebuilt:
            try:
                with self.timers.timing(Stage.COMM):
                    self.exchange.exchange()
                    self.exchange.borders()
                with self.timers.timing(Stage.NEIGH):
                    for rank in range(self.world.size):
                        atoms = self.atoms_of(rank)
                        self.neigh_of(rank).build(atoms.x, atoms.nlocal)
            except FaultEscalation as exc:
                self._degrade(exc)
            self.rebuilds += 1
        else:
            try:
                with self.timers.timing(Stage.COMM):
                    self.exchange.forward()
            except FaultEscalation as exc:
                # The re-established borders carry current positions, so
                # no separate forward re-run is needed.
                self._degrade(exc)

        if self.config.model_machine_time:
            from repro.core.modeling import modeled_step_comm_time

            self.timers.add_model(
                Stage.COMM,
                modeled_step_comm_time(self.exchange, rebuilt, newton=self.half),
            )

        self._compute_forces_robust()

        with self.timers.timing(Stage.MODIFY):
            for rank in range(self.world.size):
                self.integrator.final_integrate(self.atoms_of(rank))

        if self.fixes:
            temperature = None
            if any(f.needs_temperature for f in self.fixes):
                with self.timers.timing(Stage.OTHER):
                    temperature = self.sample_thermo().temperature
            with self.timers.timing(Stage.MODIFY):
                for fix in self.fixes:
                    for rank in range(self.world.size):
                        fix.end_of_step(
                            self.atoms_of(rank), rank, self.step_count, temperature
                        )

        if self.config.thermo_every and self.step_count % self.config.thermo_every == 0:
            with self.timers.timing(Stage.OTHER):
                self.samples.append(self.sample_thermo())

        # Telemetry flush stays outside the stage timers so the per-stage
        # sketch sums telescope exactly to the StageTimers totals (the
        # selfcheck battery pins that identity).
        if self.telemetry is not None:
            self.telemetry.flush_step(self)

        if self.config.clear_traffic_each_step:
            self.world.transport.log.clear()

    def run(self, n_steps: int) -> None:
        """Advance ``n_steps`` timesteps."""
        for _ in range(n_steps):
            self.step()

    # ------------------------------------------------------------------
    def sample_thermo(self) -> ThermoSample:
        """Global thermo reduction (an allreduce in real LAMMPS)."""
        ke = [self.thermo.local_kinetic(self.atoms_of(r)) for r in range(self.world.size)]
        pe = [getattr(self._last_results.get(r), "energy", 0.0) for r in range(self.world.size)]
        w = [getattr(self._last_results.get(r), "virial", 0.0) for r in range(self.world.size)]
        return Thermo.reduce(
            self.step_count, ke, pe, w, self.natoms, self.box.volume
        )

    def gather_positions(self) -> np.ndarray:
        """All local positions, ordered by global tag (for comparisons)."""
        out = np.zeros((self.natoms, 3))
        for rank in range(self.world.size):
            atoms = self.atoms_of(rank)
            out[atoms.tag[: atoms.nlocal]] = atoms.x_local()
        return out

    def gather_velocities(self) -> np.ndarray:
        """All local velocities, ordered by global tag."""
        out = np.zeros((self.natoms, 3))
        for rank in range(self.world.size):
            atoms = self.atoms_of(rank)
            out[atoms.tag[: atoms.nlocal]] = atoms.v
        return out

    def gather_forces(self) -> np.ndarray:
        """All local forces, ordered by global tag."""
        out = np.zeros((self.natoms, 3))
        for rank in range(self.world.size):
            atoms = self.atoms_of(rank)
            out[atoms.tag[: atoms.nlocal]] = atoms.f_local()
        return out

    def total_local_atoms(self) -> int:
        """Sum of local atom counts (conservation check)."""
        return sum(self.atoms_of(r).nlocal for r in range(self.world.size))
