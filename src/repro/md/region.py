"""Simulation boxes and sub-boxes with periodic boundary conditions.

The global :class:`Box` is always orthogonal (the paper's benchmarks are
cubic FCC systems).  Each rank owns a :class:`SubBox` — an axis-aligned
slab of the global box determined by the rank grid — and ghost regions
are shells of thickness ``r_comm = cutoff + skin`` around sub-boxes
(paper Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """An orthogonal periodic simulation box."""

    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"degenerate box lo={self.lo} hi={self.hi}")

    @property
    def lengths(self) -> np.ndarray:
        return np.asarray(self.hi) - np.asarray(self.lo)

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def wrap(self, x: np.ndarray) -> np.ndarray:
        """Wrap positions into the primary cell (vectorized)."""
        lo = np.asarray(self.lo)
        return lo + np.mod(x - lo, self.lengths)

    def minimum_image(self, dx: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        L = self.lengths
        return dx - L * np.round(dx / L)

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside [lo, hi) per the global box."""
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        return np.all((x >= lo) & (x < hi), axis=-1)


@dataclass(frozen=True)
class SubBox:
    """One rank's slab of the global box.

    ``grid_pos``/``grid_shape`` record where this sub-box sits in the rank
    grid; geometry queries (border membership, ghost-shell volumes) are
    what the communication layer builds its send lists from.
    """

    lo: tuple[float, float, float]
    hi: tuple[float, float, float]
    grid_pos: tuple[int, int, int]
    grid_shape: tuple[int, int, int]

    @property
    def lengths(self) -> np.ndarray:
        return np.asarray(self.hi) - np.asarray(self.lo)

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside [lo, hi)."""
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        return np.all((x >= lo) & (x < hi), axis=-1)

    def border_mask(self, x: np.ndarray, offset: tuple[int, int, int], rcomm: float) -> np.ndarray:
        """Atoms of this sub-box lying in the ghost region of the neighbor
        at grid ``offset``.

        For each axis with offset +1, the neighbor needs atoms within
        ``rcomm`` of this sub-box's high face; for -1, of the low face;
        for 0, any position qualifies.  The intersection over axes is the
        face/edge/corner region of Table 1.  Offsets of magnitude > 1
        (long-cutoff shells, Fig. 15) subtract the intervening sub-box
        widths, assuming a uniform grid.
        """
        x = np.atleast_2d(x)
        lengths = self.lengths
        mask = np.ones(x.shape[0], dtype=bool)
        for k, o in enumerate(offset):
            if o == 0:
                continue
            depth = rcomm - (abs(o) - 1) * lengths[k]
            if depth <= 0:
                return np.zeros(x.shape[0], dtype=bool)
            if o > 0:
                mask &= x[:, k] >= self.hi[k] - depth
            else:
                mask &= x[:, k] < self.lo[k] + depth
        return mask

    def ghost_shift(self, offset: tuple[int, int, int], box: Box) -> np.ndarray:
        """Position shift applied to ghosts received from grid ``offset``.

        If stepping ``offset`` from this sub-box crosses the periodic
        boundary, the sender's atoms must appear displaced by a box
        length on this rank.
        """
        shift = np.zeros(3)
        L = box.lengths
        for k, o in enumerate(offset):
            pos = self.grid_pos[k] + o
            n = self.grid_shape[k]
            if pos >= n:
                shift[k] = L[k] * (pos // n)
            elif pos < 0:
                shift[k] = -L[k] * ((n - 1 - pos) // n)
        return shift
