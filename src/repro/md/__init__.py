"""A LAMMPS-like molecular dynamics engine.

This is the substrate the paper optimizes: a working classical-MD code
with LAMMPS' architecture — spatial (domain) decomposition over MPI
ranks, per-rank neighbor lists over local+ghost atoms, pairwise
potentials with Newton's 3rd law, velocity-Verlet NVE integration, and
the five-stage timing breakdown (Pair / Neigh / Comm / Modify / Other)
that LAMMPS prints and the paper's Table 3 reports.

Everything here actually runs: multi-rank simulations execute in-process
on :class:`repro.runtime.World`, exchanging real ghost atoms through
whichever communication pattern (:mod:`repro.core`) is plugged in.
"""

from repro.md.atoms import Atoms
from repro.md.region import Box, SubBox
from repro.md.lattice import fcc_lattice, fcc_box_for_atoms, lj_density_to_cell, diamond_lattice
from repro.md.domain import Domain, decompose_grid
from repro.md.neighbor import NeighborList, build_pairs, NeighborSettings
from repro.md.potentials import LennardJones, EAMPotential, make_cu_like_eam, StillingerWeber
from repro.md.integrate import NVEIntegrator
from repro.md.thermo import Thermo, ThermoSample
from repro.md.stages import StageTimers, Stage
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.fixes import Fix, Langevin, VelocityRescale
from repro.md.analysis import MSDTracker, radial_distribution, structure_order_parameter
from repro.md.dump import DumpWriter, Frame, read_dump
from repro.md.inputscript import InputScript, InputScriptError
from repro.md.restart import load_checkpoint, save_checkpoint

__all__ = [
    "Atoms",
    "Box",
    "SubBox",
    "fcc_lattice",
    "diamond_lattice",
    "fcc_box_for_atoms",
    "lj_density_to_cell",
    "Domain",
    "decompose_grid",
    "NeighborList",
    "NeighborSettings",
    "build_pairs",
    "LennardJones",
    "EAMPotential",
    "make_cu_like_eam",
    "StillingerWeber",
    "NVEIntegrator",
    "Thermo",
    "ThermoSample",
    "StageTimers",
    "Stage",
    "Simulation",
    "SimulationConfig",
    "Fix",
    "Langevin",
    "VelocityRescale",
    "MSDTracker",
    "radial_distribution",
    "structure_order_parameter",
    "DumpWriter",
    "Frame",
    "read_dump",
    "InputScript",
    "InputScriptError",
    "save_checkpoint",
    "load_checkpoint",
]
