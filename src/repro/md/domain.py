"""3D domain decomposition.

Splits the global box across a ``(px, py, pz)`` rank grid (paper Fig. 1),
assigns atoms to owners, and handles the *exchange* stage: migrating
atoms whose positions left their sub-box to the owning neighbor rank.

:func:`decompose_grid` chooses the rank grid the way LAMMPS does — the
factorization of P minimizing communication surface for the given box
aspect ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.region import Box, SubBox


def _factorizations(p: int) -> list[tuple[int, int, int]]:
    """All ordered 3-factorizations of ``p``."""
    out = []
    for a in range(1, p + 1):
        if p % a:
            continue
        q = p // a
        for b in range(1, q + 1):
            if q % b:
                continue
            out.append((a, b, q // b))
    return out


def decompose_grid(p: int, box_lengths: tuple[float, float, float]) -> tuple[int, int, int]:
    """Pick the rank grid minimizing total sub-box surface area.

    This is LAMMPS' default heuristic: for a cubic box it yields the most
    cubic factorization of ``p``.
    """
    if p < 1:
        raise ValueError(f"rank count must be >= 1, got {p}")
    L = np.asarray(box_lengths, dtype=float)

    def surface(grid: tuple[int, int, int]) -> float:
        s = L / np.asarray(grid)
        return 2.0 * (s[0] * s[1] + s[1] * s[2] + s[0] * s[2])

    return min(_factorizations(p), key=lambda g: (surface(g), g))


@dataclass
class Domain:
    """The global box partitioned over a rank grid."""

    box: Box
    grid: tuple[int, int, int]

    def __post_init__(self) -> None:
        if min(self.grid) < 1:
            raise ValueError(f"grid must be positive, got {self.grid}")
        self._lo = np.asarray(self.box.lo)
        self._sub_len = self.box.lengths / np.asarray(self.grid)

    @property
    def size(self) -> int:
        px, py, pz = self.grid
        return px * py * pz

    @property
    def sub_lengths(self) -> np.ndarray:
        """Edge lengths of every (uniform) sub-box."""
        return self._sub_len.copy()

    def sub_box(self, grid_pos: tuple[int, int, int]) -> SubBox:
        """The sub-box at ``grid_pos``."""
        gp = np.asarray(grid_pos)
        if np.any(gp < 0) or np.any(gp >= np.asarray(self.grid)):
            raise ValueError(f"grid position {grid_pos} outside grid {self.grid}")
        lo = self._lo + gp * self._sub_len
        hi = self._lo + (gp + 1) * self._sub_len
        return SubBox(tuple(lo), tuple(hi), tuple(int(v) for v in gp), self.grid)

    def owner_grid_pos(self, x: np.ndarray) -> np.ndarray:
        """Grid position owning each (wrapped) position; shape (N, 3)."""
        xw = self.box.wrap(np.atleast_2d(x))
        gp = np.floor((xw - self._lo) / self._sub_len).astype(np.int64)
        # Guard against positions landing exactly on the high edge after
        # floating-point wrap.
        np.clip(gp, 0, np.asarray(self.grid) - 1, out=gp)
        return gp

    def owner_rank(self, x: np.ndarray, rank_of_pos) -> np.ndarray:
        """Owning rank per position, via the world's ``rank_at`` mapping."""
        gp = self.owner_grid_pos(x)
        return np.asarray([rank_of_pos(tuple(p)) for p in gp], dtype=np.int64)

    def scatter(self, x: np.ndarray) -> dict[tuple[int, int, int], np.ndarray]:
        """Index arrays of ``x`` grouped by owning grid position."""
        gp = self.owner_grid_pos(x)
        keys = gp[:, 0] + self.grid[0] * (gp[:, 1] + self.grid[1] * gp[:, 2])
        out: dict[tuple[int, int, int], np.ndarray] = {}
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for chunk in np.split(order, boundaries):
            if chunk.size == 0:
                continue
            k = int(keys[chunk[0]])
            px, py = self.grid[0], self.grid[1]
            pos = (k % px, (k // px) % py, k // (px * py))
            out[pos] = chunk
        return out
