"""LAMMPS-style log output.

The paper's artifact instructs readers to check two things in the LAMMPS
log: the ``Performance`` line and the ``MPI task timing breakdown``
table.  This module renders both in the familiar format so runs of this
reproduction read like the logs the paper analyzed.
"""

from __future__ import annotations

from typing import Sequence

from repro.md.stages import Stage, StageTimers
from repro.md.thermo import ThermoSample


THERMO_COLUMNS = ("Step", "Temp", "E_pair", "TotEng", "Press")


def format_thermo(samples: Sequence[ThermoSample]) -> str:
    """The per-step thermo table (``thermo_style custom ...``)."""
    lines = ["   ".join(f"{c:>12}" for c in THERMO_COLUMNS)]
    for s in samples:
        lines.append(
            f"{s.step:>12d}   {s.temperature:>12.6g}   {s.potential:>12.6g}   "
            f"{s.total_energy:>12.6g}   {s.pressure:>12.6g}"
        )
    return "\n".join(lines)


def format_performance(
    steps: int,
    wall_seconds: float,
    natoms: int,
    dt: float,
    time_unit: str = "tau",
) -> str:
    """The ``Performance:`` block LAMMPS prints after a run."""
    if steps <= 0 or wall_seconds <= 0:
        return "Performance: (no steps timed)"
    per_day = dt * steps / wall_seconds * 86400.0
    steps_per_s = steps / wall_seconds
    atom_steps = natoms * steps_per_s
    return (
        f"Performance: {per_day:.3f} {time_unit}/day, "
        f"{steps_per_s:.3f} timesteps/s, "
        f"{atom_steps:.3e} atom-step/s"
    )


def format_breakdown(timers: StageTimers, which: str = "wall", nprocs: int = 1) -> str:
    """The ``MPI task timing breakdown`` table."""
    if which not in ("wall", "model"):
        raise ValueError(f"which must be 'wall' or 'model', got {which!r}")
    table = timers.wall if which == "wall" else timers.model
    total = sum(table.values())
    lines = [
        "MPI task timing breakdown:",
        f"{'Section':<10}|  {'min time':>12} | {'avg time':>12} | {'max time':>12} |{'%total':>7}",
        "-" * 64,
    ]
    for stage in Stage:
        t = table[stage]
        pct = 100.0 * t / total if total > 0 else 0.0
        lines.append(
            f"{stage.value:<10}| {t:>12.5g} | {t:>12.5g} | {t:>12.5g} |{pct:>6.2f}%"
        )
    lines.append("-" * 64)
    lines.append(f"Total wall time: {total:.5g} s on {nprocs} simulated ranks")
    return "\n".join(lines)


def format_run_summary(sim) -> str:
    """Full post-run block: thermo samples + performance + breakdown."""
    parts = []
    if sim.samples:
        parts.append(format_thermo(sim.samples))
    parts.append(
        format_performance(
            sim.step_count, max(sim.timers.total_wall(), 1e-12), sim.natoms, sim.config.dt
        )
    )
    parts.append(format_breakdown(sim.timers, nprocs=sim.world.size))
    if sim.timers.total_model() > 0:
        parts.append("Simulated Fugaku communication time:")
        parts.append(format_breakdown(sim.timers, which="model", nprocs=sim.world.size))
    return "\n\n".join(parts)
