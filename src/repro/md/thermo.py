"""Thermodynamic diagnostics: temperature, energies, virial pressure.

The paper's accuracy experiment (Fig. 11) compares the *pressure* trace
of the optimized code against the reference over 50K steps; pressure is
the most communication-sensitive scalar because the virial sums pair
terms whose ownership moves with the communication pattern.  We compute
it the LAMMPS way:

``P = (N k_B T + W) / (3 V)``  with  ``W = sum_pairs r_ij . f_ij``

(kB = 1 in LJ units; in metal units the constant is absorbed by using
consistent units throughout, which suffices for trace comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.atoms import Atoms


@dataclass(frozen=True)
class ThermoSample:
    """One global thermo snapshot (already reduced over ranks)."""

    step: int
    temperature: float
    kinetic: float
    potential: float
    virial: float
    pressure: float
    natoms: int

    @property
    def total_energy(self) -> float:
        return self.kinetic + self.potential


class Thermo:
    """Per-rank thermo contributions + the global reduction."""

    def __init__(self, volume: float, mass: float = 1.0, kb: float = 1.0) -> None:
        if volume <= 0:
            raise ValueError(f"volume must be positive, got {volume}")
        self.volume = volume
        self.mass = mass
        self.kb = kb

    def local_kinetic(self, atoms: Atoms) -> float:
        """Kinetic energy of this rank's local atoms."""
        v = atoms.v
        return 0.5 * self.mass * float(np.einsum("ij,ij->", v, v))

    @staticmethod
    def reduce(
        step: int,
        kinetic_parts,
        potential_parts,
        virial_parts,
        natoms: int,
        volume: float,
        kb: float = 1.0,
    ) -> ThermoSample:
        """Combine per-rank contributions into one global sample."""
        ke = float(sum(kinetic_parts))
        pe = float(sum(potential_parts))
        w = float(sum(virial_parts))
        dof = max(3 * natoms - 3, 1)  # momentum-zeroed, LAMMPS convention
        temperature = 2.0 * ke / (dof * kb)
        pressure = (natoms * kb * temperature) / volume + w / (3.0 * volume)
        return ThermoSample(
            step=step,
            temperature=temperature,
            kinetic=ke,
            potential=pe,
            virial=w,
            pressure=pressure,
            natoms=natoms,
        )
