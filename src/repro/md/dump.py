"""Trajectory dump files in LAMMPS ``dump atom`` text format.

Writes the classic frame layout::

    ITEM: TIMESTEP
    100
    ITEM: NUMBER OF ATOMS
    4000
    ITEM: BOX BOUNDS pp pp pp
    0.0 10.0
    ...
    ITEM: ATOMS id type x y z [vx vy vz]

and reads it back, so trajectories from this engine feed the analysis
tools here or any external LAMMPS-compatible pipeline (OVITO, MDAnalysis
and friends all parse this format).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.md.region import Box


@dataclass
class Frame:
    """One trajectory frame (sorted by atom id)."""

    step: int
    box: Box
    x: np.ndarray
    types: np.ndarray
    v: np.ndarray | None = None

    @property
    def natoms(self) -> int:
        return self.x.shape[0]


class DumpWriter:
    """Append frames to a LAMMPS-format dump file."""

    def __init__(self, path, include_velocities: bool = False) -> None:
        self.path = Path(path)
        self.include_velocities = include_velocities
        self.frames_written = 0
        self.path.write_text("")  # truncate

    def write_frame(
        self,
        step: int,
        box: Box,
        x: np.ndarray,
        types: np.ndarray | None = None,
        v: np.ndarray | None = None,
    ) -> None:
        """Append one frame in LAMMPS ``dump atom`` format."""
        n = x.shape[0]
        if types is None:
            types = np.zeros(n, dtype=np.int32)
        if self.include_velocities and v is None:
            raise ValueError("writer configured with velocities but none given")
        cols = "id type x y z" + (" vx vy vz" if self.include_velocities else "")
        lines = [
            "ITEM: TIMESTEP",
            str(step),
            "ITEM: NUMBER OF ATOMS",
            str(n),
            "ITEM: BOX BOUNDS pp pp pp",
        ]
        for k in range(3):
            lines.append(f"{box.lo[k]:.10g} {box.hi[k]:.10g}")
        lines.append(f"ITEM: ATOMS {cols}")
        for i in range(n):
            row = f"{i + 1} {int(types[i]) + 1} {x[i, 0]:.10g} {x[i, 1]:.10g} {x[i, 2]:.10g}"
            if self.include_velocities:
                row += f" {v[i, 0]:.10g} {v[i, 1]:.10g} {v[i, 2]:.10g}"
            lines.append(row)
        with self.path.open("a") as fh:
            fh.write("\n".join(lines) + "\n")
        self.frames_written += 1

    def write_simulation_frame(self, sim) -> None:
        """Convenience: dump a :class:`~repro.md.simulation.Simulation`."""
        x = sim.gather_positions()
        types = np.zeros(sim.natoms, dtype=np.int32)
        for rank in range(sim.world.size):
            atoms = sim.atoms_of(rank)
            types[atoms.tag[: atoms.nlocal]] = atoms.type[: atoms.nlocal]
        v = sim.gather_velocities() if self.include_velocities else None
        self.write_frame(sim.step_count, sim.box, x, types, v)


def read_dump(path) -> list[Frame]:
    """Parse every frame of a LAMMPS-format dump file."""
    lines = Path(path).read_text().splitlines()
    frames: list[Frame] = []
    k = 0
    while k < len(lines):
        if not lines[k].startswith("ITEM: TIMESTEP"):
            raise ValueError(f"expected TIMESTEP header at line {k + 1}")
        step = int(lines[k + 1])
        assert lines[k + 2].startswith("ITEM: NUMBER OF ATOMS")
        n = int(lines[k + 3])
        assert lines[k + 4].startswith("ITEM: BOX BOUNDS")
        lo, hi = [], []
        for b in range(3):
            parts = lines[k + 5 + b].split()
            lo.append(float(parts[0]))
            hi.append(float(parts[1]))
        header = lines[k + 8]
        assert header.startswith("ITEM: ATOMS")
        cols = header.split()[2:]
        has_v = "vx" in cols
        x = np.zeros((n, 3))
        v = np.zeros((n, 3)) if has_v else None
        types = np.zeros(n, dtype=np.int32)
        for row in range(n):
            parts = lines[k + 9 + row].split()
            idx = int(parts[0]) - 1
            types[idx] = int(parts[1]) - 1
            x[idx] = [float(p) for p in parts[2:5]]
            if has_v:
                v[idx] = [float(p) for p in parts[5:8]]
        frames.append(
            Frame(step=step, box=Box(tuple(lo), tuple(hi)), x=x, types=types, v=v)
        )
        k += 9 + n
    return frames
