"""FCC lattice generators for the paper's two benchmark systems.

The LJ benchmark uses ``lattice fcc 0.8442`` in LJ units — the number is
a *reduced density*, so the cubic cell edge is ``(4 / rho)^(1/3)``.  The
EAM benchmark uses ``lattice fcc 3.615`` in metal units — there the
number is the copper lattice constant in Angstroms directly.  Both place
4 atoms per cubic cell at the FCC basis.
"""

from __future__ import annotations

import math

import numpy as np

from repro.md.region import Box

#: FCC basis: fractional coordinates of the 4 atoms of a cubic cell.
FCC_BASIS = np.array(
    [
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
    ]
)


def lj_density_to_cell(rho: float) -> float:
    """Cubic cell edge for a reduced FCC density (4 atoms per cell)."""
    if rho <= 0:
        raise ValueError(f"density must be positive, got {rho}")
    return (4.0 / rho) ** (1.0 / 3.0)


def fcc_lattice(
    cells: tuple[int, int, int],
    cell_edge: float,
) -> tuple[np.ndarray, Box]:
    """Generate an FCC lattice of ``cells`` cubic cells.

    Returns ``(positions, box)`` with ``4 * nx * ny * nz`` atoms.  The box
    is ``[0, n * edge)`` per axis, periodic, so the lattice tiles exactly.
    """
    nx, ny, nz = cells
    if min(nx, ny, nz) < 1:
        raise ValueError(f"cell counts must be >= 1, got {cells}")
    ii, jj, kk = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    corners = np.stack([ii, jj, kk], axis=-1).reshape(-1, 3).astype(float)
    pos = (corners[:, None, :] + FCC_BASIS[None, :, :]).reshape(-1, 3) * cell_edge
    box = Box((0.0, 0.0, 0.0), (nx * cell_edge, ny * cell_edge, nz * cell_edge))
    return pos, box


def diamond_lattice(
    cells: tuple[int, int, int],
    cell_edge: float,
) -> tuple[np.ndarray, Box]:
    """Diamond-cubic lattice (8 atoms per cell): silicon's structure.

    Two interpenetrating FCC lattices offset by a quarter body diagonal —
    the ground state of the Stillinger-Weber potential (reduced lattice
    constant 5.431/2.0951 = 2.592 for silicon).
    """
    x_fcc, box = fcc_lattice(cells, cell_edge)
    x = np.vstack([x_fcc, x_fcc + 0.25 * cell_edge])
    return box.wrap(x), box


def fcc_box_for_atoms(n_atoms: int) -> tuple[int, int, int]:
    """Nearly-cubic cell counts whose FCC lattice has >= ``n_atoms`` atoms.

    Used by benchmarks that specify a particle count (65K, 1.7M, ...):
    LAMMPS' own bench scripts scale a cubic lattice the same way.
    """
    if n_atoms < 4:
        raise ValueError(f"need at least 4 atoms for one FCC cell, got {n_atoms}")
    n_cells = n_atoms / 4.0
    side = max(int(round(n_cells ** (1.0 / 3.0))), 1)
    # Nudge up until the lattice holds at least n_atoms.
    while 4 * side**3 < n_atoms:
        side += 1
    return (side, side, side)


def maxwell_velocities(
    n: int, temperature: float, mass: float = 1.0, seed: int = 12345
) -> np.ndarray:
    """Maxwell-Boltzmann velocities at ``temperature`` (kB = 1 units).

    Zero total momentum (as LAMMPS' ``velocity create`` does) and exactly
    reproducible from ``seed``.
    """
    if n < 1:
        raise ValueError("need at least one atom")
    rng = np.random.default_rng(seed)
    sigma = math.sqrt(temperature / mass)
    v = rng.normal(0.0, sigma, size=(n, 3))
    v -= v.mean(axis=0, keepdims=True)
    return v
