"""NVE velocity-Verlet integration (the ``fix nve`` of Table 2).

LAMMPS splits the update across the timestep: ``initial_integrate``
(half-kick + drift) before the force evaluation and ``final_integrate``
(second half-kick) after it — together the Modify stage of the paper's
breakdown.  The paper's observation that OpenMP makes this stage 10x
slower at 22 atoms/rank is a statement about parallel-region overhead,
not about this arithmetic; the timing model applies that overhead, the
arithmetic here is plain vectorized NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.md.atoms import Atoms


class NVEIntegrator:
    """Velocity Verlet in the microcanonical ensemble."""

    def __init__(self, dt: float, mass: float = 1.0) -> None:
        if dt <= 0:
            raise ValueError(f"timestep must be positive, got {dt}")
        if mass <= 0:
            raise ValueError(f"mass must be positive, got {mass}")
        self.dt = dt
        self.mass = mass

    def initial_integrate(self, atoms: Atoms) -> None:
        """Half-kick velocities, then drift positions (local atoms)."""
        n = atoms.nlocal
        dtf = 0.5 * self.dt / self.mass
        atoms.v[:] += dtf * atoms.f_local()
        atoms.x_local()[:n] += self.dt * atoms.v

    def final_integrate(self, atoms: Atoms) -> None:
        """Second half-kick with the new forces."""
        dtf = 0.5 * self.dt / self.mass
        atoms.v[:] += dtf * atoms.f_local()
