"""Serial reference MD: minimum-image, brute-force, single-rank.

A deliberately *independent* implementation path used to validate the
whole parallel machinery: no domain decomposition, no ghosts, no
communication — periodic boundaries are handled with the minimum-image
convention and pairs come from an O(N^2) sweep.  If a multi-rank run
over any exchange pattern disagrees with this, the bug is in the
communication stack, which is exactly what we want tests to catch.

Only valid when the cutoff is below half the shortest box edge (the
minimum-image requirement); the constructor enforces it.
"""

from __future__ import annotations

import numpy as np

from repro.md.kernels import scatter_add_scalar, scatter_add_vec, scatter_sub_vec
from repro.md.potentials.base import PairPotential
from repro.md.region import Box
from repro.md.thermo import Thermo, ThermoSample


class SerialReference:
    """Minimum-image NVE integrator for cross-validation."""

    def __init__(
        self,
        x: np.ndarray,
        v: np.ndarray,
        box: Box,
        potential: PairPotential,
        dt: float,
        mass: float = 1.0,
        types: np.ndarray | None = None,
    ) -> None:
        x = np.asarray(x, dtype=float)
        v = np.asarray(v, dtype=float)
        if x.shape != v.shape or x.ndim != 2 or x.shape[1] != 3:
            raise ValueError("x and v must both be (N, 3)")
        self.types = (
            np.zeros(x.shape[0], dtype=np.int32)
            if types is None
            else np.asarray(types, dtype=np.int32)
        )
        if potential.cutoff >= float(np.min(box.lengths)) / 2.0:
            raise ValueError(
                "minimum-image reference requires cutoff < half the box edge"
            )
        self.x = box.wrap(x)
        self.v = v.copy()
        self.box = box
        self.potential = potential
        self.dt = dt
        self.mass = mass
        self.natoms = x.shape[0]
        self.f = np.zeros_like(self.x)
        self.energy = 0.0
        self.virial = 0.0
        self.step_count = 0
        self._compute()

    # ------------------------------------------------------------------
    def _pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All i<j pairs within the cutoff, minimum-imaged."""
        n = self.natoms
        iu, ju = np.triu_indices(n, k=1)
        d = self.box.minimum_image(self.x[iu] - self.x[ju])
        r2 = np.einsum("ij,ij->i", d, d)
        rc2 = self.potential.cutoff**2
        keep = r2 < rc2
        return iu[keep], ju[keep], d[keep], np.sqrt(r2[keep])

    def _compute(self) -> None:
        self.f[:] = 0.0
        pot = self.potential
        i, j, d, r = self._pairs()
        if hasattr(pot, "density_pass"):
            self._compute_eam(i, j, d, r)
            return
        # LJ-style: pure pair forces (multi-type aware).
        r2 = r * r
        if getattr(pot, "n_types", 1) > 1:
            ti, tj = self.types[i], self.types[j]
            eps = pot._eps[ti, tj]
            sig2 = pot._sig[ti, tj] ** 2
            cut2 = pot._cut[ti, tj] ** 2
            keep = r2 < cut2
            i, j, d, r2 = i[keep], j[keep], d[keep], r2[keep]
            eps, sig2 = eps[keep], sig2[keep]
            sr6 = (sig2 / r2) ** 3
            fpair = 24.0 * eps * sr6 * (2.0 * sr6 - 1.0) / r2
            energy = float(np.sum(4.0 * eps * (sr6 * sr6 - sr6)))
        else:
            fpair = pot.pair_force_over_r(r2)
            energy = float(np.sum(pot.pair_energy(r)))
        fvec = fpair[:, None] * d
        scatter_add_vec(self.f, i, fvec)
        scatter_sub_vec(self.f, j, fvec)
        self.energy = energy
        self.virial = float(np.sum(fpair * r2))

    def _compute_eam(self, i, j, d, r) -> None:
        pot = self.potential
        density = np.zeros(self.natoms)
        rho_r = pot.rho(r)
        scatter_add_scalar(density, i, rho_r)
        scatter_add_scalar(density, j, rho_r)
        rho_bar = np.maximum(density, 0.0)
        e_embed = float(np.sum(pot.embed(rho_bar)))
        fp = pot.dembed(rho_bar)
        du = pot.dphi(r) + (fp[i] + fp[j]) * pot.drho(r)
        fpair = -du / r
        fvec = fpair[:, None] * d
        scatter_add_vec(self.f, i, fvec)
        scatter_sub_vec(self.f, j, fvec)
        self.energy = float(np.sum(pot.phi(r))) + e_embed
        self.virial = float(np.sum(fpair * r * r))

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One velocity-Verlet step (wraps positions every step)."""
        dtf = 0.5 * self.dt / self.mass
        self.v += dtf * self.f
        self.x = self.box.wrap(self.x + self.dt * self.v)
        self._compute()
        self.v += dtf * self.f
        self.step_count += 1

    def run(self, n_steps: int) -> None:
        """Advance ``n_steps`` timesteps."""
        for _ in range(n_steps):
            self.step()

    def sample_thermo(self) -> ThermoSample:
        """Global thermo snapshot of the serial state."""
        ke = 0.5 * self.mass * float(np.einsum("ij,ij->", self.v, self.v))
        return Thermo.reduce(
            self.step_count,
            [ke],
            [self.energy],
            [self.virial],
            self.natoms,
            self.box.volume,
        )
