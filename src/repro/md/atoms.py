"""Structure-of-arrays atom storage.

Follows LAMMPS' layout: one contiguous block of per-atom arrays where
indices ``[0, nlocal)`` are atoms this rank owns and ``[nlocal,
nlocal+nghost)`` are ghost copies received from neighbors.  Positions and
forces of local and ghost atoms therefore live in the same arrays — the
property the paper's pre-registered RDMA scheme exploits by PUT-ing
straight into a remote rank's position array at a known ghost offset
(Fig. 9).

Arrays grow geometrically; growth events are counted so tests can verify
that sizing buffers from the theoretical maximum (section 3.4) eliminates
reallocation during a run.
"""

from __future__ import annotations

import numpy as np


class Atoms:
    """Per-rank atom arrays: positions, velocities, forces, tags.

    Parameters
    ----------
    capacity:
        Initial allocated rows.  With the paper's pre-sizing optimization
        the caller passes the theoretical maximum so no growth ever
        happens mid-run.
    """

    def __init__(self, capacity: int = 64) -> None:
        capacity = max(int(capacity), 1)
        self._x = np.zeros((capacity, 3))
        self._v = np.zeros((capacity, 3))
        self._f = np.zeros((capacity, 3))
        self._tag = np.zeros(capacity, dtype=np.int64)
        self._type = np.zeros(capacity, dtype=np.int32)
        self.nlocal = 0
        self.nghost = 0
        self.grow_events = 0

    # -- views ---------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._x.shape[0]

    @property
    def ntotal(self) -> int:
        return self.nlocal + self.nghost

    @property
    def x(self) -> np.ndarray:
        """Positions of all atoms (local then ghost), shape (ntotal, 3)."""
        return self._x[: self.ntotal]

    @property
    def v(self) -> np.ndarray:
        """Velocities of local atoms (ghosts carry no velocity)."""
        return self._v[: self.nlocal]

    @property
    def f(self) -> np.ndarray:
        """Forces of all atoms; ghost rows accumulate Newton partners."""
        return self._f[: self.ntotal]

    @property
    def tag(self) -> np.ndarray:
        """Global atom ids for all atoms (local then ghost)."""
        return self._tag[: self.ntotal]

    @property
    def type(self) -> np.ndarray:
        """Atom species ids for all atoms (local then ghost); 0-based."""
        return self._type[: self.ntotal]

    def x_local(self) -> np.ndarray:
        """Positions of local atoms only."""
        return self._x[: self.nlocal]

    def f_local(self) -> np.ndarray:
        """Forces of local atoms only."""
        return self._f[: self.nlocal]

    # -- capacity management ---------------------------------------------------
    def reserve(self, rows: int) -> None:
        """Ensure capacity for at least ``rows`` atoms."""
        if rows <= self.capacity:
            return
        new_cap = max(rows, self.capacity * 2)
        for name in ("_x", "_v", "_f"):
            old = getattr(self, name)
            grown = np.zeros((new_cap, 3))
            grown[: old.shape[0]] = old
            setattr(self, name, grown)
        tag = np.zeros(new_cap, dtype=np.int64)
        tag[: self._tag.shape[0]] = self._tag
        self._tag = tag
        typ = np.zeros(new_cap, dtype=np.int32)
        typ[: self._type.shape[0]] = self._type
        self._type = typ
        self.grow_events += 1

    # -- population -------------------------------------------------------------
    def set_local(
        self,
        x: np.ndarray,
        v: np.ndarray,
        tag: np.ndarray,
        type_: np.ndarray | None = None,
    ) -> None:
        """Replace the local atom set (drops any ghosts)."""
        n = x.shape[0]
        if v.shape[0] != n or tag.shape[0] != n:
            raise ValueError("x, v, tag must have matching first dimension")
        if type_ is not None and type_.shape[0] != n:
            raise ValueError("type must match the atom count")
        self.reserve(n)
        self._x[:n] = x
        self._v[:n] = v
        self._tag[:n] = tag
        self._type[:n] = 0 if type_ is None else type_
        self._f[:n] = 0.0
        self.nlocal = n
        self.nghost = 0

    def clear_ghosts(self) -> None:
        """Drop all ghosts (start of exchange/border)."""
        self.nghost = 0

    def append_ghosts(
        self, x: np.ndarray, tag: np.ndarray, type_: np.ndarray | None = None
    ) -> tuple[int, int]:
        """Append ghost atoms; returns their ``(start, count)`` range."""
        n = x.shape[0]
        start = self.ntotal
        self.reserve(start + n)
        self._x[start : start + n] = x
        self._tag[start : start + n] = tag
        self._type[start : start + n] = 0 if type_ is None else type_
        self._f[start : start + n] = 0.0
        self.nghost += n
        return start, n

    def add_local(
        self,
        x: np.ndarray,
        v: np.ndarray,
        tag: np.ndarray,
        type_: np.ndarray | None = None,
    ) -> None:
        """Append migrated-in local atoms (exchange stage).

        Only legal while no ghosts are present (exchange happens right
        before borders rebuilds them).
        """
        if self.nghost:
            raise RuntimeError("cannot add local atoms while ghosts exist")
        n = x.shape[0]
        start = self.nlocal
        self.reserve(start + n)
        self._x[start : start + n] = x
        self._v[start : start + n] = v
        self._tag[start : start + n] = tag
        self._type[start : start + n] = 0 if type_ is None else type_
        self._f[start : start + n] = 0.0
        self.nlocal += n

    def remove_local(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Remove local atoms by index; returns their (x, v, tag, type).

        Only legal while no ghosts are present.
        """
        if self.nghost:
            raise RuntimeError("cannot remove local atoms while ghosts exist")
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (indices.min() < 0 or indices.max() >= self.nlocal):
            raise IndexError("remove_local index out of local range")
        out = (
            self._x[indices].copy(),
            self._v[indices].copy(),
            self._tag[indices].copy(),
            self._type[indices].copy(),
        )
        keep = np.ones(self.nlocal, dtype=bool)
        keep[indices] = False
        n_keep = int(keep.sum())
        self._x[:n_keep] = self._x[: self.nlocal][keep]
        self._v[:n_keep] = self._v[: self.nlocal][keep]
        self._tag[:n_keep] = self._tag[: self.nlocal][keep]
        self._type[:n_keep] = self._type[: self.nlocal][keep]
        self.nlocal = n_keep
        return out

    def zero_forces(self) -> None:
        """Zero the force rows of local and ghost atoms."""
        self._f[: self.ntotal] = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Atoms(nlocal={self.nlocal}, nghost={self.nghost}, cap={self.capacity})"
