"""Persistent per-rank communication plans and pooled flat buffers.

The paper's §3.4 discipline — compute addresses and sizes once,
pre-register, then reuse every step — applied to the *functional*
exchange hot path.  After the border stage rebuilds the routes, each
rank's forward/reverse replay is fully determined: which atom rows to
gather, which PBC shift each row gets, which peer/tag each contiguous
segment goes to, and where received blocks land.  A :class:`RankPlan`
freezes all of that into flat arrays at plan-build time so the per-step
work collapses to

* **pack**: one ``np.take`` gather into a pooled send buffer plus one
  vectorized shift add (forward), and
* **unpack**: one signed ``bincount`` scatter-add over the concatenated
  contributions (reverse), shared by the message fast path, the faulted
  slow path and the RDMA ring drain so all three stay bit-identical.

Buffers live in a :class:`BufferPool` that persists across plan rebuilds
(reneighboring changes the *indices*, not the buffer capacity) and is
sized from the :class:`~repro.core.ghost.GhostBudget` analytic maximum
like the RDMA rings — growth is a counted fallback, not the steady
state.

Bit-identity notes (load-bearing, do not "simplify"):

* the shift add runs unconditionally over the whole packed block when
  shifts apply — skipping all-zero shifts would turn ``-0.0`` into
  ``+0.0`` relative to the seed path's ``payload += route.shift``;
* the reverse scatter is bounded to ``data[:scatter_len]`` (the local
  atoms at plan-build time) so it never writes ghost rows — zero-copy
  reverse payloads are live views of ghost rows while owners apply.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.ghost import GhostBudget
from repro.md.kernels import scatter_signed_vec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exchange_base imports us)
    from repro.core.exchange_base import RecvRoute, SendRoute


class BufferPool:
    """Preallocated pack/unpack storage for one rank, reused forever.

    Capacity is derived from the analytic ghost maximum when a
    :class:`GhostBudget` is available (the same dominance rule commlint
    CL008 enforces for the RDMA rings); growing past it is possible but
    counted in :attr:`grow_events` so benchmarks can gate on zero.
    """

    def __init__(self, budget: GhostBudget | None = None, full_shell: bool = False) -> None:
        self.budget = budget
        self.full_shell = full_shell
        self.allocations = 0
        self.grow_events = 0
        self._vec: np.ndarray | None = None
        self._scalar: np.ndarray | None = None

    @property
    def capacity_rows(self) -> int:
        """Rows the vector buffer currently holds (0 before first use)."""
        return self._vec.shape[0] if self._vec is not None else 0

    def _capacity_for(self, rows: int) -> int:
        if self.budget is not None:
            analytic = int(self.budget.max_ghost_atoms(self.full_shell))
            if rows <= analytic:
                return analytic
        # Fallback/growth path: geometric headroom, counted by callers.
        return max(rows, 16) * 2

    def vec(self, rows: int) -> np.ndarray:
        """A float64 ``(>= rows, 3)`` buffer (positions/forces)."""
        if self._vec is None or self._vec.shape[0] < rows:
            if self._vec is not None:
                self.grow_events += 1
            self._vec = np.empty((self._capacity_for(rows), 3), dtype=np.float64)
            self.allocations += 1
        return self._vec

    def scalar(self, rows: int) -> np.ndarray:
        """A float64 ``(>= rows,)`` buffer (EAM per-atom scalars)."""
        if self._scalar is None or self._scalar.shape[0] < rows:
            if self._scalar is not None:
                self.grow_events += 1
            self._scalar = np.empty(self._capacity_for(rows), dtype=np.float64)
            self.allocations += 1
        return self._scalar

    @property
    def nbytes(self) -> int:
        """Bytes currently held by the pool."""
        total = 0
        if self._vec is not None:
            total += self._vec.nbytes
        if self._scalar is not None:
            total += self._scalar.nbytes
        return total


class _Segment:
    """One contiguous slice of the packed buffer bound to a peer/tag."""

    __slots__ = ("peer", "start", "stop", "tag", "nbytes_vec", "nbytes_scalar")

    def __init__(self, peer: int, start: int, stop: int, tag: tuple) -> None:
        self.peer = peer
        self.start = start
        self.stop = stop
        self.tag = tag
        n = stop - start
        self.nbytes_vec = n * 24  # 3 x float64
        self.nbytes_scalar = n * 8


class _RecvSegment:
    """One incoming ghost block (destination range in the atom arrays)."""

    __slots__ = ("peer", "lo", "n", "tag", "nbytes_vec", "nbytes_scalar")

    def __init__(self, peer: int, lo: int, n: int, tag: tuple) -> None:
        self.peer = peer
        self.lo = lo
        self.n = n
        self.tag = tag
        self.nbytes_vec = n * 24
        self.nbytes_scalar = n * 8


class RankPlan:
    """Frozen replay plan for one rank, valid until reneighboring."""

    __slots__ = (
        "n_pack",
        "fwd_idx",
        "shift_rows",
        "send_segments",
        "recv_segments",
        "scatter_len",
        "pool",
        "_tag_cache",
    )

    def __init__(
        self,
        sends: list[SendRoute],
        recvs: list[RecvRoute],
        nlocal: int,
        pool: BufferPool,
    ) -> None:
        counts = [route.count for route in sends]
        self.n_pack = int(sum(counts))
        if sends:
            self.fwd_idx = np.concatenate([route.send_idx for route in sends])
        else:
            self.fwd_idx = np.empty(0, dtype=np.intp)
        # Per-row shift table: adding it is bit-identical to the seed's
        # per-route broadcast add (same addends, same dtype).
        if self.n_pack:
            self.shift_rows = np.repeat(
                np.stack([route.shift for route in sends]), counts, axis=0
            )
        else:
            self.shift_rows = np.empty((0, 3), dtype=np.float64)
        self.send_segments: list[_Segment] = []
        cursor = 0
        for route, n in zip(sends, counts):
            self.send_segments.append(
                _Segment(route.peer, cursor, cursor + n, route.tag)
            )
            cursor += n
        self.recv_segments = [
            _RecvSegment(route.peer, route.recv_start, route.recv_count, route.tag)
            for route in recvs
        ]
        self.scatter_len = nlocal
        self.pool = pool
        self._tag_cache: dict[str, tuple[list[tuple], list[tuple]]] = {}

    # -- tags ---------------------------------------------------------------
    def tags(self, phase: str) -> tuple[list[tuple], list[tuple]]:
        """(send tags, recv tags) for ``phase``, built once per plan."""
        cached = self._tag_cache.get(phase)
        if cached is None:
            cached = (
                [seg.tag + (phase,) for seg in self.send_segments],
                [seg.tag + (phase,) for seg in self.recv_segments],
            )
            self._tag_cache[phase] = cached
        return cached

    # -- pack / unpack ------------------------------------------------------
    def pack_vec(self, data: np.ndarray, apply_shift: bool) -> np.ndarray:
        """Gather the send rows of a (N, 3) array into the pooled buffer."""
        buf = self.pool.vec(self.n_pack)
        out = buf[: self.n_pack]
        np.take(data, self.fwd_idx, axis=0, out=out)
        if apply_shift:
            out += self.shift_rows
        return buf

    def pack_scalar(self, data: np.ndarray) -> np.ndarray:
        """Gather the send rows of a 1-D per-atom array."""
        buf = self.pool.scalar(self.n_pack)
        np.take(data, self.fwd_idx, out=buf[: self.n_pack])
        return buf

    def unpack_buffer(self, vec: bool) -> np.ndarray:
        """The pooled buffer reverse contributions are collected into."""
        return self.pool.vec(self.n_pack) if vec else self.pool.scalar(self.n_pack)

    def apply_reverse(self, data: np.ndarray, buf: np.ndarray) -> None:
        """Fused scatter-add of all collected reverse contributions.

        ``buf`` holds one row per packed send row, in send-segment order
        (the same order the seed path iterated routes).  The scatter is
        bounded to the plan-time local atoms; see the module docstring.
        """
        contrib = buf[: self.n_pack]
        owned = data[: self.scatter_len]
        if data.ndim == 2:
            scatter_signed_vec(owned, self.fwd_idx, contrib, 1)
        else:
            if self.fwd_idx.size:
                owned += np.bincount(
                    self.fwd_idx, weights=contrib, minlength=self.scatter_len
                )
