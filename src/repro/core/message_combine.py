"""Message combine: length-prefixed single-message arrays (section 3.5.1).

MPI transfers of unknown-length arrays classically cost two messages —
a length, then the payload.  The paper folds the length into the first
element of a single message; the receiver parses element 0 to learn how
much of the (maximally-sized, pre-registered) buffer is live.

The encoding here is the functional version used by the RDMA transport
path: a float64 array whose element 0 is the payload element count.  A
float64 carries integers exactly up to 2^53 — far beyond any buffer
length — and keeps the buffer homogeneous so it can land directly in a
registered region.
"""

from __future__ import annotations

import numpy as np


class MessageFormatError(ValueError):
    """Raised when a combined message fails validation on decode."""


def combine(payload: np.ndarray) -> np.ndarray:
    """Prefix ``payload`` (any shape, float64) with its element count."""
    flat = np.ascontiguousarray(payload, dtype=np.float64).ravel()
    out = np.empty(flat.size + 1, dtype=np.float64)
    out[0] = float(flat.size)
    out[1:] = flat
    return out


def split(message: np.ndarray, trailing_shape: tuple[int, ...] = ()) -> np.ndarray:
    """Decode a combined message; returns the live payload.

    ``trailing_shape`` reshapes the payload, e.g. ``(3,)`` for packed
    coordinates.  The declared length is validated against the physical
    buffer (a short buffer means a protocol bug, a longer one is fine —
    that is the whole point of writing into maximal pre-sized buffers).
    """
    message = np.asarray(message, dtype=np.float64)
    if message.ndim != 1 or message.size < 1:
        raise MessageFormatError("combined message must be a non-empty 1-D array")
    n = message[0]
    if n < 0 or n != np.floor(n):
        raise MessageFormatError(f"invalid length prefix {n!r}")
    n = int(n)
    if n > message.size - 1:
        raise MessageFormatError(
            f"length prefix {n} exceeds buffer payload capacity {message.size - 1}"
        )
    flat = message[1 : 1 + n]
    if trailing_shape:
        inner = int(np.prod(trailing_shape))
        if inner == 0 or n % inner:
            raise MessageFormatError(
                f"payload of {n} elements does not factor into {trailing_shape}"
            )
        return flat.reshape((n // inner, *trailing_shape))
    return flat


def write_into(buffer: np.ndarray, payload: np.ndarray) -> int:
    """Encode ``payload`` into a pre-registered ``buffer`` in place.

    Returns the number of elements written (prefix included).  This is
    the RDMA-path variant of :func:`combine`: no allocation, the
    destination is the registered round-robin receive buffer.
    """
    flat = np.ascontiguousarray(payload, dtype=np.float64).ravel()
    needed = flat.size + 1
    if needed > buffer.size:
        raise MessageFormatError(
            f"payload of {flat.size} elements does not fit buffer of {buffer.size}"
        )
    buffer[0] = float(flat.size)
    buffer[1 : 1 + flat.size] = flat
    return needed
