"""The 3-stage exchange — baseline LAMMPS communication (paper Fig. 4).

Six swaps (two per dimension, x then y then z); each dimension's swaps
forward the ghosts received by earlier dimensions, so 6 messages build
the full 26-neighbor shell.  The defining constraint — and the reason
the paper replaces it — is the barrier between stages: a y-swap cannot
start until the x-swaps delivered, because its payload contains them.

Supports shell radius > 1 (long cutoffs) by repeating each direction's
swap ``radius`` times, each repetition forwarding the previous one's
atoms one rank further — message count grows linearly (6, 12, ...)
where p2p grows quadratically, the Fig. 15 crossover.

Functionally the atoms move through the world transport; the *timing* of
the pattern (including the stage barriers) is priced by the perfmodel
from the route schedule this class reports.
"""

from __future__ import annotations

import numpy as np

from repro.core.exchange_base import GhostExchange, RecvRoute, SendRoute
from repro.core.patterns import three_stage_swaps
from repro.md.domain import Domain
from repro.obs.trace import TRACER
from repro.runtime.world import World


class ThreeStageExchange(GhostExchange):
    """Staged dimension-by-dimension ghost exchange (full shell)."""

    ghost_rule = "coord"  # full shell: half lists need the coordinate rule
    full_shell = True
    name = "3stage"

    def __init__(
        self, world: World, domain: Domain, rcomm: float, radius: int = 1
    ) -> None:
        super().__init__(world, domain, rcomm)
        if radius < 1:
            raise ValueError(f"shell radius must be >= 1, got {radius}")
        self.radius = radius
        self.swaps = three_stage_swaps(radius)

    # -- border stage ----------------------------------------------------------
    def borders(self) -> None:
        """Staged border exchange: 2 swaps per dimension with forwarding."""
        with self._phase_span("border"):
            self._borders_impl()

    def _borders_impl(self) -> None:
        world = self.world
        transport = world.transport
        transport.set_phase("border")
        self._clear_routes()
        for rank in range(world.size):
            self.atoms_of(rank).clear_ghosts()

        # Per (rank, dim, dir): ghost range received by the previous swap
        # of the same flow, for multi-hop forwarding at radius > 1.
        prev_recv: dict[tuple[int, int, int], tuple[int, int]] = {}
        # Per (rank, dim): atom count when the dimension's swaps began.
        # Both directions of a dim scan only those atoms (LAMMPS' nlast):
        # the -d swap must not re-send ghosts the +d swap just delivered.
        dim_first: dict[tuple[int, int], int] = {}

        for k, swap in enumerate(self.swaps):
            dim, direction = swap.dim, swap.dir
            if not TRACER.enabled:
                self._border_swap(k, dim, direction, prev_recv, dim_first)
                continue
            with TRACER.span(
                f"swap{k}", cat="swap", track="comm", dim=dim, dir=direction
            ):
                self._border_swap(k, dim, direction, prev_recv, dim_first)

    def _border_swap(
        self,
        k: int,
        dim: int,
        direction: int,
        prev_recv: dict,
        dim_first: dict,
    ) -> None:
        """One staged swap: send sweep then receive sweep (a Fig. 4 stage)."""
        world = self.world
        transport = world.transport
        tag = ("3s", k)
        # Send sweep -------------------------------------------------
        for rank in range(world.size):
            atoms = self.atoms_of(rank)
            sub = self.sub_box_of(rank)
            flow_key = (rank, dim, direction)
            dim_key = (rank, dim)
            if dim_key not in dim_first:
                dim_first[dim_key] = atoms.ntotal
            if flow_key in prev_recv:
                # Repetition of this flow: forward what the previous
                # repetition delivered (and still faces the border).
                lo, n = prev_recv[flow_key]
                cand = np.arange(lo, lo + n, dtype=np.intp)
            else:
                cand = np.arange(dim_first[dim_key], dtype=np.intp)
            x = atoms.x
            if direction > 0:
                mask = x[cand, dim] >= sub.hi[dim] - self.rcomm
            else:
                mask = x[cand, dim] < sub.lo[dim] + self.rcomm
            send_idx = cand[mask]

            o_send = tuple(direction if d == dim else 0 for d in range(3))
            peer = world.neighbor_rank(rank, o_send)
            shift = self.shift_for_send(rank, o_send)
            self.routes[rank].sends.append(
                SendRoute(peer=peer, send_idx=send_idx, shift=shift, tag=tag)
            )
            payload = (
                atoms.x[send_idx] + shift,
                atoms.tag[send_idx],
                atoms.type[send_idx],
            )
            transport.send(rank, peer, tag + ("border",), payload)

        # Receive sweep ----------------------------------------------
        for rank in range(world.size):
            atoms = self.atoms_of(rank)
            o_send = tuple(direction if d == dim else 0 for d in range(3))
            src = world.neighbor_rank(rank, tuple(-o for o in o_send))
            payload_x, payload_tag, payload_type = self._recv(
                transport, rank, src, tag + ("border",)
            )
            start, count = atoms.append_ghosts(payload_x, payload_tag, payload_type)
            self.routes[rank].recvs.append(
                RecvRoute(peer=src, recv_start=start, recv_count=count, tag=tag)
            )
            prev_recv[(rank, dim, direction)] = (start, count)

    # -- staged forward / reverse ------------------------------------------------
    def _forward_array(self, arrays, apply_shift: bool, phase: str) -> None:
        """Swap-by-swap replay: later swaps forward earlier swaps' data."""
        transport = self.world.transport
        transport.set_phase(phase)
        n_swaps = len(self.swaps)
        for k in range(n_swaps):
            for rank in range(self.world.size):
                route = self.routes[rank].sends[k]
                data = arrays[rank]
                payload = np.array(data[route.send_idx], copy=True)
                if apply_shift and payload.ndim == 2:
                    payload += route.shift
                transport.send(rank, route.peer, route.tag + (phase,), payload)
            for rank in range(self.world.size):
                route = self.routes[rank].recvs[k]
                data = arrays[rank]
                payload = self._recv(
                    transport, rank, route.peer, route.tag + (phase,)
                )
                lo, n = route.recv_start, route.recv_count
                data[lo : lo + n] = payload

    def _reverse_sum_array(self, arrays, phase: str) -> None:
        """Reverse replay: ghost contributions retrace the swaps backwards."""
        transport = self.world.transport
        transport.set_phase(phase)
        n_swaps = len(self.swaps)
        for k in reversed(range(n_swaps)):
            for rank in range(self.world.size):
                route = self.routes[rank].recvs[k]
                data = arrays[rank]
                lo, n = route.recv_start, route.recv_count
                transport.send(
                    rank, route.peer, route.tag + (phase,), np.array(data[lo : lo + n])
                )
            # Collect the whole swap before applying any sum so an
            # escalation mid-swap leaves no half-applied contributions
            # (inter-swap applies must still happen: the next swap of
            # the backward replay forwards what this one accumulated).
            received = []
            for rank in range(self.world.size):
                route = self.routes[rank].sends[k]
                received.append(
                    self._recv(transport, rank, route.peer, route.tag + (phase,))
                )
            for rank in range(self.world.size):
                route = self.routes[rank].sends[k]
                np.add.at(arrays[rank], route.send_idx, received[rank])
