"""Ghost-region geometry (paper Table 1).

With a cubic sub-box of side ``a`` and communication cutoff ``r``, the
ghost shell decomposes into 6 **faces** (volume ``a^2 r``), 12 **edges**
(``a r^2``) and 8 **corners** (``r^3``).  The two patterns move different
totals:

* 3-stage (full shell): ``8 r^3 + 12 a r^2 + 6 a^2 r`` atoms-worth of
  volume in **6 messages** — stage 1 moves a face ``a^2 r``, stage 2 a
  face plus two forwarded edges ``a^2 r + 2 a r^2``, stage 3 the full
  slab ``(a + 2r)^2 r``.
* p2p with Newton's law (half shell): ``4 r^3 + 6 a r^2 + 3 a^2 r`` in
  **13 messages** — 3 faces at 1 hop, 6 edges at 2 hops, 4 corners at
  3 hops.

These closed forms are verified in tests against Monte-Carlo voxel
counting of the actual regions.
"""

from __future__ import annotations

from dataclasses import dataclass


def face_volume(a: float, r: float) -> float:
    """Volume of one face region of the ghost shell."""
    _check(a, r)
    return a * a * r


def edge_volume(a: float, r: float) -> float:
    """Volume of one edge region."""
    _check(a, r)
    return a * r * r


def corner_volume(a: float, r: float) -> float:
    """Volume of one corner region."""
    _check(a, r)
    return r**3


def full_shell_volume(a: float, r: float) -> float:
    """Total ghost volume of the full (26-neighbor) shell.

    Equals ``(a + 2r)^3 - a^3 = 6 a^2 r + 12 a r^2 + 8 r^3`` — the
    3-stage total of Table 1.
    """
    _check(a, r)
    return 6 * a * a * r + 12 * a * r * r + 8 * r**3


def half_shell_volume(a: float, r: float) -> float:
    """Total ghost volume with Newton's 3rd law (13-neighbor half shell).

    Exactly half of the full shell: ``3 a^2 r + 6 a r^2 + 4 r^3`` —
    the p2p total of Table 1.
    """
    _check(a, r)
    return 3 * a * a * r + 6 * a * r * r + 4 * r**3


def stage_volumes(a: float, r: float) -> tuple[float, float, float]:
    """Per-message volumes of the three 3-stage messages (Table 1 rows).

    Stage 1 sends a bare face; stage 2's message carries the face plus
    the two edges forwarded from stage 1; stage 3 carries the full
    ``(a+2r)^2 r`` slab including everything forwarded before.
    """
    _check(a, r)
    s1 = a * a * r
    s2 = a * a * r + 2 * a * r * r
    s3 = (a + 2 * r) ** 2 * r
    return (s1, s2, s3)


def offset_volume(a: float, r: float, offset: tuple[int, int, int]) -> float:
    """Ghost volume exchanged with the neighbor at grid ``offset``.

    The region is a box of side ``a`` per zero axis and ``r`` per unit
    axis (faces/edges/corners).  Offsets of magnitude > 1 use depth
    ``r - (|o|-1) a`` per axis (long-cutoff shells); zero if the cutoff
    does not reach that far.
    """
    _check(a, r)
    vol = 1.0
    for o in offset:
        if o == 0:
            vol *= a
        else:
            depth = r - (abs(o) - 1) * a
            if depth <= 0:
                return 0.0
            vol *= min(depth, a)
    return vol


@dataclass(frozen=True)
class GhostBudget:
    """Theoretical maximum ghost/border counts for buffer pre-sizing.

    This is the calculation of paper section 3.4: from cutoff, sub-box
    size and density, bound every communication buffer so registration
    happens exactly once.  ``safety`` covers density fluctuations (LAMMPS
    itself pads similarly).
    """

    a: float
    r: float
    density: float
    safety: float = 1.3

    def max_ghost_atoms(self, full_shell: bool) -> int:
        """Upper bound on ghosts this rank can ever hold."""
        vol = full_shell_volume(self.a, self.r) if full_shell else half_shell_volume(self.a, self.r)
        return int(vol * self.density * self.safety) + 8

    def max_atoms_per_message(self) -> int:
        """Largest single message: the stage-3 slab (3-stage) bounds all."""
        s3 = stage_volumes(self.a, self.r)[2]
        return int(s3 * self.density * self.safety) + 8

    def max_local_atoms(self) -> int:
        """Bound on local atoms after migration (sub-box + skin slack)."""
        return int(self.a**3 * self.density * self.safety) + 8


def _check(a: float, r: float) -> None:
    if a <= 0 or r <= 0:
        raise ValueError(f"sub-box side and cutoff must be positive, got a={a}, r={r}")
