"""Pre-registered RDMA buffers (paper section 3.4).

The baseline LAMMPS grows send/receive buffers on demand; under RDMA
every growth forces a re-registration (kernel trap).  The optimized code

1. sizes every buffer from the **theoretical maximum** ghost population
   (:class:`repro.core.ghost.GhostBudget`) so registration happens once,
2. registers the *position and force arrays themselves* so forward-stage
   positions are PUT straight into the remote array at the ghost offset
   (no unpack copy), with the 8-byte offset piggybacked during the border
   stage, and
3. keeps **four receive buffers per neighbor in round-robin** so a PUT
   from the next stage can never land on data the previous stage has not
   consumed yet (Fig. 10).

This module provides those three pieces; the p2p exchange composes them.
The overwrite hazard is enforced, not just documented —
:class:`RecvBufferRing` raises :class:`BufferOverwriteError` when a write
would clobber an unconsumed buffer, and a test shows depth 4 is the
smallest safe depth for the border->forward->reverse dependency chain
the paper analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ghost import GhostBudget
from repro.machine.rdma import MemoryRegion, RdmaEngine
from repro.obs import hbevents
from repro.obs.metrics import METRICS, OCCUPANCY_BUCKETS


class BufferOverwriteError(RuntimeError):
    """A remote write targeted a receive buffer still holding live data."""


class RecvBufferRing:
    """Round-robin registered receive buffers for one neighbor."""

    def __init__(
        self,
        engine: RdmaEngine,
        rank: int,
        capacity_elems: int,
        depth: int = 4,
    ) -> None:
        if depth < 1:
            raise ValueError(f"ring depth must be >= 1, got {depth}")
        if capacity_elems < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_elems}")
        cache = engine.cache_for(rank)
        self.rank = rank
        self.depth = depth
        self.capacity = capacity_elems
        self.buffers: list[MemoryRegion] = [
            cache.register(np.zeros(capacity_elems)) for _ in range(depth)
        ]
        self._dirty = [False] * depth
        self._write_cursor = 0
        self._read_cursor = 0

    @property
    def ring_id(self) -> int:
        """Stable ring identity (the first buffer's STag) for trace events."""
        return self.buffers[0].stag

    def stags(self) -> list[int]:
        """Registered handles, exchanged with the neighbor at setup."""
        return [b.stag for b in self.buffers]

    def acquire_for_write(self) -> tuple[int, MemoryRegion]:
        """Next buffer the *sender* will target; errors on overwrite.

        Both sides advance their cursors in lockstep (same deterministic
        protocol), so the sender knows the index without communication.
        """
        idx = self._write_cursor
        if METRICS.enabled:
            METRICS.histogram(
                "recv_ring_occupancy", buckets=OCCUPANCY_BUCKETS
            ).observe(self.outstanding())
        if self._dirty[idx]:
            hbevents.emit_write(self.rank, f"ring{self.ring_id}/slot{idx}", ok=False)
            raise BufferOverwriteError(
                f"receive buffer {idx} would be overwritten before it was "
                f"consumed (ring depth {self.depth} too shallow)"
            )
        hbevents.emit_write(self.rank, f"ring{self.ring_id}/slot{idx}", ok=True)
        self._dirty[idx] = True
        self._write_cursor = (idx + 1) % self.depth
        return idx, self.buffers[idx]

    def consume(self) -> np.ndarray:
        """The receiver drains the oldest written buffer."""
        idx = self._read_cursor
        if not self._dirty[idx]:
            hbevents.emit_read(self.rank, f"ring{self.ring_id}/slot{idx}", ok=False)
            raise BufferOverwriteError(
                f"consume() on clean buffer {idx}: protocol out of sync"
            )
        hbevents.emit_read(self.rank, f"ring{self.ring_id}/slot{idx}", ok=True)
        self._dirty[idx] = False
        self._read_cursor = (idx + 1) % self.depth
        return self.buffers[idx].data

    def outstanding(self) -> int:
        """Number of written-but-unconsumed buffers."""
        return sum(self._dirty)


@dataclass(frozen=True)
class RemoteWindow:
    """What a neighbor told us at setup: where to PUT (Fig. 9/10)."""

    rank: int
    x_stag: int
    ghost_elem_offset: int  # element offset of our ghosts in their x array
    recv_stags: tuple[int, ...]  # their ring, in cursor order


class RdmaEndpoint:
    """Per-rank RDMA resources for the optimized exchange.

    Registers the position and force arrays (flat float64 views over the
    ``(capacity, 3)`` storage) plus one receive ring and one send buffer
    per neighbor, all sized from the :class:`GhostBudget` — one-time
    registration, verified by ``registration_count`` staying flat during
    a run.
    """

    def __init__(
        self,
        rank: int,
        engine: RdmaEngine,
        x_storage: np.ndarray,
        f_storage: np.ndarray,
        budget: GhostBudget,
        n_neighbors: int,
        ring_depth: int = 4,
        full_shell: bool = False,
    ) -> None:
        if x_storage.ndim != 2 or x_storage.shape[1] != 3:
            raise ValueError("x_storage must be (capacity, 3)")
        self.rank = rank
        self.engine = engine
        cache = engine.cache_for(rank)
        # Flat views share memory with the atom arrays: a PUT into the
        # region is a PUT into the atoms' coordinates.
        self.x_region = cache.register(x_storage.reshape(-1))
        self.f_region = cache.register(f_storage.reshape(-1))

        per_msg = budget.max_atoms_per_message() * 3 + 1  # +1 length prefix
        self.ring_depth = ring_depth
        self.recv_rings: list[RecvBufferRing] = [
            RecvBufferRing(engine, rank, per_msg, ring_depth)
            for _ in range(n_neighbors)
        ]
        self.send_buffers: list[np.ndarray] = [
            np.zeros(per_msg) for _ in range(n_neighbors)
        ]
        self.remote: dict[int, RemoteWindow] = {}  # neighbor index -> window
        self.max_ghosts = budget.max_ghost_atoms(full_shell)

    def revalidate(self, x_storage: np.ndarray, f_storage: np.ndarray) -> bool:
        """Re-register if the atom arrays were reallocated (grew).

        Returns True when a re-registration happened — the per-growth
        kernel-trap overhead that pre-sizing from the theoretical maximum
        is designed to eliminate.  ``registration_count`` on the cache
        exposes it to tests and the ablation bench.
        """
        if self.x_region.data.base is x_storage and self.f_region.data.base is f_storage:
            return False
        cache = self.engine.cache_for(self.rank)
        cache.deregister(self.x_region)
        cache.deregister(self.f_region)
        self.x_region = cache.register(x_storage.reshape(-1))
        self.f_region = cache.register(f_storage.reshape(-1))
        return True

    def window_for_neighbor(self, neighbor_index: int, ghost_elem_offset: int) -> RemoteWindow:
        """The setup-stage message advertising our windows to a neighbor."""
        return RemoteWindow(
            rank=self.rank,
            x_stag=self.x_region.stag,
            ghost_elem_offset=ghost_elem_offset,
            recv_stags=tuple(self.recv_rings[neighbor_index].stags()),
        )

    def install_remote(self, neighbor_index: int, window: RemoteWindow) -> None:
        """Record a neighbor's advertised window for later PUTs."""
        self.remote[neighbor_index] = window

    def put_positions(
        self, neighbor_index: int, packed_xyz: np.ndarray
    ) -> int:
        """Forward stage: PUT packed positions straight into the remote
        position array at the pre-agreed ghost offset.  Returns bytes."""
        window = self.remote[neighbor_index]
        flat = packed_xyz.reshape(-1)
        src = self.send_buffers[neighbor_index]
        if flat.size > src.size:
            raise BufferOverwriteError(
                f"send of {flat.size} elements exceeds pre-sized buffer {src.size}"
            )
        src[: flat.size] = flat
        src_region = self._send_region(neighbor_index, src)
        self.engine.put(
            src_region,
            0,
            window.rank,
            window.x_stag,
            window.ghost_elem_offset,
            flat.size,
        )
        return flat.size * 8

    _send_regions: dict[int, MemoryRegion]

    def _send_region(self, neighbor_index: int, buf: np.ndarray) -> MemoryRegion:
        if not hasattr(self, "_send_regions"):
            self._send_regions = {}
        if neighbor_index not in self._send_regions:
            cache = self.engine.cache_for(self.rank)
            self._send_regions[neighbor_index] = cache.register(buf)
        return self._send_regions[neighbor_index]

    def put_into_ring(
        self,
        neighbor_index: int,
        remote_ring: RecvBufferRing,
        payload: np.ndarray,
    ) -> int:
        """Reverse stage: length-prefixed PUT into the neighbor's ring.

        ``remote_ring`` is the receiving endpoint's ring object (the
        in-process stand-in for the remote side's registered memory —
        cursor discipline is what we are modeling).  Returns bytes sent.
        """
        from repro.core.message_combine import write_into
        from repro.faults.injector import FAULTS

        session = FAULTS.session
        if session is not None:
            ticks = session.rdma_defer("ring-stale", self.rank)
            if ticks > 0:
                # The ring PUT is in flight: the consumer sees a clean
                # buffer (the §3.4 hazard) until the deferred write —
                # acquire + encode, preserving cursor discipline — lands
                # after ``ticks`` consume-retry polls.
                data = np.ascontiguousarray(payload, dtype=np.float64).ravel().copy()
                res = f"ring{remote_ring.ring_id}"
                pid = hbevents.emit_put(
                    self.rank, res, 0, data.size, inflight=True
                )

                def land(ring=remote_ring, data=data, res=res, pid=pid) -> None:
                    _, region = ring.acquire_for_write()
                    write_into(region.data, data)
                    hbevents.emit_land(res, 0, data.size, pid)

                session.defer(ticks, land, "ring-stale")
                return (data.size + 1) * 8

        _, region = remote_ring.acquire_for_write()
        n = write_into(region.data, payload)
        return n * 8
