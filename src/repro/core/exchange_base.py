"""Shared machinery of the ghost-exchange implementations.

Both patterns (3-stage and p2p) reduce to the same route abstraction:
after the **border** stage, each rank holds

* :class:`SendRoute` s — (peer, local/ghost indices to pack, PBC shift to
  apply, tag), and
* :class:`RecvRoute` s — (peer, destination ghost range, tag),

and the **forward** (positions owner->ghost), **reverse** (forces
ghost->owner) and EAM mid-pair scalar exchanges are generic replays of
those routes.  The PBC shift is applied by the *sender* (as real LAMMPS
does in its pack kernels) so the RDMA path — where data lands directly
in the remote array with no receiver-side unpack — is identical in
content to the message path.

The base class also does atom migration (**exchange** stage) and traffic
modelling: every executed phase can report the message schedule it just
performed, which the perfmodel prices on the network simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.comm_plan import BufferPool, RankPlan
from repro.faults.injector import FAULTS, RetryExhaustedError
from repro.md.atoms import Atoms
from repro.md.domain import Domain
from repro.obs.metrics import METRICS
from repro.obs.telemetry import TELEMETRY
from repro.obs.trace import NULL_SPAN, TRACER
from repro.runtime.transport import SentMessage
from repro.runtime.world import RankContext, World


@dataclass
class SendRoute:
    """One outgoing message route of the forward stage."""

    peer: int
    send_idx: np.ndarray  # indices into the sender's atom arrays
    shift: np.ndarray  # (3,) PBC shift applied by the sender to positions
    tag: tuple
    hops: int = 1

    @property
    def count(self) -> int:
        return int(self.send_idx.shape[0])


@dataclass
class RecvRoute:
    """One incoming ghost block of the forward stage."""

    peer: int
    recv_start: int
    recv_count: int
    tag: tuple
    hops: int = 1


@dataclass
class RankRoutes:
    """All routes of one rank, aligned so replay order is deterministic."""

    sends: list[SendRoute] = field(default_factory=list)
    recvs: list[RecvRoute] = field(default_factory=list)

    def clear(self) -> None:
        """Drop all routes (called at the start of every border stage)."""
        self.sends.clear()
        self.recvs.clear()


class GhostExchange:
    """Abstract base of the border/forward/reverse/exchange protocol.

    Subclasses implement :meth:`borders` (building routes + initial ghost
    population); everything else is generic.

    Parameters
    ----------
    world, domain:
        The rank world (must carry a 3D grid) and the decomposed box.
    rcomm:
        Ghost shell thickness = force cutoff + neighbor skin.
    """

    #: half-list ghost rule the pattern requires ("all" or "coord")
    ghost_rule: str = "all"
    #: whether the pattern communicates the full 26-neighbor shell
    full_shell: bool = False
    name: str = "abstract"
    #: next tier of the degradation ladder (None = sturdiest pattern)
    fallback_pattern: str | None = None

    def __init__(self, world: World, domain: Domain, rcomm: float) -> None:
        if world.grid is None:
            raise ValueError("ghost exchange requires a world with a rank grid")
        if rcomm <= 0:
            raise ValueError(f"rcomm must be positive, got {rcomm}")
        self.world = world
        self.domain = domain
        self.rcomm = rcomm
        self.routes: dict[int, RankRoutes] = {
            r: RankRoutes() for r in range(world.size)
        }
        # Robustness-layer accounting (only moves under a fault session).
        self.retries = 0
        self.retry_model_time = 0.0
        # Plan cache (section 3.4 reuse discipline): routes are frozen
        # into flat RankPlans on first use after every border stage and
        # replayed until the epoch moves (reneighbor/migration).
        self._plan_epoch = 0
        self._plans: dict[int, RankPlan] = {}
        self._plans_built_epoch = -1
        self._pools: dict[int, BufferPool] = {}
        self._model_cache: dict = {}
        self._plan_builds = 0
        self._fastpath_phases = 0
        # Phases the _fastpath_ok gate sent down the slow path, by cause
        # (telemetry feed; the always-on plane itself never gates).
        self._gate_blocks = {"observability": 0, "faults": 0}
        # Direct-delivery wiring (built with the plans): every send
        # segment resolved to its destination slice, so a replayed phase
        # is pure slice copies with no per-message mailbox traffic.
        self._fwd_deliveries: list[tuple[int, int, int, int, int, int]] | None = None
        self._rev_deliveries: list[tuple[int, int, int, int, int, int]] | None = None
        self._phase_msgs: dict = {}

    # -- helpers ----------------------------------------------------------
    def atoms_of(self, rank: int) -> Atoms:
        """The per-rank atom storage held in the world state."""
        return self.world.ranks[rank].state["atoms"]

    def sub_box_of(self, rank: int):
        """The sub-box owned by ``rank``."""
        return self.domain.sub_box(self.world.grid_pos_of(rank))

    def shift_for_send(self, sender_rank: int, o_send: tuple[int, int, int]) -> np.ndarray:
        """PBC shift the sender applies for the receiver at ``o_send``.

        Equal to the receiver's ``ghost_shift`` toward the sender (offset
        ``-o_send`` from the receiver's perspective).
        """
        recv_pos = tuple(
            (p + o) % g
            for p, o, g in zip(
                self.world.grid_pos_of(sender_rank), o_send, self.world.grid
            )
        )
        o_recv = tuple(-o for o in o_send)
        return self.domain.sub_box(recv_pos).ghost_shift(o_recv, self.domain.box)

    # -- abstract ------------------------------------------------------------
    def borders(self) -> None:
        """Rebuild ghost sets and routes on every rank (border stage)."""
        raise NotImplementedError

    def _phase_span(self, phase: str):
        """Trace span wrapping one communication phase of this pattern."""
        if not TRACER.enabled:
            # Skip even the span-argument construction on the hot path.
            return NULL_SPAN
        return TRACER.span(
            f"{self.name}.{phase}", cat="comm", track="comm", pattern=self.name, phase=phase
        )

    # -- plan cache ----------------------------------------------------------
    def _clear_routes(self) -> None:
        """Drop all routes and invalidate cached plans (border stage)."""
        for rr in self.routes.values():
            rr.clear()
        self._invalidate_plans()

    def _invalidate_plans(self) -> None:
        """Bump the plan epoch: cached plans/model results are stale."""
        self._plan_epoch += 1
        self._model_cache.clear()

    def _plan_budget(self) -> object | None:
        """GhostBudget used to size the buffer pools (None = grow lazily)."""
        return None

    def _plans_current(self) -> dict[int, RankPlan]:
        """The per-rank plans for the current route epoch (built lazily)."""
        if self._plans_built_epoch != self._plan_epoch:
            budget = self._plan_budget()
            for rank in range(self.world.size):
                pool = self._pools.get(rank)
                if pool is None:
                    pool = BufferPool(budget=budget, full_shell=self.full_shell)
                    self._pools[rank] = pool
                rr = self.routes[rank]
                self._plans[rank] = RankPlan(
                    sends=rr.sends,
                    recvs=rr.recvs,
                    nlocal=self.atoms_of(rank).nlocal,
                    pool=pool,
                )
            self._wire_deliveries()
            self._plans_built_epoch = self._plan_epoch
            self._plan_builds += 1
        return self._plans

    def _wire_deliveries(self) -> None:
        """Pair every send segment with its destination recv segment.

        In the lockstep world each send route has exactly one matching
        recv route on the peer (same base tag, mirrored peer), so the
        forward stage can write packed slices straight into the
        receiver's ghost rows and the reverse stage can collect ghost
        slices straight into the owner's unpack buffer.  If any pairing
        is missing (sabotaged routes), wiring is dropped and the
        per-route slow path runs instead.
        """
        self._phase_msgs = {}
        size = self.world.size
        recv_maps = {
            rank: {(seg.peer, seg.tag): seg for seg in self._plans[rank].recv_segments}
            for rank in range(size)
        }
        fwd: list[tuple[int, int, int, int, int, int]] = []
        rev: list[tuple[int, int, int, int, int, int]] = []
        for rank in range(size):
            for seg in self._plans[rank].send_segments:
                rseg = recv_maps[seg.peer].get((rank, seg.tag))
                if rseg is None or rseg.n != seg.stop - seg.start:
                    self._fwd_deliveries = None
                    self._rev_deliveries = None
                    return
                hi = rseg.lo + rseg.n
                fwd.append((rank, seg.start, seg.stop, seg.peer, rseg.lo, hi))
                rev.append((seg.peer, rseg.lo, hi, rank, seg.start, seg.stop))
        self._fwd_deliveries = fwd
        self._rev_deliveries = rev

    def _phase_messages(self, phase: str, vec: bool, forward: bool) -> list:
        """The phase's :class:`SentMessage` records, built once per plan.

        The fast path replays identical traffic every step between
        reneighborings, so the per-message records are precomputed in
        the seed's send order (rank-major, segment order) and appended
        wholesale on each replay.
        """
        key = (phase, vec, forward)
        msgs = self._phase_msgs.get(key)
        if msgs is None:
            msgs = []
            for rank in range(self.world.size):
                plan = self._plans[rank]
                send_tags, recv_tags = plan.tags(phase)
                segs, tags = (
                    (plan.send_segments, send_tags)
                    if forward
                    else (plan.recv_segments, recv_tags)
                )
                for seg, tag in zip(segs, tags):
                    msgs.append(
                        SentMessage(
                            rank, seg.peer, tag,
                            seg.nbytes_vec if vec else seg.nbytes_scalar,
                            phase,
                        )
                    )
            self._phase_msgs[key] = msgs
        return msgs

    def _record_phase_traffic(self, log, msgs: list) -> None:
        """Append one replayed phase's records to the traffic log."""
        if log.max_messages is None:
            log.messages.extend(msgs)
        else:
            for m in msgs:
                log.record(m)

    def plan_stats(self) -> dict[str, int]:
        """Allocation/reuse counters of the plan cache and buffer pools."""
        pools = list(self._pools.values())
        return {
            "plan_builds": self._plan_builds,
            "fastpath_phases": self._fastpath_phases,
            "slowpath_phases": sum(self._gate_blocks.values()),
            "pool_allocations": sum(p.allocations for p in pools),
            "pool_grow_events": sum(p.grow_events for p in pools),
            "pool_bytes": sum(p.nbytes for p in pools),
        }

    def telemetry_feed(self) -> tuple[dict[str, float], dict[str, float]]:
        """(cumulative counters, gauges) for the per-step telemetry flush.

        Counter-shaped on purpose: everything here is bookkeeping the
        hot path already maintains (plan cache, pools, retry layer), so
        reading it once per step costs O(ranks) and the fast path stays
        untouched.  Subclasses extend with their plane-specific feeds
        (RDMA re-registrations, ring cursors).
        """
        stats = self.plan_stats()
        counters: dict[str, float] = {
            "plan_builds": float(stats["plan_builds"]),
            "fastpath_phases": float(stats["fastpath_phases"]),
            "slowpath_phases": float(stats["slowpath_phases"]),
            "pool_allocations": float(stats["pool_allocations"]),
            "pool_grow_events": float(stats["pool_grow_events"]),
            "retries": float(self.retries),
            "retry_model_seconds": self.retry_model_time,
        }
        gauges: dict[str, float] = {
            "pool_bytes": float(stats["pool_bytes"]),
            "pool_rows_used": float(
                sum(p.n_pack for p in self._plans.values())
                if self._plans_built_epoch == self._plan_epoch
                else 0
            ),
            "pool_rows_capacity": float(
                sum(pool.capacity_rows for pool in self._pools.values())
            ),
        }
        return counters, gauges

    # -- generic forward/reverse -------------------------------------------------
    def forward(self) -> None:
        """Send owned positions to every ghost copy (forward stage)."""
        with self._phase_span("forward"):
            self._forward_array(
                {r: self.atoms_of(r).x for r in range(self.world.size)},
                apply_shift=True,
                phase="forward",
            )

    def reverse(self) -> None:
        """Accumulate ghost forces back onto owners (reverse stage)."""
        with self._phase_span("reverse"):
            self._reverse_sum_array(
                {r: self.atoms_of(r).f for r in range(self.world.size)},
                phase="reverse",
            )

    def forward_scalar_world(self, arrays: dict[int, np.ndarray]) -> None:
        """Owner -> ghost broadcast of one scalar per atom (EAM fp)."""
        with self._phase_span("pair-forward"):
            self._forward_array(arrays, apply_shift=False, phase="pair-forward")

    def reverse_sum_scalar_world(self, arrays: dict[int, np.ndarray]) -> None:
        """Ghost -> owner sum of one scalar per atom (EAM density)."""
        with self._phase_span("pair-reverse"):
            self._reverse_sum_array(arrays, phase="pair-reverse")

    # -- robust receive (the retry policy layer) -----------------------------
    def _recv(self, transport, rank: int, peer: int, tag: tuple):
        """Receive with timeout/backoff retries while faults are active.

        Without a fault session this is exactly ``transport.recv`` (the
        fault layer must add zero cost when disabled).  With one, a
        missing message triggers up to ``max_retries`` polls: each poll
        waits the current timeout (accounted as a ``cat="retry"`` model
        span and in ``retry_model_time``), ages the mailbox's limbo so
        held messages can land, and doubles the timeout.  Exhaustion —
        or an exceeded fault budget — escalates so the driver can fall
        back along :attr:`fallback_pattern`.
        """
        session = FAULTS.session
        if session is None or not session.message_faults:
            # No message faults armed: a lockstep recv can never miss.
            return transport.recv(rank, peer, tag)
        payload = transport.try_recv(rank, peer, tag)
        if payload is not None:
            return payload
        policy = session.policy
        timeout = policy.base_timeout
        with TRACER.span(
            "recv-retry", cat="retry", track="comm",
            rank=rank, peer=peer, phase=transport.phase,
        ):
            for attempt in range(1, policy.max_retries + 1):
                session.check_budget()
                session.note_retry(transport.phase)
                self.retries += 1
                self.retry_model_time += timeout
                TRACER.model_span_seq(
                    "retry-backoff", timeout, cat="retry", track="comm",
                    attempt=attempt, rank=rank, peer=peer, phase=transport.phase,
                )
                transport.fault_poll(rank, peer, tag)
                payload = transport.try_recv(rank, peer, tag)
                if payload is not None:
                    return payload
                timeout *= policy.backoff
        TELEMETRY.emit(
            "retry-exhausted",
            rank=rank, peer=peer, phase=transport.phase, pattern=self.name,
            attempts=policy.max_retries,
        )
        raise RetryExhaustedError(
            f"rank {rank} gave up on {peer} tag {tag!r} after "
            f"{policy.max_retries} retries (phase {transport.phase!r}, "
            f"pattern {self.name!r})"
        )

    def _fastpath_ok(self) -> bool:
        """Whether the pooled zero-copy replay may run.

        An armed fault plane or a **heavyweight** observability session
        (the per-event tracer or the per-message metrics registry) takes
        the slow path, which produces bit-identical data through the
        full bookkeeping.  A session with neither message nor RDMA
        faults armed cannot touch the data plane (network-kind faults
        only price modeled time, which is simulated separately), so the
        fast path stays on — the faults-off guard measures this idle
        cost.

        The always-on telemetry plane (:data:`~repro.obs.telemetry
        .TELEMETRY`) is deliberately **not** consulted: it is fed from
        the counters this class already maintains, once per step, so
        live percentiles and the flight recorder coexist with the full
        speedup (the ``telemetry-overhead`` bench guard enforces <5%
        wall).  Gate refusals are counted per cause for that same feed.
        """
        session = FAULTS.session
        if session is not None and (session.message_faults or session.rdma_faults):
            self._gate_blocks["faults"] += 1
            return False
        if TRACER.enabled or METRICS.enabled:
            self._gate_blocks["observability"] += 1
            return False
        return True

    # Subclasses may override for staged execution or RDMA data planes.
    def _forward_array(
        self, arrays: dict[int, np.ndarray], apply_shift: bool, phase: str
    ) -> None:
        transport = self.world.transport
        transport.set_phase(phase)
        if self._fastpath_ok():
            self._plans_current()
            if self._fwd_deliveries is not None:
                self._forward_fast(arrays, apply_shift, phase, transport)
                return
        for rank in range(self.world.size):
            data = arrays[rank]
            for route in self.routes[rank].sends:
                payload = np.array(data[route.send_idx], copy=True)
                if apply_shift and payload.ndim == 2:
                    payload += route.shift
                transport.send(rank, route.peer, route.tag + (phase,), payload)
        for rank in range(self.world.size):
            data = arrays[rank]
            for route in self.routes[rank].recvs:
                payload = self._recv(transport, rank, route.peer, route.tag + (phase,))
                lo, n = route.recv_start, route.recv_count
                data[lo : lo + n] = payload

    def _forward_fast(
        self,
        arrays: dict[int, np.ndarray],
        apply_shift: bool,
        phase: str,
        transport,
        record: bool = True,
    ) -> None:
        """Pooled replay of the forward stage: one gather, direct copies.

        Each rank's send rows are gathered into its pooled buffer by one
        ``np.take``; the pre-wired deliveries then copy every packed
        slice straight into the receiver's ghost rows (same bytes the
        mailbox round trip would move, none of its bookkeeping).  The
        traffic log still receives the seed's exact per-message records
        (``record=False`` for the RDMA plane, whose PUTs are not logged
        messages in the first place).
        """
        plans = self._plans
        size = self.world.size
        vec = arrays[0].ndim == 2
        bufs = [
            plans[rank].pack_vec(arrays[rank], apply_shift)
            if vec
            else plans[rank].pack_scalar(arrays[rank])
            for rank in range(size)
        ]
        if record:
            self._record_phase_traffic(
                transport.log, self._phase_messages(phase, vec, forward=True)
            )
        for src, s, e, dst, lo, hi in self._fwd_deliveries:
            arrays[dst][lo:hi] = bufs[src][s:e]
        self._fastpath_phases += 1

    def _reverse_sum_array(self, arrays: dict[int, np.ndarray], phase: str) -> None:
        transport = self.world.transport
        transport.set_phase(phase)
        if self._fastpath_ok():
            self._plans_current()
            if self._rev_deliveries is not None:
                self._reverse_fast(arrays, phase, transport)
                return
        plans = self._plans_current()
        for rank in range(self.world.size):
            data = arrays[rank]
            for route in self.routes[rank].recvs:
                lo, n = route.recv_start, route.recv_count
                transport.send(
                    rank, route.peer, route.tag + (phase,), np.array(data[lo : lo + n])
                )
        for rank in range(self.world.size):
            data = arrays[rank]
            # Collect every contribution before applying any: an
            # escalation mid-sweep must not leave a half-summed array
            # behind (the post-degradation force recompute relies on it).
            received = [
                self._recv(transport, rank, route.peer, route.tag + (phase,))
                for route in self.routes[rank].sends
            ]
            # Apply through the shared fused plan scatter so slow-path
            # (faulted/observed) sums stay bit-identical to the fast path.
            plan = plans[rank]
            buf = plan.unpack_buffer(vec=data.ndim == 2)
            for seg, payload in zip(plan.send_segments, received):
                buf[seg.start : seg.stop] = payload
            plan.apply_reverse(data, buf)

    def _reverse_fast(
        self, arrays: dict[int, np.ndarray], phase: str, transport,
        record: bool = True,
    ) -> None:
        """Pooled replay of the reverse stage with a fused scatter-add.

        Every ghost slice is copied straight into its owner's pooled
        unpack buffer (in the owner's send-segment order), then each
        owner applies one fused scatter.  Collect-all-then-apply-all is
        safe because :meth:`RankPlan.apply_reverse` never writes past
        the local atoms — the ghost rows being read are never mutated.
        """
        plans = self._plans
        size = self.world.size
        vec = arrays[0].ndim == 2
        bufs = [plans[rank].unpack_buffer(vec) for rank in range(size)]
        if record:
            self._record_phase_traffic(
                transport.log, self._phase_messages(phase, vec, forward=False)
            )
        for src, lo, hi, dst, s, e in self._rev_deliveries:
            bufs[dst][s:e] = arrays[src][lo:hi]
        for rank in range(size):
            plans[rank].apply_reverse(arrays[rank], bufs[rank])
        self._fastpath_phases += 1

    # -- migration -------------------------------------------------------------
    def exchange(self) -> None:
        """Migrate atoms that left their sub-box (exchange stage).

        Runs with ghosts cleared (LAMMPS order: exchange -> borders).
        Positions are wrapped into the global box first.
        """
        # Migration moves atoms between ranks: every cached plan (and
        # modeled-time entry) is stale until the next border stage.
        self._invalidate_plans()
        with self._phase_span("exchange"):
            self._exchange_impl()

    def _exchange_impl(self) -> None:
        world = self.world
        transport = world.transport
        transport.set_phase("exchange")
        box = self.domain.box

        outgoing: dict[int, list] = {}
        for rank in range(world.size):
            atoms = self.atoms_of(rank)
            atoms.clear_ghosts()
            x = atoms.x_local()
            x[:] = box.wrap(x)
            groups = self.domain.scatter(x)
            my_pos = world.grid_pos_of(rank)
            leaving: list[np.ndarray] = []
            for pos, idx in groups.items():
                if pos == my_pos:
                    continue
                leaving.append((pos, idx))
            outgoing[rank] = leaving

        for rank in range(world.size):
            atoms = self.atoms_of(rank)
            # Collect and remove in one pass so indices stay valid.
            all_idx = (
                np.concatenate([idx for _, idx in outgoing[rank]])
                if outgoing[rank]
                else np.empty(0, dtype=np.intp)
            )
            if all_idx.size:
                x, v, tag, type_ = atoms.remove_local(all_idx)
                # Re-split by destination, preserving group boundaries.
                cursor = 0
                for pos, idx in outgoing[rank]:
                    n = idx.shape[0]
                    sl = slice(cursor, cursor + n)
                    dest = world.rank_at(pos)
                    transport.send(
                        rank, dest, ("exch",), (x[sl], v[sl], tag[sl], type_[sl])
                    )
                    cursor += n
            # Every rank sends a (possibly empty) marker count so receives
            # are deterministic.
            transport.send(rank, rank, ("exch-done",), len(outgoing[rank]))

        for rank in range(world.size):
            atoms = self.atoms_of(rank)
            transport.recv(rank, rank, ("exch-done",))
            # Drain everything addressed to us this phase.
            for src in range(world.size):
                while True:
                    payload = transport.try_recv(rank, src, ("exch",))
                    if payload is None:
                        break
                    x, v, tag, type_ = payload
                    atoms.add_local(x, v, tag, type_)

    # -- statistics ----------------------------------------------------------------
    def messages_per_rank(self) -> dict[int, int]:
        """Forward-stage send count per rank (Table 1's ``msg``)."""
        return {r: len(rr.sends) for r, rr in self.routes.items()}

    def ghost_counts(self) -> dict[int, int]:
        """Current ghost-atom count per rank."""
        return {r: self.atoms_of(r).nghost for r in range(self.world.size)}
