"""Border bins: O(1) neighbor targeting for border atoms (section 3.5.2).

Deciding which neighbors need a given border atom naively tests the atom
against up to 26 ghost regions.  The paper instead cuts each sub-box into
a 3x3x3 grid at distance ``r_comm`` from the faces: an atom's bin index
(one ternary digit per axis: low border / interior / high border) is
computed once, and a precomputed bin -> neighbor-list table finishes the
job.

:class:`BorderBins` precomputes that table for any neighbor set (the 13
half-shell or 26 full-shell offsets) and classifies whole position arrays
vectorized.  Tests verify it against the brute-force region test
(:meth:`repro.md.region.SubBox.border_mask`) on random atoms.
"""

from __future__ import annotations

import numpy as np

from repro.md.region import SubBox


class BorderBins:
    """3x3x3 binning of a sub-box for border-atom routing.

    Parameters
    ----------
    sub_box:
        This rank's sub-box.
    rcomm:
        Ghost-shell thickness (cutoff + skin).  Must not exceed any
        sub-box edge — bins degenerate otherwise (that long-cutoff regime
        routes via the generic region test instead).
    send_offsets:
        Neighbor offsets this rank *sends border atoms to*.
    """

    def __init__(
        self,
        sub_box: SubBox,
        rcomm: float,
        send_offsets: list[tuple[int, int, int]],
    ) -> None:
        lengths = sub_box.lengths
        if rcomm <= 0:
            raise ValueError(f"rcomm must be positive, got {rcomm}")
        if np.any(rcomm > lengths):
            raise ValueError(
                f"rcomm {rcomm} exceeds sub-box lengths {tuple(lengths)}; "
                "3x3x3 border bins require sub-boxes wider than the shell"
            )
        self.sub_box = sub_box
        self.rcomm = rcomm
        self.send_offsets = list(send_offsets)
        self._lo = np.asarray(sub_box.lo)
        self._hi = np.asarray(sub_box.hi)
        self._table = self._build_table()
        # Dense neighbor x bin membership matrix for vectorized routing
        # (neighbor-major so per-neighbor rows come out contiguous).
        self._matrix = np.zeros((len(self.send_offsets), 27), dtype=bool)
        for bin_id, neighbors in enumerate(self._table):
            self._matrix[neighbors, bin_id] = True

    def _build_table(self) -> list[list[int]]:
        """bin id (0..26) -> indices into ``send_offsets`` needing it.

        Bin digit per axis: 0 = within rcomm of the low face, 1 =
        interior, 2 = within rcomm of the high face.  (With
        ``rcomm > edge/2`` an atom can be in both borders; digits then
        prefer low — correctness is preserved because the constructor
        rejects rcomm > edge, and tests cover the boundary.)  A neighbor
        with offset ``o`` needs the atom iff for every axis: ``o=+1``
        requires digit 2, ``o=-1`` requires digit 0, ``o=0`` accepts any.
        """
        table: list[list[int]] = [[] for _ in range(27)]
        for bin_id in range(27):
            digits = (bin_id % 3, (bin_id // 3) % 3, bin_id // 9)
            for n_idx, off in enumerate(self.send_offsets):
                ok = True
                for d, o in zip(digits, off):
                    if o > 0 and d != 2:
                        ok = False
                        break
                    if o < 0 and d != 0:
                        ok = False
                        break
                if ok:
                    table[bin_id].append(n_idx)
        return table

    def bin_of(self, x: np.ndarray) -> np.ndarray:
        """Vectorized bin id per position (positions must be in-box).

        Digit per axis: 0 = low border, 1 = interior, 2 = high border,
        computed as two comparisons and an add (no branching).
        """
        x = np.atleast_2d(x)
        digit = (x >= self._lo + self.rcomm).astype(np.int8)
        digit += x >= self._hi - self.rcomm
        return digit[:, 0] + 3 * digit[:, 1] + 9 * digit[:, 2].astype(np.intp)

    def neighbors_for_bin(self, bin_id: int) -> list[int]:
        """Send-offset indices receiving atoms of ``bin_id``."""
        return self._table[int(bin_id)]

    def route(self, x: np.ndarray) -> list[np.ndarray]:
        """Index arrays of ``x`` to send to each neighbor, bin-accelerated.

        Equivalent to 26 brute-force ``border_mask`` sweeps, but each atom
        is classified once.  Note the caveat in :meth:`_build_table`: an
        atom within ``rcomm`` of *both* faces of an axis (possible when
        ``rcomm > edge/2``) is binned low-first, so this fast path is only
        exact when ``rcomm <= edge/2``; the exchange falls back to
        ``border_mask`` otherwise.
        """
        bins = self.bin_of(x)
        membership = self._matrix[:, bins]  # (n_neighbors, natoms), contiguous rows
        return [
            np.flatnonzero(membership[k]).astype(np.intp)
            for k in range(len(self.send_offsets))
        ]

    def is_exact(self) -> bool:
        """Whether the fast path is exact (rcomm <= half the sub-box)."""
        return bool(np.all(self.rcomm <= self.sub_box.lengths / 2.0))
