"""Topology mapping: MPI rank grid -> TofuD nodes (section 3.5.3).

Fugaku's scheduler hands a job a contiguous block of nodes with a known
virtual 3D shape; ``mpi-extend`` then tells each rank its node's physical
coordinates.  The paper maps the MD rank grid onto that block so that
neighboring sub-boxes are neighboring nodes — 1-hop communication for
faces, additive for edges/corners — and packs the 4 ranks of a node as a
2x2x1 sub-brick of the rank grid so intra-node neighbors are 0 hops.

:class:`TopoMap` reproduces that embedding and answers hop queries the
performance model and the fine-grained scheduler use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.topology import TofuTopology

#: How the paper's 4 ranks-per-node tile the rank grid within one node.
RANKS_PER_NODE_BRICK = (2, 2, 1)


@dataclass(frozen=True)
class JobShape:
    """A scheduler allocation: virtual 3D node grid of a torus block."""

    nodes: tuple[int, int, int]

    @property
    def node_count(self) -> int:
        nx, ny, nz = self.nodes
        return nx * ny * nz

    def rank_grid(self, brick: tuple[int, int, int] = RANKS_PER_NODE_BRICK) -> tuple[int, int, int]:
        """The rank grid this allocation supports at 4 ranks/node."""
        return tuple(n * b for n, b in zip(self.nodes, brick))


class TopoMap:
    """Embedding of a 3D rank grid onto a TofuD node block.

    Parameters
    ----------
    job:
        The allocated node block.
    topology:
        The machine; defaults to the smallest torus containing the job.
    brick:
        Ranks-per-node arrangement (default 2x2x1 = 4 ranks).
    """

    def __init__(
        self,
        job: JobShape,
        topology: TofuTopology | None = None,
        brick: tuple[int, int, int] = RANKS_PER_NODE_BRICK,
    ) -> None:
        self.job = job
        self.brick = brick
        if topology is None:
            topology = TofuTopology.for_virtual_shape(self._padded_virtual(job.nodes))
        self.topology = topology
        vshape = topology.virtual_shape
        if any(j > v for j, v in zip(job.nodes, vshape)):
            raise ValueError(f"job {job.nodes} does not fit machine grid {vshape}")
        self.rank_grid = job.rank_grid(brick)

    @staticmethod
    def _padded_virtual(nodes: tuple[int, int, int]) -> tuple[int, int, int]:
        """Round a node shape up to whole TofuD cells (2, 3, 2 folding)."""
        from repro.machine.topology import TOFU_CELL_SHAPE

        return tuple(
            -(-n // c) * c for n, c in zip(nodes, TOFU_CELL_SHAPE)
        )

    # -- rank -> node ---------------------------------------------------------
    def node_of_rank(self, rank_pos: tuple[int, int, int]) -> tuple[int, int, int]:
        """Virtual node coordinates hosting the rank at ``rank_pos``."""
        for p, g in zip(rank_pos, self.rank_grid):
            if not 0 <= p < g:
                raise ValueError(f"rank position {rank_pos} outside grid {self.rank_grid}")
        return tuple(p // b for p, b in zip(rank_pos, self.brick))

    def local_index(self, rank_pos: tuple[int, int, int]) -> int:
        """Which of the node's 4 rank slots this rank occupies (0..3)."""
        bx, by, bz = self.brick
        lx, ly, lz = (p % b for p, b in zip(rank_pos, self.brick))
        return lx + bx * (ly + by * lz)

    # -- hop queries ------------------------------------------------------------
    def hops_between(
        self, rank_a: tuple[int, int, int], rank_b: tuple[int, int, int]
    ) -> int:
        """Physical network hops between two ranks (0 if co-located).

        Periodic rank-grid wrap is honored: the neighbor of the last rank
        along an axis is the first, and the torus routes the short way.
        """
        na, nb = self.node_of_rank(rank_a), self.node_of_rank(rank_b)
        if na == nb:
            return 0
        ca = self.topology.coord_for_virtual(na)
        cb = self.topology.coord_for_virtual(nb)
        return self.topology.hops(ca, cb)

    def neighbor_hops(
        self, rank_pos: tuple[int, int, int], offset: tuple[int, int, int]
    ) -> int:
        """Hops to the rank at grid ``offset`` (periodic wrap)."""
        target = tuple(
            (p + o) % g for p, o, g in zip(rank_pos, offset, self.rank_grid)
        )
        return self.hops_between(rank_pos, target)

    def average_neighbor_hops(self, offsets: list[tuple[int, int, int]]) -> float:
        """Mean hops over all ranks for each of ``offsets`` — the locality
        statistic that shows the embedding preserves the decomposition."""
        total = 0.0
        count = 0
        gx, gy, gz = self.rank_grid
        # Sample the rank grid coarsely for large jobs (exact for small).
        step = max(1, gx // 8), max(1, gy // 8), max(1, gz // 8)
        for x in range(0, gx, step[0]):
            for y in range(0, gy, step[1]):
                for z in range(0, gz, step[2]):
                    for off in offsets:
                        total += self.neighbor_hops((x, y, z), off)
                        count += 1
        return total / count if count else 0.0
