"""Analytic communication-time model: paper Table 1 and Equations (3)-(8).

Given sub-box side ``a``, cutoff ``r``, atom density and bytes-per-atom,
this module produces the Table 1 rows (message sizes, hops, counts) and
evaluates the six timing formulas:

========================  =============================================
Eq. (3)  3stage-naive      ``2 T0 + 2 T1 + 2 T2``
Eq. (4)  p2p-naive         ``12 T_inj + T_last``
Eq. (5)  3stage-opt        ``3 T_inj + T0 + T1 + T2``
Eq. (6)  p2p-opt           ``12 T_inj + min(T3, T4, T5)``
Eq. (7)  3stage-parallel   ``T0 + T1 + T2``
Eq. (8)  p2p-parallel      ``2 T_inj + min(T3, T4, T5)``
========================  =============================================

``T0..T5`` are point-to-point times for the six distinct (size, hop)
message classes of Table 1; they come from the network simulator so the
analytic model and the discrete-event model share one source of truth.
The paper's conclusion — p2p beats 3-stage on Fugaku because uTofu's
``T_inj`` is tiny and ``T3 = T0`` — is asserted as a test over this
module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ghost import offset_volume, stage_volumes
from repro.core.patterns import p2p_neighbors
from repro.machine.params import FUGAKU, MachineParams
from repro.network.simulator import NetworkSimulator
from repro.network.stacks import SoftwareStack, UtofuStack


@dataclass(frozen=True)
class MessageClass:
    """One row of Table 1: a (volume, hops, count) message class."""

    name: str
    atoms: float  # expected atoms per message (volume * density)
    nbytes: int  # payload bytes per message
    hops: int
    count: int  # messages of this class per rank

    @property
    def total_atoms(self) -> float:
        return self.atoms * self.count


@dataclass(frozen=True)
class PatternAnalysis:
    """All message classes of one pattern plus the Table 1 totals."""

    pattern: str
    classes: tuple[MessageClass, ...]

    @property
    def total_messages(self) -> int:
        return sum(c.count for c in self.classes)

    @property
    def total_atoms(self) -> float:
        return sum(c.total_atoms for c in self.classes)

    @property
    def total_bytes(self) -> float:
        return sum(c.nbytes * c.count for c in self.classes)


def analyze_three_stage(
    a: float, r: float, density: float, bytes_per_atom: int = 24
) -> PatternAnalysis:
    """Table 1 upper block: the 3 stages x 2 directions of the 3-stage."""
    s1, s2, s3 = stage_volumes(a, r)
    mk = lambda name, vol, hop: MessageClass(
        name=name,
        atoms=vol * density,
        nbytes=int(round(vol * density * bytes_per_atom)),
        hops=hop,
        count=2,
    )
    return PatternAnalysis(
        pattern="3stage",
        classes=(
            mk("stage1:a^2 r", s1, 1),
            mk("stage2:a^2 r + 2 a r^2", s2, 1),
            mk("stage3:(a+2r)^2 r", s3, 1),
        ),
    )


def analyze_p2p(
    a: float,
    r: float,
    density: float,
    bytes_per_atom: int = 24,
    newton: bool = True,
    radius: int = 1,
) -> PatternAnalysis:
    """Table 1 lower block: faces/edges/corners of the p2p half shell."""
    groups: dict[tuple[str, int], list] = {}
    for nb in p2p_neighbors(newton=newton, radius=radius):
        vol = offset_volume(a, r, nb.offset)
        groups.setdefault((nb.kind, nb.hops), []).append(vol)
    classes = []
    for (kind, hops), vols in sorted(groups.items(), key=lambda kv: kv[0][1]):
        vol = vols[0]
        classes.append(
            MessageClass(
                name=f"{kind}:{hops}hop",
                atoms=vol * density,
                nbytes=int(round(vol * density * bytes_per_atom)),
                hops=hops,
                count=len(vols),
            )
        )
    return PatternAnalysis(pattern="p2p", classes=tuple(classes))


@dataclass(frozen=True)
class TimingModel:
    """Equations (3)-(8) evaluated for concrete message classes."""

    t_inj: float
    t_stage: tuple[float, float, float]  # T0, T1, T2
    t_p2p: tuple[float, float, float]  # T3, T4, T5

    @property
    def three_stage_naive(self) -> float:
        t0, t1, t2 = self.t_stage
        return 2 * t0 + 2 * t1 + 2 * t2

    @property
    def p2p_naive(self) -> float:
        t_last = max(self.t_p2p)
        return 12 * self.t_inj + t_last

    @property
    def three_stage_opt(self) -> float:
        t0, t1, t2 = self.t_stage
        return 3 * self.t_inj + t0 + t1 + t2

    @property
    def p2p_opt(self) -> float:
        return 12 * self.t_inj + min(self.t_p2p)

    @property
    def three_stage_parallel(self) -> float:
        return sum(self.t_stage)

    @property
    def p2p_parallel(self) -> float:
        return 2 * self.t_inj + min(self.t_p2p)

    def as_dict(self) -> dict[str, float]:
        """All six formula values keyed by the paper's names."""
        return {
            "3stage-naive": self.three_stage_naive,
            "p2p-naive": self.p2p_naive,
            "3stage-opt": self.three_stage_opt,
            "p2p-opt": self.p2p_opt,
            "3stage-parallel": self.three_stage_parallel,
            "p2p-parallel": self.p2p_parallel,
        }


def timing_model(
    a: float,
    r: float,
    density: float,
    stack: SoftwareStack | None = None,
    params: MachineParams = FUGAKU,
    bytes_per_atom: int = 24,
) -> TimingModel:
    """Build Eq. (3)-(8) inputs from the network simulator.

    ``T0..T2`` price the three 3-stage message classes; ``T3..T5`` the
    p2p face/edge/corner classes (1, 2, 3 hops).  ``T_inj`` comes from
    the stack — the quantity whose MPI-vs-uTofu gap drives the paper.
    """
    stack = stack if stack is not None else UtofuStack(params=params)
    sim = NetworkSimulator(stack, params)
    three = analyze_three_stage(a, r, density, bytes_per_atom)
    p2p = analyze_p2p(a, r, density, bytes_per_atom)
    t_stage = tuple(
        sim.point_to_point_time(c.nbytes, c.hops) for c in three.classes
    )
    t_p2p = tuple(sim.point_to_point_time(c.nbytes, c.hops) for c in p2p.classes)
    # Representative injection interval: the typical (face) message size.
    t_inj = stack.injection_interval(p2p.classes[0].nbytes)
    return TimingModel(t_inj=t_inj, t_stage=t_stage, t_p2p=t_p2p)
