"""Communication-pattern definitions: neighbor sets and message shapes.

The two patterns of paper section 3.1, plus the extended neighborhoods of
section 4.4:

* **3-stage** — six staged swaps (2 per dimension), forwarding received
  ghosts between stages; works with the *full* shell.
* **p2p** — direct messages to every neighbor in the shell; with Newton's
  3rd law only the 13-neighbor *plus half* of the shell is received
  (message counts 13/26 for shell radius 1, 62/124 for radius 2).

The "plus half" convention: an offset ``(ox, oy, oz)`` is in the receive
half iff it is lexicographically positive in ``(z, y, x)`` order.  Each
cross-rank pair then has exactly one owner — the rank whose atom is
lexicographically *below* — which is the invariant Newton's-law force
exchange needs (see :mod:`repro.md.neighbor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CommPattern(str, Enum):
    """The two ghost-exchange patterns the paper compares."""
    THREE_STAGE = "3stage"
    P2P = "p2p"


def lex_positive(offset: tuple[int, int, int]) -> bool:
    """True iff ``offset`` is lexicographically positive in (z, y, x)."""
    ox, oy, oz = offset
    return (oz, oy, ox) > (0, 0, 0)


def shell_offsets(radius: int = 1) -> list[tuple[int, int, int]]:
    """All nonzero offsets of the cubic shell of the given radius.

    Radius 1 -> 26 neighbors; radius 2 -> 124 (Fig. 15's worst case).
    """
    if radius < 1:
        raise ValueError(f"shell radius must be >= 1, got {radius}")
    rng = range(-radius, radius + 1)
    return [
        (ox, oy, oz)
        for oz in rng
        for oy in rng
        for ox in rng
        if (ox, oy, oz) != (0, 0, 0)
    ]


def half_shell_offsets(radius: int = 1) -> list[tuple[int, int, int]]:
    """The receive half of the shell (13 for radius 1, 62 for radius 2)."""
    return [o for o in shell_offsets(radius) if lex_positive(o)]


def offset_hops(offset: tuple[int, int, int]) -> int:
    """Logical-torus hops to the neighbor at ``offset`` (Table 1 ``hop``).

    With ranks embedded topology-preservingly (section 3.5.3), one grid
    step per axis is one network hop, so hops = L1 norm of the offset.
    """
    return sum(abs(o) for o in offset)


@dataclass(frozen=True)
class NeighborSpec:
    """One p2p neighbor: grid offset, hop count, and its Table 1 class."""

    offset: tuple[int, int, int]
    hops: int
    kind: str  # "face" | "edge" | "corner" (radius-1 nomenclature)

    @staticmethod
    def classify(offset: tuple[int, int, int]) -> str:
        nz = sum(1 for o in offset if o != 0)
        return {1: "face", 2: "edge", 3: "corner"}[min(nz, 3)]


def p2p_neighbors(newton: bool = True, radius: int = 1) -> list[NeighborSpec]:
    """The neighbors a rank *receives ghosts from* under the p2p pattern.

    ``newton=True`` gives the Table 1 half set: 3 faces (1 hop), 6 edges
    (2 hops), 4 corners (3 hops).  ``newton=False`` gives the full 26
    (or 124 at radius 2) — the Fig. 15 scenarios.
    """
    offsets = half_shell_offsets(radius) if newton else shell_offsets(radius)
    return [
        NeighborSpec(offset=o, hops=offset_hops(o), kind=NeighborSpec.classify(o))
        for o in offsets
    ]


@dataclass(frozen=True)
class StageSwap:
    """One swap of the 3-stage pattern: flow direction along one dim."""

    dim: int  # 0=x, 1=y, 2=z
    dir: int  # +1: atoms flow toward +dim; -1: toward -dim
    hop: int = 1


def three_stage_swaps(radius: int = 1) -> list[StageSwap]:
    """The swap schedule of the 3-stage pattern: 2 per dim per radius.

    Order matters: all x swaps, then y, then z, so each stage forwards the
    previous stage's ghosts (Fig. 4).  ``radius > 1`` repeats each
    direction (multi-hop forwarding for long cutoffs) — 3-stage message
    count grows *linearly* (6 -> 12) where p2p grows ~n^2 (26 -> 124),
    the crossover Fig. 15 reports.
    """
    swaps = []
    for dim in (0, 1, 2):
        for _ in range(radius):
            swaps.append(StageSwap(dim=dim, dir=+1))
            swaps.append(StageSwap(dim=dim, dir=-1))
    return swaps


def message_count(pattern: CommPattern, newton: bool = True, radius: int = 1) -> int:
    """Messages per rank per border/forward exchange (Table 1 ``msg``)."""
    if pattern is CommPattern.THREE_STAGE:
        return len(three_stage_swaps(radius))
    return len(p2p_neighbors(newton=newton, radius=radius))
