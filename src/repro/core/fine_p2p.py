"""Fine-grained thread-pool p2p (paper section 3.3, Figs. 7 and 10).

Functionally this moves exactly the same bytes as
:class:`~repro.core.p2p.P2PExchange` — correctness cannot depend on which
thread injected a message.  What changes is the *schedule*: each rank's
13 neighbor messages are distributed over 6 communication threads, each
thread driving its own VCQ bound to a distinct TNI (the 4 ranks x 6 CQs
= 24-CQ layout of Fig. 7), so injections proceed in parallel.

Load balancing follows Fig. 10: the per-message cost estimate combines
payload serialization (message size) and path length (hops) — the 3
face messages are big but near, the 4 corner messages small but far —
and LPT assignment over the 6 threads equalizes the per-thread totals.

:meth:`comm_schedule` exports the resulting (thread, TNI)-annotated
message list; the perfmodel feeds it to the network simulator, which is
where the paper's >=50 % message-rate boost for <512 B messages (Fig. 8)
and the 77 % communication-time cut (Fig. 12) come from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.p2p import P2PExchange
from repro.machine.params import FUGAKU, MachineParams
from repro.network.simulator import Message
from repro.network.stacks import SoftwareStack, UtofuStack
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.runtime.threadpool import ThreadPoolModel, WorkItem, split_load


@dataclass(frozen=True)
class ThreadAssignment:
    """One neighbor message pinned to a communication thread/TNI."""

    neighbor_index: int
    nbytes: int
    hops: int
    thread: int
    tni: int


class FineGrainedP2PExchange(P2PExchange):
    """Thread-pool-parallel p2p: same data, parallel injection schedule."""

    name = "parallel-p2p"
    # First rung of the degradation ladder: same routes, single-threaded
    # injection — then coarse p2p's own fallback reaches 3-stage.
    fallback_pattern = "p2p"

    def __init__(
        self,
        *args,
        n_comm_threads: int | None = None,
        params: MachineParams = FUGAKU,
        stack: SoftwareStack | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.params = params
        self.stack = stack if stack is not None else UtofuStack(params=params)
        self.n_comm_threads = (
            n_comm_threads if n_comm_threads is not None else params.comm_threads_per_rank
        )
        if not 1 <= self.n_comm_threads <= params.tnis_per_node:
            raise ValueError(
                f"comm threads {self.n_comm_threads} must be in "
                f"[1, {params.tnis_per_node}] (one VCQ per TNI per rank)"
            )
        self.pool = ThreadPoolModel(self.n_comm_threads, params)
        # LPT schedules are pure functions of the current routes: cache
        # them per (rank, bytes_per_atom) until the plan epoch moves.
        self._sched_cache: dict[tuple[int, int], list[ThreadAssignment]] = {}

    def _invalidate_plans(self) -> None:
        super()._invalidate_plans()
        self._sched_cache.clear()

    # -- scheduling --------------------------------------------------------
    def message_cost(self, nbytes: int, hops: int) -> float:
        """Estimated per-message cost used for load balancing (Fig. 10).

        Injection CPU + software latency + wire: exactly what one thread
        is occupied/waiting for.
        """
        return (
            self.stack.injection_interval(nbytes)
            + self.stack.software_latency(nbytes)
            + self.params.wire_time(nbytes, hops)
        )

    def assign_threads(self, rank: int, bytes_per_atom: int = 24) -> list[ThreadAssignment]:
        """LPT-balance this rank's forward sends over the comm threads.

        Thread *t* drives the VCQ bound to TNI *t* (fine binding of
        Fig. 7), so the TNI index equals the thread index.  With
        observability off the schedule is served from the plan-epoch
        cache (it only depends on the routes); tracing/metrics runs
        always recompute so spans and counters stay complete.
        """
        cache_ok = not TRACER.enabled and not METRICS.enabled
        if cache_ok:
            cached = self._sched_cache.get((rank, bytes_per_atom))
            if cached is not None:
                return cached
            out = self._assign_threads_impl(rank, bytes_per_atom)
            self._sched_cache[(rank, bytes_per_atom)] = out
            return out
        routes = self.routes[rank].sends
        with TRACER.span(
            f"{self.name}.schedule", cat="schedule", track="comm",
            rank=rank, n_messages=len(routes),
        ):
            out = self._assign_threads_impl(rank, bytes_per_atom)
        if METRICS.enabled:
            METRICS.counter("comm_schedules_total").inc()
            loads = [0.0] * self.n_comm_threads
            for a in out:
                loads[a.thread] += self.message_cost(a.nbytes, a.hops)
            mean = sum(loads) / len(loads)
            if mean > 0:
                METRICS.gauge("comm_thread_balance").set(max(loads) / mean)
        return out

    def _assign_threads_impl(
        self, rank: int, bytes_per_atom: int
    ) -> list[ThreadAssignment]:
        routes = self.routes[rank].sends
        items = [
            WorkItem(
                payload=n_idx,
                cost=self.message_cost(route.count * bytes_per_atom, route.hops),
            )
            for n_idx, route in enumerate(routes)
        ]
        bins = split_load(items, self.n_comm_threads)
        out = []
        for thread, bucket in enumerate(bins):
            for item in bucket:
                n_idx = item.payload
                route = routes[n_idx]
                out.append(
                    ThreadAssignment(
                        neighbor_index=n_idx,
                        nbytes=route.count * bytes_per_atom,
                        hops=route.hops,
                        thread=thread,
                        tni=thread,
                    )
                )
        return out

    def comm_schedule(self, rank: int, bytes_per_atom: int = 24) -> list[Message]:
        """Simulator-ready messages for one forward exchange of ``rank``."""
        return [
            Message(
                nbytes=a.nbytes,
                hops=a.hops,
                rank=rank,
                thread=a.thread,
                tni=a.tni,
                known_length=True,  # message-combine: length rides inside
            )
            for a in self.assign_threads(rank, bytes_per_atom)
        ]

    def balance_quality(self, rank: int, bytes_per_atom: int = 24) -> float:
        """max/mean per-thread cost — 1.0 is a perfect balance."""
        assignments = self.assign_threads(rank, bytes_per_atom)
        loads = [0.0] * self.n_comm_threads
        for a in assignments:
            loads[a.thread] += self.message_cost(a.nbytes, a.hops)
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0
