"""Modeled Fugaku time for functional exchanges.

A functional run on the in-process runtime has no meaningful wall-clock
communication cost (everything is a memcpy).  This module prices the
*actual routes* an exchange built — real per-neighbor atom counts, real
hops — on the network simulator, so a functional `Simulation` can also
report the five-stage breakdown in simulated Fugaku seconds
(``StageTimers.model``).  It is the bridge between the two halves of the
reproduction: the perfmodel sweeps use analytic message sizes, while
this uses the measured ones, and tests check they agree.
"""

from __future__ import annotations

from repro.core.exchange_base import GhostExchange
from repro.core.fine_p2p import FineGrainedP2PExchange
from repro.core.three_stage import ThreeStageExchange
from repro.faults.injector import FAULTS
from repro.machine.params import FUGAKU, MachineParams
from repro.network.simulator import Message, NetworkSimulator
from repro.network.stacks import MpiStack, SoftwareStack, UtofuStack
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER


def stack_for_exchange(
    exchange: GhostExchange, params: MachineParams = FUGAKU
) -> SoftwareStack:
    """The software stack a pattern implies: baseline 3-stage runs on
    MPI, the p2p exchanges on uTofu (the paper's pairings)."""
    if isinstance(exchange, ThreeStageExchange):
        return MpiStack(params=params)
    return UtofuStack(params=params)


def rank_messages(
    exchange: GhostExchange,
    rank: int,
    bytes_per_atom: int,
    known_length: bool,
) -> list[Message]:
    """Simulator messages for one rank's sends of one exchange phase."""
    if isinstance(exchange, FineGrainedP2PExchange):
        msgs = exchange.comm_schedule(rank, bytes_per_atom)
        if known_length:
            return msgs
        return [
            Message(m.nbytes, m.hops, m.rank, m.thread, m.tni, known_length=False)
            for m in msgs
        ]
    return [
        Message(
            nbytes=max(route.count * bytes_per_atom, 8),
            hops=route.hops,
            rank=rank,
            thread=0,
            tni=0,
            known_length=known_length,
        )
        for route in exchange.routes[rank].sends
    ]


def modeled_exchange_time(
    exchange: GhostExchange,
    phase: str = "forward",
    params: MachineParams = FUGAKU,
    rank: int = 0,
) -> float:
    """Simulated seconds for one exchange phase of one rank's schedule.

    ``phase`` selects the payload width: ``forward``/``reverse`` move 3
    doubles per atom, ``border`` adds the tag (and, under MPI without
    message combine, the extra length message).
    """
    bytes_per_atom = {"forward": 24, "reverse": 24, "border": 32}.get(phase)
    if bytes_per_atom is None:
        raise ValueError(f"unknown phase {phase!r}")
    # The modeled time is a pure function of the routes, the phase and
    # the machine params: with faults and observability off it is served
    # from the exchange's plan-epoch cache (cleared on reneighboring).
    # Traced/metered/faulted runs always re-simulate so their per-round
    # model spans, counters and stall injections stay complete.
    cache_ok = (
        FAULTS.session is None and not TRACER.enabled and not METRICS.enabled
    )
    cache = getattr(exchange, "_model_cache", None)
    if cache_ok and cache is not None:
        key = (phase, rank, id(params))
        hit = cache.get(key)
        if hit is not None:
            return hit
    stack = stack_for_exchange(exchange, params)
    # Message combine / piggyback: uTofu paths always know lengths; the
    # MPI baseline only for fixed-size forward/reverse replays.
    known = isinstance(stack, UtofuStack) or phase != "border"
    sim = NetworkSimulator(stack, params)
    msgs = rank_messages(exchange, rank, bytes_per_atom, known)

    if isinstance(exchange, ThreeStageExchange):
        # Two sends per swap level form one stage (Fig. 4 barriers).
        stages: list[list[Message]] = []
        for i in range(0, len(msgs), 2):
            stages.append(msgs[i : i + 2])
        result = sim.run_staged(stages).completion_time
    else:
        result = sim.run_round(msgs).completion_time
    if cache_ok and cache is not None:
        cache[(phase, rank, id(params))] = result
    return result


def modeled_step_comm_time(
    exchange: GhostExchange,
    rebuild: bool,
    newton: bool = True,
    params: MachineParams = FUGAKU,
) -> float:
    """Simulated comm seconds of one MD step (max over ranks).

    Rebuild steps pay border (+ the exchange migration, approximated as
    a sparse border); ordinary steps pay forward; Newton runs add the
    reverse.

    Like :func:`modeled_exchange_time`, the result is a pure function
    of the routes, so between reneighborings it is served from the
    exchange's plan-epoch cache (one lookup instead of a max over all
    ranks' per-phase entries) whenever faults and observability are off.
    """
    cache_ok = (
        FAULTS.session is None and not TRACER.enabled and not METRICS.enabled
    )
    cache = getattr(exchange, "_model_cache", None)
    key = ("step", rebuild, newton, id(params))
    if cache_ok and cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    ranks = range(exchange.world.size)
    if rebuild:
        t = max(modeled_exchange_time(exchange, "border", params, r) for r in ranks)
        t *= 1.3  # migration rides along as a sparse extra exchange
    else:
        t = max(modeled_exchange_time(exchange, "forward", params, r) for r in ranks)
    if newton:
        t += max(modeled_exchange_time(exchange, "reverse", params, r) for r in ranks)
    if cache_ok and cache is not None:
        cache[key] = t
    return t
