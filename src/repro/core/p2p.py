"""Peer-to-peer ghost exchange (paper sections 3.2/3.4, Fig. 5).

Each rank exchanges *directly* with every neighbor in the shell:

* With Newton's 3rd law (half lists) ghosts are **received from the 13
  plus-side neighbors** and border atoms **sent to the 13 minus-side
  neighbors** — half the 3-stage volume (Table 1), and every message is
  independent, so all 13 can be in flight at once.
* With a full neighbor list (``newton=False``, Tersoff/DeePMD-style) the
  full 26-neighbor shell is exchanged (Fig. 15).
* Shell ``radius`` 2 covers long cutoffs: 62/124 direct neighbors — the
  quadratic growth that makes p2p lose at 124 (Fig. 15).

Two data planes:

* ``rdma=False`` — payloads through the world transport (the MPI-p2p
  baseline of Fig. 6).
* ``rdma=True`` — the optimized uTofu plane of section 3.4: position and
  force arrays registered once (sized from the :class:`GhostBudget`
  theoretical maximum), forward-stage positions PUT directly into the
  remote position array at the offset piggybacked during the border
  stage, reverse-stage forces length-prefix-combined into the 4-deep
  round-robin receive rings.

Both planes produce bit-identical ghost data; tests assert it.
"""

from __future__ import annotations

import numpy as np

from repro.core.border_bins import BorderBins
from repro.core.exchange_base import GhostExchange, RecvRoute, SendRoute
from repro.core.ghost import GhostBudget
from repro.core.message_combine import split
from repro.core.patterns import (
    half_shell_offsets,
    offset_hops,
    shell_offsets,
)
from repro.core.rdma_buffers import BufferOverwriteError, RdmaEndpoint
from repro.faults.injector import FAULTS, RetryExhaustedError
from repro.machine.rdma import RdmaEngine
from repro.md.domain import Domain
from repro.obs import hbevents
from repro.obs.trace import TRACER
from repro.runtime.world import World


class P2PExchange(GhostExchange):
    """Direct per-neighbor ghost exchange, message or RDMA data plane."""

    name = "p2p"
    fallback_pattern = "3stage"

    def __init__(
        self,
        world: World,
        domain: Domain,
        rcomm: float,
        newton: bool = True,
        radius: int = 1,
        rdma: bool = False,
        use_border_bins: bool = True,
        ring_depth: int = 4,
        density: float | None = None,
    ) -> None:
        super().__init__(world, domain, rcomm)
        if radius < 1:
            raise ValueError(f"shell radius must be >= 1, got {radius}")
        self.newton = newton
        self.radius = radius
        self.rdma = rdma
        self.ring_depth = ring_depth
        # Half list over a half shell needs no coordinate tie-break;
        # full shell (newton off) pairs with a *full* neighbor list.
        self.ghost_rule = "all"
        self.full_shell = not newton

        if newton:
            self.recv_offsets = half_shell_offsets(radius)
            self.send_offsets = [tuple(-o for o in off) for off in self.recv_offsets]
        else:
            self.recv_offsets = shell_offsets(radius)
            self.send_offsets = list(self.recv_offsets)

        self.use_border_bins = use_border_bins and radius == 1
        self._bins: dict[int, BorderBins] = {}
        # Static border geometry per rank: the domain decomposition and
        # the rank grid never change during a run, so peers, PBC shifts,
        # tags and hop counts are computed once and replayed by every
        # border stage (only the atom selection is per-call work).
        self._geom: dict[int, tuple] = {}

        # RDMA plane state
        self.engine: RdmaEngine | None = None
        self.endpoints: dict[int, RdmaEndpoint] = {}
        self._density = density
        self._budget: GhostBudget | None = None
        self.reregistrations = 0

    def telemetry_feed(self) -> tuple[dict[str, float], dict[str, float]]:
        """Base feed plus the RDMA re-registration count."""
        counters, gauges = super().telemetry_feed()
        counters["rdma_reregistrations"] = float(self.reregistrations)
        return counters, gauges

    # -- neighbor arithmetic ---------------------------------------------------
    def peer_for(self, rank: int, offset: tuple[int, int, int]) -> int:
        """Rank at grid ``offset`` from ``rank`` (periodic)."""
        return self.world.neighbor_rank(rank, offset)

    def _routes_tag(self, o_recv: tuple[int, int, int]) -> tuple:
        return ("p2p", o_recv)

    def _border_geometry(self, rank: int) -> tuple:
        """(sub-box, send geometry, recv geometry) of ``rank``, built once.

        Send geometry is one ``(peer, shift, tag, wire tag, hops)`` tuple
        per send offset (in offset order); recv geometry one
        ``(src, tag, wire tag, hops)`` per recv offset.
        """
        geom = self._geom.get(rank)
        if geom is None:
            sub = self.sub_box_of(rank)
            sends = []
            for o_send in self.send_offsets:
                o_recv = tuple(-o for o in o_send)
                tag = self._routes_tag(o_recv)
                sends.append(
                    (
                        self.peer_for(rank, o_send),
                        self.shift_for_send(rank, o_send),
                        tag,
                        tag + ("border",),
                        offset_hops(o_send),
                    )
                )
            recvs = []
            for o_recv in self.recv_offsets:
                tag = self._routes_tag(o_recv)
                recvs.append(
                    (
                        self.peer_for(rank, o_recv),
                        tag,
                        tag + ("border",),
                        offset_hops(o_recv),
                    )
                )
            geom = (sub, sends, recvs)
            self._geom[rank] = geom
        return geom

    # -- analytic sizing -------------------------------------------------------------
    def _plan_budget(self) -> GhostBudget:
        """The analytic ghost budget sizing RDMA rings *and* buffer pools.

        Computed once from the measured density (or the configured one)
        and reused for every registration and pool allocation.
        """
        if self._budget is None:
            sub_len = float(np.min(self.domain.sub_lengths))
            if self._density is None:
                total_atoms = sum(
                    self.atoms_of(r).nlocal for r in range(self.world.size)
                )
                self._density = total_atoms / self.domain.box.volume
            self._budget = GhostBudget(a=sub_len, r=self.rcomm, density=self._density)
        return self._budget

    # -- RDMA setup -----------------------------------------------------------------
    def _ensure_rdma(self) -> None:
        """One-time registration of arrays and rings (setup stage)."""
        if not self.rdma or self.engine is not None:
            return
        self.engine = RdmaEngine()
        budget = self._plan_budget()
        for rank in range(self.world.size):
            atoms = self.atoms_of(rank)
            # Pre-size the atom arrays to the theoretical maximum so the
            # one-time registration stays valid for the whole run.
            max_total = budget.max_local_atoms() + budget.max_ghost_atoms(
                self.full_shell
            )
            atoms.reserve(max_total)
            self.endpoints[rank] = RdmaEndpoint(
                rank=rank,
                engine=self.engine,
                x_storage=atoms._x,
                f_storage=atoms._f,
                budget=budget,
                n_neighbors=len(self.recv_offsets),
                ring_depth=self.ring_depth,
                full_shell=self.full_shell,
            )

    # -- border stage ----------------------------------------------------------------
    def borders(self) -> None:
        """Direct border exchange with every shell neighbor."""
        with self._phase_span("border"):
            self._borders_impl()

    def _borders_impl(self) -> None:
        world = self.world
        transport = world.transport
        transport.set_phase("border")
        self._ensure_rdma()
        self._clear_routes()
        for rank in range(world.size):
            self.atoms_of(rank).clear_ghosts()
        # With faults/observability off, border payloads skip the send
        # envelope (rank checks, fault arming, per-message instants) but
        # keep the identical traffic records.
        fast = self._fastpath_ok()

        # Send sweep: every rank routes its border atoms to each
        # send-offset neighbor (bin-accelerated when exact).
        for rank in range(world.size):
            atoms = self.atoms_of(rank)
            sub, send_geom, _ = self._border_geometry(rank)
            x_local = atoms.x_local()

            idx_lists = None
            if self.use_border_bins:
                bins = self._bins.get(rank)
                if bins is None or bins.sub_box != sub:
                    try:
                        bins = BorderBins(sub, self.rcomm, self.send_offsets)
                        self._bins[rank] = bins
                    except ValueError:
                        bins = None
                if bins is not None and bins.is_exact():
                    idx_lists = bins.route(x_local)

            for n_idx, o_send in enumerate(self.send_offsets):
                if idx_lists is not None:
                    send_idx = idx_lists[n_idx]
                else:
                    mask = sub.border_mask(x_local, o_send, self.rcomm)
                    send_idx = np.flatnonzero(mask).astype(np.intp)
                peer, shift, tag, wire_tag, hops = send_geom[n_idx]
                self.routes[rank].sends.append(
                    SendRoute(
                        peer=peer,
                        send_idx=send_idx,
                        shift=shift,
                        tag=tag,
                        hops=hops,
                    )
                )
                payload = (
                    atoms.x[send_idx] + shift,
                    atoms.tag[send_idx],
                    atoms.type[send_idx],
                )
                if fast:
                    transport.send_fast(
                        rank, peer, wire_tag, payload,
                        payload[0].nbytes + payload[1].nbytes + payload[2].nbytes,
                    )
                else:
                    transport.send(rank, peer, wire_tag, payload)

        # Receive sweep: append ghosts in canonical recv-offset order.
        for rank in range(world.size):
            atoms = self.atoms_of(rank)
            _, _, recv_geom = self._border_geometry(rank)
            for src, tag, wire_tag, hops in recv_geom:
                if fast:
                    payload_x, payload_tag, payload_type = transport.recv_fast(
                        rank, src, wire_tag
                    )
                else:
                    payload_x, payload_tag, payload_type = self._recv(
                        transport, rank, src, wire_tag
                    )
                start, count = atoms.append_ghosts(payload_x, payload_tag, payload_type)
                self.routes[rank].recvs.append(
                    RecvRoute(
                        peer=src,
                        recv_start=start,
                        recv_count=count,
                        tag=tag,
                        hops=hops,
                    )
                )

        if self.rdma:
            for rank in range(self.world.size):
                atoms = self.atoms_of(rank)
                if self.endpoints[rank].revalidate(atoms._x, atoms._f):
                    self.reregistrations += 1
            self._exchange_windows()

    def _exchange_windows(self) -> None:
        """Piggyback the ghost offsets + stags to senders (section 3.4).

        In hardware this rides in the border-stage descriptor (8 bytes);
        functionally we move a :class:`RemoteWindow` per route.
        """
        if not TRACER.enabled:
            self._exchange_windows_impl()
            return
        with TRACER.span(
            f"{self.name}.window-piggyback", cat="rdma", track="comm", pattern=self.name
        ):
            self._exchange_windows_impl()

    def _exchange_windows_impl(self) -> None:
        transport = self.world.transport
        transport.set_phase("border-piggyback")
        for rank in range(self.world.size):
            endpoint = self.endpoints[rank]
            for n_idx, route in enumerate(self.routes[rank].recvs):
                window = endpoint.window_for_neighbor(
                    n_idx, route.recv_start * 3
                )
                transport.send(
                    rank, route.peer, route.tag + ("window",), (n_idx, window)
                )
        for rank in range(self.world.size):
            endpoint = self.endpoints[rank]
            for s_idx, route in enumerate(self.routes[rank].sends):
                n_idx, window = self._recv(
                    transport, rank, route.peer, route.tag + ("window",)
                )
                # Keyed by *our* send index; remembers the neighbor's ring
                # index so reverse-stage puts target the right ring.
                endpoint.install_remote(s_idx, window)
                endpoint.remote_ring_index = getattr(
                    endpoint, "remote_ring_index", {}
                )
                endpoint.remote_ring_index[s_idx] = n_idx

    # -- data planes --------------------------------------------------------------------
    def _forward_array(self, arrays, apply_shift: bool, phase: str) -> None:
        if self.rdma and apply_shift and phase == "forward":
            # Unobserved replay: a windowed PUT lands the packed slice at
            # exactly ``recv_start`` rows of the remote position array —
            # the pre-wired direct delivery writes the same bytes to the
            # same rows, so the staged-buffer/ring machinery (which only
            # *observably* differs under faults, tracing or metrics) is
            # skipped.  RDMA PUTs are not logged messages, hence no
            # traffic records.
            if self._fastpath_ok():
                self._plans_current()
                if self._fwd_deliveries is not None:
                    self.world.transport.set_phase(phase)
                    self._forward_fast(
                        arrays, apply_shift, phase, self.world.transport,
                        record=False,
                    )
                    return
            self._forward_rdma()
            return
        super()._forward_array(arrays, apply_shift, phase)

    def _forward_rdma(self) -> None:
        """Forward positions by direct PUT into remote position arrays."""
        self.world.transport.set_phase("forward")
        if not TRACER.enabled:
            self._forward_rdma_impl()
            return
        with TRACER.span(
            f"{self.name}.forward-rdma", cat="rdma", track="comm", pattern=self.name
        ):
            self._forward_rdma_impl()

    def _forward_rdma_impl(self) -> None:
        # One pooled gather per rank replaces the per-route fancy-index
        # temporaries; put_positions copies the segment into the staged
        # send buffer, so the pool is free for reuse immediately.  The
        # packed values are bit-identical to the per-route form.
        plans = self._plans_current()
        for rank in range(self.world.size):
            endpoint = self.endpoints[rank]
            atoms = self.atoms_of(rank)
            plan = plans[rank]
            buf = plan.pack_vec(atoms.x, apply_shift=True)
            for s_idx, seg in enumerate(plan.send_segments):
                endpoint.put_positions(s_idx, buf[seg.start : seg.stop])
        # A PUT completes remotely only after the fence: poll until
        # every in-flight (fault-deferred) forward PUT has landed.
        self._rdma_fence("forward")
        self._fastpath_phases += 1

    def _reverse_sum_array(self, arrays, phase: str) -> None:
        if self.rdma and phase == "reverse":
            # Same replay argument as forward: the ring round trip moves
            # each ghost block byte-for-byte into the owner's pooled
            # buffer and applies the shared fused scatter; the direct
            # delivery is that copy without the ring bookkeeping.
            if self._fastpath_ok():
                self._plans_current()
                if self._rev_deliveries is not None:
                    self.world.transport.set_phase(phase)
                    self._reverse_fast(
                        arrays, phase, self.world.transport, record=False
                    )
                    return
            self._reverse_rdma()
            return
        super()._reverse_sum_array(arrays, phase)

    def _reverse_rdma(self) -> None:
        """Reverse forces via length-prefixed PUTs into receive rings."""
        self.world.transport.set_phase("reverse")
        if not TRACER.enabled:
            self._reverse_rdma_impl()
            return
        with TRACER.span(
            f"{self.name}.reverse-rdma", cat="rdma", track="comm", pattern=self.name
        ):
            self._reverse_rdma_impl()

    def _reverse_rdma_impl(self) -> None:
        plans = self._plans_current()
        # Ghost holders put into the owners' rings...
        for rank in range(self.world.size):
            endpoint = self.endpoints[rank]
            atoms = self.atoms_of(rank)
            for r_idx, route in enumerate(self.routes[rank].recvs):
                owner_endpoint = self.endpoints[route.peer]
                # Our recv offset index r_idx pairs with the owner's send
                # route of the opposite offset; the owner consumes rings in
                # its own send order, so target the ring it will read.
                ring = owner_endpoint.recv_rings[
                    self._owner_ring_index(route.peer, rank, route.tag)
                ]
                lo, n = route.recv_start, route.recv_count
                endpoint.put_into_ring(r_idx, ring, atoms.f[lo : lo + n])
        # ... and the owners drain them in deterministic order, collecting
        # each route's block into the pooled buffer and applying one fused
        # scatter — the same summation the message plane uses, so both
        # planes stay bitwise identical.
        for rank in range(self.world.size):
            endpoint = self.endpoints[rank]
            atoms = self.atoms_of(rank)
            plan = plans[rank]
            buf = plan.unpack_buffer(vec=True)
            for seg, route in zip(plan.send_segments, self.routes[rank].sends):
                ring = endpoint.recv_rings[
                    self._owner_ring_index(rank, route.peer, route.tag)
                ]
                data = self._consume_ring(ring, rank, route)
                forces = split(data, trailing_shape=(3,))
                if forces.shape[0] != route.count:
                    raise RuntimeError(
                        f"reverse payload of {forces.shape[0]} rows does not "
                        f"match {route.count} border atoms"
                    )
                buf[seg.start : seg.stop] = forces
            plan.apply_reverse(atoms.f, buf)
        self._fastpath_phases += 1

    # -- RDMA-plane robustness (fence + ring retry) ---------------------------
    def _rdma_fence(self, stage: str) -> None:
        """Poll until every in-flight (fault-deferred) PUT has landed.

        The message-plane analogue is :meth:`_recv`'s retry loop; here
        each attempt waits the backoff timeout and ages the deferred-PUT
        store.  Without a fault session — or with nothing in flight —
        this returns immediately.
        """
        session = FAULTS.session
        if session is None or session.pending_deferred() == 0:
            return
        hbevents.emit_fence(stage, session.pending_deferred())
        policy = session.policy
        timeout = policy.base_timeout
        with TRACER.span(
            "rdma-fence", cat="retry", track="comm", stage=stage, pattern=self.name
        ):
            for attempt in range(1, policy.max_retries + 1):
                session.check_budget()
                session.note_retry(stage)
                self.retries += 1
                self.retry_model_time += timeout
                TRACER.model_span_seq(
                    "retry-backoff", timeout, cat="retry", track="comm",
                    attempt=attempt, phase=stage,
                )
                session.release_tick()
                if session.pending_deferred() == 0:
                    return
                timeout *= policy.backoff
        raise RetryExhaustedError(
            f"{session.pending_deferred()} RDMA PUT(s) still in flight after "
            f"{policy.max_retries} fence polls (stage {stage!r}, "
            f"pattern {self.name!r})"
        )

    def _consume_ring(self, ring, rank: int, route) -> np.ndarray:
        """Consume a receive ring, retrying while its PUT is in flight.

        A ring-stale fault leaves the buffer clean (the §3.4 hazard:
        nothing marks it written yet), so :meth:`RecvBufferRing.consume`
        raises; each retry ages the deferred store until the PUT lands.
        """
        session = FAULTS.session
        if session is None:
            return ring.consume()
        try:
            return ring.consume()
        except BufferOverwriteError:
            pass
        policy = session.policy
        timeout = policy.base_timeout
        with TRACER.span(
            "ring-retry", cat="retry", track="comm",
            rank=rank, peer=route.peer, pattern=self.name,
        ):
            for attempt in range(1, policy.max_retries + 1):
                session.check_budget()
                session.note_retry("reverse")
                self.retries += 1
                self.retry_model_time += timeout
                TRACER.model_span_seq(
                    "retry-backoff", timeout, cat="retry", track="comm",
                    attempt=attempt, rank=rank, peer=route.peer, phase="reverse",
                )
                session.release_tick()
                try:
                    return ring.consume()
                except BufferOverwriteError:
                    timeout *= policy.backoff
        raise RetryExhaustedError(
            f"rank {rank} ring from {route.peer} still stale after "
            f"{policy.max_retries} retries (pattern {self.name!r})"
        )

    def _owner_ring_index(self, owner: int, ghost_holder: int, tag: tuple) -> int:
        """Which of the owner's rings serves this (peer, offset) route.

        Rings are allocated per recv-offset slot; for reverse traffic we
        reuse the owner's *send* slot index (both sides enumerate offsets
        in the same canonical order, so the index is deterministic).
        """
        o_recv = tag[1]
        o_send = tuple(-o for o in o_recv)
        return self.send_offsets.index(o_send)

    # -- schedule export (consumed by the perfmodel) -----------------------------------------
    def message_schedule(self, rank: int, bytes_per_atom: int = 24):
        """(nbytes, hops) of this rank's forward-stage sends."""
        return [
            (route.count * bytes_per_atom, route.hops)
            for route in self.routes[rank].sends
        ]
