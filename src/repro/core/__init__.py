"""The paper's contribution: scalable ghost-region communication.

* :mod:`repro.core.ghost` / :mod:`repro.core.patterns` /
  :mod:`repro.core.analytic` — the quantitative model of section 3.1
  (Table 1, Equations 3-8).
* :mod:`repro.core.three_stage` — baseline staged exchange (Fig. 4).
* :mod:`repro.core.p2p` — coarse-grained peer-to-peer exchange with the
  optional RDMA data plane of section 3.4 (pre-registered buffers,
  direct PUT into remote position arrays, round-robin receive rings).
* :mod:`repro.core.fine_p2p` — the thread-pool-parallel schedule of
  section 3.3 (6 VCQs/rank over 6 TNIs, Fig. 10 load balancing).
* :mod:`repro.core.border_bins` / :mod:`repro.core.message_combine` /
  :mod:`repro.core.topo_map` — the section 3.5 optimizations.
"""

from repro.core.ghost import (
    GhostBudget,
    corner_volume,
    edge_volume,
    face_volume,
    full_shell_volume,
    half_shell_volume,
    offset_volume,
    stage_volumes,
)
from repro.core.patterns import (
    CommPattern,
    NeighborSpec,
    StageSwap,
    half_shell_offsets,
    lex_positive,
    message_count,
    offset_hops,
    p2p_neighbors,
    shell_offsets,
    three_stage_swaps,
)
from repro.core.analytic import (
    MessageClass,
    PatternAnalysis,
    TimingModel,
    analyze_p2p,
    analyze_three_stage,
    timing_model,
)
from repro.core.exchange_base import GhostExchange, RecvRoute, SendRoute
from repro.core.three_stage import ThreeStageExchange
from repro.core.p2p import P2PExchange
from repro.core.fine_p2p import FineGrainedP2PExchange, ThreadAssignment
from repro.core.rdma_buffers import (
    BufferOverwriteError,
    RdmaEndpoint,
    RecvBufferRing,
    RemoteWindow,
)
from repro.core.border_bins import BorderBins
from repro.core.message_combine import MessageFormatError, combine, split, write_into
from repro.core.topo_map import JobShape, TopoMap, RANKS_PER_NODE_BRICK

__all__ = [
    "GhostBudget",
    "face_volume",
    "edge_volume",
    "corner_volume",
    "full_shell_volume",
    "half_shell_volume",
    "offset_volume",
    "stage_volumes",
    "CommPattern",
    "NeighborSpec",
    "StageSwap",
    "lex_positive",
    "shell_offsets",
    "half_shell_offsets",
    "p2p_neighbors",
    "offset_hops",
    "three_stage_swaps",
    "message_count",
    "MessageClass",
    "PatternAnalysis",
    "TimingModel",
    "analyze_three_stage",
    "analyze_p2p",
    "timing_model",
    "GhostExchange",
    "SendRoute",
    "RecvRoute",
    "ThreeStageExchange",
    "P2PExchange",
    "FineGrainedP2PExchange",
    "ThreadAssignment",
    "RecvBufferRing",
    "RdmaEndpoint",
    "RemoteWindow",
    "BufferOverwriteError",
    "BorderBins",
    "combine",
    "split",
    "write_into",
    "MessageFormatError",
    "JobShape",
    "TopoMap",
    "RANKS_PER_NODE_BRICK",
]
