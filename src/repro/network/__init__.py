"""Discrete-event network simulation for the TofuD substrate.

* :mod:`repro.network.events` — tiny discrete-event primitives (event
  queue, serially-reusable resources).
* :mod:`repro.network.stacks` — software-stack cost models: the heavy MPI
  stack vs the thin uTofu one-sided stack.
* :mod:`repro.network.simulator` — message-level simulation of injections
  through TNIs onto the torus: per-thread injection intervals
  (``T_inj``), per-TNI engine serialization and contention, pipelined
  wire transfer.  This is what turns the paper's Table 1 geometry into
  the times of Figs. 6, 8, 12 and 13.
"""

from repro.network.events import EventQueue, Resource
from repro.network.stacks import SoftwareStack, MpiStack, UtofuStack, stack_by_name
from repro.network.simulator import (
    Message,
    NetworkSimulator,
    RoundResult,
    simulate_round,
)

__all__ = [
    "EventQueue",
    "Resource",
    "SoftwareStack",
    "MpiStack",
    "UtofuStack",
    "stack_by_name",
    "Message",
    "NetworkSimulator",
    "RoundResult",
    "simulate_round",
]
