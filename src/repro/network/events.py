"""Minimal discrete-event primitives.

The network model needs only two abstractions:

* :class:`EventQueue` — a time-ordered queue of callbacks (stable for
  equal timestamps, so simulations are deterministic).
* :class:`Resource` — a serially-reusable resource (a TNI engine, a CPU
  core) whose occupancy is tracked as a ``busy_until`` horizon.

They are deliberately tiny; the heavy lifting (what events exist and what
they cost) lives in :mod:`repro.network.simulator`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """A deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, time: float, action: Callable[[float], None]) -> None:
        """Schedule ``action(time)`` at absolute ``time``.

        Scheduling in the past (before ``now``) is a logic error.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._heap, (time, next(self._counter), action))

    def schedule_in(self, delay: float, action: Callable[[float], None]) -> None:
        """Schedule ``action`` after ``delay`` seconds from ``now``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule(self.now + delay, action)

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, until: float | None = None) -> float:
        """Drain the queue (optionally up to ``until``); return final time."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            time, _, action = heapq.heappop(self._heap)
            self.now = time
            self.processed += 1
            action(time)
        return self.now


class Resource:
    """A serially-reusable resource tracked by a busy horizon.

    ``acquire(ready, duration)`` returns the interval actually granted:
    the resource starts serving no earlier than both ``ready`` (the
    requester) and its own previous commitments.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.grants = 0

    def acquire(self, ready: float, duration: float) -> tuple[float, float]:
        """Reserve the resource from ``ready`` for ``duration``; returns (start, end)."""
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(ready, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        self.grants += 1
        return start, end

    def reset(self) -> None:
        """Clear occupancy history."""
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.grants = 0

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource spent busy."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_time / horizon, 1.0)
