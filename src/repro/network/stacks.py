"""Software-stack cost models: MPI vs uTofu.

The paper's central measurement (Fig. 6) is that the *same* communication
pattern costs wildly different amounts under the two stacks:

* **MPI** pays tag matching, message fragmentation and (for unknown-length
  receives) a two-message length-then-content protocol; its injection
  interval ``T_inj`` is more than 10x uTofu's.  That is why naive MPI-p2p
  (13 messages) *loses* to MPI-3stage (6 messages) despite moving half the
  ghost volume.
* **uTofu** is a thin one-sided layer: build a descriptor, ring a VCQ
  doorbell.  Its small ``T_inj`` is what makes the p2p pattern's extra
  messages nearly free, and its piggyback mechanism embeds small payloads
  (the 8-byte ghost offset of section 3.4) in the descriptor itself.

Both stacks answer three questions for the simulator: the sender CPU time
per message (:meth:`SoftwareStack.injection_interval`), any extra protocol
messages (:meth:`SoftwareStack.protocol_message_count`), and fixed
per-message software latency added on top of the wire time
(:meth:`SoftwareStack.software_latency`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.params import FUGAKU, MachineParams


@dataclass(frozen=True)
class SoftwareStack:
    """Base class for communication software stacks."""

    params: MachineParams = FUGAKU
    name: str = "abstract"

    def injection_interval(self, nbytes: int) -> float:
        """Sender CPU time consumed to inject one message (``T_inj``)."""
        raise NotImplementedError

    def software_latency(self, nbytes: int) -> float:
        """Per-message software latency outside the injection interval."""
        raise NotImplementedError

    def protocol_message_count(self, nbytes: int, known_length: bool) -> int:
        """Wire messages actually needed to deliver one logical message."""
        raise NotImplementedError

    def supports_piggyback(self) -> bool:
        """Whether tiny payloads can ride in the message descriptor."""
        return False


@dataclass(frozen=True)
class MpiStack(SoftwareStack):
    """Two-sided MPI with eager/rendezvous protocol and tag matching."""

    name: str = "mpi"

    def injection_interval(self, nbytes: int) -> float:
        """T_inj with the rendezvous surcharge above the eager limit."""
        t = self.params.mpi_t_inj
        if nbytes > self.params.mpi_rendezvous_threshold:
            # Rendezvous: the sender also burns CPU on the RTS/CTS exchange.
            t += self.params.mpi_rendezvous_extra
        return t

    def software_latency(self, nbytes: int) -> float:
        """Tag-matching and stack traversal cost per message."""
        return self.params.mpi_per_message_overhead

    def protocol_message_count(self, nbytes: int, known_length: bool) -> int:
        # Unknown-length arrays need a separate length message first
        # (the overhead the paper's "message combine" removes, section 3.5.1).
        """1 eager message, or 2 for unknown-length transfers."""
        n = 1
        if not known_length and self.params.mpi_unknown_length_extra_message:
            n += 1
        return n

    # Vectorized forms for the batched simulator round: elementwise
    # identical to the scalar methods above (np.where picks between the
    # same two sums the scalar branch computes).
    def injection_intervals(self, nbytes: np.ndarray) -> np.ndarray:
        """Per-message ``T_inj`` for an array of sizes (batched round)."""
        p = self.params
        return np.where(
            nbytes > p.mpi_rendezvous_threshold,
            p.mpi_t_inj + p.mpi_rendezvous_extra,
            p.mpi_t_inj,
        )

    def software_latencies(self, nbytes: np.ndarray) -> np.ndarray:
        """Per-message software latency for an array of sizes."""
        return np.full(nbytes.shape, self.params.mpi_per_message_overhead)


@dataclass(frozen=True)
class UtofuStack(SoftwareStack):
    """One-sided uTofu RDMA: thin descriptors, piggyback, cache injection."""

    name: str = "utofu"
    cache_injection: bool = True

    def injection_interval(self, nbytes: int) -> float:
        """The thin one-sided T_inj (size-independent)."""
        return self.params.utofu_t_inj

    def software_latency(self, nbytes: int) -> float:
        """Descriptor cost, reduced by cache injection."""
        lat = self.params.utofu_per_message_overhead
        if self.cache_injection:
            lat -= self.params.cache_injection_saving
        return max(lat, 0.0)

    def protocol_message_count(self, nbytes: int, known_length: bool) -> int:
        # One-sided put with a length-prefixed payload is always a single
        # message: the receiver parses the length from the first element
        # (message combine) or learns offsets at setup (pre-registration).
        """Always 1: length rides in the payload or descriptor."""
        return 1

    def supports_piggyback(self) -> bool:
        """True — small payloads ride in the descriptor."""
        return True

    # Vectorized forms for the batched simulator round (both constants).
    def injection_intervals(self, nbytes: np.ndarray) -> np.ndarray:
        """Per-message ``T_inj`` for an array of sizes (batched round)."""
        return np.full(nbytes.shape, self.params.utofu_t_inj)

    def software_latencies(self, nbytes: np.ndarray) -> np.ndarray:
        """Per-message software latency for an array of sizes."""
        return np.full(nbytes.shape, self.software_latency(0))


def stack_by_name(name: str, params: MachineParams = FUGAKU) -> SoftwareStack:
    """Factory: ``"mpi"`` or ``"utofu"`` (case-insensitive)."""
    key = name.lower()
    if key == "mpi":
        return MpiStack(params=params)
    if key == "utofu":
        return UtofuStack(params=params)
    raise ValueError(f"unknown software stack {name!r}")
