"""Message-level network simulation.

The simulator answers: *given this set of messages, injected by these
threads through these TNIs under this software stack, when does the last
byte arrive?*  It models exactly the effects the paper's analysis
(section 3.1) is built on:

* **Injection serialization** — a thread injects messages one at a time;
  each injection consumes the stack's ``T_inj`` of CPU.  A single thread
  hopping between several VCQs additionally pays a VCQ-switch cost (the
  "software function call" overhead the paper blames for 6TNI-single
  being slow).
* **TNI engine serialization** — all CQs of a TNI share one
  message-processing engine (Fig. 7), so messages from different ranks or
  threads that land on the same TNI queue up; the engine holds a message
  for its serialization time (with a small floor for tiny messages).
* **Pipelined transfer** — the wire time of a message overlaps both the
  sender's subsequent injections and other TNIs' work; per section 3.1,
  transmission is fully pipelined so hop latency is additive but
  serialization is paid once.

Two entry points: :func:`simulate_round` for one bulk-synchronous round of
messages, and :class:`NetworkSimulator` for staged patterns (the 3-stage
exchange) with inter-stage barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.injector import FAULTS
from repro.machine.params import FUGAKU, MachineParams
from repro.network.events import Resource
from repro.network.stacks import SoftwareStack, UtofuStack
from repro.obs.metrics import HOP_BUCKETS, METRICS
from repro.obs.trace import TRACER


@dataclass(frozen=True)
class Message:
    """One logical message to be delivered.

    ``rank``/``thread`` identify the injecting context (threads of the
    same rank run on different cores, so distinct ``(rank, thread)`` pairs
    inject in parallel); ``tni`` is the network interface used.
    """

    nbytes: int
    hops: int = 1
    rank: int = 0
    thread: int = 0
    tni: int = 0
    known_length: bool = True

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative message size {self.nbytes}")
        if self.hops < 0:
            raise ValueError(f"negative hop count {self.hops}")


@dataclass
class RoundResult:
    """Timing of one communication round."""

    completion_time: float
    last_injection: float
    arrivals: list[float] = field(default_factory=list)
    wire_messages: int = 0

    @property
    def message_count(self) -> int:
        return len(self.arrivals)

    def message_rate(self) -> float:
        """Delivered logical messages per second."""
        if self.completion_time <= 0:
            return float("inf")
        return self.message_count / self.completion_time

    def bandwidth(self, payload_bytes: int) -> float:
        """Achieved payload bandwidth for this round."""
        if self.completion_time <= 0:
            return float("inf")
        return payload_bytes / self.completion_time


def simulate_round(
    messages: list[Message],
    stack: SoftwareStack,
    params: MachineParams = FUGAKU,
    start_time: float = 0.0,
    thread_clocks: dict[tuple[int, int], float] | None = None,
    tni_engines: dict[int, Resource] | None = None,
    msg_base: int = 0,
    stage: int = 0,
) -> RoundResult:
    """Simulate one round of message injections.

    Messages are processed in list order per thread (the order the code
    would issue them); different threads proceed concurrently.  Optional
    ``thread_clocks``/``tni_engines`` allow chaining rounds while keeping
    resource history (used by :class:`NetworkSimulator`).

    ``msg_base``/``stage`` give trace spans their provenance: every
    inject/queue/tni-engine/wire segment of logical message *i* carries
    ``msg=msg_base+i`` and its wire-segment index ``seg``, so
    :mod:`repro.obs.critpath` can reassemble the dependency chain.
    """
    clocks: dict[tuple[int, int], float] = thread_clocks if thread_clocks is not None else {}
    engines: dict[int, Resource] = tni_engines if tni_engines is not None else {}
    last_vcq: dict[tuple[int, int], int] = {}

    arrivals: list[float] = []
    last_injection = start_time
    wire_messages = 0

    trace_on = TRACER.enabled
    metrics_on = METRICS.enabled
    session = FAULTS.session

    if session is None and not trace_on and not metrics_on:
        # Hot path: no per-message bookkeeping is observable, so the
        # injection streams can be computed with batched arithmetic.
        # Returns None (fall through to the event loop) for protocol
        # shapes the cumsum form cannot express bit-identically.
        batched = _simulate_round_batched(
            messages, stack, params, start_time, clocks, engines
        )
        if batched is not None:
            return batched
    if trace_on:
        # A fresh round (no chained clocks/engines) gets its own base on
        # the simulated timeline; chained rounds reuse the current one.
        fresh = thread_clocks is None and tni_engines is None and start_time == 0.0
        base = TRACER.begin_model_round() if fresh else TRACER.model_offset
    else:
        base = 0.0

    for msg_idx, msg in enumerate(messages):
        key = (msg.rank, msg.thread)
        clock = max(clocks.get(key, start_time), start_time)
        msg_id = msg_base + msg_idx

        n_wire = stack.protocol_message_count(msg.nbytes, msg.known_length)
        wire_messages += n_wire

        if metrics_on:
            METRICS.histogram("message_hops", buckets=HOP_BUCKETS).observe(msg.hops)

        # VCQ switch: a thread moving to a different TNI's VCQ pays extra
        # software overhead (descriptor cache, function-call chain).
        if key in last_vcq and last_vcq[key] != msg.tni:
            if trace_on:
                TRACER.add_model_span(
                    "vcq-switch", base + clock, params.vcq_switch_overhead,
                    cat="vcq", track=f"rank{msg.rank}/thr{msg.thread}",
                    tni=msg.tni, msg=msg_id, stage=stage,
                )
            clock += params.vcq_switch_overhead
        last_vcq[key] = msg.tni

        arrival = clock
        injector = f"rank{msg.rank}/thr{msg.thread}"
        for i in range(n_wire):
            # A length-prefix protocol message is tiny; the payload is last.
            nbytes = 8 if (n_wire > 1 and i < n_wire - 1) else msg.nbytes

            if session is not None:
                # Timing faults delay the injector before the descriptor
                # is written; each fault span ends exactly where the
                # inject span starts so the critical-path chain stays
                # contiguous (partition exactness).
                wait = session.vcq_credit_wait(msg.rank, msg.thread, msg.tni)
                if wait > 0.0:
                    if trace_on:
                        TRACER.add_model_span(
                            "vcq-credit", base + clock, wait,
                            cat="fault", track=injector, tni=msg.tni,
                            msg=msg_id, seg=i, stage=stage,
                        )
                    clock += wait
                jitter = session.injection_jitter(msg.rank, msg.thread, msg.tni)
                if jitter > 0.0:
                    if trace_on:
                        TRACER.add_model_span(
                            "inject-jitter", base + clock, jitter,
                            cat="fault", track=injector, tni=msg.tni,
                            msg=msg_id, seg=i, stage=stage,
                        )
                    clock += jitter

            inj_start = clock
            clock += stack.injection_interval(nbytes)
            inject_time = clock

            engine = engines.setdefault(msg.tni, Resource(f"tni{msg.tni}"))
            serial = max(nbytes / params.link_bandwidth, params.tni_engine_message_time)
            # A stalled TNI engine holds the message longer; the hold
            # extends the engine occupancy so queued successors also wait.
            tstall = session.tni_stall(msg.tni) if session is not None else 0.0
            eng_start, _eng_end = engine.acquire(inject_time, serial + tstall)

            arrival = (
                eng_start
                + tstall
                + serial
                + stack.software_latency(nbytes)
                + params.rdma_put_latency
                + max(msg.hops - 1, 0) * params.hop_latency
            )

            if metrics_on:
                # Tofu does not retransmit: every injection reaches the wire.
                METRICS.counter("injections_total").inc()
                METRICS.counter("tni_busy_seconds", tni=str(msg.tni)).inc(serial)
            if trace_on:
                TRACER.add_model_span(
                    "inject", base + inj_start, clock - inj_start,
                    cat="inject", track=injector, nbytes=nbytes, tni=msg.tni,
                    msg=msg_id, seg=i, stage=stage,
                )
                if eng_start > inject_time:
                    TRACER.add_model_span(
                        "queue", base + inject_time, eng_start - inject_time,
                        cat="queue", track=injector, tni=msg.tni,
                        msg=msg_id, seg=i, stage=stage,
                    )
                if tstall > 0.0:
                    TRACER.add_model_span(
                        "tni-stall", base + eng_start, tstall,
                        cat="fault", track=f"tni{msg.tni}", rank=msg.rank,
                        thread=msg.thread, msg=msg_id, seg=i, stage=stage,
                    )
                TRACER.add_model_span(
                    "tni-engine", base + eng_start + tstall, serial,
                    cat="tni", track=f"tni{msg.tni}", nbytes=nbytes, rank=msg.rank,
                    thread=msg.thread, msg=msg_id, seg=i, stage=stage,
                )
                TRACER.add_model_span(
                    "wire", base + eng_start + tstall + serial,
                    arrival - eng_start - tstall - serial,
                    cat="wire", track=injector, hops=msg.hops, nbytes=nbytes,
                    msg=msg_id, seg=i, stage=stage,
                )

        clocks[key] = clock
        last_injection = max(last_injection, clock)
        arrivals.append(arrival)

    completion = max(arrivals, default=start_time)
    return RoundResult(
        completion_time=completion,
        last_injection=last_injection,
        arrivals=arrivals,
        wire_messages=wire_messages,
    )


def _simulate_round_batched(
    messages: list[Message],
    stack: SoftwareStack,
    params: MachineParams,
    start_time: float,
    clocks: dict[tuple[int, int], float],
    engines: dict[int, Resource],
) -> RoundResult | None:
    """Cumsum-batched round, bit-identical to the event loop or ``None``.

    Requirements (else fall back): the stack exposes vectorized cost
    hooks, every logical message is a single wire message, and no
    ``(rank, thread)`` stream touches more than one TNI (a multi-TNI
    stream pays data-dependent VCQ-switch overhead the closed form does
    not model).

    Bit-identity rests on three facts: ``np.cumsum`` accumulates
    sequentially (the same left-to-right sum as ``clock += interval``),
    the TNI engines are still acquired one-by-one in original message
    order, and a zero TNI stall adds exactly ``+ 0.0`` to non-negative
    times (a bitwise no-op), so it can be dropped from the arrival sum.
    """
    inj_fn = getattr(stack, "injection_intervals", None)
    lat_fn = getattr(stack, "software_latencies", None)
    if inj_fn is None or lat_fn is None:
        return None
    n = len(messages)
    if n == 0:
        return RoundResult(
            completion_time=start_time, last_injection=start_time,
            arrivals=[], wire_messages=0,
        )
    if stack.protocol_message_count(1, False) != 1 and not all(
        m.known_length for m in messages
    ):
        return None

    # Group messages into per-(rank, thread) injection streams; a stream
    # that changes TNI mid-round needs the event loop's switch handling.
    order: dict[tuple[int, int], list[int]] = {}
    stream_tni: dict[tuple[int, int], int] = {}
    for i, msg in enumerate(messages):
        key = (msg.rank, msg.thread)
        idxs = order.get(key)
        if idxs is None:
            order[key] = [i]
            stream_tni[key] = msg.tni
        elif stream_tni[key] != msg.tni:
            return None
        else:
            idxs.append(i)

    nbytes = np.fromiter((m.nbytes for m in messages), dtype=np.float64, count=n)
    intervals = np.asarray(inj_fn(nbytes), dtype=np.float64)
    latencies = np.asarray(lat_fn(nbytes), dtype=np.float64)
    serial = np.maximum(
        nbytes / params.link_bandwidth, params.tni_engine_message_time
    )
    hops = np.fromiter((m.hops for m in messages), dtype=np.float64, count=n)
    hop_term = np.maximum(hops - 1.0, 0.0) * params.hop_latency

    inject = np.empty(n, dtype=np.float64)
    last_injection = start_time
    for key, idxs in order.items():
        base = max(clocks.get(key, start_time), start_time)
        csum = np.cumsum(np.concatenate(([base], intervals[idxs])))
        inject[idxs] = csum[1:]
        final = float(csum[-1])
        clocks[key] = final
        if final > last_injection:
            last_injection = final

    inject_l = inject.tolist()
    serial_l = serial.tolist()
    lat_l = latencies.tolist()
    hop_l = hop_term.tolist()
    rdma_lat = params.rdma_put_latency
    arrivals: list[float] = []
    for i, msg in enumerate(messages):
        tni = msg.tni
        engine = engines.get(tni)
        if engine is None:
            engine = engines[tni] = Resource(f"tni{tni}")
        s = serial_l[i]
        eng_start, _eng_end = engine.acquire(inject_l[i], s)
        # Same association order as the event loop's arrival sum.
        arrivals.append(eng_start + s + lat_l[i] + rdma_lat + hop_l[i])

    return RoundResult(
        completion_time=max(arrivals, default=start_time),
        last_injection=last_injection,
        arrivals=arrivals,
        wire_messages=n,
    )


class NetworkSimulator:
    """Stateful simulator for staged communication patterns.

    The 3-stage exchange (paper Fig. 4) runs three rounds with a barrier
    between them — stage *k+1* may not start before every stage-*k*
    message has arrived (each stage forwards part of what the previous one
    received).  ``barrier_cost`` adds the synchronization price itself;
    MPI barriers on a real machine cost microseconds, a uTofu flag-poll
    barrier much less.
    """

    def __init__(
        self,
        stack: SoftwareStack | None = None,
        params: MachineParams = FUGAKU,
        barrier_cost: float | None = None,
    ) -> None:
        self.params = params
        self.stack = stack if stack is not None else UtofuStack(params=params)
        if barrier_cost is None:
            # A barrier is two software latencies (notify + release) per
            # participating stage under either stack.
            barrier_cost = 2.0 * self.stack.software_latency(8)
        self.barrier_cost = barrier_cost

    def run_round(self, messages: list[Message]) -> RoundResult:
        """One bulk round with fresh resources."""
        return simulate_round(messages, self.stack, self.params)

    def run_staged(self, stages: list[list[Message]]) -> RoundResult:
        """Sequential stages with inter-stage barriers (3-stage pattern)."""
        t = 0.0
        arrivals: list[float] = []
        last_injection = 0.0
        wire = 0
        msg_base = 0
        for i, stage in enumerate(stages):
            if i > 0:
                if TRACER.enabled:
                    # Stage i's first injection starts exactly at the end
                    # of this span — the dependency edge the critical-path
                    # analyzer follows across the inter-stage barrier.
                    TRACER.add_model_span(
                        "barrier", TRACER.model_offset + t, self.barrier_cost,
                        cat="barrier", track="barrier", stage=i,
                    )
                t += self.barrier_cost
            res = simulate_round(
                stage, self.stack, self.params, start_time=t,
                msg_base=msg_base, stage=i,
            )
            msg_base += len(stage)
            arrivals.extend(res.arrivals)
            last_injection = max(last_injection, res.last_injection)
            wire += res.wire_messages
            t = res.completion_time
        return RoundResult(
            completion_time=t,
            last_injection=last_injection,
            arrivals=arrivals,
            wire_messages=wire,
        )

    def point_to_point_time(self, nbytes: int, hops: int) -> float:
        """Time for one isolated message (the T_0..T_5 of Table 1)."""
        res = self.run_round([Message(nbytes=nbytes, hops=hops)])
        return res.completion_time
