"""Fig. 12 — step-by-step optimization results at 768 nodes."""

from repro.figures import fig12


def test_fig12(benchmark, stage_model):
    res = benchmark(fig12.compute, model=stage_model)
    print("\n" + fig12.render(res))

    # Fig. 12a bands (paper: 3.01x, 2.45x, 1.6x, 1.4x)
    assert 2.2 <= res.speedup("lj-65k", "opt") <= 4.2
    assert 1.8 <= res.speedup("eam-65k", "opt") <= 4.0
    assert 1.2 <= res.speedup("lj-1.7m", "opt") <= 2.6
    assert 1.1 <= res.speedup("eam-1.7m", "opt") <= 2.0

    # Orderings within the 65K panel
    s = {v: res.speedup("lj-65k", v) for v in ("utofu_3stage", "4tni_p2p", "6tni_p2p", "opt")}
    assert s["6tni_p2p"] < s["4tni_p2p"], "6TNI single-thread must be 'abnormally poor'"
    assert s["opt"] == max(s.values())

    # Fig. 12b: comm reduction ~77 %
    assert 0.65 <= res.comm_reduction("lj-65k") <= 0.88

    # Fig. 12c: pair-stage reductions (paper: 43 % LJ, 56 % EAM at 65K)
    assert 0.30 <= res.pair_reduction("lj-65k") <= 0.75
    assert 0.35 <= res.pair_reduction("eam-65k") <= 0.80


def test_fig12_gains_shrink_with_system_size(benchmark, stage_model):
    res = benchmark(fig12.compute, model=stage_model)
    assert res.speedup("lj-1.7m", "opt") < res.speedup("lj-65k", "opt")
    assert res.speedup("eam-1.7m", "opt") < res.speedup("eam-65k", "opt")
