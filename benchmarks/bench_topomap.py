"""Section 3.5.3 — topo-map placement vs random placement."""

from repro.figures import topomap


def test_topomap_quantified(benchmark):
    res = benchmark.pedantic(topomap.compute, rounds=1, iterations=1)
    print("\n" + topomap.render(res))
    # Paper: 'effectively reduce the average communication hops'.
    assert res.hop_reduction > 0.4
    assert res.mapped.total_link_traversals < res.randomized.total_link_traversals
    # Topology-aware placement also keeps some traffic on-node entirely.
    assert res.on_node_fraction_mapped > 0.05
    assert res.on_node_fraction_random < res.on_node_fraction_mapped
