"""Fig. 14 — weak scaling to 20 736 nodes / 99 billion atoms."""

import pytest

from repro.figures import fig14


def test_fig14_weak_scaling(benchmark, stage_model):
    res = benchmark(fig14.compute, model=stage_model)
    print("\n" + fig14.render(res))
    # Near-linear scaling (paper: 'increases almost linearly').
    assert res.linearity("lj") > 0.9
    assert res.linearity("eam") > 0.9
    # Final sizes: 99 G and 72 G atoms.
    assert res.curves["lj"][-1].natoms == pytest.approx(99.5e9, rel=0.01)
    assert res.curves["eam"][-1].natoms == pytest.approx(71.7e9, rel=0.01)


def test_fig14_step_time_flat(benchmark, stage_model):
    res = benchmark(fig14.compute, model=stage_model)
    for pot in ("lj", "eam"):
        t = [p.step_time for p in res.curves[pot]]
        assert max(t) / min(t) < 1.15
