"""Equations (3)-(8) — the section 3.1 analytic timing model."""

from repro.figures import eqs


def test_equations(benchmark):
    res = benchmark(eqs.compute)
    print("\n" + eqs.render(res))
    # The paper's two analytic conclusions:
    assert res.utofu_p2p_wins  # p2p beats 3-stage under uTofu
    assert res.mpi_naive_p2p_loses  # but naive MPI p2p is a regression


def test_parallel_dominates_within_pattern(benchmark):
    res = benchmark(eqs.compute)
    for tm in (res.mpi, res.utofu):
        assert tm.three_stage_parallel <= tm.three_stage_opt <= tm.three_stage_naive
        assert tm.p2p_parallel <= tm.p2p_opt <= tm.p2p_naive
