"""Shared fixtures for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one paper table/figure: the
``benchmark`` fixture times the computation, assertions pin the paper's
qualitative claims, and the rendered table is printed so
``pytest benchmarks/ --benchmark-only -s`` doubles as the report behind
EXPERIMENTS.md (or run ``python -m repro.figures``).

Setting ``REPRO_BENCH_JSON=<path>`` additionally dumps every benchmark's
timing stats to that path as JSON at session end — the hook the
continuous-benchmark harness (``python -m repro.obs.bench``, see
docs/benchmarking.md) and CI use to persist a machine-readable record of
a pytest-benchmark run next to the ``BENCH_PR<k>.json`` artifacts.
"""

import json
import os

import pytest

from repro.perfmodel import StageModel

_BENCH_RECORDS: list[dict] = []


@pytest.fixture(scope="session")
def stage_model():
    return StageModel()


def _stats_dict(stats) -> dict:
    """Defensive extraction of pytest-benchmark stats (plugin internals
    vary across versions; missing fields are simply omitted)."""
    out = {}
    for key in ("min", "max", "mean", "median", "stddev", "rounds", "iterations"):
        try:
            value = getattr(stats, key)
        except Exception:
            continue
        if isinstance(value, (int, float)):
            out[key] = value
    return out


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    yield
    if not os.environ.get("REPRO_BENCH_JSON"):
        return
    fixture = item.funcargs.get("benchmark") if hasattr(item, "funcargs") else None
    stats = getattr(fixture, "stats", None)
    inner = getattr(stats, "stats", stats)
    if inner is None:
        return
    record = {"test": item.nodeid, "stats": _stats_dict(inner)}
    if record["stats"]:
        _BENCH_RECORDS.append(record)


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path or not _BENCH_RECORDS:
        return
    doc = {"schema": "repro-pytest-bench/1", "benchmarks": _BENCH_RECORDS}
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    except OSError as exc:  # never fail the run over the side artifact
        print(f"warning: could not write {path}: {exc}")
