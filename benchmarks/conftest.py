"""Shared fixtures for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one paper table/figure: the
``benchmark`` fixture times the computation, assertions pin the paper's
qualitative claims, and the rendered table is printed so
``pytest benchmarks/ --benchmark-only -s`` doubles as the report behind
EXPERIMENTS.md (or run ``python -m repro.figures``).
"""

import pytest

from repro.perfmodel import StageModel


@pytest.fixture(scope="session")
def stage_model():
    return StageModel()
