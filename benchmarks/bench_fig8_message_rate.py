"""Fig. 8 — message rate and bandwidth vs message size."""

from repro.figures import fig8


def test_fig8(benchmark):
    res = benchmark(fig8.compute)
    print("\n" + fig8.render(res))
    # Paper: parallel gains >= 50 % for messages under 512 B.
    for size in (8, 32, 128, 256, 512):
        assert res.parallel_gain(size) >= 1.5, f"no parallel gain at {size}B"
    # Paper: single-thread 6 TNI below single-thread 4 TNI (small msgs).
    for size in (8, 256, 512):
        k = res.sizes.index(size)
        assert res.rates["single-6tni"][k] < res.rates["single-4tni"][k]


def test_fig8_bandwidth_saturates(benchmark):
    res = benchmark(fig8.compute)
    bw = res.bandwidths["single-4tni"]
    # Large messages approach (but never exceed) the per-link ceilings.
    assert bw[-1] > 0.8 * bw[-2]
    from repro.machine import FUGAKU

    assert bw[-1] * 1e9 <= 4 * FUGAKU.link_bandwidth * 1.01  # 4 ranks x 1 TNI
