"""Engine-kernel throughput: the substrate's own performance numbers.

Not a paper figure — these benchmark the building blocks (neighbor-list
construction, LJ/EAM force kernels, the exchange phases) so regressions
in the engine itself are caught and the absolute cost of the functional
layer is documented alongside the simulated-Fugaku results.
"""

import numpy as np
import pytest

from repro import LennardJones, quick_lj_simulation
from repro.md.atoms import Atoms
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.neighbor import build_pairs
from repro.md.potentials import SuttonChenEAM


@pytest.fixture(scope="module")
def lj_system():
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice((10, 10, 10), edge)  # 4000 atoms
    rng = np.random.default_rng(0)
    x = box.wrap(x + rng.normal(0, 0.05, x.shape))
    atoms = Atoms(capacity=x.shape[0])
    atoms.set_local(x, np.zeros_like(x), np.arange(x.shape[0], dtype=np.int64))
    return atoms, box


def test_neighbor_build_throughput(benchmark, lj_system):
    atoms, _ = lj_system
    i, j = benchmark(build_pairs, atoms.x, atoms.nlocal, 2.8)
    # ~2.8-cutoff LJ liquid: ~38 half-pairs per atom
    assert 25 * atoms.nlocal < i.size < 60 * atoms.nlocal


def test_lj_force_kernel_throughput(benchmark, lj_system):
    atoms, _ = lj_system
    lj = LennardJones(cutoff=2.5)
    i, j = build_pairs(atoms.x, atoms.nlocal, 2.8)

    def kernel():
        atoms.zero_forces()
        return lj.compute(atoms, i, j)

    res = benchmark(kernel)
    assert res.energy < 0  # cohesive liquid


def test_eam_force_kernel_throughput(benchmark):
    x, box = fcc_lattice((7, 7, 7), 3.615)  # 1372 Cu atoms
    atoms = Atoms(capacity=x.shape[0])
    atoms.set_local(x, np.zeros_like(x), np.arange(x.shape[0], dtype=np.int64))
    pot = SuttonChenEAM(cutoff=4.95)
    # ghosts via periodic images aren't needed for a throughput bench;
    # interior pairs suffice.
    i, j = build_pairs(atoms.x, atoms.nlocal, 4.95)

    def kernel():
        atoms.zero_forces()
        return pot.compute(atoms, i, j)

    res = benchmark(kernel)
    assert np.isfinite(res.energy)


def test_border_exchange_throughput(benchmark):
    sim = quick_lj_simulation(cells=(8, 8, 8), ranks=(2, 2, 2), pattern="p2p")
    sim.setup()

    def borders():
        sim.exchange.borders()

    benchmark(borders)
    assert sim.atoms_of(0).nghost > 0


def test_forward_exchange_throughput(benchmark):
    sim = quick_lj_simulation(cells=(8, 8, 8), ranks=(2, 2, 2), pattern="p2p")
    sim.setup()
    benchmark(sim.exchange.forward)


def test_full_step_throughput(benchmark):
    sim = quick_lj_simulation(
        cells=(6, 6, 6), ranks=(2, 2, 2), pattern="parallel-p2p", rdma=True
    )
    sim.setup()
    benchmark(sim.step)
    assert sim.total_local_atoms() == sim.natoms
