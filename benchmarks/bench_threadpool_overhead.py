"""Section 3.3 — OpenMP vs spin-lock thread-pool overheads."""

import pytest

from repro.figures import micro33


def test_micro33(benchmark):
    res = benchmark(micro33.compute)
    print("\n" + micro33.render(res))
    assert res.openmp_fork_join == pytest.approx(5.8e-6)
    assert res.pool_fork_join == pytest.approx(1.1e-6)
    # Paper: OpenMP makes the modify stage ~10x slower at 22 atoms.
    assert res.openmp_modify_slowdown > 8
    assert res.modify_pool < res.modify_openmp


def test_threadpool_dispatch_cost_real(benchmark):
    """Wall-clock cost of the (deterministic) pool scheduling itself."""
    from repro.runtime import ThreadPoolModel

    pool = ThreadPoolModel(6)
    work = [1e-6 * (i % 7) for i in range(13)]
    t = benchmark(pool.parallel_time, work)
    assert t >= pool.fork_join
