"""Section 5 generalization claim — stencil halo exchange benchmark."""

import numpy as np

from repro.machine import FUGAKU
from repro.network import Message, NetworkSimulator, MpiStack, UtofuStack
from repro.runtime import World
from repro.stencil import JacobiSolver, jacobi_reference


def run_solver(pattern: str, steps: int = 5):
    world = World(8, grid=(2, 2, 2))
    solver = JacobiSolver(world, (16, 16, 16), pattern=pattern)
    rng = np.random.default_rng(1)
    solver.set_initial(rng.random((16, 16, 16)))
    solver.run(steps)
    return solver


def test_stencil_correct_under_both_patterns(benchmark):
    rng = np.random.default_rng(1)
    data = rng.random((16, 16, 16))
    ref = jacobi_reference(data, 5)

    def both():
        out = {}
        for pattern in ("3stage", "p2p"):
            world = World(8, grid=(2, 2, 2))
            s = JacobiSolver(world, (16, 16, 16), pattern=pattern)
            s.set_initial(data)
            s.run(5)
            out[pattern] = s
        return out

    solvers = benchmark.pedantic(both, rounds=1, iterations=1)
    for s in solvers.values():
        assert s.residual_vs(ref) < 1e-12


def test_stencil_p2p_beats_3stage_on_model(benchmark):
    """The MD result transfers: direct halo messages over uTofu beat the
    staged MPI exchange on the machine model."""
    solver3 = run_solver("3stage", steps=1)
    solverp = run_solver("p2p", steps=1)

    def price():
        msgs3 = [Message(n, h) for n, h in solver3.halo.message_schedule()]
        stages = [msgs3[i : i + 2] for i in range(0, len(msgs3), 2)]
        t3 = NetworkSimulator(MpiStack(), FUGAKU).run_staged(stages).completion_time
        msgsp = [Message(n, h) for n, h in solverp.halo.message_schedule()]
        tp = NetworkSimulator(UtofuStack(), FUGAKU).run_round(msgsp).completion_time
        return t3, tp

    t3, tp = benchmark(price)
    print(f"\n halo exchange: MPI-3stage {t3 * 1e6:.2f} us, "
          f"uTofu-p2p {tp * 1e6:.2f} us ({t3 / tp:.1f}x)")
    assert tp < t3


def test_stencil_volume_parity(benchmark):
    """Both halo patterns move identical byte totals (no Newton saving
    for read-only halos) — the contrast with MD's half shell."""

    def volumes():
        out = {}
        for pattern in ("3stage", "p2p"):
            s = run_solver(pattern, steps=1)
            out[pattern] = s.world.transport.log.total_bytes()
        return out

    v = benchmark.pedantic(volumes, rounds=1, iterations=1)
    assert v["3stage"] == v["p2p"]
