"""Calibration sensitivity — robustness of the reproduction's claims."""

from repro.perfmodel.sensitivity import render, sweep


def test_sensitivity_sweep(benchmark):
    rows = benchmark.pedantic(
        sweep, kwargs={"factors": (0.5, 1.0, 2.0)}, rounds=1, iterations=1
    )
    print("\n" + render(rows))
    # The reproduction's headline claims must hold across a 4x span of
    # every estimated constant — otherwise the result is a fit artifact.
    for row in rows:
        for factor, claims in row.results.items():
            assert claims.all_hold, f"{row.name} x{factor}: {claims.failed()}"
