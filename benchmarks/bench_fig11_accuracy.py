"""Fig. 11 — accuracy: real MD, reference vs optimized pressure traces.

This benchmark runs actual multi-rank MD through both communication
stacks; it is the slowest bench (seconds, not microseconds) and the one
that proves the optimized path computes the same physics.
"""

from repro.figures import fig11


def test_fig11_accuracy(benchmark):
    res = benchmark.pedantic(fig11.compute, kwargs={"steps": 60}, rounds=1, iterations=1)
    print("\n" + fig11.render(res))
    assert res.agrees, "optimized pressure trace diverged from reference"
    # Machine-precision agreement, not just plot-level agreement:
    assert res.lj.max_abs_diff < 1e-10
    assert res.eam.max_abs_diff < 1e-10
    # And the traces are non-trivial (the system actually evolved).
    assert len(res.lj.pressure_ref) >= 5
    assert max(res.lj.pressure_ref) != min(res.lj.pressure_ref)
