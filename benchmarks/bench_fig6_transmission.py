"""Fig. 6 — ghost-exchange transmission times of five implementations."""

from repro.figures import fig6


def test_fig6(benchmark, stage_model):
    res = benchmark(fig6.compute, model=stage_model)
    print("\n" + fig6.render(res))
    t65 = res.times["lj-65k"]
    # Orderings of the published bars:
    assert t65["mpi_p2p"] > t65["ref"], "naive MPI p2p must lose"
    assert t65["utofu_3stage"] < t65["ref"]
    assert t65["4tni_p2p"] < t65["utofu_3stage"]
    # 79 % reduction headline, generous band
    assert 0.65 < res.reduction("lj-65k") < 0.95
    # uTofu p2p vs uTofu 3-stage ~1.5x
    assert 1.2 < res.utofu_ratio("lj-65k") < 2.2


def test_fig6_1m7_p2p_still_wins(benchmark, stage_model):
    """Section 4.2: at 1.7M every p2p implementation beats 3-stage."""
    res = benchmark(fig6.compute, model=stage_model)
    t = res.times["lj-1.7m"]
    assert t["4tni_p2p"] < t["utofu_3stage"]
    assert t["opt"] < t["utofu_3stage"]
