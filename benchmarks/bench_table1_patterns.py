"""Table 1 — communication-pattern analysis regeneration."""

import pytest

from repro.figures import table1


def test_table1(benchmark):
    res = benchmark(table1.compute)
    print("\n" + table1.render(res))
    # Table 1 structure
    assert res.three_stage.total_messages == 6
    assert res.p2p.total_messages == 13
    # Newton's-law halving
    assert res.volume_ratio == pytest.approx(0.5)


def test_table1_is_scale_free(benchmark):
    """The 0.5 ratio and message counts hold across the radius-1 regime
    (cutoff <= sub-box side; longer cutoffs are the Fig. 15 scenarios)."""

    def sweep():
        out = []
        for a in (0.5, 2.0, 8.0):
            for r in (0.3, 1.0, 3.0):
                if r <= a:
                    out.append(table1.compute(a=a, r=r))
        return out

    results = benchmark(sweep)
    for res in results:
        assert res.volume_ratio == pytest.approx(0.5)
        assert res.p2p.total_messages == 13
