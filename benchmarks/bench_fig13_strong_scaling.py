"""Fig. 13 + Table 3 — strong scaling to 36 864 nodes."""

from repro.figures import fig13
from repro.perfmodel.scaling import performance_per_day


def test_fig13_strong_scaling(benchmark, stage_model):
    res = benchmark(fig13.compute, model=stage_model)
    print("\n" + fig13.render(res))

    # Headline speedups (paper: 2.9x LJ, 2.2x EAM)
    assert 2.2 <= res.speedup_last("lj") <= 3.8
    assert 1.7 <= res.speedup_last("eam") <= 3.2

    # Optimized code holds parallel efficiency better at every point.
    for pot in ("lj", "eam"):
        e_ref = res.efficiency(pot, "ref")
        e_opt = res.efficiency(pot, "opt")
        assert all(o >= r for o, r in zip(e_opt[1:], e_ref[1:]))

    # Performance headline order of magnitude (8.77 Mtau/day, 2.87 us/day)
    lj_mtau = performance_per_day(res.curves[("lj", "opt")][-1], 0.005) / 1e6
    eam_us = performance_per_day(res.curves[("eam", "opt")][-1], 0.005) / 1e6
    assert 3 < lj_mtau < 40
    assert 1 < eam_us < 15


def test_table3_breakdown(benchmark, stage_model):
    res = benchmark(fig13.compute, model=stage_model)
    lj_ref = res.curves[("lj", "ref")][-1].result
    lj_opt = res.curves[("lj", "opt")][-1].result
    eam_ref = res.curves[("eam", "ref")][-1].result
    eam_opt = res.curves[("eam", "opt")][-1].result

    # Origin-LJ: Comm dominates (paper 64.85 %)
    assert 55 <= lj_ref.percent("Comm") <= 80
    # Opt-LJ: Comm reduced but still the largest stage (paper 43.67 %)
    assert 35 <= lj_opt.percent("Comm") <= 60
    # Origin-EAM: Pair is the largest stage (paper 43.44 %)
    assert eam_ref.stages["Pair"] == max(eam_ref.stages.values())
    # Opt-EAM: Other exceeds Comm (paper 31.84 % > 20.02 %)
    assert eam_opt.stages["Other"] > eam_opt.stages["Comm"]


def test_fig13b_pair_reduction_at_last_point(benchmark, stage_model):
    """Paper: pair time drops 40 % (LJ) / 57 % (EAM) at 36 864 nodes."""
    res = benchmark(fig13.compute, model=stage_model)
    for pot, lo, hi in (("lj", 0.3, 0.75), ("eam", 0.4, 0.80)):
        p_ref = res.curves[(pot, "ref")][-1].result.stages["Pair"]
        p_opt = res.curves[(pot, "opt")][-1].result.stages["Pair"]
        assert lo <= 1 - p_opt / p_ref <= hi
