"""Sections 3.4/3.5 — per-optimization ablation measurements."""

from repro.figures import ablations


def test_ablations(benchmark):
    res = benchmark.pedantic(ablations.compute, rounds=1, iterations=1)
    print("\n" + ablations.render(res))
    # Pre-registration removes most registrations.
    assert res.registrations_opt < res.registrations_baseline / 2
    assert res.registration_time_saved > 0
    # Message combine halves the MPI border-exchange wire messages.
    assert 0.3 < res.combine_saving < 0.7
    # Border bins cut per-atom region tests by > 4x.
    assert res.bins_test_reduction > 4


def test_mdrun_engine_throughput(benchmark):
    """A real-engine throughput number: atom-steps/second of the full
    optimized pipeline on this machine (context for the figures)."""
    from repro import quick_lj_simulation

    sim = quick_lj_simulation(
        cells=(6, 6, 6), ranks=(2, 2, 2), pattern="parallel-p2p", rdma=True
    )
    sim.setup()

    def ten_steps():
        sim.run(10)

    benchmark.pedantic(ten_steps, rounds=3, iterations=1)
    assert sim.step_count >= 30
