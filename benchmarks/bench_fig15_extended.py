"""Fig. 15 — extended neighborhoods: 26 / 62 / 124 messages per stage."""

from repro.figures import fig15


def test_fig15(benchmark):
    res = benchmark(fig15.compute)
    print("\n" + fig15.render(res))
    wins = res.wins()
    assert wins[26], "p2p must win with 26 neighbors (full lists)"
    assert wins[62], "p2p must win with 62 neighbors (long cutoff, Newton)"
    assert not wins[124], "3-stage must win with 124 neighbors (n^2 growth)"


def test_fig15_growth_rates(benchmark):
    """3-stage cost grows ~linearly with radius, p2p ~quadratically."""
    res = benchmark(fig15.compute)
    s26, s62, s124 = res.scenarios
    # p2p time grows superlinearly from 26 -> 124 neighbors
    assert s124.p2p_time / s26.p2p_time > 124 / 26 * 0.8
    # 3-stage grows far slower than the neighbor count
    assert s124.three_stage_time / s26.three_stage_time < 4.0
