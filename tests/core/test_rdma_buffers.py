"""Pre-registered buffer machinery: rings, overwrite protection, one-time
registration."""

import numpy as np
import pytest

from repro.core import BufferOverwriteError, GhostBudget, RdmaEndpoint, RecvBufferRing
from repro.machine import RdmaEngine


@pytest.fixture
def engine():
    return RdmaEngine()


def make_ring(engine, depth=4, cap=64):
    return RecvBufferRing(engine, rank=0, capacity_elems=cap, depth=depth)


class TestRecvBufferRing:
    def test_round_robin_order(self, engine):
        ring = make_ring(engine)
        indices = []
        for _ in range(4):
            idx, _ = ring.acquire_for_write()
            indices.append(idx)
            ring.consume()
        assert indices == [0, 1, 2, 3]

    def test_wraps_after_depth(self, engine):
        ring = make_ring(engine)
        for _ in range(4):
            ring.acquire_for_write()
            ring.consume()
        idx, _ = ring.acquire_for_write()
        assert idx == 0

    def test_overwrite_protection(self, engine):
        """Depth-1 ring: a second write before consumption must fail —
        the hazard the paper's 4 buffers exist to prevent."""
        ring = make_ring(engine, depth=1)
        ring.acquire_for_write()
        with pytest.raises(BufferOverwriteError):
            ring.acquire_for_write()

    def test_depth4_supports_four_outstanding_stages(self, engine):
        """Border, forward, reverse and the next border can all be in
        flight without conflict (the paper's dependency analysis)."""
        ring = make_ring(engine, depth=4)
        for _ in range(4):
            ring.acquire_for_write()
        assert ring.outstanding() == 4
        with pytest.raises(BufferOverwriteError):
            ring.acquire_for_write()  # the 5th conflicts

    def test_consume_in_write_order(self, engine):
        ring = make_ring(engine)
        _, r0 = ring.acquire_for_write()
        _, r1 = ring.acquire_for_write()
        r0.data[0] = 1.0
        r1.data[0] = 2.0
        assert ring.consume()[0] == 1.0
        assert ring.consume()[0] == 2.0

    def test_consume_clean_buffer_rejected(self, engine):
        ring = make_ring(engine)
        with pytest.raises(BufferOverwriteError):
            ring.consume()

    def test_buffers_registered(self, engine):
        make_ring(engine, depth=4)
        assert engine.cache_for(0).region_count() == 4

    def test_stags_exposed(self, engine):
        ring = make_ring(engine, depth=4)
        assert len(set(ring.stags())) == 4

    def test_invalid_args(self, engine):
        with pytest.raises(ValueError):
            make_ring(engine, depth=0)
        with pytest.raises(ValueError):
            make_ring(engine, cap=0)


@pytest.fixture
def endpoint_pair(engine):
    budget = GhostBudget(a=4.0, r=1.5, density=1.0)
    eps = {}
    storage = {}
    for rank in (0, 1):
        x = np.zeros((200, 3))
        f = np.zeros((200, 3))
        storage[rank] = (x, f)
        eps[rank] = RdmaEndpoint(
            rank=rank,
            engine=engine,
            x_storage=x,
            f_storage=f,
            budget=budget,
            n_neighbors=2,
        )
    return eps, storage, engine


class TestRdmaEndpoint:
    def test_put_positions_lands_in_remote_array(self, endpoint_pair):
        eps, storage, _ = endpoint_pair
        window = eps[1].window_for_neighbor(0, ghost_elem_offset=30)
        eps[0].install_remote(0, window)
        packed = np.arange(9.0).reshape(3, 3)
        nbytes = eps[0].put_positions(0, packed)
        assert nbytes == 72
        x1 = storage[1][0]
        assert np.array_equal(x1.reshape(-1)[30:39], np.arange(9.0))

    def test_registration_happens_once(self, endpoint_pair):
        eps, storage, engine = endpoint_pair
        window = eps[1].window_for_neighbor(0, 0)
        eps[0].install_remote(0, window)
        before = engine.cache_for(0).registration_count
        for _ in range(10):
            eps[0].put_positions(0, np.ones((2, 3)))
        # only the lazy send-buffer registration on first use
        assert engine.cache_for(0).registration_count <= before + 1

    def test_revalidate_noop_when_unchanged(self, endpoint_pair):
        eps, storage, _ = endpoint_pair
        x, f = storage[0]
        assert eps[0].revalidate(x, f) is False

    def test_revalidate_reregisters_on_growth(self, endpoint_pair):
        """Array reallocation (the baseline behaviour) forces a costly
        re-registration — exactly what pre-sizing avoids."""
        eps, storage, engine = endpoint_pair
        before = engine.cache_for(0).registration_count
        new_x = np.zeros((400, 3))
        new_f = np.zeros((400, 3))
        assert eps[0].revalidate(new_x, new_f) is True
        assert engine.cache_for(0).registration_count == before + 2

    def test_oversized_send_rejected(self, endpoint_pair):
        eps, _, _ = endpoint_pair
        window = eps[1].window_for_neighbor(0, 0)
        eps[0].install_remote(0, window)
        too_big = np.zeros((100_000, 3))
        with pytest.raises(BufferOverwriteError):
            eps[0].put_positions(0, too_big)

    def test_ring_put_roundtrip(self, endpoint_pair):
        eps, _, _ = endpoint_pair
        payload = np.arange(12.0).reshape(4, 3)
        eps[0].put_into_ring(0, eps[1].recv_rings[0], payload)
        from repro.core import split

        data = eps[1].recv_rings[0].consume()
        assert np.array_equal(split(data, trailing_shape=(3,)), payload)

    def test_x_storage_shape_validated(self, engine):
        with pytest.raises(ValueError):
            RdmaEndpoint(
                rank=0,
                engine=engine,
                x_storage=np.zeros(10),
                f_storage=np.zeros((10, 3)),
                budget=GhostBudget(a=1.0, r=0.5, density=1.0),
                n_neighbors=1,
            )
