"""Section 3.5 optimizations: message combine, border bins, topo map."""

import numpy as np
import pytest

from repro.core import (
    BorderBins,
    JobShape,
    MessageFormatError,
    TopoMap,
    combine,
    split,
    write_into,
)
from repro.core.patterns import half_shell_offsets, shell_offsets
from repro.md.region import SubBox


class TestMessageCombine:
    def test_roundtrip_flat(self):
        payload = np.arange(7.0)
        assert np.array_equal(split(combine(payload)), payload)

    def test_roundtrip_shaped(self):
        payload = np.arange(12.0).reshape(4, 3)
        out = split(combine(payload), trailing_shape=(3,))
        assert np.array_equal(out, payload)

    def test_empty_payload(self):
        out = split(combine(np.empty(0)))
        assert out.size == 0

    def test_single_message_not_two(self):
        """The whole point (3.5.1): length + content in ONE buffer."""
        msg = combine(np.arange(5.0))
        assert msg.shape == (6,)
        assert msg[0] == 5.0

    def test_oversized_buffer_decodes_live_prefix(self):
        """Receiver buffers are maximally sized; only the prefix is live."""
        buf = np.full(100, -1.0)
        n = write_into(buf, np.arange(6.0))
        assert n == 7
        assert np.array_equal(split(buf), np.arange(6.0))

    def test_write_into_rejects_overflow(self):
        buf = np.zeros(4)
        with pytest.raises(MessageFormatError):
            write_into(buf, np.arange(10.0))

    def test_corrupt_length_rejected(self):
        msg = combine(np.arange(3.0))
        msg[0] = 99.0  # claims more than physically present
        with pytest.raises(MessageFormatError):
            split(msg)
        msg[0] = -1.0
        with pytest.raises(MessageFormatError):
            split(msg)
        msg[0] = 2.5
        with pytest.raises(MessageFormatError):
            split(msg)

    def test_shape_mismatch_rejected(self):
        msg = combine(np.arange(7.0))
        with pytest.raises(MessageFormatError):
            split(msg, trailing_shape=(3,))

    def test_non_1d_rejected(self):
        with pytest.raises(MessageFormatError):
            split(np.zeros((2, 2)))


@pytest.fixture
def sub():
    return SubBox((0.0, 0.0, 0.0), (10.0, 10.0, 10.0), (1, 1, 1), (3, 3, 3))


class TestBorderBins:
    def test_routing_matches_bruteforce(self, sub):
        """Bin-accelerated routing == 13 brute-force border_mask sweeps."""
        offsets = [tuple(-o for o in off) for off in half_shell_offsets(1)]
        bins = BorderBins(sub, rcomm=2.0, send_offsets=offsets)
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 10, size=(400, 3))
        routed = bins.route(x)
        for k, off in enumerate(offsets):
            brute = np.flatnonzero(sub.border_mask(x, off, 2.0))
            assert np.array_equal(routed[k], brute)

    def test_full_shell_routing(self, sub):
        offsets = shell_offsets(1)
        bins = BorderBins(sub, rcomm=1.5, send_offsets=offsets)
        rng = np.random.default_rng(6)
        x = rng.uniform(0, 10, size=(300, 3))
        routed = bins.route(x)
        for k, off in enumerate(offsets):
            brute = np.flatnonzero(sub.border_mask(x, off, 1.5))
            assert np.array_equal(routed[k], brute)

    def test_interior_atom_goes_nowhere(self, sub):
        bins = BorderBins(sub, rcomm=2.0, send_offsets=shell_offsets(1))
        routed = bins.route(np.array([[5.0, 5.0, 5.0]]))
        assert all(r.size == 0 for r in routed)

    def test_corner_atom_goes_to_seven_neighbors(self, sub):
        """A corner-region atom is needed by 7 neighbors (3 faces, 3
        edges, 1 corner)."""
        bins = BorderBins(sub, rcomm=2.0, send_offsets=shell_offsets(1))
        routed = bins.route(np.array([[9.5, 9.5, 9.5]]))
        assert sum(r.size for r in routed) == 7

    def test_bin_ids_in_range(self, sub):
        bins = BorderBins(sub, rcomm=2.0, send_offsets=shell_offsets(1))
        rng = np.random.default_rng(7)
        ids = bins.bin_of(rng.uniform(0, 10, size=(100, 3)))
        assert ids.min() >= 0 and ids.max() < 27

    def test_exactness_flag(self, sub):
        assert BorderBins(sub, 2.0, shell_offsets(1)).is_exact()
        assert not BorderBins(sub, 6.0, shell_offsets(1)).is_exact()

    def test_rcomm_exceeding_subbox_rejected(self, sub):
        with pytest.raises(ValueError):
            BorderBins(sub, 11.0, shell_offsets(1))

    def test_invalid_rcomm(self, sub):
        with pytest.raises(ValueError):
            BorderBins(sub, 0.0, shell_offsets(1))


class TestTopoMap:
    def test_rank_grid_is_4x_nodes(self):
        job = JobShape((8, 12, 8))  # the paper's 768-node shape
        assert job.node_count == 768
        assert job.rank_grid() == (16, 24, 8)  # 2x2x1 brick

    def test_node_of_rank(self):
        tm = TopoMap(JobShape((4, 6, 4)))
        assert tm.node_of_rank((0, 0, 0)) == (0, 0, 0)
        assert tm.node_of_rank((1, 1, 0)) == (0, 0, 0)  # same node
        assert tm.node_of_rank((2, 0, 0)) == (1, 0, 0)

    def test_local_index_distinguishes_ranks_in_node(self):
        tm = TopoMap(JobShape((4, 6, 4)))
        locals_ = {
            tm.local_index((x, y, 0)) for x in range(2) for y in range(2)
        }
        assert locals_ == {0, 1, 2, 3}

    def test_same_node_is_zero_hops(self):
        tm = TopoMap(JobShape((4, 6, 4)))
        assert tm.hops_between((0, 0, 0), (1, 1, 0)) == 0

    def test_face_neighbors_are_close(self):
        """The topo-map guarantee (3.5.3): decomposition neighbors sit at
        most a couple of physical hops away."""
        tm = TopoMap(JobShape((4, 6, 4)))
        for off in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
            assert tm.neighbor_hops((3, 3, 3), off) <= 2

    def test_average_neighbor_hops_small(self):
        tm = TopoMap(JobShape((4, 6, 4)))
        avg = tm.average_neighbor_hops([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert avg <= 2.0

    def test_rank_outside_grid_rejected(self):
        tm = TopoMap(JobShape((4, 6, 4)))
        with pytest.raises(ValueError):
            tm.node_of_rank((99, 0, 0))

    def test_job_too_big_for_machine_rejected(self):
        from repro.machine import TofuTopology

        small = TofuTopology((1, 1, 1))
        with pytest.raises(ValueError):
            TopoMap(JobShape((8, 12, 8)), topology=small)

    def test_periodic_wrap_neighbor(self):
        tm = TopoMap(JobShape((4, 6, 4)))
        gx = tm.rank_grid[0]
        # last rank's +x neighbor wraps to rank 0; torus keeps it close
        assert tm.neighbor_hops((gx - 1, 0, 0), (1, 0, 0)) <= 3
