"""Ghost-exchange implementations: structure, traffic accounting, and the
central equivalence guarantees (every pattern produces the same physics)."""

import numpy as np
import pytest

from repro import LennardJones, SerialReference, quick_lj_simulation
from repro.core import FineGrainedP2PExchange, P2PExchange, ThreeStageExchange
from repro.md import Box, Domain
from repro.md.atoms import Atoms
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.runtime import World


def build_world(grid, natoms=200, seed=0, box_edge=12.0):
    """A world with random atoms scattered by ownership."""
    world = World(int(np.prod(grid)), grid=grid)
    box = Box((0, 0, 0), (box_edge,) * 3)
    domain = Domain(box, grid)
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, box_edge, size=(natoms, 3))
    v = rng.normal(size=(natoms, 3))
    tags = np.arange(natoms, dtype=np.int64)
    groups = domain.scatter(x)
    for rank in range(world.size):
        pos = world.grid_pos_of(rank)
        idx = groups.get(pos, np.empty(0, dtype=np.intp))
        atoms = Atoms()
        atoms.set_local(x[idx], v[idx], tags[idx])
        world.ranks[rank].state["atoms"] = atoms
    return world, domain, x, tags


class TestP2PStructure:
    def test_thirteen_messages_per_rank(self):
        world, domain, _, _ = build_world((2, 2, 2))
        ex = P2PExchange(world, domain, rcomm=2.0)
        ex.borders()
        assert all(n == 13 for n in ex.messages_per_rank().values())

    def test_full_shell_26_messages(self):
        world, domain, _, _ = build_world((2, 2, 2))
        ex = P2PExchange(world, domain, rcomm=2.0, newton=False)
        ex.borders()
        assert all(n == 26 for n in ex.messages_per_rank().values())

    def test_ghosts_within_rcomm_of_subbox(self):
        """Every received ghost genuinely lies in the ghost shell."""
        world, domain, _, _ = build_world((3, 2, 2), natoms=600)
        ex = P2PExchange(world, domain, rcomm=1.5)
        ex.borders()
        for rank in range(world.size):
            atoms = ex.atoms_of(rank)
            sub = ex.sub_box_of(rank)
            gx = atoms.x[atoms.nlocal :]
            lo = np.asarray(sub.lo) - 1.5
            hi = np.asarray(sub.hi) + 1.5
            assert np.all((gx >= lo - 1e-9) & (gx < hi + 1e-9))

    def test_half_shell_ghosts_complete(self):
        """Every (local atom, remote atom) pair within rcomm appears on
        exactly one rank as (local, ghost)."""
        world, domain, x, tags = build_world((2, 2, 2), natoms=300)
        ex = P2PExchange(world, domain, rcomm=2.0)
        ex.borders()
        box = domain.box
        # All physical pairs within rcomm under minimum image:
        iu, ju = np.triu_indices(x.shape[0], k=1)
        d = box.minimum_image(x[iu] - x[ju])
        close = np.einsum("ij,ij->i", d, d) < 2.0**2
        want = {(int(a), int(b)) for a, b in zip(iu[close], ju[close])}
        # Pairs visible on some rank as local-local or local-ghost:
        got = set()
        for rank in range(world.size):
            atoms = ex.atoms_of(rank)
            xx = atoms.x
            n = atoms.ntotal
            for i in range(atoms.nlocal):
                dd = xx[i] - xx
                r2 = np.einsum("ij,ij->i", dd, dd)
                for j in np.flatnonzero(r2 < 4.0):
                    if j == i:
                        continue
                    if j < atoms.nlocal and j < i:
                        continue  # counted from the other end
                    if j >= atoms.nlocal or j > i:
                        got.add(tuple(sorted((int(atoms.tag[i]), int(atoms.tag[j])))))
        assert want <= got

    def test_traffic_volume_matches_table1_half(self):
        """Measured border traffic equals the analytic half-shell volume
        within statistical fluctuation."""
        world, domain, x, _ = build_world((2, 2, 2), natoms=4000)
        ex = P2PExchange(world, domain, rcomm=1.2, use_border_bins=True)
        ex.borders()
        from repro.core import half_shell_volume

        density = x.shape[0] / domain.box.volume
        a = float(domain.sub_lengths[0])
        expected_atoms = half_shell_volume(a, 1.2) * density * world.size
        total_ghosts = sum(ex.ghost_counts().values())
        assert total_ghosts == pytest.approx(expected_atoms, rel=0.12)

    def test_border_bins_and_bruteforce_identical(self):
        w1, d1, _, _ = build_world((2, 2, 2), natoms=500, seed=3)
        w2, d2, _, _ = build_world((2, 2, 2), natoms=500, seed=3)
        e1 = P2PExchange(w1, d1, rcomm=2.0, use_border_bins=True)
        e2 = P2PExchange(w2, d2, rcomm=2.0, use_border_bins=False)
        e1.borders()
        e2.borders()
        for rank in range(8):
            a1, a2 = e1.atoms_of(rank), e2.atoms_of(rank)
            assert a1.nghost == a2.nghost
            assert np.allclose(np.sort(a1.x[a1.nlocal :], axis=0),
                               np.sort(a2.x[a2.nlocal :], axis=0))


class TestThreeStageStructure:
    def test_six_swaps_per_rank(self):
        world, domain, _, _ = build_world((2, 2, 2))
        ex = ThreeStageExchange(world, domain, rcomm=2.0)
        ex.borders()
        assert all(n == 6 for n in ex.messages_per_rank().values())

    def test_full_shell_ghost_count_double_of_p2p(self):
        w1, d1, _, _ = build_world((2, 2, 2), natoms=3000, seed=4)
        w2, d2, _, _ = build_world((2, 2, 2), natoms=3000, seed=4)
        e3 = ThreeStageExchange(w1, d1, rcomm=1.2)
        ep = P2PExchange(w2, d2, rcomm=1.2)
        e3.borders()
        ep.borders()
        g3 = sum(e3.ghost_counts().values())
        gp = sum(ep.ghost_counts().values())
        assert g3 == pytest.approx(2 * gp, rel=0.03)

    def test_corner_ghosts_arrive_via_forwarding(self):
        """An atom in a corner region must reach the diagonal neighbor
        even though the 3-stage never sends diagonally."""
        world, domain, _, _ = build_world((2, 2, 2), natoms=0, box_edge=8.0)
        corner_pos = np.array([[3.9, 3.9, 3.9]])  # corner of rank 0's box
        a0 = world.ranks[0].state["atoms"]
        a0.set_local(corner_pos, np.zeros((1, 3)), np.array([777]))
        ex = ThreeStageExchange(world, domain, rcomm=1.0)
        ex.borders()
        # Rank 7 owns [4,8)^3 and must see tag 777 as a ghost.
        a7 = ex.atoms_of(7)
        assert 777 in a7.tag[a7.nlocal :]


class TestForwardReverse:
    @pytest.mark.parametrize("make", [
        lambda w, d: ThreeStageExchange(w, d, rcomm=2.0),
        lambda w, d: P2PExchange(w, d, rcomm=2.0),
        lambda w, d: P2PExchange(w, d, rcomm=2.0, rdma=True),
        lambda w, d: FineGrainedP2PExchange(w, d, rcomm=2.0),
    ])
    def test_forward_updates_ghost_positions(self, make):
        world, domain, _, _ = build_world((2, 2, 2), natoms=400, seed=5)
        ex = make(world, domain)
        ex.borders()
        ghost_before = {
            r: ex.atoms_of(r).x[ex.atoms_of(r).nlocal :].copy() for r in range(8)
        }
        # Move every local atom a tiny bit, then forward.
        for r in range(8):
            ex.atoms_of(r).x_local()[:] += 0.01
        ex.forward()
        for r in range(8):
            atoms = ex.atoms_of(r)
            after = atoms.x[atoms.nlocal :]
            assert np.allclose(after, ghost_before[r] + 0.01)

    @pytest.mark.parametrize("make", [
        lambda w, d: ThreeStageExchange(w, d, rcomm=2.0),
        lambda w, d: P2PExchange(w, d, rcomm=2.0),
        lambda w, d: P2PExchange(w, d, rcomm=2.0, rdma=True),
    ])
    def test_reverse_conserves_total_force(self, make):
        """Reverse moves ghost force to owners without creating any."""
        world, domain, _, _ = build_world((2, 2, 2), natoms=400, seed=6)
        ex = make(world, domain)
        ex.borders()
        rng = np.random.default_rng(0)
        total = np.zeros(3)
        for r in range(8):
            atoms = ex.atoms_of(r)
            atoms._f[: atoms.ntotal] = rng.normal(size=(atoms.ntotal, 3))
            total += atoms.f.sum(axis=0)
        ex.reverse()
        after = np.zeros(3)
        for r in range(8):
            after += ex.atoms_of(r).f_local().sum(axis=0)
        # Ghost rows may retain stale values; only local rows count after
        # a reverse.  Total force over owners == previous total over all.
        assert np.allclose(after, total, atol=1e-9)

    def test_rdma_and_message_planes_identical(self):
        w1, d1, _, _ = build_world((2, 2, 2), natoms=400, seed=7)
        w2, d2, _, _ = build_world((2, 2, 2), natoms=400, seed=7)
        msg = P2PExchange(w1, d1, rcomm=2.0, rdma=False)
        rdma = P2PExchange(w2, d2, rcomm=2.0, rdma=True)
        msg.borders()
        rdma.borders()
        for r in range(8):
            ex_pair = (msg.atoms_of(r), rdma.atoms_of(r))
            assert np.allclose(ex_pair[0].x, ex_pair[1].x)
        for r in range(8):
            msg.atoms_of(r).x_local()[:] += 0.05
            rdma.atoms_of(r).x_local()[:] += 0.05
        msg.forward()
        rdma.forward()
        for r in range(8):
            assert np.allclose(msg.atoms_of(r).x, rdma.atoms_of(r).x)

    def test_rdma_no_reregistration_during_run(self):
        """Pre-sizing keeps registration one-time across reborders."""
        world, domain, _, _ = build_world((2, 2, 2), natoms=400, seed=8)
        ex = P2PExchange(world, domain, rcomm=2.0, rdma=True)
        for _ in range(4):
            ex.exchange()
            ex.borders()
            ex.forward()
            ex.reverse()
        assert ex.reregistrations == 0


class TestExchangeMigration:
    @pytest.mark.parametrize("make", [
        lambda w, d: ThreeStageExchange(w, d, rcomm=2.0),
        lambda w, d: P2PExchange(w, d, rcomm=2.0),
    ])
    def test_atoms_conserved_and_owned(self, make):
        world, domain, _, _ = build_world((2, 2, 2), natoms=500, seed=9)
        ex = make(world, domain)
        # Push some atoms across boundaries.
        rng = np.random.default_rng(1)
        for r in range(8):
            atoms = ex.atoms_of(r)
            atoms.x_local()[:] += rng.normal(0, 1.0, size=(atoms.nlocal, 3))
        ex.exchange()
        tags = []
        for r in range(8):
            atoms = ex.atoms_of(r)
            sub = ex.sub_box_of(r)
            assert sub.contains(atoms.x_local()).all()
            tags.extend(atoms.tag[: atoms.nlocal].tolist())
        assert sorted(tags) == list(range(500))
        world.transport.assert_drained()

    def test_velocities_travel_with_atoms(self):
        world, domain, _, _ = build_world((2, 2, 2), natoms=100, seed=10)
        before = {}
        for r in range(8):
            atoms = ex_atoms = world.ranks[r].state["atoms"]
            for t, vv in zip(atoms.tag[: atoms.nlocal], atoms.v):
                before[int(t)] = vv.copy()
        ex = P2PExchange(world, domain, rcomm=2.0)
        for r in range(8):
            ex.atoms_of(r).x_local()[:] += 3.0
        ex.exchange()
        for r in range(8):
            atoms = ex.atoms_of(r)
            for t, vv in zip(atoms.tag[: atoms.nlocal], atoms.v):
                assert np.allclose(vv, before[int(t)])


class TestFineGrained:
    def test_functionally_identical_to_p2p(self):
        w1, d1, _, _ = build_world((2, 2, 2), natoms=300, seed=11)
        w2, d2, _, _ = build_world((2, 2, 2), natoms=300, seed=11)
        plain = P2PExchange(w1, d1, rcomm=2.0)
        fine = FineGrainedP2PExchange(w2, d2, rcomm=2.0)
        plain.borders()
        fine.borders()
        for r in range(8):
            assert np.allclose(plain.atoms_of(r).x, fine.atoms_of(r).x)

    def test_thread_assignment_covers_all_messages(self):
        world, domain, _, _ = build_world((2, 2, 2), natoms=300, seed=12)
        fine = FineGrainedP2PExchange(world, domain, rcomm=2.0)
        fine.borders()
        assignments = fine.assign_threads(0)
        assert len(assignments) == 13
        assert {a.neighbor_index for a in assignments} == set(range(13))
        assert all(0 <= a.thread < 6 for a in assignments)
        assert all(a.tni == a.thread for a in assignments)

    def test_load_balance_quality(self):
        """Fig. 10's goal: thread loads within ~2x of the mean even with
        faces 10x heavier than corners."""
        world, domain, _, _ = build_world((2, 2, 2), natoms=2000, seed=13)
        fine = FineGrainedP2PExchange(world, domain, rcomm=2.0)
        fine.borders()
        assert fine.balance_quality(0) < 2.0

    def test_comm_schedule_messages(self):
        world, domain, _, _ = build_world((2, 2, 2), natoms=300, seed=14)
        fine = FineGrainedP2PExchange(world, domain, rcomm=2.0)
        fine.borders()
        sched = fine.comm_schedule(0)
        assert len(sched) == 13
        assert all(m.known_length for m in sched)  # message combine

    def test_invalid_thread_count(self):
        world, domain, _, _ = build_world((2, 2, 2))
        with pytest.raises(ValueError):
            FineGrainedP2PExchange(world, domain, rcomm=2.0, n_comm_threads=7)


class TestSmallGrids:
    """Degenerate rank grids exercise self-sends and duplicate peers."""

    @pytest.mark.parametrize("grid", [(1, 1, 1), (2, 1, 1), (1, 2, 2)])
    def test_p2p_matches_serial_forces(self, grid):
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        v = maxwell_velocities(x.shape[0], 1.44, seed=21)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=grid, pattern="p2p", seed=21)
        sim.setup()
        assert np.allclose(sim.gather_forces(), ref.f, atol=1e-10)

    def test_p2p_radius2_long_cutoff(self):
        """Sub-box thinner than the shell (Fig. 15's regime): the p2p
        pattern reaches 2 ranks away and still matches the serial
        reference."""
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        v = maxwell_velocities(x.shape[0], 1.44, seed=23)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(4, 1, 1), pattern="p2p", seed=23, shell_radius=2
        )
        sim.setup()
        assert np.allclose(sim.gather_forces(), ref.f, atol=1e-10)
        assert sim.exchange.routes[0].sends.__len__() == 62  # half of 124

    @pytest.mark.parametrize("grid", [(1, 1, 1), (2, 2, 1)])
    def test_3stage_matches_serial_forces(self, grid):
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        v = maxwell_velocities(x.shape[0], 1.44, seed=22)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=grid, pattern="3stage", seed=22)
        sim.setup()
        assert np.allclose(sim.gather_forces(), ref.f, atol=1e-10)
